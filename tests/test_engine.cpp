// Tests for the batch scan engine: the work-stealing pool, the
// content-addressed cache ((de)serialization, key derivation, invalidation),
// scheduler dependency ordering, and end-to-end determinism across job
// counts and cache temperatures.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "dl/trainer.h"
#include "engine/cache.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"
#include "obs/decision.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchecko {
namespace {

// Small shared universe: a lightly trained model plus a scaled-down corpus.
// Model quality is irrelevant here (the pipeline tests cover accuracy);
// the engine tests only need deterministic, realistically shaped inputs.
struct EngineUniverse {
  SimilarityModel model;
  std::unique_ptr<EvalCorpus> corpus;
  std::unique_ptr<CveDatabase> database;
  FirmwareImage firmware;
  std::vector<std::string> some_cves;  // 4 CVEs across >= 2 libraries

  EngineUniverse() {
    TrainerConfig trainer;
    trainer.dataset.library_count = 16;
    trainer.dataset.functions_per_library = 12;
    trainer.epochs = 6;
    model = train_similarity_model(trainer).model;

    EvalConfig eval;
    eval.scale = 0.03;
    corpus = std::make_unique<EvalCorpus>(eval);
    database = std::make_unique<CveDatabase>(*corpus, DatabaseConfig{});
    firmware = corpus->build_firmware(android_things_device());
    for (const CveEntry& entry : database->entries()) {
      if (some_cves.size() == 4) break;
      some_cves.push_back(entry.spec.cve_id);
    }
  }

  ScanRequest request() const {
    ScanRequest request;
    request.model = &model;
    request.firmware = &firmware;
    request.database = database.get();
    request.cve_ids = some_cves;
    return request;
  }
};

const EngineUniverse& universe() {
  static EngineUniverse instance;
  return instance;
}

/// A unique, cleaned-up-on-entry scratch directory per test name.
std::string scratch_dir(const std::string& name) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("pk_engine_test_" + name);
  std::filesystem::remove_all(path);
  return path.string();
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  TaskGroup group(pool);
  for (int i = 0; i < 200; ++i)
    group.run([&total] { total.fetch_add(1); });
  group.wait();
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, TaskGroupRethrowsLowestSubmissionIndex) {
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 10; ++repeat) {
    TaskGroup group(pool);
    for (int i = 0; i < 8; ++i)
      group.run([i] {
        if (i >= 2) throw std::runtime_error(std::to_string(i));
      });
    try {
      group.wait();
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "2");
    }
  }
}

TEST(ThreadPool, WaitHelpsDrainNestedWork) {
  // Saturate a tiny pool with tasks that themselves fan out; wait() must
  // help execute instead of deadlocking on the busy workers.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i)
    outer.run([&pool, &total] {
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j)
        inner.run([&total] { total.fetch_add(1); });
      inner.wait();
    });
  outer.wait();
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, StressAccountingBalancesLocalPopsAndSteals) {
  // 64 jobs with deterministic pseudo-random sleeps on a 4-worker pool.
  // Every submitted task is popped exactly once — either by its owner
  // (local pop) or by a stealing/helping thread — so after the drain:
  // submitted == local_pops + steals == completed, and the queue-depth
  // gauge is back where it started. gtest runs tests serially in one
  // process, so deltas on the global counters are race-free.
  const obs::EnabledScope on(true);
  obs::Registry& registry = obs::Registry::global();
  const std::uint64_t submitted0 = registry.counter("pool.submitted").value();
  const std::uint64_t local0 = registry.counter("pool.local_pops").value();
  const std::uint64_t steals0 = registry.counter("pool.steals").value();
  const std::uint64_t completed0 = registry.counter("pool.completed").value();
  const std::int64_t depth0 = registry.gauge("pool.queue_depth").value();

  ThreadPool pool(4);
  std::mt19937 rng(20260806u);
  std::uniform_int_distribution<int> sleep_us(0, 400);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    const int us = sleep_us(rng);
    group.run([us, &ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
      ran.fetch_add(1);
    });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 64);

  const std::uint64_t local = registry.counter("pool.local_pops").value() -
                              local0;
  const std::uint64_t steals = registry.counter("pool.steals").value() -
                               steals0;
  EXPECT_EQ(registry.counter("pool.submitted").value() - submitted0, 64u);
  EXPECT_EQ(registry.counter("pool.completed").value() - completed0, 64u);
  EXPECT_EQ(local + steals, 64u);
  EXPECT_EQ(registry.gauge("pool.queue_depth").value(), depth0);
}

TEST(Cache, AccountingInvariantHoldsUnderRandomOperations) {
  // Property test: a deterministic pseudo-random put/get/invalidate
  // workload against a memory-only cache, checked against a reference
  // model (two key sets) and run twice — metrics enabled and disabled.
  // Invariants: every lookup outcome matches the model, hits + misses ==
  // lookups, and the observable trace is byte-identical both ways.
  const auto run_workload = [](bool metrics_on) {
    const obs::EnabledScope scope(metrics_on);
    obs::Registry& registry = obs::Registry::global();
    const std::uint64_t hits0 = registry.counter("cache.feature_hits").value() +
                                registry.counter("cache.outcome_hits").value();
    const std::uint64_t misses0 =
        registry.counter("cache.feature_misses").value() +
        registry.counter("cache.outcome_misses").value();
    const std::uint64_t evictions0 =
        registry.counter("cache.evictions").value();

    ResultCache cache;  // memory-only
    std::set<std::string> model_features, model_outcomes;
    std::uint64_t lookups = 0, expected_evictions = 0;
    std::mt19937 rng(1234u);
    std::uniform_int_distribution<int> op_dist(0, 99);
    std::uniform_int_distribution<int> key_dist(0, 15);
    std::string log;
    for (int step = 0; step < 2000; ++step) {
      const int op = op_dist(rng);
      const std::string key = "k" + std::to_string(key_dist(rng));
      if (op < 35) {
        ++lookups;
        const bool hit = cache.find_features(key).has_value();
        EXPECT_EQ(hit, model_features.count(key) > 0) << "step " << step;
        log += hit ? 'F' : 'f';
      } else if (op < 70) {
        ++lookups;
        const bool hit = cache.find_outcome(key).has_value();
        EXPECT_EQ(hit, model_outcomes.count(key) > 0) << "step " << step;
        log += hit ? 'O' : 'o';
      } else if (op < 85) {
        cache.store_features(key, {StaticFeatureVector{}});
        model_features.insert(key);
        log += 's';
      } else if (op < 97) {
        DetectionOutcome outcome;
        outcome.cve_id = key;
        cache.store_outcome(key, outcome);
        model_outcomes.insert(key);
        log += 'S';
      } else {
        expected_evictions += model_features.size() + model_outcomes.size();
        cache.clear_memory();
        model_features.clear();
        model_outcomes.clear();
        log += 'x';
      }
    }
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits() + stats.misses(), lookups);
    // With metrics on, the global counters mirror the per-cache stats
    // exactly; with metrics off they must not move at all.
    const std::uint64_t hit_delta =
        registry.counter("cache.feature_hits").value() +
        registry.counter("cache.outcome_hits").value() - hits0;
    const std::uint64_t miss_delta =
        registry.counter("cache.feature_misses").value() +
        registry.counter("cache.outcome_misses").value() - misses0;
    const std::uint64_t evict_delta =
        registry.counter("cache.evictions").value() - evictions0;
    EXPECT_EQ(hit_delta, metrics_on ? stats.hits() : 0u);
    EXPECT_EQ(miss_delta, metrics_on ? stats.misses() : 0u);
    EXPECT_EQ(evict_delta, metrics_on ? expected_evictions : 0u);
    return log + "|" + std::to_string(stats.feature_hits) + "," +
           std::to_string(stats.feature_misses) + "," +
           std::to_string(stats.outcome_hits) + "," +
           std::to_string(stats.outcome_misses) + "," +
           std::to_string(stats.stores);
  };
  EXPECT_EQ(run_workload(true), run_workload(false));
}

TEST(Cache, FeatureSerializationRoundTripsByteIdentical) {
  const LibraryBinary library =
      universe().corpus->compile_for_device(0, android_things_device());
  const AnalyzedLibrary analyzed = analyze_library(library);
  ASSERT_FALSE(analyzed.features.empty());

  const std::vector<std::uint8_t> bytes =
      serialize_features(analyzed.features);
  const auto restored = deserialize_features(bytes);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), analyzed.features.size());
  for (std::size_t i = 0; i < restored->size(); ++i)
    for (std::size_t f = 0; f < static_feature_count; ++f)
      EXPECT_EQ((*restored)[i][f], analyzed.features[i][f]);
  EXPECT_EQ(serialize_features(*restored), bytes);
}

TEST(Cache, OutcomeSerializationRoundTripsByteIdentical) {
  DetectionOutcome outcome;
  outcome.cve_id = "CVE-2018-9412";
  outcome.query_is_patched = true;
  outcome.total = 321;
  outcome.true_positives = 1;
  outcome.true_negatives = 300;
  outcome.false_positives = 19;
  outcome.false_negatives = 1;
  outcome.candidates = {4, 9, 17, 200};
  outcome.dl_seconds = 0.125;
  outcome.executed = 3;
  outcome.ranking = {{17, 0.03125, 0.75}, {4, 1.5, 0.25}, {9, 2.25, 0.5}};
  outcome.rank_of_target = 1;
  outcome.da_seconds = 2.5;
  outcome.prefilter_mode = retrieval::PrefilterMode::verify;
  outcome.prefilter_exact_fallback = false;
  outcome.prefilter_shortlist = 32;
  outcome.prefilter_exact_candidates = 20;
  outcome.prefilter_recalled = 19;

  const std::vector<std::uint8_t> bytes = serialize_outcome(outcome);
  const auto restored = deserialize_outcome(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->cve_id, outcome.cve_id);
  EXPECT_EQ(restored->query_is_patched, outcome.query_is_patched);
  EXPECT_EQ(restored->total, outcome.total);
  EXPECT_EQ(restored->true_positives, outcome.true_positives);
  EXPECT_EQ(restored->true_negatives, outcome.true_negatives);
  EXPECT_EQ(restored->false_positives, outcome.false_positives);
  EXPECT_EQ(restored->false_negatives, outcome.false_negatives);
  EXPECT_EQ(restored->candidates, outcome.candidates);
  EXPECT_EQ(restored->dl_seconds, outcome.dl_seconds);
  EXPECT_EQ(restored->executed, outcome.executed);
  ASSERT_EQ(restored->ranking.size(), outcome.ranking.size());
  for (std::size_t i = 0; i < outcome.ranking.size(); ++i) {
    EXPECT_EQ(restored->ranking[i].function_index,
              outcome.ranking[i].function_index);
    EXPECT_EQ(restored->ranking[i].distance, outcome.ranking[i].distance);
    EXPECT_EQ(restored->ranking[i].secondary, outcome.ranking[i].secondary);
  }
  EXPECT_EQ(restored->rank_of_target, outcome.rank_of_target);
  EXPECT_EQ(restored->da_seconds, outcome.da_seconds);
  EXPECT_EQ(restored->prefilter_mode, outcome.prefilter_mode);
  EXPECT_EQ(restored->prefilter_exact_fallback,
            outcome.prefilter_exact_fallback);
  EXPECT_EQ(restored->prefilter_shortlist, outcome.prefilter_shortlist);
  EXPECT_EQ(restored->prefilter_exact_candidates,
            outcome.prefilter_exact_candidates);
  EXPECT_EQ(restored->prefilter_recalled, outcome.prefilter_recalled);
  EXPECT_EQ(serialize_outcome(*restored), bytes);
}

TEST(Cache, ProvenanceRoundTripsBitExactIncludingNonFinite) {
  // Decision provenance rides inside the cached outcome; the doubles are
  // serialized as raw bits, so NaN env distances and +inf aggregates must
  // survive — a warm-cache scan has to re-render byte-identical JSONL.
  DetectionOutcome outcome;
  outcome.cve_id = "CVE-2018-9412";
  outcome.provenance.threshold = 0.4;
  outcome.provenance.minkowski_p = 3.0;
  outcome.provenance.total = 64;
  outcome.provenance.executed = 1;
  outcome.provenance.prefilter =
      static_cast<std::uint8_t>(retrieval::PrefilterMode::verify);
  outcome.provenance.prefilter_shortlist = 32;
  outcome.provenance.prefilter_exact = 3;
  outcome.provenance.prefilter_recalled = 2;
  obs::CandidateRecord kept;
  kept.function_index = 12;
  kept.dl_score = 0.875;
  kept.validated = true;
  kept.env_distances = {0.25, std::numeric_limits<double>::quiet_NaN(),
                        0.0078125};
  kept.distance = 0.4375;
  kept.rank = 1;
  obs::CandidateRecord pruned;
  pruned.function_index = 31;
  pruned.dl_score = 0.5;
  pruned.crash_env = 2;
  pruned.distance = std::numeric_limits<double>::infinity();
  obs::CandidateRecord shortlist_pruned;
  shortlist_pruned.function_index = 40;
  shortlist_pruned.dl_score = 0.625;
  shortlist_pruned.prefiltered = true;  // verify-mode "what `on` would drop"
  outcome.provenance.candidates = {kept, pruned, shortlist_pruned};

  const std::vector<std::uint8_t> bytes = serialize_outcome(outcome);
  const auto restored = deserialize_outcome(bytes);
  ASSERT_TRUE(restored.has_value());
  const obs::StageRecord& stage = restored->provenance;
  EXPECT_EQ(stage.threshold, 0.4);
  EXPECT_EQ(stage.total, 64u);
  EXPECT_EQ(stage.executed, 1u);
  EXPECT_EQ(stage.prefilter,
            static_cast<std::uint8_t>(retrieval::PrefilterMode::verify));
  EXPECT_EQ(stage.prefilter_shortlist, 32u);
  EXPECT_EQ(stage.prefilter_exact, 3u);
  EXPECT_EQ(stage.prefilter_recalled, 2u);
  ASSERT_EQ(stage.candidates.size(), 3u);
  EXPECT_EQ(stage.candidates[0].function_index, 12u);
  EXPECT_TRUE(stage.candidates[0].validated);
  ASSERT_EQ(stage.candidates[0].env_distances.size(), 3u);
  EXPECT_TRUE(std::isnan(stage.candidates[0].env_distances[1]));
  EXPECT_EQ(stage.candidates[0].env_distances[2], 0.0078125);
  EXPECT_EQ(stage.candidates[0].rank, 1);
  EXPECT_EQ(stage.candidates[1].crash_env, 2);
  EXPECT_TRUE(std::isinf(stage.candidates[1].distance));
  EXPECT_FALSE(stage.candidates[1].prefiltered);
  EXPECT_TRUE(stage.candidates[2].prefiltered);
  EXPECT_EQ(stage.candidates[2].dl_score, 0.625);
  EXPECT_EQ(serialize_outcome(*restored), bytes);
}

TEST(Cache, DeserializersRejectCorruptInput) {
  EXPECT_FALSE(deserialize_features({}).has_value());
  EXPECT_FALSE(deserialize_outcome({}).has_value());
  EXPECT_FALSE(deserialize_features({'P', 'K', 'F', 'E'}).has_value());

  std::vector<std::uint8_t> bytes =
      serialize_features({StaticFeatureVector{}, StaticFeatureVector{}});
  bytes.pop_back();  // truncated payload
  EXPECT_FALSE(deserialize_features(bytes).has_value());
  bytes.push_back(0);
  bytes[0] = 'X';  // wrong magic
  EXPECT_FALSE(deserialize_features(bytes).has_value());

  DetectionOutcome outcome;
  outcome.candidates = {1, 2, 3};
  std::vector<std::uint8_t> outcome_bytes = serialize_outcome(outcome);
  outcome_bytes.resize(outcome_bytes.size() - 4);
  EXPECT_FALSE(deserialize_outcome(outcome_bytes).has_value());
}

TEST(Cache, KeyChangesWithModelConfigAndLibrary) {
  const EngineUniverse& u = universe();
  const LibraryBinary library =
      u.corpus->compile_for_device(0, android_things_device());
  const CveEntry& entry = u.database->entries().front();

  const Digest lib_digest = digest_library(library);
  const Digest model_digest = digest_model(u.model);
  PipelineConfig config;
  const Digest config_digest = digest_pipeline_config(config);
  const Digest entry_digest = digest_entry(entry);
  const std::string key = outcome_cache_key(lib_digest, model_digest,
                                            config_digest, entry_digest,
                                            /*query_is_patched=*/false);

  // Model perturbation (one weight) must invalidate.
  SimilarityModel perturbed = u.model;
  ASSERT_FALSE(perturbed.network().layers().empty());
  perturbed.network().layers()[0].weights()[0] += 1.0f;
  EXPECT_NE(outcome_cache_key(lib_digest, digest_model(perturbed),
                              config_digest, entry_digest, false),
            key);

  // Result-relevant config change must invalidate...
  PipelineConfig tightened;
  tightened.detection_threshold = 0.9f;
  EXPECT_NE(outcome_cache_key(lib_digest, model_digest,
                              digest_pipeline_config(tightened), entry_digest,
                              false),
            key);

  // ...but parallelism is result-neutral and must NOT invalidate.
  PipelineConfig threaded;
  threaded.worker_threads = 8;
  EXPECT_EQ(outcome_cache_key(lib_digest, model_digest,
                              digest_pipeline_config(threaded), entry_digest,
                              false),
            key);

  // The prefilter shapes which functions reach the network, so mode, K, and
  // the exact-fallback threshold are all part of the outcome key.
  PipelineConfig prefiltered;
  prefiltered.prefilter_mode = retrieval::PrefilterMode::on;
  const std::string prefiltered_key =
      outcome_cache_key(lib_digest, model_digest,
                        digest_pipeline_config(prefiltered), entry_digest,
                        false);
  EXPECT_NE(prefiltered_key, key);
  PipelineConfig wider = prefiltered;
  wider.prefilter_top_k = prefiltered.prefilter_top_k * 2;
  EXPECT_NE(outcome_cache_key(lib_digest, model_digest,
                              digest_pipeline_config(wider), entry_digest,
                              false),
            prefiltered_key);
  PipelineConfig always = prefiltered;
  always.prefilter_min_total = 0;
  EXPECT_NE(outcome_cache_key(lib_digest, model_digest,
                              digest_pipeline_config(always), entry_digest,
                              false),
            prefiltered_key);

  // Different query direction and different library are distinct entries.
  EXPECT_NE(outcome_cache_key(lib_digest, model_digest, config_digest,
                              entry_digest, true),
            key);
  const LibraryBinary other =
      u.corpus->compile_for_device(1, android_things_device());
  EXPECT_NE(outcome_cache_key(digest_library(other), model_digest,
                              config_digest, entry_digest, false),
            key);
}

TEST(Cache, DiskEntriesSurviveProcessRestartSimulation) {
  const std::string dir = scratch_dir("disk_persist");
  const std::vector<StaticFeatureVector> features{StaticFeatureVector{},
                                                  StaticFeatureVector{}};
  {
    ResultCache cache(dir);
    cache.store_features("feat-abc", features);
  }
  ResultCache fresh(dir);  // same directory, empty memory
  const auto found = fresh.find_features("feat-abc");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size(), features.size());
  EXPECT_EQ(fresh.stats().disk_loads, 1u);
  EXPECT_FALSE(fresh.find_features("feat-missing").has_value());
  EXPECT_EQ(fresh.stats().feature_misses, 1u);
}

TEST(Engine, RejectsIncompleteRequests) {
  ScanEngine engine;
  EXPECT_THROW(engine.run(ScanRequest{}), std::invalid_argument);
}

TEST(Engine, SchedulerRunsAnalyzeBeforeDetectBeforePatch) {
  const EngineUniverse& u = universe();
  EngineConfig config;
  config.jobs = 4;
  config.use_cache = false;
  ScanEngine engine(config);

  std::vector<JobEvent> events;  // engine serializes progress callbacks
  const ScanReport report = engine.run(u.request(), [&](const JobEvent& e) {
    events.push_back(e);
  });

  std::map<std::string, std::size_t> analyze_pos, detect_pos, patch_pos;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == JobKind::analyze) analyze_pos[events[i].label] = i;
    if (events[i].kind == JobKind::detect) detect_pos[events[i].label] = i;
    if (events[i].kind == JobKind::patch) patch_pos[events[i].label] = i;
  }
  EXPECT_EQ(events.size(),
            report.analyzed_libraries + 2 * report.results.size());
  for (const CveScanResult& result : report.results) {
    ASSERT_TRUE(analyze_pos.count(result.library)) << result.library;
    ASSERT_TRUE(detect_pos.count(result.cve_id)) << result.cve_id;
    ASSERT_TRUE(patch_pos.count(result.cve_id)) << result.cve_id;
    EXPECT_LT(analyze_pos[result.library], detect_pos[result.cve_id]);
    EXPECT_LT(detect_pos[result.cve_id], patch_pos[result.cve_id]);
  }
}

TEST(Engine, SequentialAndParallelRunsAgreeExactly) {
  const EngineUniverse& u = universe();
  EngineConfig sequential;
  sequential.jobs = 1;
  sequential.use_cache = false;
  EngineConfig parallel;
  parallel.jobs = 8;
  parallel.use_cache = false;

  const ScanReport a = ScanEngine(sequential).run(u.request());
  const ScanReport b = ScanEngine(parallel).run(u.request());
  ASSERT_FALSE(a.results.empty());
  EXPECT_FALSE(a.canonical_text().empty());
  EXPECT_EQ(a.canonical_text(), b.canonical_text());
}

TEST(Engine, WarmRunHitsCacheAndReproducesReport) {
  const EngineUniverse& u = universe();
  EngineConfig config;
  config.jobs = 4;  // memory-only cache
  ScanEngine engine(config);

  const ScanReport cold = engine.run(u.request());
  const ScanReport warm = engine.run(u.request());

  EXPECT_EQ(cold.canonical_text(), warm.canonical_text());
  // Cold run: every lookup missed and was stored.
  EXPECT_EQ(cold.cache.hits(), 0u);
  EXPECT_EQ(cold.cache.feature_misses, cold.analyzed_libraries);
  EXPECT_EQ(cold.cache.outcome_misses, 2 * cold.results.size());
  // Warm run: every analyze and detect served from cache.
  EXPECT_EQ(warm.cache.misses(), 0u);
  EXPECT_EQ(warm.cache.feature_hits, warm.analyzed_libraries);
  EXPECT_EQ(warm.cache.outcome_hits, 2 * warm.results.size());
  bool analyze_hit = false, detect_hit = false;
  for (const JobTiming& timing : warm.timings) {
    if (timing.kind == JobKind::analyze && timing.cache_hit)
      analyze_hit = true;
    if (timing.kind == JobKind::detect && timing.cache_hit) detect_hit = true;
  }
  EXPECT_TRUE(analyze_hit);
  EXPECT_TRUE(detect_hit);
}

TEST(Engine, DiskCacheServesAFreshEngine) {
  const EngineUniverse& u = universe();
  const std::string dir = scratch_dir("engine_disk");
  EngineConfig config;
  config.jobs = 4;
  config.cache_dir = dir;

  const ScanReport cold = ScanEngine(config).run(u.request());
  const ScanReport warm = ScanEngine(config).run(u.request());  // new engine

  EXPECT_EQ(cold.canonical_text(), warm.canonical_text());
  EXPECT_EQ(warm.cache.misses(), 0u);
  EXPECT_GT(warm.cache.disk_loads, 0u);
}

TEST(Engine, ModelChangeInvalidatesOutcomesButNotFeatures) {
  const EngineUniverse& u = universe();
  const std::string dir = scratch_dir("engine_invalidate");
  EngineConfig config;
  config.jobs = 2;
  config.cache_dir = dir;
  ScanEngine(config).run(u.request());

  SimilarityModel perturbed = u.model;
  perturbed.network().layers()[0].weights()[0] += 1.0f;
  ScanRequest request = u.request();
  request.model = &perturbed;
  const ScanReport report = ScanEngine(config).run(request);

  // Features depend only on the library: still hits. Outcomes depend on the
  // model: all misses.
  EXPECT_EQ(report.cache.feature_hits, report.analyzed_libraries);
  EXPECT_EQ(report.cache.outcome_hits, 0u);
  EXPECT_EQ(report.cache.outcome_misses, 2 * report.results.size());
}

TEST(Engine, ConfigChangeInvalidatesOutcomes) {
  const EngineUniverse& u = universe();
  const std::string dir = scratch_dir("engine_invalidate_config");
  EngineConfig config;
  config.jobs = 2;
  config.cache_dir = dir;
  ScanEngine(config).run(u.request());

  EngineConfig tightened = config;
  tightened.pipeline.detection_threshold = 0.75f;
  const ScanReport report = ScanEngine(tightened).run(u.request());
  EXPECT_EQ(report.cache.feature_hits, report.analyzed_libraries);
  EXPECT_EQ(report.cache.outcome_hits, 0u);
}

TEST(Engine, MetricsCountJobsAndNestPipelineSpansUnderJobs) {
  const EngineUniverse& u = universe();
  EngineConfig config;
  config.jobs = 4;
  config.use_cache = false;

  const obs::EnabledScope on(true);
  obs::Registry& registry = obs::Registry::global();
  obs::Tracer::global().clear();
  const std::uint64_t jobs0 =
      registry.counter("engine.jobs_completed").value();
  const std::uint64_t detect0 =
      registry.histogram("engine.job_seconds.detect").count();

  const ScanReport report = ScanEngine(config).run(u.request());
  ASSERT_FALSE(report.results.empty());

  // One engine.jobs_completed per scheduled job; one detect-latency sample
  // per (cve, direction-pair) detect job.
  EXPECT_EQ(registry.counter("engine.jobs_completed").value() - jobs0,
            report.timings.size());
  EXPECT_EQ(registry.histogram("engine.job_seconds.detect").count() - detect0,
            report.results.size());

  // Pipeline stage spans nest under the engine job spans that ran them; a
  // detect job runs the pipeline once per query direction.
  const std::vector<obs::Span> spans = obs::Tracer::global().spans();
  std::map<std::uint64_t, std::string> name_of;
  for (const obs::Span& span : spans) name_of[span.id] = span.name;
  std::size_t dl_spans = 0;
  for (const obs::Span& span : spans) {
    if (span.name != "pipeline.detect.dl") continue;
    ++dl_spans;
    ASSERT_NE(span.parent, 0u);
    EXPECT_EQ(name_of[span.parent], "job.detect");
  }
  EXPECT_EQ(dl_spans, 2 * report.results.size());
}

TEST(Engine, CanonicalReportIsUnaffectedByMetrics) {
  // The determinism oracle: metrics on/off and jobs 1/8 must all yield the
  // byte-identical canonical report.
  const EngineUniverse& u = universe();
  EngineConfig sequential;
  sequential.jobs = 1;
  sequential.use_cache = false;
  EngineConfig parallel;
  parallel.jobs = 8;
  parallel.use_cache = false;

  std::string off_text;
  {
    const obs::EnabledScope off(false);
    off_text = ScanEngine(parallel).run(u.request()).canonical_text();
  }
  const obs::EnabledScope on(true);
  const std::string seq_text =
      ScanEngine(sequential).run(u.request()).canonical_text();
  const std::string par_text =
      ScanEngine(parallel).run(u.request()).canonical_text();
  ASSERT_FALSE(off_text.empty());
  EXPECT_EQ(seq_text, off_text);
  EXPECT_EQ(par_text, off_text);
}

TEST(Engine, ProvenanceIsDeterministicAcrossJobCounts) {
  // Decision lines carry no wall-clock or thread fields, so the provenance
  // export must stay byte-identical between jobs=1 and jobs=8 even with the
  // event log recording — and enabling events must not perturb the
  // canonical report either.
  const EngineUniverse& u = universe();
  EngineConfig sequential;
  sequential.jobs = 1;
  sequential.use_cache = false;
  EngineConfig parallel;
  parallel.jobs = 8;
  parallel.use_cache = false;

  std::string off_text;
  {
    const obs::EventsEnabledScope off(false);
    off_text = ScanEngine(parallel).run(u.request()).canonical_text();
  }
  const obs::EventsEnabledScope on(true);
  const ScanReport seq = ScanEngine(sequential).run(u.request());
  const ScanReport par = ScanEngine(parallel).run(u.request());
  ASSERT_FALSE(seq.results.empty());
  EXPECT_EQ(seq.canonical_text(), off_text);
  EXPECT_EQ(par.canonical_text(), off_text);

  const std::string seq_prov = seq.provenance_jsonl();
  EXPECT_FALSE(seq_prov.empty());
  EXPECT_EQ(par.provenance_jsonl(), seq_prov);
  // Every line is one JSON object; decisions cover every scanned CVE pair.
  std::size_t decisions = 0, start = 0;
  while (start < seq_prov.size()) {
    const std::size_t end = seq_prov.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = seq_prov.substr(start, end - start);
    if (obs::parse_decision_line(line).has_value()) ++decisions;
    start = end + 1;
  }
  EXPECT_EQ(decisions, seq.results.size());
}

TEST(Engine, ProvenanceSurvivesCacheRoundTrip) {
  // A warm run replays outcomes from the cache; the embedded StageRecords
  // must reproduce the cold run's provenance byte-for-byte (raw-bit double
  // serialization — no decimal round-trip drift).
  const EngineUniverse& u = universe();
  EngineConfig config;
  config.jobs = 4;  // memory-only cache
  ScanEngine engine(config);
  const std::string cold = engine.run(u.request()).provenance_jsonl();
  const ScanReport warm_report = engine.run(u.request());
  EXPECT_EQ(warm_report.cache.misses(), 0u);  // really served from cache
  EXPECT_EQ(warm_report.provenance_jsonl(), cold);
}

TEST(Engine, InterruptAlreadySetSkipsEveryJob) {
  // A SIGINT that lands before the first job launches must still produce a
  // (fully partial) report: every job cancelled, nothing executed.
  const EngineUniverse& u = universe();
  std::atomic<bool> interrupt{true};
  EngineConfig config;
  config.jobs = 4;
  config.interrupt = &interrupt;
  ScanEngine engine(config);
  const ScanReport report = engine.run(u.request());
  EXPECT_TRUE(report.interrupted);
  EXPECT_GT(report.jobs_cancelled, 0u);
  EXPECT_TRUE(report.timings.empty());  // nothing ran
  for (const CveScanResult& result : report.results)
    EXPECT_TRUE(result.cancelled);
  // Cancelled outcomes must never poison the cache.
  EXPECT_EQ(engine.cache().stats().stores, 0u);
}

TEST(Engine, InterruptMidRunYieldsPartialReport) {
  // Flip the flag from a progress callback after the first few completions:
  // queued jobs are dropped, the flag is recorded, and the jobs that did
  // finish keep their results.
  const EngineUniverse& u = universe();
  std::atomic<bool> interrupt{false};
  EngineConfig config;
  config.jobs = 1;  // sequential: the interrupt point is deterministic
  config.interrupt = &interrupt;
  ScanEngine engine(config);
  std::atomic<std::size_t> completions{0};
  const ScanReport report =
      engine.run(u.request(), [&](const JobEvent&) {
        if (completions.fetch_add(1) + 1 == 2) interrupt.store(true);
      });
  EXPECT_TRUE(report.interrupted);
  EXPECT_GT(report.jobs_cancelled, 0u);
  EXPECT_EQ(report.timings.size(), 2u);  // exactly the pre-interrupt jobs
}

TEST(Engine, InterruptedRunDoesNotDisturbLaterRuns) {
  const EngineUniverse& u = universe();
  std::atomic<bool> interrupt{true};
  EngineConfig config;
  config.jobs = 2;
  config.interrupt = &interrupt;
  ScanEngine engine(config);
  EXPECT_TRUE(engine.run(u.request()).interrupted);
  interrupt.store(false);
  const ScanReport clean = engine.run(u.request());
  EXPECT_FALSE(clean.interrupted);
  EXPECT_EQ(clean.jobs_cancelled, 0u);
  ScanEngine reference(EngineConfig{});
  EXPECT_EQ(clean.canonical_text(),
            reference.run(u.request()).canonical_text());
}

EngineConfig prefilter_config(retrieval::PrefilterMode mode,
                              std::size_t top_k = 32) {
  EngineConfig config;
  config.jobs = 4;
  config.use_cache = false;
  config.pipeline.prefilter_mode = mode;
  config.pipeline.prefilter_top_k = top_k;
  // The shared test corpus is small; drop the exact-fallback floor so the
  // shortlist path genuinely engages.
  config.pipeline.prefilter_min_total = 0;
  return config;
}

TEST(Engine, PrefilterVerifyMatchesOnExactlyAndReportsFullRecall) {
  // `verify` scores everything but classifies through the shortlist like
  // `on`, so the two modes must agree byte-for-byte — report and provenance.
  // On this corpus the default K recalls every exact candidate, which is the
  // precondition for the off-equivalence check below.
  const EngineUniverse& u = universe();
  const ScanReport off =
      ScanEngine(prefilter_config(retrieval::PrefilterMode::off))
          .run(u.request());
  const ScanReport on =
      ScanEngine(prefilter_config(retrieval::PrefilterMode::on))
          .run(u.request());
  const ScanReport verify =
      ScanEngine(prefilter_config(retrieval::PrefilterMode::verify))
          .run(u.request());
  ASSERT_FALSE(verify.results.empty());
  EXPECT_EQ(verify.canonical_text(), on.canonical_text());
  // Provenance is intentionally NOT identical: verify annotates recall stats
  // and keeps records for accepted-but-shortlist-pruned functions, which the
  // shortlist-only scan never observes.
  EXPECT_NE(verify.provenance_jsonl().find("\"prefilter\":2"),
            std::string::npos);
  EXPECT_NE(on.provenance_jsonl().find("\"prefilter\":1"), std::string::npos);

  std::size_t shortlisted = 0, total = 0, exact = 0, recalled = 0;
  for (const CveScanResult& result : verify.results) {
    for (const DetectionOutcome* outcome :
         {&result.from_vulnerable, &result.from_patched}) {
      EXPECT_EQ(outcome->prefilter_mode, retrieval::PrefilterMode::verify);
      EXPECT_FALSE(outcome->prefilter_exact_fallback);
      EXPECT_LE(outcome->prefilter_recalled,
                outcome->prefilter_exact_candidates);
      shortlisted += outcome->prefilter_shortlist;
      total += outcome->total;
      exact += outcome->prefilter_exact_candidates;
      recalled += outcome->prefilter_recalled;
    }
  }
  EXPECT_GT(shortlisted, 0u);
  EXPECT_LT(shortlisted, total) << "shortlist never pruned anything";
  // 100% measured recall => prefiltered results must be byte-identical to
  // the exact scan. (If this corpus ever makes recall dip, the defaults are
  // mistuned — that is a real regression, not a flaky test.)
  ASSERT_EQ(recalled, exact);
  EXPECT_EQ(on.canonical_text(), off.canonical_text());
}

TEST(Engine, PrefilterFallsBackToExactBelowMinTotal) {
  // Tiny targets are cheaper to scan exactly than to index; the outcome
  // records the applied mode (off) plus the fallback marker.
  const EngineUniverse& u = universe();
  EngineConfig config = prefilter_config(retrieval::PrefilterMode::on);
  config.pipeline.prefilter_min_total = 1u << 20;
  const ScanReport report = ScanEngine(config).run(u.request());
  ASSERT_FALSE(report.results.empty());
  for (const CveScanResult& result : report.results) {
    for (const DetectionOutcome* outcome :
         {&result.from_vulnerable, &result.from_patched}) {
      EXPECT_EQ(outcome->prefilter_mode, retrieval::PrefilterMode::off);
      EXPECT_TRUE(outcome->prefilter_exact_fallback);
      EXPECT_EQ(outcome->prefilter_shortlist, 0u);
    }
  }
  const ScanReport off =
      ScanEngine(prefilter_config(retrieval::PrefilterMode::off))
          .run(u.request());
  EXPECT_EQ(report.canonical_text(), off.canonical_text());
}

TEST(Engine, PrefilterConfigChangeInvalidatesOutcomesButNotFeatures) {
  // Turning the prefilter on (or resizing K) changes which functions the
  // network scores, so cached outcomes keyed to the old config must miss.
  const EngineUniverse& u = universe();
  const std::string dir = scratch_dir("engine_invalidate_prefilter");
  EngineConfig config;
  config.jobs = 2;
  config.cache_dir = dir;
  ScanEngine(config).run(u.request());

  EngineConfig prefiltered = config;
  prefiltered.pipeline.prefilter_mode = retrieval::PrefilterMode::on;
  prefiltered.pipeline.prefilter_min_total = 0;
  const ScanReport report = ScanEngine(prefiltered).run(u.request());
  EXPECT_EQ(report.cache.feature_hits, report.analyzed_libraries);
  EXPECT_EQ(report.cache.outcome_hits, 0u);
  EXPECT_EQ(report.cache.outcome_misses, 2 * report.results.size());

  EngineConfig wider = prefiltered;
  wider.pipeline.prefilter_top_k = prefiltered.pipeline.prefilter_top_k * 2;
  const ScanReport rewidened = ScanEngine(wider).run(u.request());
  EXPECT_EQ(rewidened.cache.outcome_hits, 0u);
}

TEST(Engine, PrefilteredOutcomesSurviveWarmCacheByteIdentical) {
  // Warm runs replay prefiltered outcomes (shortlist stats, verify recall,
  // prefiltered provenance candidates) from the cache byte-for-byte.
  const EngineUniverse& u = universe();
  EngineConfig config;
  config.jobs = 4;  // memory-only cache
  config.pipeline.prefilter_mode = retrieval::PrefilterMode::verify;
  config.pipeline.prefilter_min_total = 0;
  ScanEngine engine(config);
  const ScanReport cold = engine.run(u.request());
  const ScanReport warm = engine.run(u.request());
  EXPECT_EQ(warm.cache.misses(), 0u);
  EXPECT_EQ(warm.canonical_text(), cold.canonical_text());
  EXPECT_EQ(warm.provenance_jsonl(), cold.provenance_jsonl());
  for (std::size_t i = 0; i < warm.results.size(); ++i) {
    EXPECT_EQ(warm.results[i].from_vulnerable.prefilter_recalled,
              cold.results[i].from_vulnerable.prefilter_recalled);
    EXPECT_EQ(warm.results[i].from_vulnerable.prefilter_exact_candidates,
              cold.results[i].from_vulnerable.prefilter_exact_candidates);
  }
}

TEST(Engine, ConcurrentRunsOnOneEngineStayDeterministic) {
  // The scan service dispatches many requests through one resident engine;
  // concurrent run() calls share the result cache and the global pool but
  // must not share per-run state.
  const EngineUniverse& u = universe();
  EngineConfig config;
  config.jobs = 2;
  ScanEngine engine(config);
  const std::string expected =
      ScanEngine(EngineConfig{}).run(u.request()).canonical_text();
  constexpr int kRuns = 4;
  std::vector<std::string> reports(kRuns);
  std::vector<std::thread> threads;
  for (int i = 0; i < kRuns; ++i)
    threads.emplace_back(
        [&, i] { reports[i] = engine.run(u.request()).canonical_text(); });
  for (std::thread& thread : threads) thread.join();
  for (int i = 0; i < kRuns; ++i) EXPECT_EQ(reports[i], expected) << i;
}

}  // namespace
}  // namespace patchecko
