// The central compiler/VM correctness property: for every architecture and
// optimization level, executing the compiled function on the VM produces
// exactly the reference interpreter's result — same termination status, same
// return value, same final buffer contents. Parameterized over the full
// (arch, opt) build matrix, over many generated functions and inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>

#include "compiler/compiler.h"
#include "fuzz/fuzzer.h"
#include "source/generator.h"
#include "source/interp.h"
#include "source/mutate.h"
#include "vm/machine.h"

namespace patchecko {
namespace {

CallEnv env_for(Rng& rng, const std::vector<ValueType>& params) {
  FuzzConfig config;
  return random_env(rng, params, config);
}

class SemanticsEquivalence
    : public ::testing::TestWithParam<std::tuple<Arch, OptLevel>> {};

TEST_P(SemanticsEquivalence, CompiledMatchesInterpreter) {
  const auto [arch, opt] = GetParam();
  const SourceLibrary source = generate_library("equiv", 0xE011, 40);
  const LibraryBinary binary = compile_library(source, arch, opt, 5000);

  const Machine machine(binary);
  Rng rng(0xD1CE0000 + (static_cast<std::uint64_t>(arch) << 8) +
          static_cast<std::uint64_t>(opt));

  std::size_t checked = 0;
  for (std::size_t f = 0; f < source.functions.size(); ++f) {
    for (int trial = 0; trial < 4; ++trial) {
      CallEnv env = env_for(rng, source.functions[f].param_types);
      CallEnv interp_env = env;  // interpreter mutates in place

      const ExecResult expected = interpret(source, f, interp_env);
      const RunResult actual = machine.run(f, env);

      ASSERT_EQ(static_cast<int>(expected.status),
                static_cast<int>(actual.status))
          << "function " << source.functions[f].name << " trial " << trial
          << " arch " << arch_name(arch) << " opt " << opt_level_name(opt);
      if (expected.status == ExecStatus::ok) {
        // Return values: i64 results compare directly; f64 results compare
        // by bit pattern.
        std::int64_t expected_ret = expected.ret.i;
        if (expected.ret.type == ValueType::f64) {
          std::int64_t bits;
          static_assert(sizeof(bits) == sizeof(expected.ret.f));
          std::memcpy(&bits, &expected.ret.f, sizeof(bits));
          expected_ret = bits;
        }
        EXPECT_EQ(expected_ret, actual.ret)
            << "function " << source.functions[f].name << " trial " << trial;
        // Buffer effects must agree byte for byte (only the original
        // buffers; the interpreter may append malloc'd ones).
        ASSERT_GE(interp_env.buffers.size(), actual.buffers_after.size());
        for (std::size_t b = 0; b < actual.buffers_after.size(); ++b)
          EXPECT_EQ(interp_env.buffers[b], actual.buffers_after[b])
              << "buffer " << b << " of " << source.functions[f].name;
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, source.functions.size() * 4);
}

TEST_P(SemanticsEquivalence, VulnPatchPairsMatchInterpreter) {
  const auto [arch, opt] = GetParam();
  Rng rng(0xBEEF);
  SourceLibrary library = generate_library("pairlib", 0xAB, 12);
  // The replaced slot must not be callable by later dispatchers (same rule
  // the evaluation corpus applies): pick one with a ptr parameter.
  std::size_t slot = 10;
  for (std::size_t probe = 0; probe < library.functions.size(); ++probe) {
    const auto& types = library.functions[(10 + probe) % 12].param_types;
    if (std::find(types.begin(), types.end(), ValueType::ptr) !=
        types.end()) {
      slot = (10 + probe) % 12;
      break;
    }
  }
  for (int k = 0; k < static_cast<int>(PatchKind::count); ++k) {
    Rng pair_rng = rng.fork(100 + k);
    const VulnPatchPair pair = generate_vuln_patch_pair(
        static_cast<PatchKind>(k), pair_rng, static_cast<int>(slot));
    for (const SourceFunction* version : {&pair.vulnerable, &pair.patched}) {
      library.functions[slot] = *version;
      const LibraryBinary binary = compile_library(library, arch, opt, 900);
      const Machine machine(binary);
      for (int trial = 0; trial < 3; ++trial) {
        Rng env_rng = pair_rng.fork(trial);
        CallEnv env = env_for(env_rng, version->param_types);
        CallEnv interp_env = env;
        const ExecResult expected = interpret(library, slot, interp_env);
        const RunResult actual = machine.run(slot, env);
        ASSERT_EQ(static_cast<int>(expected.status),
                  static_cast<int>(actual.status))
            << patch_kind_name(static_cast<PatchKind>(k)) << " "
            << version->name;
        if (expected.status == ExecStatus::ok) {
          EXPECT_EQ(expected.ret.i, actual.ret);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchOpt, SemanticsEquivalence,
    ::testing::Combine(::testing::Values(Arch::x86, Arch::amd64, Arch::arm32,
                                         Arch::arm64),
                       ::testing::Values(OptLevel::O0, OptLevel::O1,
                                         OptLevel::O2, OptLevel::O3,
                                         OptLevel::Oz, OptLevel::Ofast)),
    [](const ::testing::TestParamInfo<std::tuple<Arch, OptLevel>>& info) {
      return std::string(arch_name(std::get<0>(info.param))) + "_" +
             std::string(opt_level_name(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace patchecko
