// Tests for the obfuscation extension: semantics preservation (differential
// execution against the unobfuscated binary) and measurable feature drift.
#include <gtest/gtest.h>

#include "binary/obfuscate.h"
#include "util/parallel.h"
#include "compiler/compiler.h"
#include "features/static_features.h"
#include "fuzz/fuzzer.h"
#include "source/generator.h"
#include "vm/machine.h"

namespace patchecko {
namespace {

struct Fixture {
  SourceLibrary source = generate_library("obf", 0x0BF, 24);
  LibraryBinary binary =
      compile_library(source, Arch::arm64, OptLevel::O2, 50);
};

TEST(Obfuscate, ZeroStrengthIsIdentity) {
  Fixture fx;
  Rng rng(1);
  const LibraryBinary out =
      obfuscate_library(fx.binary, rng, ObfuscationConfig::strength(0.0));
  ASSERT_EQ(out.functions.size(), fx.binary.functions.size());
  for (std::size_t f = 0; f < out.functions.size(); ++f)
    EXPECT_EQ(out.functions[f].code.size(),
              fx.binary.functions[f].code.size());
}

TEST(Obfuscate, GrowsCodeWithStrength) {
  Fixture fx;
  Rng rng(2);
  const LibraryBinary strong =
      obfuscate_library(fx.binary, rng, ObfuscationConfig::strength(1.0));
  std::size_t original = 0, obfuscated = 0;
  for (std::size_t f = 0; f < strong.functions.size(); ++f) {
    original += fx.binary.functions[f].code.size();
    obfuscated += strong.functions[f].code.size();
  }
  EXPECT_GT(obfuscated, original + original / 10);
}

class ObfuscationStrength : public ::testing::TestWithParam<double> {};

TEST_P(ObfuscationStrength, SemanticsPreservedUnderExecution) {
  Fixture fx;
  Rng rng(3);
  const LibraryBinary obf = obfuscate_library(
      fx.binary, rng, ObfuscationConfig::strength(GetParam()));
  const Machine plain(fx.binary);
  const Machine mutated(obf);
  Rng env_rng(4);
  FuzzConfig config;
  for (std::size_t f = 0; f < fx.binary.functions.size(); ++f) {
    for (int trial = 0; trial < 3; ++trial) {
      const CallEnv env =
          random_env(env_rng, fx.binary.functions[f].param_types, config);
      const RunResult a = plain.run(f, env);
      const RunResult b = mutated.run(f, env);
      ASSERT_EQ(static_cast<int>(a.status), static_cast<int>(b.status))
          << "fn " << f << " trial " << trial;
      if (a.status != ExecStatus::ok) continue;
      EXPECT_EQ(a.ret, b.ret) << "fn " << f;
      EXPECT_EQ(a.buffers_after, b.buffers_after) << "fn " << f;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strengths, ObfuscationStrength,
                         ::testing::Values(0.25, 0.5, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "s" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(Obfuscate, BranchTargetsRemainValid) {
  Fixture fx;
  Rng rng(5);
  const LibraryBinary obf =
      obfuscate_library(fx.binary, rng, ObfuscationConfig::strength(1.0));
  for (const FunctionBinary& fn : obf.functions) {
    const auto n = static_cast<std::int32_t>(fn.code.size());
    for (const Instruction& inst : fn.code) {
      if (is_conditional_branch(inst.op) || inst.op == Opcode::jmp) {
        EXPECT_GE(inst.target, 0);
        EXPECT_LT(inst.target, n);
      }
    }
    for (const auto& table : fn.jump_tables)
      for (std::int32_t entry : table) {
        EXPECT_GE(entry, 0);
        EXPECT_LT(entry, n);
      }
  }
}

TEST(Obfuscate, StaticFeaturesDrift) {
  Fixture fx;
  Rng rng(6);
  const LibraryBinary obf =
      obfuscate_library(fx.binary, rng, ObfuscationConfig::strength(1.0));
  int drifted = 0;
  for (std::size_t f = 0; f < obf.functions.size(); ++f) {
    const auto before = extract_static_features(fx.binary.functions[f]);
    const auto after = extract_static_features(obf.functions[f]);
    if (before != after) ++drifted;
  }
  EXPECT_GT(drifted, static_cast<int>(obf.functions.size() * 3 / 4));
}

TEST(Obfuscate, DeterministicGivenSeed) {
  Fixture fx;
  Rng a(7), b(7);
  const LibraryBinary x =
      obfuscate_library(fx.binary, a, ObfuscationConfig::strength(0.7));
  const LibraryBinary y =
      obfuscate_library(fx.binary, b, ObfuscationConfig::strength(0.7));
  EXPECT_EQ(serialize_library(x), serialize_library(y));
}

TEST(Parallel, ForCoversAllIndices) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), 8,
               [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, InlineWhenSingleThread) {
  std::vector<int> order;
  parallel_for(5, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(64, 4,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, ZeroItemsNoop) {
  parallel_for(0, 8, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace patchecko
