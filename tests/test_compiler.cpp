// Tests for the compiler: optimization-pass behaviour, per-architecture
// codegen properties, register discipline, and O-level shape differences.
#include <gtest/gtest.h>

#include <set>

#include "compiler/compiler.h"
#include "compiler/lower.h"
#include "compiler/passes.h"
#include "source/generator.h"

namespace patchecko {
namespace {

SourceLibrary tiny_library() {
  return generate_library("cc", 0xC0DE, 16);
}

// --- pass-level tests ---------------------------------------------------------

VCode lower_simple_sum() {
  // return (3 + 4) * 2;
  SourceFunction fn;
  fn.body.push_back(make_ret(make_bin(
      BinOp::mul, make_bin(BinOp::add, make_int(3), make_int(4)),
      make_int(2))));
  return lower_function(fn);
}

TEST(Passes, ConstantFoldCollapsesArithmetic) {
  VCode code = lower_simple_sum();
  pass_constant_fold(code);
  pass_dead_code(code);
  // After folding, a single ldi 14 should feed the return.
  bool found = false;
  for (const VInst& inst : code.insts)
    if (inst.op == Opcode::ldi && inst.imm == 14) found = true;
  EXPECT_TRUE(found);
  // No arithmetic remains.
  for (const VInst& inst : code.insts)
    EXPECT_FALSE(inst.op == Opcode::add || inst.op == Opcode::mul);
}

TEST(Passes, ConstantFoldNeverFoldsDivByZero) {
  SourceFunction fn;
  fn.body.push_back(
      make_ret(make_bin(BinOp::divi, make_int(1), make_int(0))));
  VCode code = lower_function(fn);
  pass_constant_fold(code);
  bool div_remains = false;
  for (const VInst& inst : code.insts)
    if (inst.op == Opcode::divi) div_remains = true;
  EXPECT_TRUE(div_remains);  // the trap must survive to runtime
}

TEST(Passes, DeadCodeRemovesUnusedPureOps) {
  SourceFunction fn;
  fn.local_types = {ValueType::i64};
  fn.body.push_back(make_assign(0, make_bin(BinOp::add, make_int(1),
                                            make_int(2))));  // dead
  fn.body.push_back(make_ret(make_int(7)));
  VCode code = lower_function(fn);
  const std::size_t before = code.insts.size();
  pass_constant_fold(code);
  pass_dead_code(code);
  EXPECT_LT(code.insts.size(), before);
}

TEST(Passes, DeadCodeKeepsTrappingLoads) {
  // A dead load must survive DCE: removing it would remove an OOB trap.
  SourceFunction fn;
  fn.param_types = {ValueType::ptr};
  fn.local_types = {ValueType::i64};
  fn.body.push_back(make_assign(
      0, make_load(make_param(0, ValueType::ptr), make_int(5), true)));
  fn.body.push_back(make_ret(make_int(0)));
  VCode code = lower_function(fn);
  pass_dead_code(code);
  bool load_remains = false;
  for (const VInst& inst : code.insts)
    if (inst.op == Opcode::loadb) load_remains = true;
  EXPECT_TRUE(load_remains);
}

TEST(Passes, BranchThreadingShortensJumpChains) {
  SourceFunction fn;
  fn.param_types = {ValueType::i64};
  std::vector<StmtPtr> then_body;
  then_body.push_back(make_ret(make_int(1)));
  fn.body.push_back(make_if(
      make_bin(BinOp::lt, make_param(0, ValueType::i64), make_int(5)),
      std::move(then_body)));
  fn.body.push_back(make_ret(make_int(2)));
  VCode code = lower_function(fn);
  const auto count_jumps = [&] {
    std::size_t jumps = 0;
    for (const VInst& inst : code.insts)
      if (inst.op == Opcode::jmp) ++jumps;
    return jumps;
  };
  const std::size_t before = count_jumps();
  pass_branch_thread(code);
  EXPECT_LE(count_jumps(), before);
}

TEST(Passes, UnrollExpandsConstantLoops) {
  SourceFunction fn;
  fn.local_types = {ValueType::i64, ValueType::i64};
  std::vector<StmtPtr> loop_body;
  loop_body.push_back(make_assign(
      1, make_bin(BinOp::add, make_local(1, ValueType::i64),
                  make_local(0, ValueType::i64))));
  fn.body.push_back(make_for(0, make_int(0), make_int(4),
                             std::move(loop_body)));
  fn.body.push_back(make_ret(make_local(1, ValueType::i64)));

  SourceFunction unrolled = fn;
  unroll_constant_loops(unrolled, 8);
  // No loop remains and the assign count quadrupled.
  bool loop_remains = false;
  for (const auto& stmt : unrolled.body)
    if (stmt->kind == Stmt::Kind::for_loop) loop_remains = true;
  EXPECT_FALSE(loop_remains);
  EXPECT_GT(unrolled.node_count(), fn.node_count());
}

TEST(Passes, UnrollSkipsLargeTripCounts) {
  SourceFunction fn;
  fn.local_types = {ValueType::i64};
  fn.body.push_back(make_for(0, make_int(0), make_int(100), {}));
  fn.body.push_back(make_ret(make_int(0)));
  unroll_constant_loops(fn, 8);
  bool loop_remains = false;
  for (const auto& stmt : fn.body)
    if (stmt->kind == Stmt::Kind::for_loop) loop_remains = true;
  EXPECT_TRUE(loop_remains);
}

// --- whole-compiler properties --------------------------------------------------

TEST(Compiler, O0SpillsLocalsToFrame) {
  const SourceLibrary lib = tiny_library();
  const FunctionBinary o0 =
      compile_function(lib, 0, Arch::amd64, OptLevel::O0);
  const FunctionBinary o2 =
      compile_function(lib, 0, Arch::amd64, OptLevel::O2);
  EXPECT_GT(o0.frame_size, 0);
  EXPECT_GT(o0.code.size(), o2.code.size());
}

TEST(Compiler, RegistersStayWithinArchBounds) {
  const SourceLibrary lib = tiny_library();
  for (Arch arch : all_arches) {
    const int regs = register_count(arch);
    for (std::size_t f = 0; f < lib.functions.size(); ++f) {
      const FunctionBinary fn =
          compile_function(lib, f, arch, OptLevel::O2);
      for (const Instruction& inst : fn.code) {
        for (std::uint8_t r : {inst.dst, inst.src1, inst.src2}) {
          if (r == reg::none || r == reg::sp || r == reg::fp) continue;
          EXPECT_LT(static_cast<int>(r), regs)
              << arch_name(arch) << " " << to_string(inst);
        }
      }
    }
  }
}

TEST(Compiler, BranchTargetsResolveInRange) {
  const SourceLibrary lib = tiny_library();
  for (OptLevel opt : all_opt_levels) {
    for (std::size_t f = 0; f < lib.functions.size(); ++f) {
      const FunctionBinary fn = compile_function(lib, f, Arch::arm64, opt);
      const auto n = static_cast<std::int32_t>(fn.code.size());
      for (const Instruction& inst : fn.code) {
        if (is_conditional_branch(inst.op) || inst.op == Opcode::jmp) {
          EXPECT_GE(inst.target, 0) << to_string(inst);
          EXPECT_LT(inst.target, n) << to_string(inst);
        }
      }
      for (const auto& table : fn.jump_tables)
        for (std::int32_t entry : table) {
          EXPECT_GE(entry, 0);
          EXPECT_LT(entry, n);
        }
    }
  }
}

TEST(Compiler, EveryFunctionEndsWithRet) {
  const SourceLibrary lib = tiny_library();
  for (Arch arch : all_arches)
    for (OptLevel opt : all_opt_levels)
      for (std::size_t f = 0; f < lib.functions.size(); ++f) {
        const FunctionBinary fn = compile_function(lib, f, arch, opt);
        ASSERT_FALSE(fn.code.empty());
        EXPECT_EQ(fn.code.back().op, Opcode::ret);
      }
}

TEST(Compiler, PrologueStartsWithFrame) {
  const SourceLibrary lib = tiny_library();
  const FunctionBinary fn =
      compile_function(lib, 3, Arch::x86, OptLevel::O1);
  ASSERT_FALSE(fn.code.empty());
  EXPECT_EQ(fn.code.front().op, Opcode::frame);
}

TEST(Compiler, OptLevelsProduceDistinctBinaries) {
  const SourceLibrary lib = tiny_library();
  std::set<std::string> shapes;
  for (OptLevel opt : all_opt_levels) {
    const FunctionBinary fn = compile_function(lib, 1, Arch::amd64, opt);
    std::string shape;
    for (const Instruction& inst : fn.code)
      shape += to_string(inst) + ";";
    shapes.insert(shape);
  }
  // At least O0 / O1-family / O3-family should differ.
  EXPECT_GE(shapes.size(), 3u);
}

TEST(Compiler, ArchesProduceDistinctBinaries) {
  const SourceLibrary lib = tiny_library();
  std::set<std::size_t> sizes;
  std::set<std::string> shapes;
  for (Arch arch : all_arches) {
    const FunctionBinary fn = compile_function(lib, 1, arch, OptLevel::O2);
    std::string shape;
    for (const Instruction& inst : fn.code) shape += to_string(inst) + ";";
    shapes.insert(shape);
  }
  EXPECT_GE(shapes.size(), 2u);
}

TEST(Compiler, X86UsesMoreInstructionsThanArm64) {
  // Two-operand fixups + fewer registers => more instructions on average.
  const SourceLibrary lib = generate_library("arch", 0xF00D, 40);
  std::size_t x86_total = 0, arm64_total = 0;
  for (std::size_t f = 0; f < lib.functions.size(); ++f) {
    x86_total +=
        compile_function(lib, f, Arch::x86, OptLevel::O2).code.size();
    arm64_total +=
        compile_function(lib, f, Arch::arm64, OptLevel::O2).code.size();
  }
  EXPECT_GT(x86_total, arm64_total);
}

TEST(Compiler, UidAssignment) {
  const SourceLibrary lib = tiny_library();
  const LibraryBinary bin =
      compile_library(lib, Arch::amd64, OptLevel::O1, 5000);
  for (std::size_t f = 0; f < bin.functions.size(); ++f) {
    EXPECT_EQ(bin.functions[f].source_uid, 5000 + f);
    EXPECT_EQ(bin.functions[f].id, f);
  }
}

TEST(Compiler, DeterministicOutput) {
  const SourceLibrary lib = tiny_library();
  for (OptLevel opt : {OptLevel::O2, OptLevel::Ofast}) {
    const FunctionBinary a = compile_function(lib, 2, Arch::amd64, opt);
    const FunctionBinary b = compile_function(lib, 2, Arch::amd64, opt);
    ASSERT_EQ(a.code.size(), b.code.size());
    for (std::size_t i = 0; i < a.code.size(); ++i)
      EXPECT_EQ(a.code[i], b.code[i]);
  }
}

}  // namespace
}  // namespace patchecko
