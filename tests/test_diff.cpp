// Tests for the differential engine: signature extraction, distance, and
// the patch-presence decision logic including the deliberate tie->patched
// default that reproduces the paper's CVE-2018-9470 miss.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "diff/differential.h"
#include "source/generator.h"
#include "source/mutate.h"

namespace patchecko {
namespace {

FunctionBinary compile_one(const SourceFunction& fn) {
  SourceLibrary lib;
  lib.name = "d";
  lib.strings.assign(12, "s");
  lib.functions.push_back(fn);
  return compile_function(lib, 0, Arch::amd64, OptLevel::O2);
}

TEST(DiffSignature, CountsLibcallsByKind) {
  Rng rng(1);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::remove_memmove_loop, rng, 0);
  const DiffSignature vuln = make_signature(compile_one(pair.vulnerable));
  const DiffSignature patched = make_signature(compile_one(pair.patched));
  EXPECT_EQ(vuln.libcall_counts[static_cast<std::size_t>(LibFn::memmove)], 1);
  EXPECT_EQ(
      patched.libcall_counts[static_cast<std::size_t>(LibFn::memmove)], 0);
}

TEST(DiffSignature, TopologyFieldsPopulated) {
  Rng rng(2);
  const SourceFunction fn = generate_function(rng, Archetype::validator, 0);
  const DiffSignature sig = make_signature(compile_one(fn));
  EXPECT_GT(sig.basic_blocks, 1);
  EXPECT_GT(sig.conditional_branches, 0);
  EXPECT_EQ(sig.params, 3);
}

TEST(DiffSignature, DistanceZeroOnSelf) {
  Rng rng(3);
  const SourceFunction fn = generate_function(rng, Archetype::checksum, 0);
  const DiffSignature sig = make_signature(compile_one(fn));
  EXPECT_DOUBLE_EQ(signature_distance(sig, sig), 0.0);
}

TEST(DiffSignature, DistancePositiveAcrossPatch) {
  Rng rng(4);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::add_bounds_guard, rng, 0);
  const DiffSignature v = make_signature(compile_one(pair.vulnerable));
  const DiffSignature p = make_signature(compile_one(pair.patched));
  EXPECT_GT(signature_distance(v, p), 0.0);
}

TEST(DiffSignature, ConstantTweakInvisible) {
  Rng rng(5);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::constant_tweak, rng, 0);
  const DiffSignature v = make_signature(compile_one(pair.vulnerable));
  const DiffSignature p = make_signature(compile_one(pair.patched));
  EXPECT_DOUBLE_EQ(signature_distance(v, p), 0.0);
}

// --- decision logic -------------------------------------------------------------

struct Triple {
  StaticFeatureVector vuln{}, patched{}, target{};
  DiffSignature sig_vuln, sig_patched, sig_target;
};

Triple triple_for(PatchKind kind, bool target_is_patched,
                  std::uint64_t seed) {
  Rng rng(seed);
  const VulnPatchPair pair = generate_vuln_patch_pair(kind, rng, 0);
  Triple t;
  const FunctionBinary bv = compile_one(pair.vulnerable);
  const FunctionBinary bp = compile_one(pair.patched);
  t.vuln = extract_static_features(bv);
  t.patched = extract_static_features(bp);
  t.sig_vuln = make_signature(bv);
  t.sig_patched = make_signature(bp);
  t.target = target_is_patched ? t.patched : t.vuln;
  t.sig_target = target_is_patched ? t.sig_patched : t.sig_vuln;
  return t;
}

TEST(DetectPatch, VulnerableTargetDetected) {
  const Triple t =
      triple_for(PatchKind::add_bounds_guard, /*target_is_patched=*/false, 6);
  const PatchDecision d =
      detect_patch(t.vuln, t.patched, t.target, t.sig_vuln, t.sig_patched,
                   t.sig_target, /*dyn_v=*/0.0, /*dyn_p=*/12.0);
  EXPECT_EQ(d.verdict, PatchVerdict::vulnerable);
  EXPECT_GT(d.votes_vulnerable, d.votes_patched);
}

TEST(DetectPatch, PatchedTargetDetected) {
  const Triple t =
      triple_for(PatchKind::add_bounds_guard, /*target_is_patched=*/true, 7);
  const PatchDecision d =
      detect_patch(t.vuln, t.patched, t.target, t.sig_vuln, t.sig_patched,
                   t.sig_target, /*dyn_v=*/12.0, /*dyn_p=*/0.0);
  EXPECT_EQ(d.verdict, PatchVerdict::patched);
}

TEST(DetectPatch, MemmoveMarkerDrivesEvidence) {
  const Triple t = triple_for(PatchKind::remove_memmove_loop,
                              /*target_is_patched=*/false, 8);
  const PatchDecision d =
      detect_patch(t.vuln, t.patched, t.target, t.sig_vuln, t.sig_patched,
                   t.sig_target, 0.0, 50.0);
  EXPECT_EQ(d.verdict, PatchVerdict::vulnerable);
  bool memmove_mentioned = false;
  for (const std::string& note : d.evidence)
    if (note.find("memmove") != std::string::npos) memmove_mentioned = true;
  EXPECT_TRUE(memmove_mentioned);
}

TEST(DetectPatch, TieDefaultsToPatched) {
  // The CVE-2018-9470 failure mode: every metric identical.
  const Triple t =
      triple_for(PatchKind::constant_tweak, /*target_is_patched=*/false, 9);
  const PatchDecision d =
      detect_patch(t.vuln, t.patched, t.target, t.sig_vuln, t.sig_patched,
                   t.sig_target, /*dyn_v=*/3.0, /*dyn_p=*/3.0);
  EXPECT_EQ(d.verdict, PatchVerdict::patched);  // the engineered miss
  EXPECT_DOUBLE_EQ(d.votes_vulnerable, d.votes_patched);
}

TEST(DetectPatch, DynamicDistanceAloneCanDecide) {
  // Identical statics, but the trace distance discriminates.
  StaticFeatureVector same{};
  same.fill(4.0);
  DiffSignature sig;
  const PatchDecision d = detect_patch(same, same, same, sig, sig, sig,
                                       /*dyn_v=*/1.0, /*dyn_p=*/9.0);
  EXPECT_EQ(d.verdict, PatchVerdict::vulnerable);
}

TEST(DetectPatch, InfiniteDynamicDistancesIgnored) {
  StaticFeatureVector same{};
  DiffSignature sig;
  const double inf = std::numeric_limits<double>::infinity();
  const PatchDecision d =
      detect_patch(same, same, same, sig, sig, sig, inf, inf);
  // No usable evidence at all -> tie -> patched default.
  EXPECT_EQ(d.verdict, PatchVerdict::patched);
}

TEST(DetectPatch, UnmovedMetricsCastNoVotes) {
  StaticFeatureVector v{}, p{}, t{};
  v.fill(2.0);
  p = v;
  p[5] = 9.0;  // patch moved exactly one feature
  t = v;
  DiffSignature sig;
  const PatchDecision d = detect_patch(v, p, t, sig, sig, sig, 5.0, 5.0);
  EXPECT_DOUBLE_EQ(d.votes_vulnerable, 1.0);
  EXPECT_DOUBLE_EQ(d.votes_patched, 0.0);
}

}  // namespace
}  // namespace patchecko
