// Tests for the patch mutators: every kind applies to its guaranteed base,
// the structural edit is what it claims to be, and the behavioural contract
// (small-edit vs structural patch) holds under interpretation.
#include <gtest/gtest.h>

#include <functional>

#include "fuzz/fuzzer.h"
#include "source/generator.h"
#include "source/interp.h"
#include "source/mutate.h"

namespace patchecko {
namespace {

int count_kind(const std::vector<StmtPtr>& body, Stmt::Kind kind);

int count_kind_stmt(const Stmt& stmt, Stmt::Kind kind) {
  int total = stmt.kind == kind ? 1 : 0;
  total += count_kind(stmt.then_body, kind);
  total += count_kind(stmt.else_body, kind);
  for (const auto& c : stmt.cases) total += count_kind(c, kind);
  return total;
}

int count_kind(const std::vector<StmtPtr>& body, Stmt::Kind kind) {
  int total = 0;
  for (const auto& stmt : body) total += count_kind_stmt(*stmt, kind);
  return total;
}

int count_libcall(const std::vector<StmtPtr>& body, LibFn fn);

int count_libcall_expr(const Expr& expr, LibFn fn) {
  int total =
      (expr.kind == Expr::Kind::libcall && expr.lib_fn == fn) ? 1 : 0;
  for (const auto& arg : expr.args) total += count_libcall_expr(*arg, fn);
  return total;
}

int count_libcall(const std::vector<StmtPtr>& body, LibFn fn) {
  int total = 0;
  for (const auto& stmt : body) {
    for (const Expr* e :
         {stmt->expr.get(), stmt->base.get(), stmt->index.get(),
          stmt->value.get(), stmt->init.get(), stmt->bound.get()})
      if (e != nullptr) total += count_libcall_expr(*e, fn);
    total += count_libcall(stmt->then_body, fn);
    total += count_libcall(stmt->else_body, fn);
    for (const auto& c : stmt->cases) total += count_libcall(c, fn);
  }
  return total;
}

class PatchKinds : public ::testing::TestWithParam<PatchKind> {};

TEST_P(PatchKinds, GeneratesApplicablePair) {
  Rng rng(0xA11CE);
  const VulnPatchPair pair = generate_vuln_patch_pair(GetParam(), rng, 12);
  EXPECT_EQ(pair.kind, GetParam());
  EXPECT_FALSE(pair.vulnerable.body.empty());
  EXPECT_FALSE(pair.patched.body.empty());
  EXPECT_EQ(pair.vulnerable.param_types, pair.patched.param_types);
}

TEST_P(PatchKinds, PatchedVersionInterpretsCleanly) {
  Rng rng(0xB0B);
  const VulnPatchPair pair = generate_vuln_patch_pair(GetParam(), rng, 12);
  SourceLibrary lib;
  lib.name = "p";
  lib.strings.assign(12, "str");
  lib.functions.push_back(pair.patched);
  Rng env_rng(4);
  FuzzConfig fuzz;
  int ok_runs = 0;
  for (int trial = 0; trial < 8; ++trial) {
    CallEnv env = random_env(env_rng, pair.patched.param_types, fuzz);
    if (interpret(lib, 0, env).status == ExecStatus::ok) ++ok_runs;
  }
  EXPECT_GT(ok_runs, 0);  // the patched function is runnable
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PatchKinds,
    ::testing::Values(PatchKind::add_bounds_guard,
                      PatchKind::remove_memmove_loop, PatchKind::off_by_one,
                      PatchKind::constant_tweak,
                      PatchKind::add_skip_condition),
    [](const ::testing::TestParamInfo<PatchKind>& info) {
      return std::string(patch_kind_name(info.param));
    });

TEST(Mutate, AddBoundsGuardPrependsCheck) {
  Rng rng(1);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::add_bounds_guard, rng, 10);
  EXPECT_EQ(pair.patched.body.size(), pair.vulnerable.body.size() + 1);
  EXPECT_EQ(pair.patched.body.front()->kind, Stmt::Kind::if_else);
}

TEST(Mutate, RemoveMemmoveLoopDropsTheCall) {
  Rng rng(2);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::remove_memmove_loop, rng, 10);
  EXPECT_EQ(count_libcall(pair.vulnerable.body, LibFn::memmove), 1);
  EXPECT_EQ(count_libcall(pair.patched.body, LibFn::memmove), 0);
}

TEST(Mutate, RemoveMemmoveBehaviourallyEquivalentOnBenignData) {
  // On inputs with no adjacent marker pair, the compaction loop copies
  // everything: both versions return the same size and leave the buffer
  // with identical semantics per Figure 6.
  Rng rng(3);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::remove_memmove_loop, rng, 10);
  SourceLibrary lib;
  lib.name = "mm";
  lib.strings.assign(12, "s");
  lib.functions.push_back(pair.vulnerable);
  lib.functions.push_back(pair.patched);
  CallEnv env;
  env.buffers.push_back({5, 9, 13, 21, 34, 55, 89, 144});
  env.args.push_back(Value::from_ptr(0));
  env.args.push_back(Value::from_int(8));
  CallEnv env2 = env;
  const ExecResult rv = interpret(lib, 0, env);
  const ExecResult rp = interpret(lib, 1, env2);
  ASSERT_EQ(rv.status, ExecStatus::ok);
  ASSERT_EQ(rp.status, ExecStatus::ok);
  EXPECT_EQ(rv.ret.i, rp.ret.i);
}

TEST(Mutate, OffByOneTightensBound) {
  Rng rng(4);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::off_by_one, rng, 10);
  // The patched version performs strictly fewer loop iterations on at
  // least one input with a non-trivial loop range.
  SourceLibrary lib;
  lib.name = "ob";
  lib.strings.assign(12, "s");
  lib.functions.push_back(pair.vulnerable);
  lib.functions.push_back(pair.patched);
  Rng env_rng(5);
  FuzzConfig fuzz;
  bool saw_fewer_steps = false;
  for (int trial = 0; trial < 16 && !saw_fewer_steps; ++trial) {
    CallEnv env = random_env(env_rng, pair.vulnerable.param_types, fuzz);
    CallEnv env2 = env;
    const ExecResult rv = interpret(lib, 0, env);
    const ExecResult rp = interpret(lib, 1, env2);
    if (rv.status == ExecStatus::ok && rp.status == ExecStatus::ok &&
        rp.steps < rv.steps)
      saw_fewer_steps = true;
  }
  EXPECT_TRUE(saw_fewer_steps);
}

TEST(Mutate, ConstantTweakChangesExactlyOneLeaf) {
  Rng rng(6);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::constant_tweak, rng, 10);
  // Same structure, same statement kinds, same node counts.
  EXPECT_EQ(pair.vulnerable.node_count(), pair.patched.node_count());
  EXPECT_EQ(count_kind(pair.vulnerable.body, Stmt::Kind::if_else),
            count_kind(pair.patched.body, Stmt::Kind::if_else));
  // ...but the behaviour differs on at least one input (it is a real edit).
  SourceLibrary lib;
  lib.name = "ct";
  lib.strings.assign(12, "s");
  lib.functions.push_back(pair.vulnerable);
  lib.functions.push_back(pair.patched);
  Rng env_rng(7);
  FuzzConfig fuzz;
  bool diverged = false;
  for (int trial = 0; trial < 16 && !diverged; ++trial) {
    CallEnv env = random_env(env_rng, pair.vulnerable.param_types, fuzz);
    CallEnv env2 = env;
    const ExecResult rv = interpret(lib, 0, env);
    const ExecResult rp = interpret(lib, 1, env2);
    if (rv.status == ExecStatus::ok && rp.status == ExecStatus::ok &&
        rv.ret.i != rp.ret.i)
      diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Mutate, ConstantTweakTraceInvisible) {
  // The defining property of the CVE-2018-9470 shape: identical step counts
  // (the execution trace does not change, only computed values do).
  Rng rng(8);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::constant_tweak, rng, 10);
  SourceLibrary lib;
  lib.name = "cti";
  lib.strings.assign(12, "s");
  lib.functions.push_back(pair.vulnerable);
  lib.functions.push_back(pair.patched);
  Rng env_rng(9);
  FuzzConfig fuzz;
  for (int trial = 0; trial < 8; ++trial) {
    CallEnv env = random_env(env_rng, pair.vulnerable.param_types, fuzz);
    CallEnv env2 = env;
    const ExecResult rv = interpret(lib, 0, env);
    const ExecResult rp = interpret(lib, 1, env2);
    if (rv.status != ExecStatus::ok || rp.status != ExecStatus::ok) continue;
    EXPECT_EQ(rv.steps, rp.steps) << "trial " << trial;
  }
}

TEST(Mutate, AddSkipConditionWrapsLoopInGuard) {
  Rng rng(10);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::add_skip_condition, rng, 10);
  EXPECT_EQ(count_kind(pair.patched.body, Stmt::Kind::if_else),
            count_kind(pair.vulnerable.body, Stmt::Kind::if_else) + 1);
  EXPECT_EQ(count_kind(pair.patched.body, Stmt::Kind::for_loop),
            count_kind(pair.vulnerable.body, Stmt::Kind::for_loop));
}

TEST(Mutate, ApplyPatchReturnsNulloptWhenInapplicable) {
  // A loop-free function cannot take off_by_one.
  SourceFunction fn;
  fn.param_types = {ValueType::i64};
  fn.body.push_back(make_ret(make_int(1)));
  Rng rng(11);
  EXPECT_FALSE(apply_patch(fn, PatchKind::off_by_one, rng).has_value());
  EXPECT_FALSE(
      apply_patch(fn, PatchKind::remove_memmove_loop, rng).has_value());
}

TEST(Mutate, ApplyPatchGuardRequiresIntParam) {
  SourceFunction fn;
  fn.param_types = {ValueType::ptr};  // no i64 parameter
  fn.body.push_back(make_ret(make_int(1)));
  Rng rng(12);
  EXPECT_FALSE(
      apply_patch(fn, PatchKind::add_bounds_guard, rng).has_value());
}

TEST(Mutate, PairNamesTagged) {
  Rng rng(13);
  const VulnPatchPair pair =
      generate_vuln_patch_pair(PatchKind::add_bounds_guard, rng, 10);
  EXPECT_NE(pair.vulnerable.name.find("_vuln"), std::string::npos);
  EXPECT_NE(pair.patched.name.find("_patched"), std::string::npos);
}

}  // namespace
}  // namespace patchecko
