// Unit tests for the ISA: opcode classification consistency, per-arch
// encoding sizes, register files, and the shared scalar runtime semantics.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "isa/isa.h"
#include "isa/runtime_scalar.h"

namespace patchecko {
namespace {

std::vector<Opcode> all_opcodes() {
  std::vector<Opcode> out;
  for (int op = 0; op <= static_cast<int>(Opcode::nop); ++op)
    out.push_back(static_cast<Opcode>(op));
  return out;
}

TEST(Isa, ArchNamesDistinct) {
  std::set<std::string_view> names;
  for (Arch arch : all_arches) names.insert(arch_name(arch));
  EXPECT_EQ(names.size(), 4u);
}

TEST(Isa, OptLevelNamesDistinct) {
  std::set<std::string_view> names;
  for (OptLevel opt : all_opt_levels) names.insert(opt_level_name(opt));
  EXPECT_EQ(names.size(), 6u);
}

TEST(Isa, RegisterCountsLeaveScratchRoom) {
  for (Arch arch : all_arches) {
    EXPECT_GE(register_count(arch), 8) << arch_name(arch);
    EXPECT_LT(register_count(arch), static_cast<int>(reg::none));
  }
}

TEST(Isa, OpcodeNamesDistinct) {
  std::set<std::string_view> names;
  for (Opcode op : all_opcodes()) names.insert(opcode_name(op));
  EXPECT_EQ(names.size(), all_opcodes().size());
}

TEST(Isa, ClassificationsAreDisjointWhereExpected) {
  for (Opcode op : all_opcodes()) {
    // An opcode cannot be both arithmetic and a branch, etc.
    EXPECT_FALSE(is_arith(op) && is_branch(op)) << opcode_name(op);
    EXPECT_FALSE(is_call(op) && is_branch(op)) << opcode_name(op);
    EXPECT_FALSE(is_int_arith(op) && is_fp_arith(op)) << opcode_name(op);
  }
}

TEST(Isa, ArithUnionMatches) {
  for (Opcode op : all_opcodes())
    EXPECT_EQ(is_arith(op), is_int_arith(op) || is_fp_arith(op));
}

TEST(Isa, TerminatorsDoNotFallThrough) {
  EXPECT_TRUE(is_terminator(Opcode::ret));
  EXPECT_TRUE(is_terminator(Opcode::jmp));
  EXPECT_TRUE(is_terminator(Opcode::jmpi));
  EXPECT_FALSE(is_terminator(Opcode::beq));
  EXPECT_FALSE(is_terminator(Opcode::call));
}

TEST(Isa, LoadStoreIncludeStackOps) {
  EXPECT_TRUE(is_load(Opcode::pop));
  EXPECT_TRUE(is_store(Opcode::push));
  EXPECT_TRUE(is_load(Opcode::loadb));
  EXPECT_TRUE(is_store(Opcode::storeb));
}

TEST(Isa, EncodedSizeFixedWidthOnArm32Small) {
  Instruction inst;
  inst.op = Opcode::add;
  EXPECT_EQ(encoded_size(inst, Arch::arm32), 4);
}

TEST(Isa, EncodedSizeWideImmediatesCostMore) {
  Instruction small;
  small.op = Opcode::ldi;
  small.imm = 100;
  Instruction wide = small;
  wide.imm = 1LL << 40;
  for (Arch arch : all_arches)
    EXPECT_GT(encoded_size(wide, arch), encoded_size(small, arch))
        << arch_name(arch);
}

TEST(Isa, Amd64PrefixCostsOverX86) {
  Instruction inst;
  inst.op = Opcode::add;
  EXPECT_EQ(encoded_size(inst, Arch::amd64), encoded_size(inst, Arch::x86) + 1);
}

TEST(Isa, BranchEncodingCarriesDisplacement) {
  Instruction branch;
  branch.op = Opcode::beq;
  branch.target = 5;
  Instruction plain;
  plain.op = Opcode::mov;
  EXPECT_GT(encoded_size(branch, Arch::x86), encoded_size(plain, Arch::x86));
}

TEST(Isa, LibFnNamesDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < libfn_count; ++i)
    names.insert(libfn_name(static_cast<LibFn>(i)));
  EXPECT_EQ(names.size(), libfn_count);
}

TEST(Isa, ToStringMentionsOpcodeAndOperands) {
  Instruction inst;
  inst.op = Opcode::libcall;
  inst.imm = static_cast<std::int64_t>(LibFn::memmove);
  EXPECT_NE(to_string(inst).find("libcall"), std::string::npos);
  Instruction load;
  load.op = Opcode::load;
  load.dst = 2;
  load.src1 = reg::fp;
  load.imm = 16;
  const std::string text = to_string(load);
  EXPECT_NE(text.find("r2"), std::string::npos);
  EXPECT_NE(text.find("fp"), std::string::npos);
  EXPECT_NE(text.find("16"), std::string::npos);
}

// --- shared scalar runtime ----------------------------------------------------

TEST(RuntimeScalar, Abs64HandlesMin) {
  EXPECT_EQ(rt::abs64(-5), 5);
  EXPECT_EQ(rt::abs64(5), 5);
  // INT64_MIN wraps to itself under two's complement negation.
  EXPECT_EQ(rt::abs64(std::numeric_limits<std::int64_t>::min()),
            std::numeric_limits<std::int64_t>::min());
}

TEST(RuntimeScalar, MinMaxClamp) {
  EXPECT_EQ(rt::imin(2, 3), 2);
  EXPECT_EQ(rt::imax(2, 3), 3);
  EXPECT_EQ(rt::clamp64(10, 0, 5), 5);
  EXPECT_EQ(rt::clamp64(-10, 0, 5), 0);
  EXPECT_EQ(rt::clamp64(3, 0, 5), 3);
}

TEST(RuntimeScalar, FsqrtDomainSafe) {
  EXPECT_DOUBLE_EQ(rt::fsqrt(-4.0), 0.0);
  EXPECT_DOUBLE_EQ(rt::fsqrt(9.0), 3.0);
}

TEST(RuntimeScalar, FpowFiniteCollapse) {
  EXPECT_DOUBLE_EQ(rt::fpow(2.0, 3.0), 8.0);
  EXPECT_DOUBLE_EQ(rt::fpow(1e308, 5.0), 0.0);  // overflow -> 0
}

TEST(RuntimeScalar, ByteSwapInvolution) {
  const std::uint64_t v = 0x0123456789abcdefULL;
  EXPECT_EQ(rt::byte_swap(rt::byte_swap(v)), v);
  EXPECT_EQ(rt::byte_swap(0x00000000000000ffULL), 0xff00000000000000ULL);
}

TEST(RuntimeScalar, CheckedAddSaturates) {
  const auto max = std::numeric_limits<std::int64_t>::max();
  const auto min = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(rt::checked_add(max, 1), max);
  EXPECT_EQ(rt::checked_add(min, -1), min);
  EXPECT_EQ(rt::checked_add(2, 3), 5);
}

TEST(RuntimeScalar, WrapArithmeticTwosComplement) {
  const auto max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(rt::wrap_add(max, 1), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(rt::wrap_sub(std::numeric_limits<std::int64_t>::min(), 1), max);
  EXPECT_EQ(rt::wrap_mul(1LL << 62, 4), 0);
}

TEST(RuntimeScalar, ShiftsMaskCount) {
  EXPECT_EQ(rt::wrap_shl(1, 64), 1);   // count & 63 == 0
  EXPECT_EQ(rt::wrap_shl(1, 65), 2);   // count & 63 == 1
  EXPECT_EQ(rt::wrap_shr(-1, 1),
            static_cast<std::int64_t>(0x7fffffffffffffffULL));
}

TEST(RuntimeScalar, Crc32KnownVector) {
  // CRC-32("a") == 0xE8B7BE43 with the IEEE polynomial.
  std::uint32_t crc = 0xffffffffu;
  crc = rt::crc32_step(crc, 'a');
  EXPECT_EQ(crc ^ 0xffffffffu, 0xE8B7BE43u);
}

}  // namespace
}  // namespace patchecko
