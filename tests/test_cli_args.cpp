// Tests for CLI option parsing (src/util/cli_args): token syntax, strict
// numeric values, unknown-option rejection, and --metrics validation. The
// point of the extraction is that bad input fails up front — before any
// corpus or model work — so these tests pin the exact failure behavior.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/cli_args.h"

namespace patchecko {
namespace {

using cli::Args;
using cli::MetricsSpec;
using cli::UsageError;
using cli::metrics_spec_from;
using cli::parse_args;
using cli::require_known_options;

TEST(CliArgs, ParsesCommandAndOptionPairs) {
  const Args args = parse_args(
      {"batch-scan", "--model", "m.bin", "--jobs", "8", "--verbose"});
  EXPECT_EQ(args.command, "batch-scan");
  EXPECT_EQ(args.get("model", ""), "m.bin");
  EXPECT_EQ(args.get_count("jobs", 1), 8);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", "x"), "");  // value-less option stores ""
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
}

TEST(CliArgs, SplitsKeyEqualsValueTokens) {
  const Args args =
      parse_args({"scan", "--metrics=out.json", "--scale=0.25", "--jobs=4"});
  EXPECT_EQ(args.get("metrics", ""), "out.json");
  EXPECT_EQ(args.get_double("scale", 1.0), 0.25);
  EXPECT_EQ(args.get_long("jobs", 1), 4);
  // `--key=` keeps an explicit empty value.
  EXPECT_EQ(parse_args({"scan", "--metrics="}).get("metrics", "x"), "");
}

TEST(CliArgs, OptionFollowedByOptionIsValueLess) {
  const Args args = parse_args({"scan", "--metrics", "--jobs", "2"});
  EXPECT_TRUE(args.has("metrics"));
  EXPECT_EQ(args.get("metrics", "x"), "");
  EXPECT_EQ(args.get_long("jobs", 1), 2);
}

TEST(CliArgs, RejectsMalformedTokens) {
  EXPECT_THROW(parse_args({"scan", "stray"}), UsageError);
  EXPECT_THROW(parse_args({"scan", "--"}), UsageError);
  EXPECT_THROW(parse_args({"scan", "--=value"}), UsageError);
}

TEST(CliArgs, NumericGettersAreStrict) {
  const Args args = parse_args(
      {"scan", "--jobs", "12x", "--scale", "abc", "--count", "0"});
  EXPECT_THROW(args.get_long("jobs", 1), UsageError);
  EXPECT_THROW(args.get_double("scale", 1.0), UsageError);
  EXPECT_THROW(args.get_count("count", 1), UsageError);  // must be >= 1
  EXPECT_THROW(parse_args({"s", "--jobs", "99999999999999999999"})
                   .get_long("jobs", 1),
               UsageError);  // overflow
}

TEST(CliArgs, RequireKnownOptionsRejectsTypos) {
  const Args ok = parse_args({"scan", "--jobs", "2", "--metrics"});
  EXPECT_NO_THROW(require_known_options(ok, {"jobs", "metrics"}));
  const Args typo = parse_args({"scan", "--jbos", "2"});
  EXPECT_THROW(require_known_options(typo, {"jobs", "metrics"}), UsageError);
}

TEST(CliArgs, MetricsSpecParsesAllForms) {
  const MetricsSpec absent = metrics_spec_from(parse_args({"scan"}));
  EXPECT_FALSE(absent.enabled);

  const MetricsSpec bare =
      metrics_spec_from(parse_args({"scan", "--metrics"}));
  EXPECT_TRUE(bare.enabled);
  EXPECT_TRUE(bare.file.empty());  // stdout

  const MetricsSpec to_file =
      metrics_spec_from(parse_args({"scan", "--metrics=out.json"}));
  EXPECT_TRUE(to_file.enabled);
  EXPECT_EQ(to_file.file, "out.json");

  const MetricsSpec spaced =
      metrics_spec_from(parse_args({"scan", "--metrics", "out.json"}));
  EXPECT_TRUE(spaced.enabled);
  EXPECT_EQ(spaced.file, "out.json");
}

TEST(CliArgs, MetricsSpecRejectsFlagLikeValues) {
  // "--metrics -out.json" is almost certainly a typo'd flag, not a path;
  // it must fail during upfront validation, not after the scan.
  EXPECT_THROW(metrics_spec_from(parse_args({"scan", "--metrics=-bogus"})),
               UsageError);
}

TEST(CliArgs, OutputSpecGeneralizesToOtherKeys) {
  const cli::OutputSpec absent =
      cli::output_spec_from(parse_args({"scan"}), "events");
  EXPECT_FALSE(absent.enabled);

  const cli::OutputSpec bare =
      cli::output_spec_from(parse_args({"scan", "--events"}), "events");
  EXPECT_TRUE(bare.enabled);
  EXPECT_TRUE(bare.file.empty());  // stdout

  const cli::OutputSpec to_file = cli::output_spec_from(
      parse_args({"scan", "--events=prov.jsonl"}), "events");
  EXPECT_EQ(to_file.file, "prov.jsonl");

  EXPECT_THROW(cli::output_spec_from(
                   parse_args({"scan", "--events=-bogus"}), "events"),
               UsageError);
}

TEST(CliArgs, HeartbeatSpecParsesEveryForm) {
  const cli::HeartbeatSpec absent =
      cli::heartbeat_spec_from(parse_args({"batch-scan"}));
  EXPECT_FALSE(absent.enabled);

  const cli::HeartbeatSpec bare =
      cli::heartbeat_spec_from(parse_args({"batch-scan", "--heartbeat"}));
  EXPECT_TRUE(bare.enabled);
  EXPECT_TRUE(bare.file.empty());  // stderr
  EXPECT_DOUBLE_EQ(bare.interval_seconds, 1.0);

  const cli::HeartbeatSpec to_file = cli::heartbeat_spec_from(
      parse_args({"batch-scan", "--heartbeat=hb.jsonl"}));
  EXPECT_EQ(to_file.file, "hb.jsonl");
  EXPECT_DOUBLE_EQ(to_file.interval_seconds, 1.0);

  const cli::HeartbeatSpec with_interval = cli::heartbeat_spec_from(
      parse_args({"batch-scan", "--heartbeat=hb.jsonl:250"}));
  EXPECT_EQ(with_interval.file, "hb.jsonl");
  EXPECT_DOUBLE_EQ(with_interval.interval_seconds, 0.25);

  // Interval only, stderr output; the split is at the LAST colon so paths
  // with colons in them still work.
  const cli::HeartbeatSpec interval_only = cli::heartbeat_spec_from(
      parse_args({"batch-scan", "--heartbeat=:500"}));
  EXPECT_TRUE(interval_only.file.empty());
  EXPECT_DOUBLE_EQ(interval_only.interval_seconds, 0.5);

  const cli::HeartbeatSpec colon_path = cli::heartbeat_spec_from(
      parse_args({"batch-scan", "--heartbeat=dir:1/hb.jsonl:100"}));
  EXPECT_EQ(colon_path.file, "dir:1/hb.jsonl");
  EXPECT_DOUBLE_EQ(colon_path.interval_seconds, 0.1);
}

TEST(CliArgs, HeartbeatSpecRejectsBadIntervals) {
  for (const char* bad :
       {"--heartbeat=hb.jsonl:0", "--heartbeat=hb.jsonl:-5",
        "--heartbeat=hb.jsonl:abc", "--heartbeat=hb.jsonl:12x",
        "--heartbeat=:0", "--heartbeat=-hb.jsonl"}) {
    EXPECT_THROW(cli::heartbeat_spec_from(parse_args({"batch-scan", bad})),
                 UsageError)
        << bad;
  }
}

TEST(CliArgs, ProfileSpecParsesEveryForm) {
  const cli::ProfileSpec absent = cli::profile_spec_from(parse_args({"scan"}));
  EXPECT_FALSE(absent.enabled);

  // Bare flag: top table only, default prime cadence, no folded file.
  const cli::ProfileSpec bare =
      cli::profile_spec_from(parse_args({"scan", "--profile"}));
  EXPECT_TRUE(bare.enabled);
  EXPECT_TRUE(bare.file.empty());
  EXPECT_DOUBLE_EQ(bare.hz, 97.0);

  const cli::ProfileSpec to_file =
      cli::profile_spec_from(parse_args({"scan", "--profile=prof.folded"}));
  EXPECT_EQ(to_file.file, "prof.folded");
  EXPECT_DOUBLE_EQ(to_file.hz, 97.0);

  const cli::ProfileSpec with_hz = cli::profile_spec_from(
      parse_args({"scan", "--profile=prof.folded:250"}));
  EXPECT_EQ(with_hz.file, "prof.folded");
  EXPECT_DOUBLE_EQ(with_hz.hz, 250.0);

  // Rate only, and the last-colon split keeps colon-bearing paths working.
  const cli::ProfileSpec hz_only =
      cli::profile_spec_from(parse_args({"scan", "--profile=:500"}));
  EXPECT_TRUE(hz_only.file.empty());
  EXPECT_DOUBLE_EQ(hz_only.hz, 500.0);

  const cli::ProfileSpec colon_path = cli::profile_spec_from(
      parse_args({"scan", "--profile=dir:1/prof.folded:100"}));
  EXPECT_EQ(colon_path.file, "dir:1/prof.folded");
  EXPECT_DOUBLE_EQ(colon_path.hz, 100.0);
}

TEST(CliArgs, ProfileSpecRejectsBadRatesAndFiles) {
  for (const char* bad :
       {"--profile=p.folded:0", "--profile=p.folded:-5",
        "--profile=p.folded:abc", "--profile=p.folded:97.5",
        "--profile=p.folded:10001", "--profile=:0", "--profile=-p.folded"}) {
    EXPECT_THROW(cli::profile_spec_from(parse_args({"scan", bad})), UsageError)
        << bad;
  }
}

TEST(CliArgs, CheckedHzEnforcesSharedBounds) {
  EXPECT_EQ(cli::checked_hz("--hz", "1"), 1);
  EXPECT_EQ(cli::checked_hz("--hz", "10000"), 10000);
  for (const char* bad : {"0", "-1", "10001", "2.5", "fast", ""}) {
    EXPECT_THROW(cli::checked_hz("--hz", bad), UsageError) << bad;
  }
}

TEST(CliArgs, OutputSpecValueRequiredRejectsBareFlag) {
  // --trace-out has no stdout mode (a Chrome trace on stdout would tangle
  // with the report), so the bare flag is a usage error up front.
  EXPECT_THROW(cli::output_spec_from(parse_args({"scan", "--trace-out"}),
                                     "trace-out", /*value_required=*/true),
               UsageError);
  EXPECT_THROW(cli::output_spec_from(
                   parse_args({"scan", "--trace-out=-x.json"}), "trace-out",
                   /*value_required=*/true),
               UsageError);
  const cli::OutputSpec ok = cli::output_spec_from(
      parse_args({"scan", "--trace-out=trace.json"}), "trace-out",
      /*value_required=*/true);
  EXPECT_TRUE(ok.enabled);
  EXPECT_EQ(ok.file, "trace.json");
}

TEST(CliArgs, IndexedOutputFileInsertsBeforeExtension) {
  // The scan service derives per-request telemetry paths from the same
  // --events/--heartbeat specs the one-shot CLI validates.
  EXPECT_EQ(cli::indexed_output_file("ev.jsonl", 7), "ev.req7.jsonl");
  EXPECT_EQ(cli::indexed_output_file("out/ev.jsonl", 12), "out/ev.req12.jsonl");
  EXPECT_EQ(cli::indexed_output_file("a.b.c", 1), "a.b.req1.c");
}

TEST(CliArgs, IndexedOutputFileAppendsWhenNoUsableExtension) {
  EXPECT_EQ(cli::indexed_output_file("ev", 7), "ev.req7");
  // A dot in a parent directory is not an extension...
  EXPECT_EQ(cli::indexed_output_file("out.d/ev", 3), "out.d/ev.req3");
  // ...and neither is a leading dot (hidden files).
  EXPECT_EQ(cli::indexed_output_file(".hidden", 2), ".hidden.req2");
  EXPECT_EQ(cli::indexed_output_file("dir/.hidden", 2), "dir/.hidden.req2");
}

}  // namespace
}  // namespace patchecko
