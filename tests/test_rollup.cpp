// Tests for the service-observability layer added around the daemon:
// sliding-window rollup semantics (slot expiry, lifetime totals, no-op
// mode), request-scoped context stamping of spans and events, the
// access-log line contract, the schema_version back-compat reader, and the
// deterministic `patchecko top` rendering.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/request_context.h"
#include "obs/rollup.h"
#include "obs/trace.h"
#include "service/access_log.h"
#include "service/top.h"

namespace patchecko {
namespace {

namespace json = obs::json;
using obs::Endpoint;
using obs::ManualClock;
using obs::Rollup;
using obs::RollupConfig;
using obs::RollupSnapshot;

TEST(Rollup, EndpointNamesRoundTripAndUnknownMapsToOther) {
  std::set<std::string> names;
  for (std::size_t e = 0; e < obs::kEndpointCount; ++e) {
    const auto endpoint = static_cast<Endpoint>(e);
    const std::string name(obs::endpoint_name(endpoint));
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(obs::endpoint_from_name(name), endpoint);
    names.insert(name);
  }
  EXPECT_EQ(names.size(), obs::kEndpointCount);  // names are distinct
  EXPECT_EQ(obs::endpoint_from_name("no-such-endpoint"), Endpoint::other);
  EXPECT_EQ(obs::endpoint_from_name(""), Endpoint::other);
}

RollupConfig manual_config(const ManualClock& clock) {
  RollupConfig config;
  config.window_seconds = 60.0;  // 12 slots of 5s each
  config.slots = 12;
  config.clock = &clock;
  config.latency_bounds = {0.1, 1.0};
  return config;
}

TEST(Rollup, WindowExpiresButLifetimeTotalsPersist) {
  ManualClock clock(100.0);
  Rollup rollup(manual_config(clock));
  rollup.record(Endpoint::scan, 0.05, 0.5, /*error=*/false);
  rollup.record(Endpoint::scan, 2.5, 0.0, /*error=*/true);
  rollup.record(Endpoint::ping, 0.2, 0.0, /*error=*/false);

  RollupSnapshot now = rollup.snapshot();
  const auto scan = static_cast<std::size_t>(Endpoint::scan);
  const auto ping = static_cast<std::size_t>(Endpoint::ping);
  EXPECT_EQ(now.window[scan].count, 2u);
  EXPECT_EQ(now.window[scan].errors, 1u);
  EXPECT_DOUBLE_EQ(now.window[scan].max_seconds, 2.5);
  EXPECT_DOUBLE_EQ(now.window[scan].queue_wait_max_seconds, 0.5);
  // Bounds {0.1, 1.0}: 0.05 -> bucket 0, 2.5 -> overflow.
  ASSERT_EQ(now.window[scan].latency_buckets.size(), 3u);
  EXPECT_EQ(now.window[scan].latency_buckets[0], 1u);
  EXPECT_EQ(now.window[scan].latency_buckets[1], 0u);
  EXPECT_EQ(now.window[scan].latency_buckets[2], 1u);
  EXPECT_EQ(now.window[ping].count, 1u);
  EXPECT_EQ(now.window[ping].latency_buckets[1], 1u);  // 0.2 in (0.1, 1]

  // Slide past the whole window: the windowed view drains, the lifetime
  // totals and high-water marks do not.
  clock.advance(61.0);
  RollupSnapshot later = rollup.snapshot();
  EXPECT_EQ(later.window[scan].count, 0u);
  EXPECT_EQ(later.window[ping].count, 0u);
  EXPECT_DOUBLE_EQ(later.window[scan].max_seconds, 0.0);
  EXPECT_EQ(later.totals[scan].count, 2u);
  EXPECT_EQ(later.totals[scan].errors, 1u);
  EXPECT_EQ(later.totals[ping].count, 1u);
  EXPECT_DOUBLE_EQ(later.queue_wait_high_water_seconds, 0.5);

  // New records land in the fresh window and keep accumulating totals.
  rollup.record(Endpoint::scan, 0.01, 0.0, false);
  RollupSnapshot fresh = rollup.snapshot();
  EXPECT_EQ(fresh.window[scan].count, 1u);
  EXPECT_EQ(fresh.totals[scan].count, 3u);
}

TEST(Rollup, PartialSlideKeepsRecentSlots) {
  ManualClock clock(0.0);
  Rollup rollup(manual_config(clock));
  rollup.record(Endpoint::status, 0.01, 0.0, false);  // slot 0
  clock.advance(30.0);
  rollup.record(Endpoint::status, 0.01, 0.0, false);  // slot 6
  clock.advance(45.0);  // t=75: slot 0 expired, slot 6 (30..35s) still in
  const RollupSnapshot snapshot = rollup.snapshot();
  const auto status = static_cast<std::size_t>(Endpoint::status);
  EXPECT_EQ(snapshot.window[status].count, 1u);
  EXPECT_EQ(snapshot.totals[status].count, 2u);
}

TEST(Rollup, DisabledRollupRecordsNothing) {
  ManualClock clock(0.0);
  RollupConfig config = manual_config(clock);
  config.enabled = false;
  Rollup rollup(config);
  EXPECT_FALSE(rollup.enabled());
  rollup.record(Endpoint::scan, 1.0, 1.0, true);
  rollup.observe_queue_depth(42);
  RollupSnapshot snapshot = rollup.snapshot();
  EXPECT_EQ(snapshot.window[0].count, 0u);
  EXPECT_EQ(snapshot.totals[0].count, 0u);
  EXPECT_EQ(snapshot.queue_depth_high_water, 0);

  // Flipping it on makes the same calls take effect.
  rollup.set_enabled(true);
  rollup.record(Endpoint::scan, 1.0, 1.0, true);
  rollup.observe_queue_depth(42);
  snapshot = rollup.snapshot();
  EXPECT_EQ(snapshot.totals[static_cast<std::size_t>(Endpoint::scan)].count,
            1u);
  EXPECT_EQ(snapshot.queue_depth_high_water, 42);
}

TEST(Rollup, QueueDepthHighWaterNeverRegresses) {
  ManualClock clock(0.0);
  Rollup rollup(manual_config(clock));
  rollup.observe_queue_depth(3);
  rollup.observe_queue_depth(7);
  rollup.observe_queue_depth(2);
  rollup.set_corpus_version(9);
  const RollupSnapshot snapshot = rollup.snapshot();
  EXPECT_EQ(snapshot.queue_depth_high_water, 7);
  EXPECT_EQ(snapshot.corpus_version, 9u);
}

TEST(Rollup, SnapshotJsonHasDocumentedShape) {
  ManualClock clock(5.0);
  Rollup rollup(manual_config(clock));
  rollup.set_corpus_version(3);
  rollup.record(Endpoint::scan, 0.05, 0.2, false);
  rollup.record(Endpoint::reload, 0.5, 0.0, true);
  const RollupSnapshot snapshot = rollup.snapshot();
  const std::string text = rollup_snapshot_json(snapshot);
  const auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->get("window_s").as_number(), 60.0);
  EXPECT_EQ(parsed->get("corpus_version").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(parsed->get("queue").get("wait_hwm_s").as_number(), 0.2);
  ASSERT_EQ(parsed->get("le").as_array().size(), 2u);
  const json::Value& endpoints = parsed->get("endpoints");
  // Every endpoint is present even when empty, in enum order.
  EXPECT_EQ(endpoints.as_object().size(), obs::kEndpointCount);
  EXPECT_EQ(endpoints.get("scan").get("count").as_number(), 1.0);
  EXPECT_EQ(endpoints.get("scan").get("buckets").as_array().size(), 3u);
  EXPECT_EQ(endpoints.get("reload").get("errors").as_number(), 1.0);
  EXPECT_EQ(endpoints.get("reload").get("total").get("errors").as_number(),
            1.0);
  EXPECT_EQ(endpoints.get("drain").get("count").as_number(), 0.0);
  // Deterministic rendering: same snapshot, same bytes (a fresh snapshot
  // would re-sample RSS).
  EXPECT_EQ(text, rollup_snapshot_json(snapshot));
}

TEST(Rollup, RequestScopeNestsAndStampsSpansAndEvents) {
  EXPECT_EQ(obs::current_request_id(), 0u);
  obs::EnabledScope metrics_on(true);
  obs::EventsEnabledScope events_on(true);
  obs::Tracer tracer;
  obs::EventLog log(16);
  {
    obs::RequestScope outer(7);
    EXPECT_EQ(obs::current_request_id(), 7u);
    {
      obs::ScopedSpan span("req.outer", tracer);
      log.emit(obs::Severity::info, "req.event");
    }
    {
      obs::RequestScope inner(9);  // nesting: inner id wins, then restores
      EXPECT_EQ(obs::current_request_id(), 9u);
      obs::ScopedSpan span("req.inner", tracer);
    }
    EXPECT_EQ(obs::current_request_id(), 7u);
  }
  EXPECT_EQ(obs::current_request_id(), 0u);
  { obs::ScopedSpan span("req.none", tracer); }

  const std::vector<obs::Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].request, 7u);
  EXPECT_EQ(spans[1].request, 9u);
  EXPECT_EQ(spans[2].request, 0u);
  const std::vector<obs::Event> events = log.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].request, 7u);
  const std::string line = obs::event_jsonl_line(events[0]);
  EXPECT_NE(line.find("\"req\":7"), std::string::npos) << line;
}

TEST(Rollup, SchemaVersionReaderPrefersExplicitKeyWithBackCompat) {
  const auto versioned = json::parse("{\"schema_version\":2,\"version\":1}");
  ASSERT_TRUE(versioned.has_value());
  EXPECT_EQ(json::schema_version(*versioned), 2);
  const auto legacy = json::parse("{\"version\":1}");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(json::schema_version(*legacy), 1);
  const auto bare = json::parse("{}");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(json::schema_version(*bare), 1);
  EXPECT_EQ(json::schema_version(*bare, /*fallback=*/4), 4);
  const auto mistyped = json::parse("{\"schema_version\":\"two\"}");
  ASSERT_TRUE(mistyped.has_value());
  EXPECT_EQ(json::schema_version(*mistyped, /*fallback=*/1), 1);
}

TEST(Rollup, AccessLineHasExactKeyOrderAndNullSemantics) {
  service::AccessEntry entry;
  entry.id = 12;
  entry.op = "scan";
  entry.status = 200;
  entry.outcome = "ok";
  entry.queue_wait_s = 0.25;
  entry.service_s = 1.5;
  entry.corpus_version = 2;
  entry.cache_hits = 3;
  entry.cache_misses = 1;
  entry.has_cache = true;
  entry.prefilter_recall = 0.75;
  entry.has_prefilter_recall = true;
  entry.bytes_in = 100;
  entry.bytes_out = 200;
  const std::string line = service::access_jsonl_line(entry);
  EXPECT_EQ(line,
            "{\"type\":\"access\",\"id\":12,\"op\":\"scan\",\"status\":200,"
            "\"outcome\":\"ok\",\"queue_wait_s\":0.25,\"service_s\":1.5,"
            "\"corpus_version\":2,\"cache_hits\":3,\"cache_misses\":1,"
            "\"cache_hit_ratio\":0.75,\"prefilter_recall\":0.75,"
            "\"bytes_in\":100,\"bytes_out\":200}");

  // Requests that touched no cache and ran no verify-mode prefilter render
  // explicit nulls, never omitted keys.
  service::AccessEntry bare;
  bare.op = "ping";
  const std::string bare_line = service::access_jsonl_line(bare);
  EXPECT_NE(bare_line.find("\"cache_hit_ratio\":null"), std::string::npos);
  EXPECT_NE(bare_line.find("\"prefilter_recall\":null"), std::string::npos);
  const auto parsed = json::parse(bare_line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->get("cache_hit_ratio").is_null());

  // Cache counters present but zero lookups: still null, not 0/0.
  service::AccessEntry idle;
  idle.has_cache = true;
  EXPECT_NE(service::access_jsonl_line(idle).find("\"cache_hit_ratio\":null"),
            std::string::npos);
}

TEST(Rollup, RenderTopIsDeterministicAndDegradesGracefully) {
  const char* kStats =
      "{\"type\":\"stats\",\"schema_version\":1,\"uptime_s\":12.5,"
      "\"corpus\":{\"version\":2,\"cves\":40},"
      "\"queue\":{\"depth\":1,\"active\":1,\"capacity\":64,\"admitted\":9,"
      "\"rejected\":1,\"completed\":7},"
      "\"rollup\":{\"window_s\":60,\"uptime_s\":12.5,\"corpus_version\":2,"
      "\"queue\":{\"depth_hwm\":3,\"wait_hwm_s\":0.5},\"rss_kb\":-1,"
      "\"le\":[0.1,1.0],"
      "\"endpoints\":{\"scan\":{\"count\":4,\"errors\":1,\"max_s\":1.25,"
      "\"wait_max_s\":0.5,\"buckets\":[1,2,1],"
      "\"total\":{\"count\":9,\"errors\":2}}}}}";
  const auto stats = json::parse(kStats);
  ASSERT_TRUE(stats.has_value());
  const std::string first = service::render_top(*stats);
  EXPECT_EQ(first, service::render_top(*stats));  // pure function
  EXPECT_NE(first.find("patchecko daemon"), std::string::npos) << first;
  EXPECT_NE(first.find("corpus v2 (40 cves)"), std::string::npos) << first;
  EXPECT_NE(first.find("depth_hwm 3"), std::string::npos) << first;
  EXPECT_NE(first.find("scan"), std::string::npos);
  EXPECT_NE(first.find("endpoint"), std::string::npos);  // header row
  EXPECT_EQ(first.back(), '\n');

  // Missing fields degrade to zeros/dashes instead of failing.
  const auto empty = json::parse("{}");
  ASSERT_TRUE(empty.has_value());
  const std::string degraded = service::render_top(*empty);
  EXPECT_FALSE(degraded.empty());
  EXPECT_NE(degraded.find("patchecko daemon"), std::string::npos);
}

}  // namespace
}  // namespace patchecko
