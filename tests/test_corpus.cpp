// Tests for the prebuilt-corpus store: container integrity (truncation,
// bit-flips, cache poisoning), incremental population, manifest/disk drift
// detection, concurrent same-key writers, generation GC, and — the load-
// bearing property — bit-identity between a store-backed CorpusSnapshot and
// a cold build.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cve_database.h"
#include "corpus/builder.h"
#include "corpus/serialize.h"
#include "corpus/store.h"
#include "firmware/firmware.h"

namespace patchecko {
namespace {

namespace fs = std::filesystem;

/// A unique, cleaned-up-on-entry scratch directory per test name.
std::string scratch_dir(const std::string& name) {
  const auto path =
      fs::temp_directory_path() / ("pk_corpus_test_" + name);
  fs::remove_all(path);
  return path.string();
}

EvalConfig small_eval() {
  EvalConfig eval;
  eval.scale = 0.03;
  return eval;
}

/// The corpus is deterministic, so one shared instance serves every test.
const EvalCorpus& shared_corpus() {
  static EvalCorpus corpus(small_eval());
  return corpus;
}

corpus::BuildMatrix small_matrix() {
  corpus::BuildMatrix matrix;
  matrix.eval = small_eval();
  matrix.jobs = 2;
  return matrix;
}

/// Object path of `key` inside `store` (mirrors the sharded layout).
fs::path object_path(const corpus::PrebuiltStore& store,
                     const corpus::ArtifactKey& key) {
  const std::string hex = corpus::key_digest(key).hex();
  return fs::path(store.root()) / "objects" / hex.substr(0, 2) /
         (hex + ".bin");
}

corpus::ArtifactKey first_library_key(const corpus::PrebuiltStore&,
                                      const EvalConfig& eval) {
  const EvalCorpus& corpus = shared_corpus();
  return corpus::library_variant_key(corpus, 0, eval.db_arch, eval.db_opt);
}

TEST(CorpusSerialize, LibraryArtifactRoundTrips) {
  const EvalCorpus& corpus = shared_corpus();
  const corpus::LibraryArtifact artifact =
      corpus::make_library_artifact(corpus.compile_reference(0));
  const std::vector<std::uint8_t> bytes =
      corpus::serialize_library_artifact(artifact);
  const auto back = corpus::deserialize_library_artifact(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(corpus::serialize_library_artifact(*back), bytes);
  EXPECT_EQ(back->library.functions.size(),
            artifact.library.functions.size());
  EXPECT_EQ(back->features.size(), artifact.features.size());
  EXPECT_EQ(back->codes.size(), artifact.codes.size());
}

TEST(CorpusSerialize, CveEntryRoundTripsAndRejectsTruncation) {
  const EvalCorpus& corpus = shared_corpus();
  const CveDatabase database(corpus, DatabaseConfig{});
  ASSERT_FALSE(database.entries().empty());
  const std::vector<std::uint8_t> bytes =
      corpus::serialize_cve_entry(database.entries().front());
  const auto back = corpus::deserialize_cve_entry(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(corpus::serialize_cve_entry(*back), bytes);
  // Every proper prefix must be rejected, never crash or mis-parse.
  for (std::size_t cut : {std::size_t{0}, std::size_t{8}, bytes.size() / 2,
                          bytes.size() - 1}) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_FALSE(corpus::deserialize_cve_entry(truncated).has_value())
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(CorpusStore, SecondBuildReusesEverything) {
  corpus::PrebuiltStore store(scratch_dir("incremental"));
  const corpus::BuildMatrix matrix = small_matrix();
  const corpus::BuildReport cold = corpus::build_store(store, matrix);
  EXPECT_GT(cold.requested, 0u);
  EXPECT_EQ(cold.built, cold.requested);
  EXPECT_EQ(cold.reused, 0u);
  const corpus::BuildReport warm = corpus::build_store(store, matrix);
  EXPECT_EQ(warm.requested, cold.requested);
  EXPECT_EQ(warm.built, 0u) << "warm build recompiled artifacts";
  EXPECT_EQ(warm.reused, warm.requested);
  EXPECT_FALSE(store.verify().has_value());
}

TEST(CorpusStore, StoreBackedSnapshotIsBitIdenticalToColdBuild) {
  corpus::PrebuiltStore store(scratch_dir("bit_identity"));
  const corpus::BuildMatrix matrix = small_matrix();
  corpus::build_store(store, matrix);

  corpus::SnapshotLoadStats stats;
  const auto warm = corpus::load_snapshot(store, 1, matrix.eval,
                                          matrix.database, &stats);
  EXPECT_GT(stats.entries_loaded, 0u);
  EXPECT_EQ(stats.entries_built, 0u) << "warm load fell back to cold builds";

  const CveDatabase cold(shared_corpus(), matrix.database);
  ASSERT_EQ(warm->database.entries().size(), cold.entries().size());
  for (std::size_t i = 0; i < cold.entries().size(); ++i)
    EXPECT_EQ(corpus::serialize_cve_entry(warm->database.entries()[i]),
              corpus::serialize_cve_entry(cold.entries()[i]))
        << "entry " << i << " differs from the cold build";
}

TEST(CorpusStore, TruncatedObjectDegradesToMissAndFailsVerify) {
  corpus::PrebuiltStore store(scratch_dir("truncated"));
  const corpus::BuildMatrix matrix = small_matrix();
  corpus::build_store(store, matrix);
  const corpus::ArtifactKey key = first_library_key(store, matrix.eval);
  ASSERT_TRUE(store.contains(key));

  const fs::path path = object_path(store, key);
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size / 2);

  EXPECT_FALSE(store.load(key).has_value());
  const auto issue = store.verify();
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->object, corpus::key_digest(key).hex());
  EXPECT_NE(issue->detail.find("size drift"), std::string::npos)
      << issue->detail;
}

TEST(CorpusStore, MissingObjectIsManifestDrift) {
  corpus::PrebuiltStore store(scratch_dir("drift"));
  corpus::build_store(store, small_matrix());
  const corpus::ArtifactKey key =
      first_library_key(store, small_eval());
  fs::remove(object_path(store, key));
  EXPECT_FALSE(store.contains(key)) << "manifest lied about a deleted object";
  const auto issue = store.verify();
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->object, corpus::key_digest(key).hex());
  EXPECT_EQ(issue->detail, "object missing on disk");
}

TEST(CorpusStore, PoisonedObjectIsRejectedOnLoad) {
  corpus::PrebuiltStore store(scratch_dir("poison"));
  corpus::ArtifactKey a;
  a.kind = "library";
  a.source_fingerprint = 1;
  a.params = "a";
  corpus::ArtifactKey b = a;
  b.source_fingerprint = 2;
  b.params = "b";
  store.put(a, {1, 2, 3});
  store.put(b, {4, 5, 6});
  // File a's (internally consistent) container under b's address: the key
  // echo no longer matches the request, so the load must miss, and verify
  // must flag the swap.
  fs::copy_file(object_path(store, a), object_path(store, b),
                fs::copy_options::overwrite_existing);
  EXPECT_FALSE(store.load(b).has_value());
  EXPECT_EQ(store.load(a).value(), (std::vector<std::uint8_t>{1, 2, 3}));
  const auto issue = store.verify();
  ASSERT_TRUE(issue.has_value());
  EXPECT_NE(issue->detail.find("key echo"), std::string::npos)
      << issue->detail;
}

TEST(CorpusStore, ConcurrentSameKeyWritersNeverTearReads) {
  corpus::PrebuiltStore store(scratch_dir("race"));
  corpus::ArtifactKey key;
  key.kind = "library";
  key.source_fingerprint = 7;
  key.params = "contended";
  const std::vector<std::uint8_t> a(4096, 0xAA);
  const std::vector<std::uint8_t> b(8192, 0xBB);
  store.put(key, a);

  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w)
    threads.emplace_back([&, w] {
      for (int i = 0; i < 25; ++i) store.put(key, (w % 2) != 0 ? a : b);
    });
  // Readers must always observe a complete container: either payload whole,
  // never a mix or a partial write (atomic rename-into-place).
  for (int r = 0; r < 2; ++r)
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const auto payload = store.load(key);
        ASSERT_TRUE(payload.has_value());
        ASSERT_TRUE(*payload == a || *payload == b) << "torn read";
      }
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(store.verify().has_value());
}

TEST(CorpusStore, GcDropsArtifactsTheLatestBuildStoppedReferencing) {
  corpus::PrebuiltStore store(scratch_dir("gc"));
  corpus::BuildMatrix matrix = small_matrix();
  matrix.arches = {matrix.eval.db_arch, Arch::arm32};
  corpus::build_store(store, matrix);
  const corpus::StoreStats wide = store.stats();

  // Rebuild without the arm32 column: its library artifacts keep their old
  // generation and become gc-eligible.
  matrix.arches = {matrix.eval.db_arch};
  corpus::build_store(store, matrix);

  const corpus::GcResult preview = store.gc(/*dry_run=*/true);
  EXPECT_GT(preview.removed_objects, 0u);
  EXPECT_EQ(store.stats().entries, wide.entries) << "dry run modified store";
  EXPECT_FALSE(store.verify().has_value());

  const corpus::GcResult swept = store.gc(/*dry_run=*/false);
  EXPECT_EQ(swept.removed_objects, preview.removed_objects);
  EXPECT_EQ(swept.reclaimed_bytes, preview.reclaimed_bytes);
  ASSERT_TRUE(store.flush());
  EXPECT_EQ(store.stats().entries,
            wide.entries - swept.removed_objects);
  EXPECT_FALSE(store.verify().has_value());
  // The narrow matrix is still fully warm after the sweep.
  const corpus::BuildReport warm = corpus::build_store(store, matrix);
  EXPECT_EQ(warm.built, 0u);
}

TEST(CorpusStore, ManifestSurvivesReopen) {
  const std::string root = scratch_dir("reopen");
  corpus::BuildReport cold;
  {
    corpus::PrebuiltStore store(root);
    cold = corpus::build_store(store, small_matrix());
  }
  corpus::PrebuiltStore reopened(root);
  EXPECT_EQ(reopened.stats().entries, cold.requested);
  const corpus::BuildReport warm =
      corpus::build_store(reopened, small_matrix());
  EXPECT_EQ(warm.built, 0u) << "reopened store recompiled artifacts";
}

}  // namespace
}  // namespace patchecko
