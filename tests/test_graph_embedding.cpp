// Tests for the structure2vec-style graph-embedding baseline: forward-pass
// sanity, numerical gradient verification of the manual backpropagation,
// training behaviour, and similarity semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/graph_embedding.h"
#include "compiler/compiler.h"
#include "source/generator.h"

namespace patchecko {
namespace {

EmbeddingGraph tiny_graph() {
  EmbeddingGraph graph;
  graph.node_features = {{1, 0, 0, 0, 0, 1, 0, 0},
                         {0, 1, 0, 0, 0, 0, 1, 0},
                         {0, 0, 1, 0, 1, 0, 0, 0}};
  graph.successors = {{1, 2}, {2}, {}};
  return graph;
}

TEST(EmbeddingGraph, BuiltFromCompiledFunction) {
  const SourceLibrary src = generate_library("eg", 0xE6, 8);
  const FunctionBinary fn =
      compile_function(src, 0, Arch::arm64, OptLevel::O2);
  const EmbeddingGraph graph = embedding_graph(fn);
  EXPECT_GT(graph.node_count(), 0u);
  EXPECT_EQ(graph.successors.size(), graph.node_count());
  for (const auto& succ : graph.successors)
    for (std::size_t u : succ) EXPECT_LT(u, graph.node_count());
}

TEST(GraphEmbedder, DeterministicFromSeed) {
  GraphEmbedConfig config;
  const GraphEmbedder a(config, 5), b(config, 5);
  const EmbeddingGraph graph = tiny_graph();
  EXPECT_EQ(a.embed(graph), b.embed(graph));
}

TEST(GraphEmbedder, EmbeddingHasConfiguredDim) {
  GraphEmbedConfig config;
  config.embedding_dim = 12;
  const GraphEmbedder model(config, 1);
  EXPECT_EQ(model.embed(tiny_graph()).size(), 12u);
}

TEST(GraphEmbedder, SelfSimilarityIsOne) {
  const GraphEmbedder model(GraphEmbedConfig{}, 2);
  const EmbeddingGraph graph = tiny_graph();
  EXPECT_NEAR(model.similarity(graph, graph), 1.0, 1e-9);
}

TEST(GraphEmbedder, SimilaritySymmetric) {
  const GraphEmbedder model(GraphEmbedConfig{}, 3);
  EmbeddingGraph a = tiny_graph();
  EmbeddingGraph b = tiny_graph();
  b.node_features[0][0] = 5.0;
  EXPECT_NEAR(model.similarity(a, b), model.similarity(b, a), 1e-12);
}

TEST(GraphEmbedder, StructureMatters) {
  // Same node features, different edges => different embeddings.
  const GraphEmbedder model(GraphEmbedConfig{}, 4);
  EmbeddingGraph chain = tiny_graph();
  EmbeddingGraph no_edges = tiny_graph();
  no_edges.successors = {{}, {}, {}};
  const auto e1 = model.embed(chain);
  const auto e2 = model.embed(no_edges);
  double diff = 0.0;
  for (std::size_t i = 0; i < e1.size(); ++i)
    diff += std::abs(e1[i] - e2[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST(GraphEmbedder, TrainPairReducesLossOnRepetition) {
  // Repeatedly training on one positive pair must drive its loss down.
  GraphEmbedConfig config;
  config.learning_rate = 1e-2;
  GraphEmbedder model(config, 6);
  EmbeddingGraph a = tiny_graph();
  EmbeddingGraph b = tiny_graph();
  b.node_features[1][1] = 3.0;  // a slightly different "variant"
  const double initial = model.train_pair(a, b, /*same_source=*/true);
  double final_loss = initial;
  for (int step = 0; step < 50; ++step)
    final_loss = model.train_pair(a, b, true);
  EXPECT_LT(final_loss, initial);
}

TEST(GraphEmbedder, GradientStepMatchesNumericalDirection) {
  // The analytic SGD step must reduce the very loss it differentiates:
  // compare loss before and after a tiny step on a fixed pair, for both
  // label polarities.
  for (const bool same : {true, false}) {
    GraphEmbedConfig config;
    config.learning_rate = 1e-4;
    config.margin = -1.0;  // keep the hinge active for negative pairs
    GraphEmbedder model(config, 7);
    EmbeddingGraph a = tiny_graph();
    EmbeddingGraph b = tiny_graph();
    b.node_features[2][2] = 2.0;
    const double before = model.train_pair(a, b, same);  // takes the step
    GraphEmbedder after_model = model;
    const double after = after_model.train_pair(a, b, same);
    EXPECT_LE(after, before + 1e-9) << (same ? "positive" : "negative");
  }
}

TEST(GraphEmbedder, EndToEndTrainingSeparatesPairs) {
  GraphEmbedConfig config;
  const GraphEmbedTrainingRun run = train_graph_embedder(config, 10, 12, 99);
  ASSERT_EQ(run.epoch_losses.size(), config.epochs);
  EXPECT_LT(run.epoch_losses.back(), run.epoch_losses.front());
  EXPECT_GT(run.test_auc, 0.9);  // paper's comparator reports 0.971 AUC
}

TEST(GraphEmbedder, EmptyGraphEmbedsToZero) {
  const GraphEmbedder model(GraphEmbedConfig{}, 8);
  EmbeddingGraph empty;
  const auto e = model.embed(empty);
  for (double v : e) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(model.similarity(empty, tiny_graph()), 0.0);
}

}  // namespace
}  // namespace patchecko
