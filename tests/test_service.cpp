// Tests for the persistent scan service: wire framing (including the
// oversized-skip and fuzz robustness contracts), request parsing, admission
// backpressure, corpus hot reload, and the end-to-end daemon — concurrent
// clients over a real Unix-domain socket receiving byte-identical reports
// to the one-shot engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dl/trainer.h"
#include "engine/corpus_store.h"
#include "engine/engine.h"
#include "firmware/firmware.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "service/admission.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/signals.h"
#include "service/top.h"

namespace patchecko {
namespace {

namespace svc = patchecko::service;
namespace json = patchecko::obs::json;

// --- framing ---------------------------------------------------------------

TEST(Service, FrameRoundTripAcrossArbitrarySplits) {
  const std::vector<std::string> payloads = {"", "{}", "{\"type\":\"ping\"}",
                                             std::string(1000, 'x')};
  std::string stream;
  for (const std::string& payload : payloads)
    stream += svc::encode_frame(payload);
  // Feed the byte stream in every chunk size; framing must not care.
  for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
    svc::FrameReader reader;
    std::vector<std::string> decoded;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      reader.push(stream.data() + i, std::min(chunk, stream.size() - i));
      std::string payload;
      while (reader.next(payload) == svc::FrameStatus::ok)
        decoded.push_back(payload);
    }
    EXPECT_EQ(decoded, payloads) << "chunk size " << chunk;
  }
}

TEST(Service, OversizedFrameIsSkippedNotFatal) {
  svc::FrameReader reader(/*max_frame_bytes=*/16);
  const std::string big(100, 'A');
  reader.push(svc::encode_frame(big));
  reader.push(svc::encode_frame("{\"ok\":true}"));

  std::string payload;
  std::uint64_t dropped = 0;
  // The oversized frame surfaces exactly once, with its declared size...
  EXPECT_EQ(reader.next(payload, &dropped), svc::FrameStatus::oversized);
  EXPECT_EQ(dropped, 100u);
  // ...and the connection stays framed: the next frame decodes normally.
  EXPECT_EQ(reader.next(payload, &dropped), svc::FrameStatus::ok);
  EXPECT_EQ(payload, "{\"ok\":true}");
  EXPECT_EQ(reader.next(payload, &dropped), svc::FrameStatus::need_more);
}

TEST(Service, OversizedFrameReportsBeforePayloadArrives) {
  // Only the header of a 1 MiB frame has arrived: the reader must already
  // report it (so the session can answer 413) and then silently discard the
  // payload as it trickles in.
  svc::FrameReader reader(/*max_frame_bytes=*/64);
  const std::string frame = svc::encode_frame(std::string(1 << 20, 'z'));
  reader.push(frame.data(), svc::kLengthPrefixBytes);
  std::string payload;
  std::uint64_t dropped = 0;
  EXPECT_EQ(reader.next(payload, &dropped), svc::FrameStatus::oversized);
  EXPECT_EQ(dropped, static_cast<std::uint64_t>(1 << 20));
  std::size_t offset = svc::kLengthPrefixBytes;
  while (offset < frame.size()) {
    const std::size_t chunk = std::min<std::size_t>(4096, frame.size() - offset);
    reader.push(frame.data() + offset, chunk);
    offset += chunk;
    EXPECT_EQ(reader.next(payload), svc::FrameStatus::need_more);
  }
  reader.push(svc::encode_frame("after"));
  EXPECT_EQ(reader.next(payload), svc::FrameStatus::ok);
  EXPECT_EQ(payload, "after");
}

TEST(Service, FrameFuzzNeverYieldsOversizedPayload) {
  // Deterministic fuzz: random bytes (occasionally valid frames) pushed in
  // random chunk sizes. The reader must never throw, never loop forever,
  // and never hand back a payload above the configured maximum.
  std::mt19937 rng(0xF2A77);
  constexpr std::size_t kMax = 512;
  for (int round = 0; round < 50; ++round) {
    svc::FrameReader reader(kMax);
    std::string stream;
    for (int piece = 0; piece < 20; ++piece) {
      if (rng() % 3 == 0) {
        stream += svc::encode_frame(std::string(rng() % (2 * kMax), 'p'));
      } else {
        std::string garbage(rng() % 64, '\0');
        for (char& byte : garbage) byte = static_cast<char>(rng() & 0xFF);
        stream += garbage;
      }
    }
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 97, stream.size() - offset);
      reader.push(stream.data() + offset, chunk);
      offset += chunk;
      std::string payload;
      for (int guard = 0; guard < 10000; ++guard) {
        const svc::FrameStatus status = reader.next(payload);
        if (status == svc::FrameStatus::need_more) break;
        if (status == svc::FrameStatus::ok) EXPECT_LE(payload.size(), kMax);
      }
    }
  }
}

// --- request parsing -------------------------------------------------------

TEST(Service, ParseRequestRejectsStructurallyInvalidPayloads) {
  std::string error;
  EXPECT_FALSE(svc::parse_request("not json", &error));
  EXPECT_EQ(error, "malformed JSON payload");
  EXPECT_FALSE(svc::parse_request("[1,2]", &error));
  EXPECT_FALSE(svc::parse_request("{\"no_type\":1}", &error));
  EXPECT_FALSE(svc::parse_request("{\"type\":\"scan\"}", &error));
  EXPECT_NE(error.find("firmware"), std::string::npos);
  EXPECT_FALSE(svc::parse_request(
      "{\"type\":\"scan\",\"firmware\":\"fw\",\"cves\":\"CVE-1\"}", &error));
  EXPECT_FALSE(svc::parse_request("{\"type\":\"status\"}", &error));
  EXPECT_FALSE(
      svc::parse_request("{\"type\":\"status\",\"request_id\":-3}", &error));
  EXPECT_FALSE(
      svc::parse_request("{\"type\":\"reload\",\"scale\":0}", &error));
}

TEST(Service, ParseRequestKeepsUnknownTypesForStructuredErrors) {
  std::string error;
  const auto request = svc::parse_request("{\"type\":\"frobnicate\"}", &error);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->type, svc::RequestType::unknown);
  EXPECT_EQ(request->raw_type, "frobnicate");
}

TEST(Service, ParseRequestRoundTripsBuilders) {
  std::string error;
  const auto scan = svc::parse_request(
      svc::scan_request_json("fw.img", {"CVE-A", "CVE-B"}, true), &error);
  ASSERT_TRUE(scan.has_value()) << error;
  EXPECT_EQ(scan->type, svc::RequestType::scan);
  EXPECT_EQ(scan->firmware, "fw.img");
  EXPECT_EQ(scan->cve_ids, (std::vector<std::string>{"CVE-A", "CVE-B"}));
  EXPECT_TRUE(scan->want_provenance);

  const auto status = svc::parse_request(svc::status_request_json(42), &error);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->type, svc::RequestType::status);
  EXPECT_EQ(status->request_id, 42u);

  const auto reload =
      svc::parse_request(svc::reload_request_json(0.5, 7), &error);
  ASSERT_TRUE(reload.has_value());
  ASSERT_TRUE(reload->scale.has_value());
  EXPECT_DOUBLE_EQ(*reload->scale, 0.5);
  ASSERT_TRUE(reload->seed.has_value());
  EXPECT_EQ(*reload->seed, 7u);

  const auto stats = svc::parse_request(svc::stats_request_json(), &error);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->type, svc::RequestType::stats);

  const auto profile =
      svc::parse_request(svc::profile_request_json(2.5, 250), &error);
  ASSERT_TRUE(profile.has_value()) << error;
  EXPECT_EQ(profile->type, svc::RequestType::profile);
  EXPECT_DOUBLE_EQ(profile->profile_seconds, 2.5);
  EXPECT_EQ(profile->profile_hz, 250);

  // Bare profile request: defaults apply.
  const auto bare = svc::parse_request("{\"type\":\"profile\"}", &error);
  ASSERT_TRUE(bare.has_value());
  EXPECT_DOUBLE_EQ(bare->profile_seconds, 1.0);
  EXPECT_EQ(bare->profile_hz, 97);
}

TEST(Service, ParseRequestBoundsProfileCaptures) {
  // Duration and cadence are clamped at parse time: a typo must never park
  // a daemon session thread for an hour or spin a 1 MHz sampler.
  std::string error;
  EXPECT_FALSE(
      svc::parse_request("{\"type\":\"profile\",\"seconds\":0}", &error));
  EXPECT_NE(error.find("seconds"), std::string::npos);
  EXPECT_FALSE(
      svc::parse_request("{\"type\":\"profile\",\"seconds\":301}", &error));
  EXPECT_FALSE(
      svc::parse_request("{\"type\":\"profile\",\"seconds\":-1}", &error));
  EXPECT_FALSE(svc::parse_request("{\"type\":\"profile\",\"hz\":0}", &error));
  EXPECT_NE(error.find("hz"), std::string::npos);
  EXPECT_FALSE(
      svc::parse_request("{\"type\":\"profile\",\"hz\":20000}", &error));
  EXPECT_FALSE(
      svc::parse_request("{\"type\":\"profile\",\"hz\":1.5}", &error));
  EXPECT_FALSE(
      svc::parse_request("{\"type\":\"profile\",\"hz\":\"fast\"}", &error));
}

TEST(Service, ParseRequestHandlesClientSuppliedScanIds) {
  std::string error;
  // Omitted id: the server assigns one.
  const auto anonymous = svc::parse_request(
      svc::scan_request_json("fw.img", {}, false), &error);
  ASSERT_TRUE(anonymous.has_value()) << error;
  EXPECT_FALSE(anonymous->has_request_id);

  // Client-named scan round-trips through the builder.
  const auto named = svc::parse_request(
      svc::scan_request_json("fw.img", {}, false, /*request_id=*/77), &error);
  ASSERT_TRUE(named.has_value()) << error;
  EXPECT_TRUE(named->has_request_id);
  EXPECT_EQ(named->request_id, 77u);

  // Zero and negative ids are structurally invalid (0 means "assign one"
  // and is only expressible by omission).
  EXPECT_FALSE(svc::parse_request(
      "{\"type\":\"scan\",\"firmware\":\"fw\",\"request_id\":0}", &error));
  EXPECT_FALSE(svc::parse_request(
      "{\"type\":\"scan\",\"firmware\":\"fw\",\"request_id\":-4}", &error));
  EXPECT_FALSE(svc::parse_request(
      "{\"type\":\"scan\",\"firmware\":\"fw\",\"request_id\":\"nine\"}",
      &error));
}

// --- admission -------------------------------------------------------------

TEST(Service, AdmissionQueueBoundsAndDrains) {
  svc::AdmissionQueue queue(2);
  auto pending = [](std::uint64_t id) {
    svc::PendingScan scan;
    scan.id = id;
    scan.respond = [](const std::string&) {};
    return scan;
  };
  EXPECT_TRUE(queue.try_admit(pending(1)));
  EXPECT_TRUE(queue.try_admit(pending(2)));
  EXPECT_FALSE(queue.try_admit(pending(3)));  // full => backpressure
  svc::AdmissionStats stats = queue.stats();
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);

  const auto first = queue.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 1u);  // FIFO
  EXPECT_TRUE(queue.try_admit(pending(4)));  // slot freed by next()
  queue.job_done();
  const auto second = queue.next();
  const auto third = queue.next();
  ASSERT_TRUE(second && third);
  queue.job_done();
  queue.job_done();
  queue.wait_idle();  // returns immediately: nothing queued or active

  queue.close();
  EXPECT_FALSE(queue.try_admit(pending(5)));
  EXPECT_FALSE(queue.next().has_value());  // closed and empty
  stats = queue.stats();
  EXPECT_EQ(stats.completed, 3u);
}

TEST(Service, AdmissionQueueWakesBlockedDispatcher) {
  svc::AdmissionQueue queue(4);
  std::optional<std::uint64_t> seen;
  std::thread dispatcher([&] {
    const auto scan = queue.next();  // blocks until admit or close
    if (scan) {
      seen = scan->id;
      queue.job_done();
    }
  });
  svc::PendingScan scan;
  scan.id = 9;
  scan.respond = [](const std::string&) {};
  EXPECT_TRUE(queue.try_admit(std::move(scan)));
  dispatcher.join();
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, 9u);
}

// --- corpus store ----------------------------------------------------------

TEST(Service, CorpusStoreReloadSwapsWithoutInvalidatingReaders) {
  EvalConfig eval;
  eval.scale = 0.02;
  CorpusStore store(eval);
  const auto first = store.current();
  EXPECT_EQ(first->version, 1u);

  EvalConfig next = eval;
  next.seed = eval.seed + 1;
  const auto second = store.reload(next);
  EXPECT_EQ(second->version, 2u);
  EXPECT_EQ(store.current().get(), second.get());
  // The old generation stays fully usable for captured readers.
  EXPECT_EQ(first->version, 1u);
  EXPECT_FALSE(first->database.entries().empty());
  EXPECT_EQ(first->eval.seed, eval.seed);
}

// --- signals ---------------------------------------------------------------

TEST(Service, SignalHandlersFlipFlagsWithoutKillingTheProcess) {
  svc::install_signal_handlers(/*with_sighup=*/true);
  svc::reset_signal_flags();
  EXPECT_FALSE(svc::consume_reload_request());
  std::raise(SIGHUP);
  EXPECT_TRUE(svc::consume_reload_request());
  EXPECT_FALSE(svc::consume_reload_request());  // one delivery, one consume
  EXPECT_FALSE(svc::interrupt_flag().load());
  std::raise(SIGTERM);
  EXPECT_TRUE(svc::interrupt_flag().load());
  EXPECT_EQ(svc::interrupt_signal(), SIGTERM);
  svc::reset_signal_flags();
}

// --- end-to-end daemon -----------------------------------------------------

/// Shared universe for the socket-level tests: a lightly trained model, a
/// scaled-down corpus/firmware saved to disk, and the one-shot engine's
/// canonical report to byte-compare service results against.
struct ServiceUniverse {
  SimilarityModel model;
  EvalConfig eval;
  std::string firmware_path;
  std::vector<std::string> some_cves;
  std::string expected_report;  ///< one-shot canonical_text for some_cves

  ServiceUniverse() {
    TrainerConfig trainer;
    trainer.dataset.library_count = 16;
    trainer.dataset.functions_per_library = 12;
    trainer.epochs = 6;
    model = train_similarity_model(trainer).model;

    eval.scale = 0.03;
    const EvalCorpus corpus(eval);
    const CveDatabase database(corpus, DatabaseConfig{});
    const FirmwareImage firmware = corpus.build_firmware(android_things_device());
    for (const CveEntry& entry : database.entries()) {
      if (some_cves.size() == 4) break;
      some_cves.push_back(entry.spec.cve_id);
    }

    const auto dir =
        std::filesystem::temp_directory_path() / "pk_service_universe";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    firmware_path = (dir / "fw.img").string();
    if (!save_firmware(firmware, firmware_path))
      throw std::runtime_error("cannot save test firmware");

    ScanEngine engine(EngineConfig{});
    ScanRequest request;
    request.model = &model;
    request.firmware = &firmware;
    request.database = &database;
    request.cve_ids = some_cves;
    expected_report = engine.run(request).canonical_text();
  }

  svc::ServiceConfig service_config(const std::string& name) const {
    svc::ServiceConfig config;
    const auto dir =
        std::filesystem::temp_directory_path() / ("pk_service_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    config.socket_path = (dir / "svc.sock").string();
    config.model = &model;
    config.eval = eval;
    config.engine.jobs = 2;
    return config;
  }
};

const ServiceUniverse& universe() {
  static ServiceUniverse instance;
  return instance;
}

json::Value parsed(const std::string& payload) {
  const auto doc = json::parse(payload);
  EXPECT_TRUE(doc.has_value()) << payload;
  return doc.value_or(json::Value());
}

/// Submits one scan and returns the result payload (expects accepted first).
std::optional<std::string> submit_scan(svc::ServiceClient& client,
                                       const std::vector<std::string>& cves,
                                       bool want_provenance = false) {
  if (!client.send(svc::scan_request_json(universe().firmware_path, cves,
                                          want_provenance)))
    return std::nullopt;
  const auto first = client.receive();
  if (!first) return std::nullopt;
  if (parsed(*first).get("type").as_string() != "accepted") return first;
  return client.receive();
}

TEST(Service, ScanOverUnixSocketMatchesOneShotReportByteForByte) {
  const ServiceUniverse& env = universe();
  svc::ScanService service(env.service_config("identity"));
  service.start();
  auto client = svc::ServiceClient::connect_unix(
      service.config().socket_path);
  ASSERT_TRUE(client.connected());

  const auto result = submit_scan(client, env.some_cves,
                                  /*want_provenance=*/true);
  ASSERT_TRUE(result.has_value());
  const json::Value doc = parsed(*result);
  EXPECT_EQ(doc.get("type").as_string(), "result");
  EXPECT_EQ(doc.get("report").as_string(), env.expected_report);
  EXPECT_EQ(doc.get("corpus_version").as_number(), 1.0);
  EXPECT_FALSE(doc.get("interrupted").as_bool(true));
  EXPECT_FALSE(doc.get("provenance").as_string().empty());

  // A repeat submission is served from the resident result cache.
  const auto repeat = submit_scan(client, env.some_cves);
  ASSERT_TRUE(repeat.has_value());
  const json::Value repeat_doc = parsed(*repeat);
  EXPECT_EQ(repeat_doc.get("report").as_string(), env.expected_report);
  EXPECT_GT(repeat_doc.get("cache").get("hits").as_number(), 0.0);
  service.stop();
}

TEST(Service, FourConcurrentClientsGetIdenticalReports) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("concurrent");
  config.dispatchers = 2;
  config.queue_limit = 16;
  svc::ScanService service(config);
  service.start();

  constexpr int kClients = 4;
  std::vector<std::string> reports(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      auto client =
          svc::ServiceClient::connect_unix(service.config().socket_path);
      if (!client.connected()) return;
      const auto result = submit_scan(client, env.some_cves);
      if (result) reports[i] = parsed(*result).get("report").as_string();
    });
  for (std::thread& thread : threads) thread.join();
  for (int i = 0; i < kClients; ++i)
    EXPECT_EQ(reports[i], env.expected_report) << "client " << i;
  service.stop();
}

TEST(Service, SaturatedQueueRejectsWithBackpressureError) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("backpressure");
  config.queue_limit = 1;
  config.dispatchers = 1;
  config.scan_delay_seconds = 0.25;  // hold the dispatcher so the queue fills
  svc::ScanService service(config);
  service.start();

  auto first = svc::ServiceClient::connect_unix(service.config().socket_path);
  auto second = svc::ServiceClient::connect_unix(service.config().socket_path);
  auto third = svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(first.connected() && second.connected() && third.connected());

  ASSERT_TRUE(first.send(
      svc::scan_request_json(env.firmware_path, env.some_cves, false)));
  ASSERT_EQ(parsed(first.receive().value_or("")).get("type").as_string(),
            "accepted");
  // Wait until the dispatcher owns request 1, so the single queue slot is
  // provably free for request 2 and provably full for request 3.
  for (int i = 0; i < 200 && service.health().queue.active == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(service.health().queue.active, 1u);

  ASSERT_TRUE(second.send(
      svc::scan_request_json(env.firmware_path, env.some_cves, false)));
  ASSERT_EQ(parsed(second.receive().value_or("")).get("type").as_string(),
            "accepted");

  ASSERT_TRUE(third.send(
      svc::scan_request_json(env.firmware_path, env.some_cves, false)));
  const json::Value reject = parsed(third.receive().value_or(""));
  EXPECT_EQ(reject.get("type").as_string(), "error");
  EXPECT_EQ(reject.get("code").as_number(), 429.0);

  // The admitted scans still complete with correct bytes.
  const auto result1 = first.receive();
  const auto result2 = second.receive();
  ASSERT_TRUE(result1 && result2);
  EXPECT_EQ(parsed(*result1).get("report").as_string(), env.expected_report);
  EXPECT_EQ(parsed(*result2).get("report").as_string(), env.expected_report);
  EXPECT_GE(service.health().queue.rejected, 1u);
  service.stop();
}

TEST(Service, CorpusReloadMidScanDropsNoInFlightJobs) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("reload");
  config.dispatchers = 2;
  config.queue_limit = 8;
  config.scan_delay_seconds = 0.1;  // guarantee scans are in flight
  svc::ScanService service(config);
  service.start();

  constexpr int kScans = 4;
  std::vector<svc::ServiceClient> clients;
  for (int i = 0; i < kScans; ++i) {
    clients.push_back(
        svc::ServiceClient::connect_unix(service.config().socket_path));
    ASSERT_TRUE(clients.back().connected());
    ASSERT_TRUE(clients.back().send(
        svc::scan_request_json(env.firmware_path, env.some_cves, false)));
    ASSERT_EQ(
        parsed(clients.back().receive().value_or("")).get("type").as_string(),
        "accepted");
  }

  // Hot-swap the corpus while the scans above are dispatched/queued.
  auto control =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(control.connected());
  const auto reloaded =
      control.call(svc::reload_request_json(std::nullopt, std::nullopt));
  ASSERT_TRUE(reloaded.has_value());
  const json::Value reload_doc = parsed(*reloaded);
  EXPECT_EQ(reload_doc.get("type").as_string(), "reloaded");
  EXPECT_EQ(reload_doc.get("corpus_version").as_number(), 2.0);

  // Zero dropped jobs: every scan yields a full result (under either
  // generation — both are built from the same EvalConfig, so the report
  // bytes are identical too).
  for (int i = 0; i < kScans; ++i) {
    const auto result = clients[i].receive();
    ASSERT_TRUE(result.has_value()) << "scan " << i << " was dropped";
    const json::Value doc = parsed(*result);
    EXPECT_EQ(doc.get("type").as_string(), "result") << *result;
    EXPECT_EQ(doc.get("report").as_string(), env.expected_report);
    const double version = doc.get("corpus_version").as_number();
    EXPECT_TRUE(version == 1.0 || version == 2.0);
  }
  EXPECT_EQ(service.health().corpus_version, 2u);
  service.stop();
}

TEST(Service, PrefilteredReloadMidScanDropsNoJobsAndReportsIndexHealth) {
  // Same hot-reload contract as above, but with the retrieval prefilter
  // live: the new snapshot swaps in a freshly built query catalog while
  // shortlist-scanning jobs are in flight, and every admitted scan still
  // returns the byte-identical exact-scan report (full recall on this
  // corpus — asserted at the engine layer).
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("prefilter_reload");
  config.dispatchers = 2;
  config.queue_limit = 8;
  config.scan_delay_seconds = 0.1;  // guarantee scans are in flight
  config.engine.pipeline.prefilter_mode = retrieval::PrefilterMode::verify;
  config.engine.pipeline.prefilter_min_total = 0;
  svc::ScanService service(config);
  service.start();

  // Health reports the resident catalog before any scan runs.
  const svc::ServiceHealth boot = service.health();
  EXPECT_GT(boot.retrieval_query_codes, 0u);
  const std::string health = service.health_json();
  EXPECT_NE(health.find("\"retrieval\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"query_codes\""), std::string::npos);

  constexpr int kScans = 4;
  std::vector<svc::ServiceClient> clients;
  for (int i = 0; i < kScans; ++i) {
    clients.push_back(
        svc::ServiceClient::connect_unix(service.config().socket_path));
    ASSERT_TRUE(clients.back().connected());
    ASSERT_TRUE(clients.back().send(
        svc::scan_request_json(env.firmware_path, env.some_cves, false)));
    ASSERT_EQ(
        parsed(clients.back().receive().value_or("")).get("type").as_string(),
        "accepted");
  }

  auto control =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(control.connected());
  const auto reloaded =
      control.call(svc::reload_request_json(std::nullopt, std::nullopt));
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(parsed(*reloaded).get("type").as_string(), "reloaded");

  for (int i = 0; i < kScans; ++i) {
    const auto result = clients[i].receive();
    ASSERT_TRUE(result.has_value()) << "scan " << i << " was dropped";
    const json::Value doc = parsed(*result);
    EXPECT_EQ(doc.get("type").as_string(), "result") << *result;
    EXPECT_EQ(doc.get("report").as_string(), env.expected_report);
  }
  EXPECT_EQ(service.health().corpus_version, 2u);
  // The reload rebuilt the catalog for the new generation.
  EXPECT_GT(service.health().retrieval_query_codes, 0u);
  service.stop();
}

TEST(Service, ProtocolErrorsKeepTheConnectionAlive) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("robust");
  config.max_frame_bytes = 128;
  svc::ScanService service(config);
  service.start();
  auto client =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(client.connected());

  // Malformed JSON -> 400, connection survives.
  auto response = client.call("this is not json");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parsed(*response).get("code").as_number(), 400.0);

  // Unknown request type -> 400 naming the type.
  response = client.call("{\"type\":\"frobnicate\"}");
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(parsed(*response).get("message").as_string().find("frobnicate"),
            std::string::npos);

  // Oversized frame -> 413, connection survives.
  response = client.call(std::string(4096, 'x'));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parsed(*response).get("code").as_number(), 413.0);

  // The same connection still answers a well-formed request.
  response = client.call(svc::ping_request_json());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parsed(*response).get("type").as_string(), "pong");
  service.stop();
}

TEST(Service, HealthAndStatusEndpointsReportServiceState) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("health");
  config.queue_limit = 7;
  config.tcp_port = 0;  // also exercise the loopback TCP listener
  svc::ScanService service(config);
  service.start();
  ASSERT_GE(service.tcp_port(), 1);
  auto client = svc::ServiceClient::connect_tcp(service.tcp_port());
  ASSERT_TRUE(client.connected());

  // Unknown request id -> 404.
  auto response = client.call(svc::status_request_json(999));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parsed(*response).get("code").as_number(), 404.0);

  const auto result = submit_scan(client, env.some_cves);
  ASSERT_TRUE(result.has_value());
  const std::uint64_t id = static_cast<std::uint64_t>(
      parsed(*result).get("request_id").as_number());
  response = client.call(svc::status_request_json(id));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parsed(*response).get("state").as_string(), "done");

  // The dispatcher bumps `completed` just after streaming the result.
  for (int i = 0; i < 200 && service.health().queue.completed == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  response = client.call(svc::health_request_json());
  ASSERT_TRUE(response.has_value());
  const json::Value health = parsed(*response);
  EXPECT_EQ(health.get("type").as_string(), "health");
  EXPECT_GE(health.get("uptime_s").as_number(), 0.0);
  EXPECT_EQ(health.get("corpus").get("version").as_number(), 1.0);
  EXPECT_GT(health.get("corpus").get("cves").as_number(), 0.0);
  EXPECT_EQ(health.get("queue").get("capacity").as_number(), 7.0);
  EXPECT_EQ(health.get("queue").get("admitted").as_number(), 1.0);
  EXPECT_EQ(health.get("queue").get("completed").as_number(), 1.0);
  EXPECT_FALSE(health.get("draining").as_bool(true));
  // The per-request heartbeat fed the health endpoint its last snapshot,
  // tagged with the request it belongs to and its corpus generation.
  const json::Value heartbeat = health.get("heartbeat");
  ASSERT_EQ(heartbeat.kind(), json::Value::Kind::object);
  EXPECT_EQ(heartbeat.get("request_id").as_number(),
            static_cast<double>(id));
  EXPECT_EQ(heartbeat.get("corpus_version").as_number(), 1.0);
  const json::Value snapshot = heartbeat.get("snapshot");
  ASSERT_EQ(snapshot.kind(), json::Value::Kind::object);
  const json::Value jobs = snapshot.get("jobs");
  EXPECT_GT(jobs.get("total").as_number(), 0.0);
  EXPECT_EQ(jobs.get("done").as_number(), jobs.get("total").as_number());
  EXPECT_NE(health.get("process").get("rss_kb").kind(),
            json::Value::Kind::null);
  service.stop();
}

TEST(Service, DrainFlushesQueueThenRefusesNewScans) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("drain");
  config.scan_delay_seconds = 0.1;
  svc::ScanService service(config);
  service.start();

  auto scanner =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(scanner.connected());
  ASSERT_TRUE(scanner.send(
      svc::scan_request_json(env.firmware_path, env.some_cves, false)));
  ASSERT_EQ(parsed(scanner.receive().value_or("")).get("type").as_string(),
            "accepted");

  auto control =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(control.connected());
  const auto drained = control.call(svc::drain_request_json());
  ASSERT_TRUE(drained.has_value());
  const json::Value doc = parsed(*drained);
  EXPECT_EQ(doc.get("type").as_string(), "drained");
  EXPECT_EQ(doc.get("completed").as_number(), 1.0);
  // The flag flips just after the response frame is written (the response
  // itself is the queue barrier), so allow the session thread a moment.
  for (int i = 0; i < 400 && !service.drained(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(service.drained());

  // The in-flight scan completed before the drain response...
  const auto result = scanner.receive();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(parsed(*result).get("report").as_string(), env.expected_report);
  // ...and new scans are refused with a 503.
  const auto refused = control.call(
      svc::scan_request_json(env.firmware_path, env.some_cves, false));
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(parsed(*refused).get("code").as_number(), 503.0);
  service.stop();
}

TEST(Service, StopCancelsQueuedScansWithStructuredErrors) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("shutdown");
  config.queue_limit = 8;
  config.dispatchers = 1;
  config.scan_delay_seconds = 0.2;
  svc::ScanService service(config);
  service.start();

  auto running =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  auto queued =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(running.connected() && queued.connected());
  ASSERT_TRUE(running.send(
      svc::scan_request_json(env.firmware_path, env.some_cves, false)));
  ASSERT_EQ(parsed(running.receive().value_or("")).get("type").as_string(),
            "accepted");
  for (int i = 0; i < 200 && service.health().queue.active == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(queued.send(
      svc::scan_request_json(env.firmware_path, env.some_cves, false)));
  ASSERT_EQ(parsed(queued.receive().value_or("")).get("type").as_string(),
            "accepted");

  service.stop();
  // The dispatched scan finished; the queued one was shed with a 503.
  const auto finished = running.receive();
  ASSERT_TRUE(finished.has_value());
  EXPECT_EQ(parsed(*finished).get("type").as_string(), "result");
  const auto cancelled = queued.receive();
  ASSERT_TRUE(cancelled.has_value());
  const json::Value doc = parsed(*cancelled);
  EXPECT_EQ(doc.get("type").as_string(), "error");
  EXPECT_EQ(doc.get("code").as_number(), 503.0);
}

// --- access log / stats / request ids --------------------------------------

std::vector<std::string> read_jsonl_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

/// Asserts the documented access-log key order: every key present, each
/// appearing after the previous one (CI validates the same contract with a
/// separate script; this keeps the order change-detected at unit level).
void expect_access_key_order(const std::string& line) {
  static const char* kKeys[] = {
      "\"type\"",        "\"id\"",          "\"op\"",
      "\"status\"",      "\"outcome\"",     "\"queue_wait_s\"",
      "\"service_s\"",   "\"corpus_version\"", "\"cache_hits\"",
      "\"cache_misses\"", "\"cache_hit_ratio\"", "\"prefilter_recall\"",
      "\"bytes_in\"",    "\"bytes_out\""};
  std::size_t cursor = 0;
  for (const char* key : kKeys) {
    const std::size_t at = line.find(key, cursor);
    ASSERT_NE(at, std::string::npos) << key << " missing/out of order: "
                                     << line;
    cursor = at;
  }
}

TEST(Service, AccessLogAndStatsReconcileAcrossEndpoints) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("accesslog");
  const std::string log_path =
      (std::filesystem::path(config.socket_path).parent_path() /
       "access.jsonl")
          .string();
  config.access_log.enabled = true;
  config.access_log.file = log_path;
  svc::ScanService service(config);
  service.start();
  auto client =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(client.connected());

  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(client.call(svc::ping_request_json()).has_value());
  ASSERT_TRUE(client.call(svc::health_request_json()).has_value());
  const auto result = submit_scan(client, env.some_cves);
  ASSERT_TRUE(result.has_value());
  const json::Value result_doc = parsed(*result);
  ASSERT_EQ(result_doc.get("type").as_string(), "result");
  const auto id =
      static_cast<std::uint64_t>(result_doc.get("request_id").as_number());
  ASSERT_TRUE(client.call(svc::status_request_json(id)).has_value());

  // The stats response reconciles with everything recorded so far.
  const auto stats_response = client.call(svc::stats_request_json());
  ASSERT_TRUE(stats_response.has_value());
  const json::Value stats = parsed(*stats_response);
  EXPECT_EQ(stats.get("type").as_string(), "stats");
  EXPECT_EQ(stats.get("schema_version").as_number(), 1.0);
  EXPECT_EQ(stats.get("corpus").get("version").as_number(), 1.0);
  EXPECT_EQ(stats.get("queue").get("completed").as_number(), 1.0);
  const json::Value endpoints = stats.get("rollup").get("endpoints");
  EXPECT_EQ(endpoints.get("ping").get("total").get("count").as_number(), 3.0);
  EXPECT_EQ(endpoints.get("health").get("total").get("count").as_number(),
            1.0);
  EXPECT_EQ(endpoints.get("status").get("total").get("count").as_number(),
            1.0);
  EXPECT_EQ(endpoints.get("scan").get("total").get("count").as_number(), 1.0);
  EXPECT_EQ(endpoints.get("scan").get("errors").as_number(), 0.0);
  EXPECT_EQ(stats.get("rollup").get("corpus_version").as_number(), 1.0);
  service.stop();

  // One line per completed request, keys in documented order, and the scan
  // line's id matches the id the wire protocol reported.
  const std::vector<std::string> lines = read_jsonl_lines(log_path);
  std::size_t pings = 0, healths = 0, scans = 0, statuses = 0, stats_n = 0;
  for (const std::string& line : lines) {
    expect_access_key_order(line);
    const json::Value entry = parsed(line);
    EXPECT_EQ(entry.get("type").as_string(), "access");
    EXPECT_GT(entry.get("bytes_in").as_number(), 0.0);
    EXPECT_GT(entry.get("bytes_out").as_number(), 0.0);
    const std::string op = entry.get("op").as_string();
    if (op == "ping") ++pings;
    if (op == "health") ++healths;
    if (op == "status") ++statuses;
    if (op == "stats") ++stats_n;
    if (op == "scan") {
      ++scans;
      EXPECT_EQ(entry.get("id").as_number(), static_cast<double>(id));
      EXPECT_EQ(entry.get("status").as_number(), 200.0);
      EXPECT_EQ(entry.get("outcome").as_string(), "ok");
      EXPECT_EQ(entry.get("corpus_version").as_number(), 1.0);
      EXPECT_GT(entry.get("service_s").as_number(), 0.0);
      // A cold scan does real cache lookups, so the ratio is a number.
      EXPECT_EQ(entry.get("cache_hit_ratio").kind(),
                json::Value::Kind::number);
      EXPECT_GT(entry.get("cache_misses").as_number(), 0.0);
      // No verify-mode prefilter in this run -> explicit null.
      EXPECT_TRUE(entry.get("prefilter_recall").is_null());
    }
  }
  EXPECT_EQ(pings, 3u);
  EXPECT_EQ(healths, 1u);
  EXPECT_EQ(scans, 1u);
  EXPECT_EQ(statuses, 1u);
  EXPECT_EQ(stats_n, 1u);
  EXPECT_EQ(lines.size(), 7u);
}

TEST(Service, SaturatedQueueShowsQueueWaitInAccessLogAndRollup) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("queuewait");
  const std::string log_path =
      (std::filesystem::path(config.socket_path).parent_path() /
       "access.jsonl")
          .string();
  config.access_log.enabled = true;
  config.access_log.file = log_path;
  config.queue_limit = 4;
  config.dispatchers = 1;
  config.scan_delay_seconds = 0.15;  // hold the dispatcher so scans queue up
  svc::ScanService service(config);
  service.start();

  const std::vector<std::string> one_cve = {env.some_cves.front()};
  std::vector<svc::ServiceClient> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(
        svc::ServiceClient::connect_unix(service.config().socket_path));
    ASSERT_TRUE(clients.back().connected());
    ASSERT_TRUE(clients.back().send(
        svc::scan_request_json(env.firmware_path, one_cve, false)));
    ASSERT_EQ(
        parsed(clients.back().receive().value_or("")).get("type").as_string(),
        "accepted");
  }
  for (auto& client : clients)
    ASSERT_TRUE(client.receive().has_value());

  auto control =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(control.connected());
  const auto stats_response = control.call(svc::stats_request_json());
  ASSERT_TRUE(stats_response.has_value());
  const json::Value rollup = parsed(*stats_response).get("rollup");
  // Scans 2 and 3 sat behind a 0.15s dispatcher: both high-water marks and
  // the windowed per-endpoint wait maximum must show it.
  EXPECT_GE(rollup.get("queue").get("depth_hwm").as_number(), 1.0);
  EXPECT_GT(rollup.get("queue").get("wait_hwm_s").as_number(), 0.05);
  EXPECT_GT(
      rollup.get("endpoints").get("scan").get("wait_max_s").as_number(),
      0.05);
  service.stop();

  std::size_t waited = 0;
  for (const std::string& line : read_jsonl_lines(log_path)) {
    const json::Value entry = parsed(line);
    if (entry.get("op").as_string() != "scan") continue;
    EXPECT_GE(entry.get("queue_wait_s").as_number(), 0.0);
    if (entry.get("queue_wait_s").as_number() > 0.05) ++waited;
  }
  EXPECT_GE(waited, 1u);
}

TEST(Service, RequestIdsStayUniqueAcrossClientStormAndReload) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("idstorm");
  config.dispatchers = 2;
  config.queue_limit = 32;
  config.scan_delay_seconds = 0.05;  // keep the queue busy during the reload
  svc::ScanService service(config);
  service.start();

  const std::vector<std::string> one_cve = {env.some_cves.front()};
  constexpr int kThreads = 4;
  constexpr int kScansPerThread = 3;
  std::mutex ids_mutex;
  std::vector<std::uint64_t> accepted_ids;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kScansPerThread; ++i) {
        auto client =
            svc::ServiceClient::connect_unix(service.config().socket_path);
        if (!client.connected()) return;
        if (!client.send(
                svc::scan_request_json(env.firmware_path, one_cve, false)))
          return;
        const auto first = client.receive();
        if (!first) return;
        const json::Value accepted = parsed(*first);
        if (accepted.get("type").as_string() != "accepted") return;
        const auto id = static_cast<std::uint64_t>(
            accepted.get("request_id").as_number());
        const auto result = client.receive();
        if (!result) return;
        // The result echoes the id the accept frame promised.
        EXPECT_EQ(parsed(*result).get("request_id").as_number(),
                  static_cast<double>(id));
        std::lock_guard<std::mutex> lock(ids_mutex);
        accepted_ids.push_back(id);
      }
    });
  // Hot-reload mid-storm: id assignment must not stutter or repeat across
  // the corpus generation swap.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service.reload(std::nullopt, std::nullopt);
  for (std::thread& thread : threads) thread.join();

  ASSERT_EQ(accepted_ids.size(),
            static_cast<std::size_t>(kThreads * kScansPerThread));
  const std::set<std::uint64_t> unique(accepted_ids.begin(),
                                       accepted_ids.end());
  EXPECT_EQ(unique.size(), accepted_ids.size());
  service.stop();
}

TEST(Service, ClientSuppliedRequestIdsHonoredAndDuplicatesRejected) {
  const ServiceUniverse& env = universe();
  svc::ScanService service(universe().service_config("namedids"));
  service.start();
  auto client =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(client.connected());
  const std::vector<std::string> one_cve = {env.some_cves.front()};

  // The daemon honors the client's id end to end.
  ASSERT_TRUE(client.send(svc::scan_request_json(env.firmware_path, one_cve,
                                                 false, /*request_id=*/500)));
  const json::Value accepted = parsed(client.receive().value_or(""));
  ASSERT_EQ(accepted.get("type").as_string(), "accepted");
  EXPECT_EQ(accepted.get("request_id").as_number(), 500.0);
  const json::Value result = parsed(client.receive().value_or(""));
  ASSERT_EQ(result.get("type").as_string(), "result");
  EXPECT_EQ(result.get("request_id").as_number(), 500.0);

  // Reusing a live id is a structured conflict, and the original request's
  // state survives the collision untouched.
  ASSERT_TRUE(client.send(svc::scan_request_json(env.firmware_path, one_cve,
                                                 false, /*request_id=*/500)));
  const json::Value conflict = parsed(client.receive().value_or(""));
  EXPECT_EQ(conflict.get("type").as_string(), "error");
  EXPECT_EQ(conflict.get("code").as_number(), 409.0);
  const auto status = client.call(svc::status_request_json(500));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(parsed(*status).get("state").as_string(), "done");

  // Auto-assignment continues above the claimed id — never inside it.
  const auto next = submit_scan(client, one_cve);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(parsed(*next).get("request_id").as_number(), 501.0);
  service.stop();
}

// --- profiler capture / durable shutdown -----------------------------------

TEST(Service, ProfileCaptureOverSocketWith409DoubleStartGuard) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("profile");
  const std::string log_path =
      (std::filesystem::path(config.socket_path).parent_path() /
       "access.jsonl")
          .string();
  config.access_log.enabled = true;
  config.access_log.file = log_path;
  svc::ScanService service(config);
  service.start();

  auto capturer =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  auto intruder =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  auto scanner =
      svc::ServiceClient::connect_unix(service.config().socket_path);
  ASSERT_TRUE(capturer.connected() && intruder.connected() &&
              scanner.connected());

  // Kick off a capture, then wait until the (process-global) profiler is
  // provably live so the second request races against a running capture,
  // not against session-thread scheduling.
  ASSERT_TRUE(capturer.send(svc::profile_request_json(0.6, 200)));
  for (int i = 0; i < 400 && !obs::Profiler::global().running(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(obs::Profiler::global().running());

  // A concurrent start is a structured conflict, not a queue or a crash.
  const auto conflict = intruder.call(svc::profile_request_json(0.2, 97));
  ASSERT_TRUE(conflict.has_value());
  const json::Value conflict_doc = parsed(*conflict);
  EXPECT_EQ(conflict_doc.get("type").as_string(), "error");
  EXPECT_EQ(conflict_doc.get("code").as_number(), 409.0);

  // Give the sampler real spans to catch while the window is open.
  const auto scanned = submit_scan(scanner, env.some_cves);
  ASSERT_TRUE(scanned.has_value());

  const auto response = capturer.receive();
  ASSERT_TRUE(response.has_value());
  const json::Value doc = parsed(*response);
  EXPECT_EQ(doc.get("type").as_string(), "profile");
  EXPECT_DOUBLE_EQ(doc.get("seconds").as_number(), 0.6);
  EXPECT_DOUBLE_EQ(doc.get("hz").as_number(), 200.0);
  EXPECT_GT(doc.get("sweeps").as_number(), 0.0);
  EXPECT_EQ(doc.get("folded").kind(), json::Value::Kind::string);
  // The top table always carries its header, samples or not.
  EXPECT_NE(doc.get("top").as_string().find("self"), std::string::npos);
  EXPECT_FALSE(obs::Profiler::global().running());

  // The stats surface reflects the finished capture, survives the hard
  // shape check, and feeds the `top` dashboard a profiler row.
  const auto stats_response = intruder.call(svc::stats_request_json());
  ASSERT_TRUE(stats_response.has_value());
  const json::Value stats = parsed(*stats_response);
  const json::Value profile = stats.get("profile");
  ASSERT_EQ(profile.kind(), json::Value::Kind::object);
  EXPECT_EQ(profile.get("captures").as_number(), 1.0);
  EXPECT_FALSE(profile.get("running").as_bool(true));
  EXPECT_EQ(profile.get("last").kind(), json::Value::Kind::object);
  EXPECT_GT(profile.get("last").get("sweeps").as_number(), 0.0);
  std::string error;
  EXPECT_TRUE(svc::validate_stats(stats, &error)) << error;
  EXPECT_NE(svc::render_top(stats).find("profiler"), std::string::npos);
  service.stop();

  // Both capture outcomes — the 200 and the 409 — hit the access log.
  std::size_t ok_captures = 0, conflicts = 0;
  for (const std::string& line : read_jsonl_lines(log_path)) {
    const json::Value entry = parsed(line);
    if (entry.get("op").as_string() != "profile") continue;
    if (entry.get("status").as_number() == 200.0) ++ok_captures;
    if (entry.get("status").as_number() == 409.0) ++conflicts;
  }
  EXPECT_EQ(ok_captures, 1u);
  EXPECT_EQ(conflicts, 1u);
}

TEST(Service, ValidateStatsNamesTheFirstMissingPiece) {
  const auto check = [](const std::string& text) {
    std::string error;
    const auto doc = json::parse(text);
    EXPECT_TRUE(doc.has_value()) << text;
    const bool ok = svc::validate_stats(doc.value_or(json::Value()), &error);
    return std::make_pair(ok, error);
  };

  // Minimal document satisfying the hard shape check.
  const std::string valid =
      "{\"type\":\"stats\",\"schema_version\":1,\"uptime_s\":0.5,"
      "\"corpus\":{},\"queue\":{},"
      "\"rollup\":{\"window_s\":60,\"le\":[0.001],\"endpoints\":{}}}";
  EXPECT_TRUE(check(valid).first) << check(valid).second;

  EXPECT_FALSE(check("[1,2]").first);
  EXPECT_FALSE(check("{\"type\":\"result\"}").first);
  const auto no_version = check("{\"type\":\"stats\"}");
  EXPECT_FALSE(no_version.first);
  EXPECT_NE(no_version.second.find("schema_version"), std::string::npos);
  // A truncated response missing its rollup block must not render as a
  // dashboard of zeros.
  const auto no_rollup = check(
      "{\"type\":\"stats\",\"schema_version\":1,\"uptime_s\":1,"
      "\"corpus\":{},\"queue\":{}}");
  EXPECT_FALSE(no_rollup.first);
  EXPECT_NE(no_rollup.second.find("rollup"), std::string::npos);
  const auto bad_le = check(
      "{\"type\":\"stats\",\"schema_version\":1,\"uptime_s\":1,"
      "\"corpus\":{},\"queue\":{},"
      "\"rollup\":{\"window_s\":60,\"le\":\"oops\",\"endpoints\":{}}}");
  EXPECT_FALSE(bad_le.first);
}

TEST(Service, ShutdownMidStormLeavesDurableAccessLogThatReconciles) {
  const ServiceUniverse& env = universe();
  svc::ServiceConfig config = env.service_config("durablelog");
  const std::string log_path =
      (std::filesystem::path(config.socket_path).parent_path() /
       "access.jsonl")
          .string();
  config.access_log.enabled = true;
  config.access_log.file = log_path;
  config.dispatchers = 1;
  config.queue_limit = 8;
  config.scan_delay_seconds = 0.2;  // hold the dispatcher so scans pile up
  svc::ScanService service(config);
  service.start();

  // Storm: four accepted scans, at most one in flight — the rest are queued
  // when the service is torn down, exactly the SIGINT/SIGTERM path.
  const std::vector<std::string> one_cve = {env.some_cves.front()};
  std::vector<svc::ServiceClient> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(
        svc::ServiceClient::connect_unix(service.config().socket_path));
    ASSERT_TRUE(clients.back().connected());
    ASSERT_TRUE(clients.back().send(
        svc::scan_request_json(env.firmware_path, one_cve, false)));
    ASSERT_EQ(
        parsed(clients.back().receive().value_or("")).get("type").as_string(),
        "accepted");
  }
  service.stop();

  // Tally what the clients actually saw: completions and 503 cancellations.
  std::size_t client_ok = 0, client_cancelled = 0;
  for (auto& client : clients) {
    const auto final_frame = client.receive();
    ASSERT_TRUE(final_frame.has_value());
    const json::Value doc = parsed(*final_frame);
    if (doc.get("type").as_string() == "result") {
      ++client_ok;
    } else {
      EXPECT_EQ(doc.get("code").as_number(), 503.0);
      ++client_cancelled;
    }
  }
  ASSERT_EQ(client_ok + client_cancelled, 4u);
  EXPECT_GE(client_cancelled, 1u);  // the 0.2s delay guarantees a backlog

  // The flushed+fsynced log reconciles line-for-line with those responses:
  // every scan the clients heard about is durably on disk, each line whole
  // and in documented key order.
  std::size_t log_ok = 0, log_cancelled = 0;
  for (const std::string& line : read_jsonl_lines(log_path)) {
    expect_access_key_order(line);
    const json::Value entry = parsed(line);
    if (entry.get("op").as_string() != "scan") continue;
    const std::string outcome = entry.get("outcome").as_string();
    if (outcome == "ok") ++log_ok;
    if (outcome == "cancelled") {
      EXPECT_EQ(entry.get("status").as_number(), 503.0);
      ++log_cancelled;
    }
  }
  EXPECT_EQ(log_ok, client_ok);
  EXPECT_EQ(log_cancelled, client_cancelled);
}

}  // namespace
}  // namespace patchecko
