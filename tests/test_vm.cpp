// Tests for the VM: trap semantics, the memory model, the runtime library,
// and exact dynamic-feature accounting on hand-assembled code.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "source/generator.h"
#include "vm/machine.h"

namespace patchecko {
namespace {

// Hand-assembles a library with one function made of `code`.
LibraryBinary asm_lib(std::vector<Instruction> code,
                      std::vector<ValueType> params = {},
                      std::vector<std::string> strings = {}) {
  LibraryBinary lib;
  lib.name = "asm";
  lib.arch = Arch::amd64;
  lib.strings = std::move(strings);
  FunctionBinary fn;
  fn.name = "f";
  fn.arch = Arch::amd64;
  fn.code = std::move(code);
  fn.param_types = std::move(params);
  lib.functions.push_back(std::move(fn));
  return lib;
}

Instruction I(Opcode op, std::uint8_t dst = reg::none,
              std::uint8_t a = reg::none, std::uint8_t b = reg::none,
              std::int64_t imm = 0, std::int32_t target = -1) {
  Instruction inst;
  inst.op = op;
  inst.dst = dst;
  inst.src1 = a;
  inst.src2 = b;
  inst.imm = imm;
  inst.target = target;
  return inst;
}

TEST(Vm, ReturnsR0) {
  const auto lib = asm_lib({I(Opcode::ldi, 0, reg::none, reg::none, 99),
                            I(Opcode::ret)});
  const Machine machine(lib);
  CallEnv env;
  const RunResult r = machine.run(0, env);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret, 99);
}

TEST(Vm, ArgumentsArriveInRegisters) {
  const auto lib = asm_lib({I(Opcode::add, 0, 0, 1), I(Opcode::ret)},
                           {ValueType::i64, ValueType::i64});
  const Machine machine(lib);
  CallEnv env;
  env.args = {Value::from_int(30), Value::from_int(12)};
  EXPECT_EQ(machine.run(0, env).ret, 42);
}

TEST(Vm, DivByZeroTraps) {
  const auto lib = asm_lib({I(Opcode::ldi, 0, reg::none, reg::none, 5),
                            I(Opcode::ldi, 1, reg::none, reg::none, 0),
                            I(Opcode::divi, 2, 0, 1), I(Opcode::ret)});
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).status, ExecStatus::trap_div_zero);
}

TEST(Vm, RunningPastEndTraps) {
  const auto lib = asm_lib({I(Opcode::nop)});
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).status, ExecStatus::trap_type);
}

TEST(Vm, StepLimitStopsInfiniteLoop) {
  const auto lib =
      asm_lib({I(Opcode::jmp, reg::none, reg::none, reg::none, 0, 0)});
  MachineConfig config;
  config.step_limit = 500;
  const Machine machine(lib, config);
  CallEnv env;
  const RunResult r = machine.run(0, env);
  EXPECT_EQ(r.status, ExecStatus::trap_step_limit);
  EXPECT_EQ(r.steps, 501u);
}

TEST(Vm, BufferAccessAndPersistence) {
  // storeb buf[2] = 7; return loadb buf[2].
  const auto lib = asm_lib(
      {I(Opcode::ldi, 1, reg::none, reg::none, 7),
       I(Opcode::storeb, reg::none, 0, 1, 2),
       I(Opcode::loadb, 0, 0, reg::none, 2), I(Opcode::ret)},
      {ValueType::ptr});
  const Machine machine(lib);
  CallEnv env;
  env.buffers.push_back({0, 0, 0, 0});
  env.args.push_back(Value::from_ptr(0));
  const RunResult r = machine.run(0, env);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret, 7);
  EXPECT_EQ(r.buffers_after[0][2], 7);
}

TEST(Vm, BufferOverrunTraps) {
  const auto lib = asm_lib(
      {I(Opcode::loadb, 0, 0, reg::none, 64), I(Opcode::ret)},
      {ValueType::ptr});
  const Machine machine(lib);
  CallEnv env;
  env.buffers.push_back({1, 2, 3});
  env.args.push_back(Value::from_ptr(0));
  EXPECT_EQ(machine.run(0, env).status, ExecStatus::trap_oob);
}

TEST(Vm, GuardGapBetweenBuffersTraps) {
  // Even with two buffers mapped, overrunning the first lands in a guard
  // gap, not in the second buffer.
  const auto lib = asm_lib(
      {I(Opcode::loadb, 0, 0, reg::none, 8), I(Opcode::ret)},
      {ValueType::ptr, ValueType::ptr});
  const Machine machine(lib);
  CallEnv env;
  env.buffers.push_back({1, 2, 3, 4, 5, 6, 7, 8});
  env.buffers.push_back({9, 9});
  env.args.push_back(Value::from_ptr(0));
  env.args.push_back(Value::from_ptr(1));
  EXPECT_EQ(machine.run(0, env).status, ExecStatus::trap_oob);
}

TEST(Vm, StringPoolIsReadOnly) {
  const auto lib = asm_lib(
      {I(Opcode::ldstr, 0, reg::none, reg::none, 0),
       I(Opcode::ldi, 1, reg::none, reg::none, 65),
       I(Opcode::storeb, reg::none, 0, 1, 0), I(Opcode::ret)},
      {}, {"const"});
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).status, ExecStatus::trap_oob);
}

TEST(Vm, StringPoolReadableWithNul) {
  const auto lib = asm_lib(
      {I(Opcode::ldstr, 0, reg::none, reg::none, 0),
       I(Opcode::loadb, 0, 0, reg::none, 2), I(Opcode::ret)},
      {}, {"abc"});
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).ret, 'c');
}

TEST(Vm, PushPopRoundTrip) {
  const auto lib = asm_lib({I(Opcode::ldi, 0, reg::none, reg::none, 314),
                            I(Opcode::push, reg::none, 0),
                            I(Opcode::ldi, 0, reg::none, reg::none, 0),
                            I(Opcode::pop, 0), I(Opcode::ret)});
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).ret, 314);
}

TEST(Vm, StackOverflowTraps) {
  // frame larger than the whole stack, then a spill store.
  const auto lib = asm_lib(
      {I(Opcode::frame, reg::none, reg::none, reg::none, 1 << 20),
       I(Opcode::store, reg::none, reg::fp, 0, 0), I(Opcode::ret)});
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).status, ExecStatus::trap_oob);
}

TEST(Vm, MallocGivesZeroedHeap) {
  const auto lib = asm_lib(
      {I(Opcode::ldi, 0, reg::none, reg::none, 32),
       I(Opcode::libcall, reg::none, reg::none, reg::none,
         static_cast<std::int64_t>(LibFn::malloc)),
       I(Opcode::loadb, 0, 0, reg::none, 31), I(Opcode::ret)});
  const Machine machine(lib);
  CallEnv env;
  const RunResult r = machine.run(0, env);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret, 0);
  EXPECT_GT(r.features.mem_heap, 0u);
}

TEST(Vm, CallPreservesCallerRegisters) {
  // Callee (fn 1) clobbers its own r5; caller keeps its r5.
  LibraryBinary lib = asm_lib({});
  lib.functions.clear();
  FunctionBinary caller;
  caller.name = "caller";
  caller.code = {I(Opcode::ldi, 5, reg::none, reg::none, 111),
                 I(Opcode::call, reg::none, reg::none, reg::none, 1),
                 I(Opcode::mov, 0, 5), I(Opcode::ret)};
  FunctionBinary callee;
  callee.name = "callee";
  callee.code = {I(Opcode::ldi, 5, reg::none, reg::none, 222),
                 I(Opcode::ldi, 0, reg::none, reg::none, 0),
                 I(Opcode::ret)};
  lib.functions = {caller, callee};
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).ret, 111);
}

TEST(Vm, CallReturnsValueInR0) {
  LibraryBinary lib = asm_lib({});
  lib.functions.clear();
  FunctionBinary caller;
  caller.code = {I(Opcode::call, reg::none, reg::none, reg::none, 1),
                 I(Opcode::ret)};
  FunctionBinary callee;
  callee.code = {I(Opcode::ldi, 0, reg::none, reg::none, 77),
                 I(Opcode::ret)};
  lib.functions = {caller, callee};
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).ret, 77);
}

TEST(Vm, RecursionDepthBounded) {
  LibraryBinary lib = asm_lib({});
  lib.functions.clear();
  FunctionBinary self;
  self.code = {I(Opcode::call, reg::none, reg::none, reg::none, 0),
               I(Opcode::ret)};
  lib.functions = {self};
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).status, ExecStatus::trap_step_limit);
}

TEST(Vm, InvalidCalleeTraps) {
  const auto lib = asm_lib(
      {I(Opcode::call, reg::none, reg::none, reg::none, 42),
       I(Opcode::ret)});
  const Machine machine(lib);
  CallEnv env;
  EXPECT_EQ(machine.run(0, env).status, ExecStatus::trap_type);
}


TEST(Vm, CallrDispatchesThroughRegister) {
  LibraryBinary lib = asm_lib({});
  lib.functions.clear();
  FunctionBinary dispatcher;
  // r1 holds callee id (arg 1); callr r1.
  dispatcher.code = {I(Opcode::mov, 2, 1),
                     I(Opcode::callr, reg::none, 2),
                     I(Opcode::ret)};
  dispatcher.param_types = {ValueType::i64, ValueType::i64};
  FunctionBinary a, b;
  a.code = {I(Opcode::ldi, 0, reg::none, reg::none, 10), I(Opcode::ret)};
  b.code = {I(Opcode::ldi, 0, reg::none, reg::none, 20), I(Opcode::ret)};
  lib.functions = {dispatcher, a, b};
  const Machine machine(lib);
  CallEnv env;
  env.args = {Value::from_int(0), Value::from_int(1)};
  EXPECT_EQ(machine.run(0, env).ret, 10);
  env.args = {Value::from_int(0), Value::from_int(2)};
  EXPECT_EQ(machine.run(0, env).ret, 20);
  env.args = {Value::from_int(0), Value::from_int(99)};  // bad id
  EXPECT_EQ(machine.run(0, env).status, ExecStatus::trap_type);
}

// --- dynamic feature accounting --------------------------------------------------

TEST(VmFeatures, InstructionAndClassCounts) {
  const auto lib = asm_lib({I(Opcode::ldi, 0, reg::none, reg::none, 1),
                            I(Opcode::ldi, 1, reg::none, reg::none, 2),
                            I(Opcode::add, 2, 0, 1),
                            I(Opcode::mul, 2, 2, 1),
                            I(Opcode::ret)});
  const Machine machine(lib);
  CallEnv env;
  const RunResult r = machine.run(0, env);
  EXPECT_EQ(r.features.instructions, 5u);
  EXPECT_EQ(r.features.unique_instructions, 5u);
  EXPECT_EQ(r.features.arith_instructions, 2u);
  EXPECT_EQ(r.features.branch_instructions, 0u);
}

TEST(VmFeatures, UniqueVsTotalInLoop) {
  // Loop body of 3 instructions executed 4 times.
  const auto lib = asm_lib({
      I(Opcode::ldi, 0, reg::none, reg::none, 4),    // 0: counter
      I(Opcode::ldi, 1, reg::none, reg::none, 1),    // 1
      I(Opcode::sub, 0, 0, 1),                       // 2
      I(Opcode::bne, reg::none, 0, reg::none, 0, 2), // 3: loop to 2
      I(Opcode::ret),                                // 4
  });
  const Machine machine(lib);
  CallEnv env;
  const RunResult r = machine.run(0, env);
  EXPECT_EQ(r.features.unique_instructions, 5u);
  EXPECT_EQ(r.features.instructions, 2u + 4u * 2u + 1u);
  EXPECT_EQ(r.features.branch_instructions, 4u);
  EXPECT_EQ(r.features.max_branch_frequency, 4u);
  EXPECT_EQ(r.features.max_arith_frequency, 4u);  // the sub
}

TEST(VmFeatures, MemoryRegionAttribution) {
  const auto lib = asm_lib(
      {I(Opcode::loadb, 1, 0, reg::none, 0),         // anon
       I(Opcode::push, reg::none, 1),                // stack write
       I(Opcode::pop, 1),                            // stack read
       I(Opcode::ldstr, 2, reg::none, reg::none, 0),
       I(Opcode::loadb, 3, 2, reg::none, 0),         // lib
       I(Opcode::ret)},
      {ValueType::ptr}, {"s"});
  const Machine machine(lib);
  CallEnv env;
  env.buffers.push_back({42});
  env.args.push_back(Value::from_ptr(0));
  const RunResult r = machine.run(0, env);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.features.mem_anon, 1u);
  EXPECT_EQ(r.features.mem_stack, 2u);
  EXPECT_EQ(r.features.mem_lib, 1u);
  EXPECT_EQ(r.features.mem_heap, 0u);
  EXPECT_EQ(r.features.load_instructions, 3u);  // loadb + pop + loadb
  EXPECT_EQ(r.features.store_instructions, 1u); // push
}

TEST(VmFeatures, CallAndSyscallCounters) {
  LibraryBinary lib = asm_lib({});
  lib.functions.clear();
  FunctionBinary caller;
  caller.code = {
      I(Opcode::call, reg::none, reg::none, reg::none, 1),
      I(Opcode::libcall, reg::none, reg::none, reg::none,
        static_cast<std::int64_t>(LibFn::abs64)),
      I(Opcode::syscall, reg::none, reg::none, reg::none,
        static_cast<std::int64_t>(Sys::sys_getpid)),
      I(Opcode::ret)};
  FunctionBinary callee;
  callee.code = {I(Opcode::ret)};
  lib.functions = {caller, callee};
  const Machine machine(lib);
  CallEnv env;
  const RunResult r = machine.run(0, env);
  EXPECT_EQ(r.features.binary_fun_calls, 1u);
  EXPECT_EQ(r.features.library_calls, 1u);
  EXPECT_EQ(r.features.syscalls, 1u);
  EXPECT_EQ(r.features.call_instructions, 3u);
}

TEST(VmFeatures, StackDepthBottomsAtTwo) {
  const auto lib = asm_lib({I(Opcode::ldi, 0, reg::none, reg::none, 0),
                            I(Opcode::ret)});
  const Machine machine(lib);
  CallEnv env;
  const RunResult r = machine.run(0, env);
  EXPECT_DOUBLE_EQ(r.features.min_stack_depth, 2.0);
  EXPECT_DOUBLE_EQ(r.features.max_stack_depth, 2.0);
  EXPECT_DOUBLE_EQ(r.features.std_stack_depth, 0.0);
}

TEST(VmFeatures, NestedCallRaisesDepth) {
  LibraryBinary lib = asm_lib({});
  lib.functions.clear();
  FunctionBinary caller;
  caller.code = {I(Opcode::call, reg::none, reg::none, reg::none, 1),
                 I(Opcode::ret)};
  FunctionBinary callee;
  callee.code = {I(Opcode::nop), I(Opcode::ret)};
  lib.functions = {caller, callee};
  const Machine machine(lib);
  CallEnv env;
  const RunResult r = machine.run(0, env);
  EXPECT_DOUBLE_EQ(r.features.min_stack_depth, 2.0);
  EXPECT_DOUBLE_EQ(r.features.max_stack_depth, 3.0);
}

TEST(VmFeatures, DisablingCollectionZeroesCounters) {
  const auto lib = asm_lib({I(Opcode::ldi, 0, reg::none, reg::none, 1),
                            I(Opcode::ret)});
  MachineConfig config;
  config.collect_features = false;
  const Machine machine(lib, config);
  CallEnv env;
  const RunResult r = machine.run(0, env);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.features.instructions, 0u);
}

TEST(VmFeatures, DeterministicAcrossRuns) {
  const SourceLibrary src = generate_library("det", 0xD, 8);
  const LibraryBinary lib = compile_library(src, Arch::arm64, OptLevel::O2);
  const Machine machine(lib);
  CallEnv env;
  env.buffers.push_back(std::vector<std::uint8_t>(32, 5));
  env.args.push_back(Value::from_ptr(0));
  env.args.push_back(Value::from_int(32));
  env.args.push_back(Value::from_int(3));
  const RunResult a = machine.run(2, env);
  const RunResult b = machine.run(2, env);
  EXPECT_EQ(static_cast<int>(a.status), static_cast<int>(b.status));
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.features.to_vector(), b.features.to_vector());
}

}  // namespace
}  // namespace patchecko
