// Tests for the 48-feature static extractor (Table I) and the normalizer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "compiler/compiler.h"
#include "features/static_features.h"
#include "source/generator.h"

namespace patchecko {
namespace {

Instruction I(Opcode op, std::uint8_t dst = reg::none,
              std::uint8_t a = reg::none, std::uint8_t b = reg::none,
              std::int64_t imm = 0, std::int32_t target = -1) {
  Instruction inst;
  inst.op = op;
  inst.dst = dst;
  inst.src1 = a;
  inst.src2 = b;
  inst.imm = imm;
  inst.target = target;
  return inst;
}

// Feature indices from Table I ordering.
constexpr std::size_t f_num_constant = 0;
constexpr std::size_t f_num_string = 1;
constexpr std::size_t f_num_inst = 2;
constexpr std::size_t f_size_local = 3;
constexpr std::size_t f_num_import = 5;
constexpr std::size_t f_num_cx = 7;
constexpr std::size_t f_num_bb = 17;
constexpr std::size_t f_num_edge = 18;
constexpr std::size_t f_cyclomatic = 19;
constexpr std::size_t f_fcb_ret = 22;
constexpr std::size_t f_sum_arith = 37;

TEST(StaticFeatures, NamesDistinctAndComplete) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < static_feature_count; ++i)
    names.insert(static_feature_name(i));
  EXPECT_EQ(names.size(), static_feature_count);
}

TEST(StaticFeatures, StraightLineFunctionCounts) {
  FunctionBinary fn;
  fn.arch = Arch::amd64;
  fn.frame_size = 16;
  fn.code = {I(Opcode::ldi, 0, reg::none, reg::none, 5),
             I(Opcode::ldi, 1, reg::none, reg::none, 6),
             I(Opcode::add, 2, 0, 1),
             I(Opcode::ret)};
  const StaticFeatureVector f = extract_static_features(fn);
  EXPECT_DOUBLE_EQ(f[f_num_constant], 2.0);
  EXPECT_DOUBLE_EQ(f[f_num_inst], 4.0);
  EXPECT_DOUBLE_EQ(f[f_size_local], 16.0);
  EXPECT_DOUBLE_EQ(f[f_num_bb], 1.0);
  EXPECT_DOUBLE_EQ(f[f_num_edge], 0.0);
  EXPECT_DOUBLE_EQ(f[f_fcb_ret], 1.0);
  EXPECT_DOUBLE_EQ(f[f_sum_arith], 1.0);  // one add
  // Cyclomatic complexity of a single-block function: 0 - 1 + 2 = 1.
  EXPECT_DOUBLE_EQ(f[f_cyclomatic], 1.0);
}

TEST(StaticFeatures, DiamondRaisesCyclomatic) {
  FunctionBinary fn;
  fn.arch = Arch::amd64;
  fn.code = {I(Opcode::cmp, 0, 0, 1),
             I(Opcode::beq, reg::none, 0, reg::none, 0, 4),
             I(Opcode::ldi, 0, reg::none, reg::none, 1),
             I(Opcode::jmp, reg::none, reg::none, reg::none, 0, 5),
             I(Opcode::ldi, 0, reg::none, reg::none, 2),
             I(Opcode::ret)};
  const StaticFeatureVector f = extract_static_features(fn);
  EXPECT_DOUBLE_EQ(f[f_num_bb], 4.0);
  EXPECT_DOUBLE_EQ(f[f_num_edge], 4.0);
  EXPECT_DOUBLE_EQ(f[f_cyclomatic], 2.0);
}

TEST(StaticFeatures, ImportsCountDistinctLibFns) {
  FunctionBinary fn;
  fn.arch = Arch::amd64;
  fn.code = {I(Opcode::libcall, reg::none, reg::none, reg::none,
               static_cast<std::int64_t>(LibFn::memmove)),
             I(Opcode::libcall, reg::none, reg::none, reg::none,
               static_cast<std::int64_t>(LibFn::memmove)),
             I(Opcode::libcall, reg::none, reg::none, reg::none,
               static_cast<std::int64_t>(LibFn::strlen)),
             I(Opcode::ret)};
  const StaticFeatureVector f = extract_static_features(fn);
  EXPECT_DOUBLE_EQ(f[f_num_import], 2.0);  // distinct imports
  EXPECT_DOUBLE_EQ(f[f_num_cx], 0.0);      // libcall is not a binary call
}

TEST(StaticFeatures, StringRefsCounted) {
  FunctionBinary fn;
  fn.arch = Arch::amd64;
  fn.code = {I(Opcode::ldstr, 0, reg::none, reg::none, 0),
             I(Opcode::ldstr, 1, reg::none, reg::none, 1),
             I(Opcode::ret)};
  const StaticFeatureVector f = extract_static_features(fn);
  EXPECT_DOUBLE_EQ(f[f_num_string], 2.0);
}

TEST(StaticFeatures, DeterministicExtraction) {
  const SourceLibrary src = generate_library("sf", 0x5F, 10);
  const LibraryBinary lib = compile_library(src, Arch::arm64, OptLevel::O2);
  for (const FunctionBinary& fn : lib.functions) {
    const auto a = extract_static_features(fn);
    const auto b = extract_static_features(fn);
    EXPECT_EQ(a, b);
  }
}

TEST(StaticFeatures, TopologyInvariantAcrossArches) {
  // Basic-block and edge counts come from branch structure, which our
  // compiler preserves across architectures at a fixed opt level.
  const SourceLibrary src = generate_library("topo", 0x70, 12);
  for (std::size_t f = 0; f < src.functions.size(); ++f) {
    const auto arm = extract_static_features(
        compile_function(src, f, Arch::arm64, OptLevel::O1));
    const auto x86 = extract_static_features(
        compile_function(src, f, Arch::x86, OptLevel::O1));
    EXPECT_DOUBLE_EQ(arm[f_num_bb], x86[f_num_bb]) << f;
    EXPECT_DOUBLE_EQ(arm[f_num_edge], x86[f_num_edge]) << f;
  }
}

TEST(StaticFeatures, InstructionCountVariesAcrossOptLevels) {
  const SourceLibrary src = generate_library("var", 0x7A, 12);
  int differing = 0;
  for (std::size_t f = 0; f < src.functions.size(); ++f) {
    const auto o0 = extract_static_features(
        compile_function(src, f, Arch::amd64, OptLevel::O0));
    const auto o2 = extract_static_features(
        compile_function(src, f, Arch::amd64, OptLevel::O2));
    if (o0[f_num_inst] != o2[f_num_inst]) ++differing;
  }
  EXPECT_GT(differing, 8);
}

TEST(Normalizer, ZeroMeanUnitVarianceOnFit) {
  std::vector<StaticFeatureVector> corpus;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    StaticFeatureVector v{};
    for (double& x : v) x = rng.uniform_real(0, 100);
    corpus.push_back(v);
  }
  FeatureNormalizer normalizer;
  normalizer.fit(corpus);
  ASSERT_TRUE(normalizer.fitted());

  StaticFeatureVector mean{}, sq{};
  for (const auto& raw : corpus) {
    const auto t = normalizer.transform(raw);
    for (std::size_t i = 0; i < static_feature_count; ++i) {
      mean[i] += t[i];
      sq[i] += t[i] * t[i];
    }
  }
  for (std::size_t i = 0; i < static_feature_count; ++i) {
    mean[i] /= 200.0;
    EXPECT_NEAR(mean[i], 0.0, 1e-9);
    EXPECT_NEAR(sq[i] / 200.0, 1.0, 1e-6);
  }
}

TEST(Normalizer, ConstantFeatureDoesNotBlowUp) {
  std::vector<StaticFeatureVector> corpus(10);
  for (auto& v : corpus) v.fill(5.0);
  FeatureNormalizer normalizer;
  normalizer.fit(corpus);
  const auto t = normalizer.transform(corpus[0]);
  for (double x : t) EXPECT_TRUE(std::isfinite(x));
}

TEST(Normalizer, ParameterRoundTrip) {
  FeatureNormalizer a;
  std::vector<StaticFeatureVector> corpus(20);
  Rng rng(4);
  for (auto& v : corpus)
    for (double& x : v) x = rng.uniform_real(0, 50);
  a.fit(corpus);
  FeatureNormalizer b;
  b.set_parameters(a.means(), a.stddevs());
  EXPECT_EQ(a.transform(corpus[3]), b.transform(corpus[3]));
}

TEST(Normalizer, EmptyCorpusIsIdentityish) {
  FeatureNormalizer normalizer;
  normalizer.fit({});
  StaticFeatureVector raw{};
  raw.fill(0.0);
  const auto t = normalizer.transform(raw);
  for (double x : t) EXPECT_DOUBLE_EQ(x, 0.0);
}

}  // namespace
}  // namespace patchecko
