// Tests for the stage-1 retrieval prefilter (src/retrieval): quantizer
// round-trip bounds, index build determinism (including across analyze
// worker counts), shortlist recall against the exact all-pairs scan on
// seeded synthetic corpora, top-K tie-break stability, and robustness on
// degenerate / adversarial inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "firmware/firmware.h"
#include "retrieval/index.h"
#include "retrieval/quantizer.h"
#include "retrieval/query_catalog.h"
#include "util/rng.h"

namespace patchecko {
namespace {

using retrieval::FunctionIndex;
using retrieval::IndexConfig;
using retrieval::QuantizedVector;

// --- synthetic feature corpora ---------------------------------------------
// Real Table-I features are heavy-tailed counts; model them as exp-uniform
// magnitudes grouped around cluster prototypes (functions from the same
// library family have similar shapes), with queries as noisy copies of
// corpus members — the shape a CVE reference takes relative to its target.

StaticFeatureVector random_feature_vector(Rng& rng) {
  StaticFeatureVector out{};
  for (double& value : out)
    value = std::floor(std::exp(rng.uniform_real(0.0, 9.0)));
  return out;
}

std::vector<StaticFeatureVector> clustered_corpus(std::size_t n,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t prototypes = std::max<std::size_t>(n / 40, 4);
  std::vector<StaticFeatureVector> centers;
  for (std::size_t c = 0; c < prototypes; ++c)
    centers.push_back(random_feature_vector(rng));
  std::vector<StaticFeatureVector> corpus;
  corpus.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StaticFeatureVector vec = rng.pick(centers);
    for (double& value : vec)
      value = std::floor(value * rng.uniform_real(0.7, 1.4));
    corpus.push_back(vec);
  }
  return corpus;
}

StaticFeatureVector noisy_copy(const StaticFeatureVector& base, Rng& rng) {
  StaticFeatureVector out = base;
  for (double& value : out)
    value = std::floor(value * rng.uniform_real(0.85, 1.2));
  return out;
}

/// Exact top-K under the index's own metric: (quantized distance, index)
/// total order, result sorted ascending by index — the ground truth the
/// approximate shortlist is measured against.
std::vector<std::uint32_t> exact_top_k(
    const std::vector<StaticFeatureVector>& corpus,
    const StaticFeatureVector& query, std::size_t k) {
  const QuantizedVector query_code = retrieval::quantize(query);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scored;
  scored.reserve(corpus.size());
  for (std::uint32_t i = 0; i < corpus.size(); ++i)
    scored.emplace_back(retrieval::quantized_distance_sq(
                            query_code, retrieval::quantize(corpus[i])),
                        i);
  std::sort(scored.begin(), scored.end());
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < std::min(k, scored.size()); ++i)
    out.push_back(scored[i].second);
  std::sort(out.begin(), out.end());
  return out;
}

void expect_valid_shortlist(const std::vector<std::uint32_t>& shortlist,
                            std::size_t corpus_size, std::size_t k) {
  EXPECT_LE(shortlist.size(), std::min(k, corpus_size));
  EXPECT_TRUE(std::is_sorted(shortlist.begin(), shortlist.end()));
  const std::set<std::uint32_t> unique(shortlist.begin(), shortlist.end());
  EXPECT_EQ(unique.size(), shortlist.size()) << "duplicate indices";
  for (const std::uint32_t index : shortlist) EXPECT_LT(index, corpus_size);
}

// --- quantizer --------------------------------------------------------------

TEST(Quantizer, RoundTripBoundHoldsInCompressedSpace) {
  Rng rng(7);
  for (int trial = 0; trial < 20000; ++trial) {
    // Log-uniform magnitudes across the whole grid, both signs, plus zero.
    double value;
    if (trial % 50 == 0) {
      value = 0.0;
    } else {
      const double magnitude =
          std::expm1(rng.uniform_real(0.0, retrieval::kGridHi));
      value = rng.chance(0.5) ? -magnitude : magnitude;
    }
    const double compressed = retrieval::compress_feature(value);
    ASSERT_GE(compressed, retrieval::kGridLo);
    ASSERT_LE(compressed, retrieval::kGridHi);
    const std::uint8_t code = retrieval::quantize_feature(value);
    const double recovered =
        retrieval::compress_feature(retrieval::dequantize_feature(code));
    EXPECT_LE(std::fabs(recovered - compressed),
              retrieval::kGridStep / 2 + 1e-9)
        << "value=" << value;
  }
}

TEST(Quantizer, ClampsOutsideGridAndAbsorbsNonFinite) {
  EXPECT_EQ(retrieval::quantize_feature(1e300), 255);
  EXPECT_EQ(retrieval::quantize_feature(-1e300), 0);
  EXPECT_EQ(
      retrieval::quantize_feature(std::numeric_limits<double>::infinity()),
      255);
  EXPECT_EQ(
      retrieval::quantize_feature(-std::numeric_limits<double>::infinity()),
      0);
  // NaN maps to the same code as zero: degenerate features cluster together
  // instead of poisoning distances.
  EXPECT_EQ(
      retrieval::quantize_feature(std::numeric_limits<double>::quiet_NaN()),
      retrieval::quantize_feature(0.0));
}

TEST(Quantizer, CodesAreMonotonicInTheInput) {
  Rng rng(11);
  std::vector<double> values{0.0};
  for (int i = 0; i < 2000; ++i) {
    const double magnitude = std::expm1(rng.uniform_real(0.0, 15.0));
    values.push_back(magnitude);
    values.push_back(-magnitude);
  }
  std::sort(values.begin(), values.end());
  for (std::size_t i = 1; i < values.size(); ++i)
    EXPECT_LE(retrieval::quantize_feature(values[i - 1]),
              retrieval::quantize_feature(values[i]));
}

TEST(Quantizer, DistanceIsAnExactSquaredMetric) {
  Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    const QuantizedVector a = retrieval::quantize(random_feature_vector(rng));
    const QuantizedVector b = retrieval::quantize(random_feature_vector(rng));
    EXPECT_EQ(retrieval::quantized_distance_sq(a, a), 0u);
    EXPECT_EQ(retrieval::quantized_distance_sq(a, b),
              retrieval::quantized_distance_sq(b, a));
    std::uint32_t expected = 0;
    for (std::size_t d = 0; d < static_feature_count; ++d) {
      const std::int32_t delta = static_cast<std::int32_t>(a.codes[d]) -
                                 static_cast<std::int32_t>(b.codes[d]);
      expected += static_cast<std::uint32_t>(delta * delta);
    }
    EXPECT_EQ(retrieval::quantized_distance_sq(a, b), expected);
  }
}

// --- index build determinism ------------------------------------------------

TEST(Index, IdenticalInputsProduceIdenticalIndexAndShortlists) {
  const auto corpus = clustered_corpus(600, 17);
  const FunctionIndex first = FunctionIndex::build(corpus);
  const FunctionIndex second = FunctionIndex::build(corpus);
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.cluster_count(), second.cluster_count());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first.code(i), second.code(i));
  Rng rng(23);
  for (int q = 0; q < 32; ++q) {
    const StaticFeatureVector query = random_feature_vector(rng);
    EXPECT_EQ(first.top_k(query, 16), second.top_k(query, 16));
  }
}

TEST(Index, BuildIsIndependentOfAnalyzeWorkerCount) {
  // The engine builds the index over features extracted at any --jobs value;
  // the shortlists (and the stored codes) must not depend on thread count.
  EvalConfig eval;
  eval.scale = 0.03;
  const EvalCorpus corpus(eval);
  const LibraryBinary library =
      corpus.compile_for_device(0, android_things_device());
  AnalyzedLibrary sequential = analyze_library(library, /*worker_threads=*/1,
                                               /*build_retrieval_index=*/true);
  AnalyzedLibrary parallel = analyze_library(library, /*worker_threads=*/4,
                                             /*build_retrieval_index=*/true);
  ASSERT_NE(sequential.index, nullptr);
  ASSERT_NE(parallel.index, nullptr);
  ASSERT_EQ(sequential.index->size(), parallel.index->size());
  ASSERT_EQ(sequential.index->size(), sequential.features.size());
  for (std::size_t i = 0; i < sequential.index->size(); ++i)
    EXPECT_EQ(sequential.index->code(i), parallel.index->code(i));
  for (std::size_t i = 0; i < sequential.features.size(); ++i)
    EXPECT_EQ(sequential.index->top_k(sequential.features[i], 8),
              parallel.index->top_k(parallel.features[i], 8));
}

// --- recall vs exact all-pairs ----------------------------------------------

TEST(Index, RecallAgainstExactTopKExceeds99Percent) {
  constexpr std::size_t kTopK = 32;
  for (const std::size_t scale : {std::size_t{300}, std::size_t{1000},
                                  std::size_t{2500}}) {
    for (const std::uint64_t seed :
         {std::uint64_t{101}, std::uint64_t{202}, std::uint64_t{303}}) {
      const auto corpus = clustered_corpus(scale, seed);
      const FunctionIndex index = FunctionIndex::build(corpus);
      Rng rng(seed * 7 + 1);
      std::size_t recalled = 0, expected = 0;
      for (int q = 0; q < 40; ++q) {
        const std::size_t base = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(scale) - 1));
        const StaticFeatureVector query = noisy_copy(corpus[base], rng);
        const auto exact = exact_top_k(corpus, query, kTopK);
        const auto shortlist = index.top_k(query, kTopK);
        expect_valid_shortlist(shortlist, scale, kTopK);
        expected += exact.size();
        for (const std::uint32_t i : exact)
          if (std::binary_search(shortlist.begin(), shortlist.end(), i))
            ++recalled;
      }
      const double recall =
          static_cast<double>(recalled) / static_cast<double>(expected);
      EXPECT_GE(recall, 0.99)
          << "scale=" << scale << " seed=" << seed << " recall=" << recall;
    }
  }
}

// --- tie-breaks and edge cases ----------------------------------------------

TEST(Index, TiesBreakTowardLowestFunctionIndex) {
  // All-identical corpus: every distance ties, so top-K must be exactly the
  // K lowest indices — the same candidates the exact scan visits first.
  Rng rng(31);
  const std::vector<StaticFeatureVector> same(100, random_feature_vector(rng));
  const FunctionIndex index = FunctionIndex::build(same);
  const auto shortlist = index.top_k(same.front(), 10);
  ASSERT_EQ(shortlist.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(shortlist[i], i);

  // Two interleaved duplicate groups: the shortlist must prefer the nearer
  // group and, within it, the lowest indices.
  const StaticFeatureVector near_vec = random_feature_vector(rng);
  StaticFeatureVector far_vec = near_vec;
  for (double& value : far_vec) value = value * 8 + 1000;
  std::vector<StaticFeatureVector> mixed;
  for (int i = 0; i < 40; ++i)
    mixed.push_back(i % 2 == 0 ? near_vec : far_vec);
  const FunctionIndex mixed_index = FunctionIndex::build(mixed);
  const auto nearest = mixed_index.top_k(near_vec, 8);
  ASSERT_EQ(nearest.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(nearest[i], i * 2);
}

TEST(Index, EmptyAndDegenerateCorporaBehave) {
  const FunctionIndex empty = FunctionIndex::build({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.top_k(StaticFeatureVector{}, 5).empty());
  EXPECT_EQ(empty.stats().clusters, 0u);

  const FunctionIndex single = FunctionIndex::build({StaticFeatureVector{}});
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.top_k(StaticFeatureVector{}, 5),
            std::vector<std::uint32_t>{0});
  EXPECT_TRUE(single.top_k(StaticFeatureVector{}, 0).empty());

  // k >= n returns every index, ascending.
  const auto corpus = clustered_corpus(12, 41);
  const FunctionIndex small = FunctionIndex::build(corpus);
  const auto all = small.top_k(corpus.front(), 50);
  ASSERT_EQ(all.size(), 12u);
  for (std::uint32_t i = 0; i < 12; ++i) EXPECT_EQ(all[i], i);
}

TEST(Index, AdversarialVectorsNeverCrashOrEscapeRange) {
  Rng rng(43);
  std::vector<std::vector<StaticFeatureVector>> corpora;

  // Extreme magnitudes (clamped to the grid edges): huge, tiny, and
  // sign-alternating patterns.
  std::vector<StaticFeatureVector> extreme;
  for (int i = 0; i < 64; ++i) {
    StaticFeatureVector vec{};
    for (std::size_t d = 0; d < static_feature_count; ++d) {
      const double magnitude = (d + i) % 3 == 0   ? 1e300
                               : (d + i) % 3 == 1 ? 1e-300
                                                  : 0.0;
      vec[d] = (d + i) % 2 == 0 ? magnitude : -magnitude;
    }
    extreme.push_back(vec);
  }
  corpora.push_back(std::move(extreme));
  corpora.push_back(
      std::vector<StaticFeatureVector>(200, random_feature_vector(rng)));
  corpora.push_back({random_feature_vector(rng)});  // single function

  for (const auto& corpus : corpora) {
    for (const std::size_t clusters :
         {std::size_t{0}, std::size_t{1}, std::size_t{1000}}) {
      IndexConfig config;
      config.clusters = clusters;
      const FunctionIndex index = FunctionIndex::build(corpus, config);
      EXPECT_EQ(index.size(), corpus.size());
      EXPECT_LE(index.cluster_count(), corpus.size());
      for (const std::size_t k : {std::size_t{0}, std::size_t{1},
                                  std::size_t{16}, corpus.size() + 7}) {
        expect_valid_shortlist(index.top_k(corpus.front(), k), corpus.size(),
                               k);
        expect_valid_shortlist(index.top_k(random_feature_vector(rng), k),
                               corpus.size(), k);
      }
    }
  }
}

// --- query catalog -----------------------------------------------------------

TEST(QueryCatalog, FindsEntriesByIdAndMatchesDirectQuantization) {
  EvalConfig eval;
  eval.scale = 0.03;
  const EvalCorpus corpus(eval);
  const CveDatabase database(corpus, DatabaseConfig{});
  const retrieval::QueryCatalog catalog = build_query_catalog(database);
  ASSERT_EQ(catalog.entries.size(), database.entries().size());
  EXPECT_GT(catalog.memory_bytes(), 0u);
  for (const CveEntry& entry : database.entries()) {
    const auto* found = catalog.find(entry.spec.cve_id);
    ASSERT_NE(found, nullptr) << entry.spec.cve_id;
    EXPECT_EQ(found->vulnerable,
              retrieval::quantize(entry.vulnerable_features));
    EXPECT_EQ(found->patched, retrieval::quantize(entry.patched_features));
  }
  EXPECT_EQ(catalog.find("CVE-0000-0000"), nullptr);
}

}  // namespace
}  // namespace patchecko
