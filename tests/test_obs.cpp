// Tests for the observability layer (src/obs): registry semantics (counter
// monotonicity, histogram bucket boundaries, exact concurrent sums), span
// nesting/ordering, the no-op contract of disabled mode, and the JSON/
// canonical exports.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchecko {
namespace {

namespace json = obs::json;

using obs::EnabledScope;
using obs::Registry;
using obs::ScopedSpan;
using obs::Span;
using obs::Tracer;

TEST(Obs, CounterIsMonotonicUnderMixedAdds) {
  EnabledScope on(true);
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  std::uint64_t previous = 0;
  for (const std::uint64_t step : {1u, 0u, 3u, 7u, 0u, 2u}) {
    counter.add(step);
    EXPECT_GE(counter.value(), previous);
    previous = counter.value();
  }
  EXPECT_EQ(counter.value(), 13u);
}

TEST(Obs, GaugeTracksLevelAndHighWaterMark) {
  EnabledScope on(true);
  obs::Gauge gauge;
  gauge.add(3);
  gauge.add(4);
  gauge.add(-5);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.max(), 7);
  gauge.set(1);
  EXPECT_EQ(gauge.value(), 1);
  EXPECT_EQ(gauge.max(), 7);  // max never regresses
}

TEST(Obs, HistogramBucketBoundariesAreLessOrEqual) {
  EnabledScope on(true);
  obs::Histogram histogram({1.0, 2.0, 4.0});
  histogram.record(0.5);   // <= 1.0         -> bucket 0
  histogram.record(1.0);   // == bound       -> bucket 0 ("le" semantics)
  histogram.record(1.5);   // (1, 2]         -> bucket 1
  histogram.record(4.0);   // == last bound  -> bucket 2
  histogram.record(99.0);  // above all      -> overflow bucket
  const std::vector<std::uint64_t> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_NEAR(histogram.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 99.0, 1e-6);
}

TEST(Obs, ConcurrentIncrementsSumExactly) {
  EnabledScope on(true);
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram({0.5});
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        counter.add(1);
        gauge.add(1);
        histogram.record(0.25);
      }
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(kThreads) * kIterations);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(histogram.bucket_counts()[0], histogram.count());
}

TEST(Obs, RegistryHandlesAreStableAcrossLookupAndReset) {
  EnabledScope on(true);
  Registry registry;
  obs::Counter& a = registry.counter("test.stable");
  a.add(5);
  obs::Counter& b = registry.counter("test.stable");
  EXPECT_EQ(&a, &b);
  registry.reset();
  EXPECT_EQ(a.value(), 0u);  // same object, zeroed — handle still valid
  a.add(2);
  EXPECT_EQ(registry.counter("test.stable").value(), 2u);
}

TEST(Obs, CanonicalTextIsSortedStableAndExcludesWallClock) {
  EnabledScope on(true);
  Registry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.gauge("m.depth").add(3);
  registry.histogram("h.lat").record(0.125);
  const std::string text = registry.canonical_text();
  EXPECT_EQ(text,
            "counter a.first 2\n"
            "counter z.last 1\n"
            "gauge m.depth 3 max 3\n"
            "histogram h.lat count 1\n");
  // Stable: a second rendering is byte-identical, and recording a different
  // wall-clock value does not change the canonical form.
  registry.histogram("h.lat").record(0.250);
  EXPECT_EQ(registry.canonical_text(),
            "counter a.first 2\n"
            "counter z.last 1\n"
            "gauge m.depth 3 max 3\n"
            "histogram h.lat count 2\n");
  EXPECT_EQ(text.find("0.125"), std::string::npos);
}

TEST(Obs, NoOpModeRecordsNothing) {
  EnabledScope off(false);
  Registry registry;
  obs::Counter& counter = registry.counter("test.noop");
  obs::Gauge& gauge = registry.gauge("test.noop_gauge");
  obs::Histogram& histogram = registry.histogram("test.noop_hist");
  Tracer tracer;
  {
    ScopedSpan span("noop.span", tracer);
    counter.add(100);
    gauge.add(7);
    histogram.record(1.0);
  }
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(gauge.max(), 0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(Obs, DisableMidSpanStillClosesTheOpenSpan) {
  Tracer tracer;
  obs::set_enabled(true);
  {
    ScopedSpan span("mid.flip", tracer);
    obs::set_enabled(false);
  }
  EXPECT_EQ(tracer.spans().size(), 1u);
  obs::set_enabled(false);
}

TEST(Obs, SpansNestWithParentLinksAndStartOrderIds) {
  EnabledScope on(true);
  Tracer tracer;
  {
    ScopedSpan outer("outer", tracer);
    { ScopedSpan first("inner.first", tracer); }
    { ScopedSpan second("inner.second", tracer); }
  }
  { ScopedSpan root("root.second", tracer); }
  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  // spans() sorts by id == start order.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner.first");
  EXPECT_EQ(spans[2].name, "inner.second");
  EXPECT_EQ(spans[3].name, "root.second");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, spans[0].id);
  EXPECT_EQ(spans[3].parent, 0u);
  for (const Span& span : spans) {
    EXPECT_GE(span.end_seconds, span.start_seconds);
    EXPECT_GE(span.start_seconds, 0.0);
  }
  // The outer span encloses its children in time.
  EXPECT_LE(spans[0].start_seconds, spans[1].start_seconds);
  EXPECT_GE(spans[0].end_seconds, spans[2].end_seconds);
}

TEST(Obs, SpanStacksAreThreadLocal) {
  EnabledScope on(true);
  Tracer tracer;
  std::atomic<bool> outer_open{false};
  std::atomic<bool> child_done{false};
  std::thread other;
  {
    ScopedSpan outer("main.outer", tracer);
    outer_open.store(true);
    other = std::thread([&] {
      while (!outer_open.load()) std::this_thread::yield();
      // Opened while main.outer is live on the other thread: must be a
      // root, not a child of main.outer.
      ScopedSpan mine("worker.root", tracer);
      child_done.store(true);
    });
    while (!child_done.load()) std::this_thread::yield();
  }
  other.join();
  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  for (const Span& span : spans) EXPECT_EQ(span.parent, 0u);
  EXPECT_NE(spans[0].thread, spans[1].thread);
}

TEST(Obs, TracerClearResetsIdsAndEpoch) {
  EnabledScope on(true);
  Tracer tracer;
  { ScopedSpan span("before", tracer); }
  ASSERT_EQ(tracer.spans().size(), 1u);
  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
  { ScopedSpan span("after", tracer); }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].id, 1u);  // ids restart
}

TEST(Obs, ExportJsonHasRequiredShape) {
  EnabledScope on(true);
  Registry registry;
  registry.counter("c.one").add(3);
  registry.gauge("g.two").set(-4);
  registry.histogram("h.three", {0.5, 1.0}).record(0.75);
  Tracer tracer;
  { ScopedSpan span("spanned \"quote\"", tracer); }
  const std::string json = obs::export_json(registry, tracer);
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"c.one\":3"), std::string::npos);
  EXPECT_NE(json.find("\"g.two\":{\"value\":-4,\"max\":0}"),
            std::string::npos);
  EXPECT_NE(json.find("\"h.three\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"le\":[0.5,1]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,1,0]"), std::string::npos);
  EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos);  // escaping
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

TEST(Obs, SummaryLineReportsCacheRateAndPruning) {
  EnabledScope on(true);
  Registry registry;
  registry.counter("cache.feature_hits").add(3);
  registry.counter("cache.outcome_hits").add(1);
  registry.counter("cache.feature_misses").add(2);
  registry.counter("cache.outcome_misses").add(2);
  registry.counter("pipeline.candidates_stage1").add(100);
  registry.counter("pipeline.candidates_pruned").add(40);
  const std::string line = obs::summary_line(registry);
  EXPECT_NE(line.find("4/8 hits (50.0%)"), std::string::npos) << line;
  EXPECT_NE(line.find("100 -> 60 (40 pruned)"), std::string::npos) << line;
}

// Fuzz-style table over the JSON parser's edge cases: the parser fronts
// every wire payload the daemon accepts, so its rejects must be clean
// (nullopt, never a throw or over-read) and its accepts must decode
// exactly. Each row is one document plus the expected accept/reject.
TEST(Obs, JsonParserEdgeCaseTable) {
  struct Case {
    const char* name;
    std::string text;
    bool ok;
  };
  // Depth-limit probes: max_depth is 64, so 64 nested arrays parse and 65
  // must be refused (bounded recursion is the anti-stack-smash contract).
  std::string nested_ok, nested_deep;
  for (int i = 0; i < 64; ++i) nested_ok += '[';
  nested_deep = nested_ok + '[';
  for (int i = 0; i < 64; ++i) nested_ok += ']';
  for (int i = 0; i < 65; ++i) nested_deep += ']';

  const std::vector<Case> cases = {
      {"nested-at-limit", nested_ok, true},
      {"nested-past-limit", nested_deep, false},
      {"unicode-escape", "{\"k\":\"a\\u0041\\u00e9\\u20ac\"}", true},
      {"unicode-truncated", "{\"k\":\"\\u00\"}", false},
      {"unicode-bad-hex", "{\"k\":\"\\u00zz\"}", false},
      {"unknown-escape", "{\"k\":\"\\x41\"}", false},
      {"raw-control-char", std::string("{\"k\":\"a\tb\"}"), false},
      {"unterminated-string", "{\"k\":\"abc", false},
      {"truncated-object", "{\"k\":1,", false},
      {"truncated-array", "[1,2,", false},
      {"bare-prefix", "{\"k\"", false},
      {"missing-colon", "{\"k\" 1}", false},
      {"trailing-garbage", "{\"k\":1}x", false},
      {"two-documents", "{} {}", false},
      {"empty-input", "", false},
      {"whitespace-only", "  \n\t ", false},
      {"duplicate-keys", "{\"k\":1,\"k\":2}", true},
      {"number-malformed", "{\"k\":1..5}", false},
      {"number-bare-minus", "{\"k\":-}", false},
      {"deep-mixed", "{\"a\":[{\"b\":[null,true,false,1e3]}]}", true},
  };
  for (const Case& c : cases) {
    const auto doc = json::parse(c.text);
    EXPECT_EQ(doc.has_value(), c.ok) << c.name << ": " << c.text;
  }

  // Accepted documents must also decode to the right values, not merely
  // parse. \uXXXX decodes as UTF-8; duplicate keys keep the last value
  // (std::map insert-or-assign semantics — part of the wire contract).
  const auto unicode = json::parse("{\"k\":\"a\\u0041\\u00e9\\u20ac\"}");
  ASSERT_TRUE(unicode.has_value());
  EXPECT_EQ(unicode->get("k").as_string(), "aA\xC3\xA9\xE2\x82\xAC");
  const auto dup = json::parse("{\"k\":1,\"k\":2}");
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->get("k").as_number(), 2.0);
  const auto at_limit = json::parse(nested_ok);
  ASSERT_TRUE(at_limit.has_value());
  EXPECT_EQ(at_limit->kind(), json::Value::Kind::array);
}

}  // namespace
}  // namespace patchecko
