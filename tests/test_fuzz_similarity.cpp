// Tests for the fuzzer (environment generation, dictionary mutation,
// validation pruning) and the dynamic-similarity engine (Eq. 1-2, effect
// hashes, ranking).
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.h"
#include "fuzz/fuzzer.h"
#include "similarity/similarity.h"
#include "source/generator.h"

namespace patchecko {
namespace {

struct Fixture {
  SourceLibrary source;
  LibraryBinary binary;
  Machine machine;

  Fixture()
      : source(generate_library("fx", 0xF1, 24)),
        binary(compile_library(source, Arch::arm32, OptLevel::O2, 10)),
        machine(binary) {}
};

TEST(Fuzz, RandomEnvMatchesSignature) {
  Rng rng(1);
  FuzzConfig config;
  const std::vector<ValueType> params{ValueType::ptr, ValueType::i64,
                                      ValueType::f64};
  const CallEnv env = random_env(rng, params, config);
  ASSERT_EQ(env.args.size(), 3u);
  EXPECT_EQ(env.args[0].type, ValueType::ptr);
  EXPECT_EQ(env.args[1].type, ValueType::i64);
  EXPECT_EQ(env.args[2].type, ValueType::f64);
  ASSERT_EQ(env.buffers.size(), 1u);
  // Length convention: the i64 after a ptr equals the buffer length.
  EXPECT_EQ(env.args[1].i,
            static_cast<std::int64_t>(env.buffers[0].size()));
}

TEST(Fuzz, BufferSizesWithinBounds) {
  Rng rng(2);
  FuzzConfig config;
  config.min_buffer = 10;
  config.max_buffer = 20;
  for (int i = 0; i < 50; ++i) {
    const CallEnv env = random_env(rng, {ValueType::ptr, ValueType::i64},
                                   config);
    EXPECT_GE(env.buffers[0].size(), 10u);
    EXPECT_LE(env.buffers[0].size(), 20u);
  }
}

TEST(Fuzz, MutateKeepsLengthConsistency) {
  Rng rng(3);
  FuzzConfig config;
  const std::vector<ValueType> params{ValueType::ptr, ValueType::i64};
  CallEnv env = random_env(rng, params, config);
  for (int i = 0; i < 20; ++i) {
    env = mutate_env(rng, env, params, config);
    EXPECT_EQ(env.args[1].i,
              static_cast<std::int64_t>(env.buffers[0].size()));
  }
}

TEST(Fuzz, DictionaryHarvestsByteConstants) {
  FunctionBinary fn;
  Instruction ldi;
  ldi.op = Opcode::ldi;
  ldi.dst = 0;
  ldi.imm = 0xff;
  Instruction big;
  big.op = Opcode::ldi;
  big.dst = 1;
  big.imm = 1 << 20;  // not byte-sized: excluded
  Instruction ret;
  ret.op = Opcode::ret;
  fn.code = {ldi, ldi, big, ret};
  const auto dict = byte_dictionary(fn);
  ASSERT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict[0], 0xff);
}

TEST(Fuzz, DictionaryInjectionPlantsPairs) {
  Rng rng(4);
  FuzzConfig config;
  const std::vector<ValueType> params{ValueType::ptr, ValueType::i64};
  CallEnv env = random_env(rng, params, config);
  std::fill(env.buffers[0].begin(), env.buffers[0].end(), 0x11);
  const std::vector<std::uint8_t> dict{0xAB};
  bool planted = false;
  for (int i = 0; i < 30 && !planted; ++i) {
    const CallEnv mutated = mutate_env(rng, env, params, config, dict);
    for (std::uint8_t b : mutated.buffers[0])
      if (b == 0xAB) planted = true;
  }
  EXPECT_TRUE(planted);
}

TEST(Fuzz, GeneratedEnvironmentsExecuteSuccessfully) {
  Fixture fx;
  Rng rng(5);
  FuzzConfig config;
  for (std::size_t f = 0; f < 6; ++f) {
    const auto envs = generate_environments(fx.binary, f, rng, config);
    EXPECT_FALSE(envs.empty()) << "fn " << f;
    for (const CallEnv& env : envs)
      EXPECT_EQ(fx.machine.run(f, env).status, ExecStatus::ok);
  }
}

TEST(Fuzz, ValidationRejectsSignatureMismatch) {
  Fixture fx;
  Rng rng(6);
  FuzzConfig config;
  // Find a ptr-first function and an int-only function.
  std::size_t ptr_fn = SIZE_MAX, int_fn = SIZE_MAX;
  for (std::size_t f = 0; f < fx.source.functions.size(); ++f) {
    const auto& types = fx.source.functions[f].param_types;
    if (!types.empty() && types[0] == ValueType::ptr && ptr_fn == SIZE_MAX)
      ptr_fn = f;
    if (!types.empty() && types[0] == ValueType::i64 && int_fn == SIZE_MAX)
      int_fn = f;
  }
  ASSERT_NE(ptr_fn, SIZE_MAX);
  ASSERT_NE(int_fn, SIZE_MAX);
  const auto envs = generate_environments(fx.binary, ptr_fn, rng, config);
  ASSERT_FALSE(envs.empty());
  // The ptr function's own environments validate.
  EXPECT_TRUE(validate_candidate(fx.machine, ptr_fn, envs));
  // An int-only function receiving a pointer as its scalar may or may not
  // crash, but a function that *loads through* its first int param will.
  // Validation itself must at least be callable on any candidate:
  (void)validate_candidate(fx.machine, int_fn, envs);
}

TEST(Fuzz, ValidationPrunesCrashingCandidate) {
  // A function that dereferences data[big] crashes on small buffers.
  SourceLibrary src;
  src.name = "crash";
  src.strings.assign(12, "s");
  SourceFunction safe;
  safe.name = "safe";
  safe.param_types = {ValueType::ptr, ValueType::i64};
  safe.body.push_back(make_ret(make_int(1)));
  SourceFunction crasher;
  crasher.name = "crasher";
  crasher.param_types = {ValueType::ptr, ValueType::i64};
  crasher.body.push_back(make_ret(
      make_load(make_param(0, ValueType::ptr), make_int(1 << 20), true)));
  src.functions = {safe, crasher};
  const LibraryBinary bin = compile_library(src, Arch::amd64, OptLevel::O1);
  const Machine machine(bin);
  Rng rng(7);
  FuzzConfig config;
  const auto envs = generate_environments(bin, 0, rng, config);
  ASSERT_FALSE(envs.empty());
  EXPECT_TRUE(validate_candidate(machine, 0, envs));
  EXPECT_FALSE(validate_candidate(machine, 1, envs));
}

// --- similarity -----------------------------------------------------------------

TEST(Similarity, SelfDistanceZero) {
  Fixture fx;
  Rng rng(8);
  FuzzConfig config;
  const auto envs = generate_environments(fx.binary, 2, rng, config);
  ASSERT_FALSE(envs.empty());
  const DynamicProfile p = profile_function(fx.machine, 2, envs);
  EXPECT_DOUBLE_EQ(profile_distance(p, p), 0.0);
  EXPECT_EQ(effect_matches(p, p), p.successful_runs());
}

TEST(Similarity, DistanceSymmetric) {
  Fixture fx;
  Rng rng(9);
  FuzzConfig config;
  const auto envs = generate_environments(fx.binary, 2, rng, config);
  const DynamicProfile a = profile_function(fx.machine, 2, envs);
  const DynamicProfile b = profile_function(fx.machine, 3, envs);
  EXPECT_DOUBLE_EQ(profile_distance(a, b), profile_distance(b, a));
}

TEST(Similarity, CrashedEnvironmentsSkipped) {
  DynamicProfile a, b;
  DynamicFeatures f1;
  f1.instructions = 10;
  DynamicFeatures f2;
  f2.instructions = 20;
  a.per_env = {f1, std::nullopt};
  b.per_env = {f2, f2};
  const double d = profile_distance(a, b, 1.0);
  EXPECT_DOUBLE_EQ(d, 10.0);  // only the common env counts
}

TEST(Similarity, NoCommonEnvironmentIsInfinite) {
  DynamicProfile a, b;
  DynamicFeatures f;
  a.per_env = {f, std::nullopt};
  b.per_env = {std::nullopt, f};
  EXPECT_TRUE(std::isinf(profile_distance(a, b)));
}

TEST(Similarity, RankingSortsByDistance) {
  DynamicProfile ref;
  DynamicFeatures base;
  base.instructions = 100;
  ref.per_env = {base};
  ref.effect_hash = {std::uint64_t{1}};

  auto candidate_with = [&](std::size_t idx, std::uint64_t instructions,
                            std::uint64_t hash) {
    CandidateProfile c;
    c.function_index = idx;
    DynamicFeatures f;
    f.instructions = instructions;
    c.profile.per_env = {f};
    c.profile.effect_hash = {hash};
    return c;
  };
  const std::vector<CandidateProfile> candidates{
      candidate_with(0, 150, 7), candidate_with(1, 100, 9),
      candidate_with(2, 110, 7)};
  const auto ranking = rank_by_similarity(ref, candidates);
  EXPECT_EQ(ranking[0].function_index, 1u);
  EXPECT_EQ(ranking[1].function_index, 2u);
  EXPECT_EQ(ranking[2].function_index, 0u);
}

TEST(Similarity, EffectHashBreaksExactTies) {
  DynamicProfile ref;
  DynamicFeatures base;
  base.instructions = 50;
  ref.per_env = {base};
  ref.effect_hash = {std::uint64_t{42}};

  CandidateProfile wrong;  // same trace, different effect
  wrong.function_index = 0;
  wrong.profile.per_env = {base};
  wrong.profile.effect_hash = {std::uint64_t{7}};
  CandidateProfile right;  // same trace, same effect
  right.function_index = 1;
  right.profile.per_env = {base};
  right.profile.effect_hash = {std::uint64_t{42}};

  const auto ranking = rank_by_similarity(ref, {wrong, right});
  EXPECT_EQ(ranking[0].function_index, 1u);
}

TEST(Similarity, SecondaryScoreBreaksRemainingTies) {
  DynamicProfile ref;
  DynamicFeatures base;
  ref.per_env = {base};
  ref.effect_hash = {std::uint64_t{1}};
  CandidateProfile low, high;
  low.function_index = 0;
  low.profile = ref;
  low.secondary = 0.2;
  high.function_index = 1;
  high.profile = ref;
  high.secondary = 0.9;
  const auto ranking = rank_by_similarity(ref, {low, high});
  EXPECT_EQ(ranking[0].function_index, 1u);
}

TEST(Similarity, SameSourceDifferentArchIsCloserThanDifferentSource) {
  // The dynamic-stage premise: cross-compiled same-source functions have
  // closer traces than different functions under the same environments.
  const SourceLibrary src = generate_library("prem", 0xAA, 12);
  const LibraryBinary arm = compile_library(src, Arch::arm32, OptLevel::O2);
  const LibraryBinary x86 = compile_library(src, Arch::amd64, OptLevel::O2);
  const Machine arm_machine(arm);
  const Machine x86_machine(x86);
  Rng rng(10);
  FuzzConfig config;
  int wins = 0, comparisons = 0;
  for (std::size_t f = 0; f + 1 < 8; ++f) {
    const auto envs = generate_environments(arm, f, rng, config);
    if (envs.empty()) continue;
    const DynamicProfile self_arm = profile_function(arm_machine, f, envs);
    const DynamicProfile self_x86 = profile_function(x86_machine, f, envs);
    const DynamicProfile other_arm =
        profile_function(arm_machine, f + 1, envs);
    const double same = profile_distance(self_arm, self_x86);
    const double different = profile_distance(self_arm, other_arm);
    if (!std::isfinite(same) || !std::isfinite(different)) continue;
    ++comparisons;
    if (same < different) ++wins;
  }
  ASSERT_GT(comparisons, 3);
  EXPECT_GE(wins * 2, comparisons);  // majority
}

}  // namespace
}  // namespace patchecko
