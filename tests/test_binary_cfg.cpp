// Tests for the binary container (serialization round-trip, stripping) and
// the CFG recovery pass (block partition, edges, Table I block kinds).
#include <gtest/gtest.h>

#include "binary/binary.h"
#include "binary/cfg.h"
#include "compiler/compiler.h"
#include "source/generator.h"

namespace patchecko {
namespace {

LibraryBinary compiled_fixture() {
  const SourceLibrary src = generate_library("bin", 0xB1B, 24);
  return compile_library(src, Arch::arm32, OptLevel::O2, 100);
}

TEST(Binary, SerializeRoundTrip) {
  const LibraryBinary original = compiled_fixture();
  const std::vector<std::uint8_t> bytes = serialize_library(original);
  const LibraryBinary restored = deserialize_library(bytes);

  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.arch, original.arch);
  EXPECT_EQ(restored.opt, original.opt);
  EXPECT_EQ(restored.strings, original.strings);
  ASSERT_EQ(restored.functions.size(), original.functions.size());
  for (std::size_t f = 0; f < original.functions.size(); ++f) {
    const FunctionBinary& a = original.functions[f];
    const FunctionBinary& b = restored.functions[f];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.frame_size, b.frame_size);
    EXPECT_EQ(a.source_uid, b.source_uid);
    EXPECT_EQ(a.param_types, b.param_types);
    EXPECT_EQ(a.jump_tables, b.jump_tables);
    ASSERT_EQ(a.code.size(), b.code.size());
    for (std::size_t i = 0; i < a.code.size(); ++i)
      EXPECT_EQ(a.code[i], b.code[i]);
  }
}

TEST(Binary, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> garbage{1, 2, 3, 4, 5};
  EXPECT_THROW(deserialize_library(garbage), std::runtime_error);
}

TEST(Binary, DeserializeRejectsTruncation) {
  const LibraryBinary original = compiled_fixture();
  std::vector<std::uint8_t> bytes = serialize_library(original);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_library(bytes), std::runtime_error);
}

TEST(Binary, StripRemovesEveryName) {
  LibraryBinary lib = compiled_fixture();
  lib.strip();
  EXPECT_TRUE(lib.stripped);
  for (const FunctionBinary& fn : lib.functions) EXPECT_TRUE(fn.name.empty());
}

TEST(Binary, StripPreservesCodeAndUids) {
  LibraryBinary lib = compiled_fixture();
  const auto code_before = lib.functions[0].code;
  const auto uid = lib.functions[0].source_uid;
  lib.strip();
  EXPECT_EQ(lib.functions[0].code.size(), code_before.size());
  EXPECT_EQ(lib.functions[0].source_uid, uid);
}

TEST(Binary, ByteSizePositiveAndArchDependent) {
  const SourceLibrary src = generate_library("bs", 0xE, 6);
  const FunctionBinary arm =
      compile_function(src, 0, Arch::arm32, OptLevel::O1);
  EXPECT_GT(arm.byte_size(), 0);
}

// --- CFG recovery --------------------------------------------------------------

TEST(Cfg, EmptyFunction) {
  FunctionBinary fn;
  const Cfg cfg = build_cfg(fn);
  EXPECT_EQ(cfg.block_count(), 0u);
}

TEST(Cfg, StraightLineSingleBlock) {
  FunctionBinary fn;
  Instruction ldi;
  ldi.op = Opcode::ldi;
  ldi.dst = 0;
  ldi.imm = 1;
  Instruction ret;
  ret.op = Opcode::ret;
  fn.code = {ldi, ldi, ret};
  const Cfg cfg = build_cfg(fn);
  ASSERT_EQ(cfg.block_count(), 1u);
  EXPECT_EQ(cfg.blocks[0].kind, BlockKind::ret);
  EXPECT_EQ(cfg.blocks[0].instruction_count(), 3u);
}

TEST(Cfg, ConditionalBranchMakesDiamondEdges) {
  // 0: cmp; 1: beq ->3; 2: ret; 3: ret
  FunctionBinary fn;
  Instruction cmp;
  cmp.op = Opcode::cmp;
  cmp.dst = 0;
  cmp.src1 = 0;
  cmp.src2 = 1;
  Instruction beq;
  beq.op = Opcode::beq;
  beq.src1 = 0;
  beq.target = 3;
  Instruction ret;
  ret.op = Opcode::ret;
  fn.code = {cmp, beq, ret, ret};
  const Cfg cfg = build_cfg(fn);
  ASSERT_EQ(cfg.block_count(), 3u);
  EXPECT_EQ(cfg.graph.edge_count(), 2u);  // taken + fallthrough
  EXPECT_EQ(cfg.blocks[0].kind, BlockKind::cndret);  // taken target returns
}

TEST(Cfg, BlockPartitionCoversAllInstructionsOnce) {
  const LibraryBinary lib = compiled_fixture();
  for (const FunctionBinary& fn : lib.functions) {
    const Cfg cfg = build_cfg(fn);
    ASSERT_EQ(cfg.block_of.size(), fn.code.size());
    std::vector<int> covered(fn.code.size(), 0);
    for (const BasicBlock& block : cfg.blocks) {
      ASSERT_LE(block.first, block.last);
      ASSERT_LT(block.last, fn.code.size());
      for (std::size_t i = block.first; i <= block.last; ++i) ++covered[i];
    }
    for (std::size_t i = 0; i < covered.size(); ++i)
      EXPECT_EQ(covered[i], 1) << fn.name << " instr " << i;
  }
}

TEST(Cfg, EntryBlockStartsAtZero) {
  const LibraryBinary lib = compiled_fixture();
  for (const FunctionBinary& fn : lib.functions) {
    const Cfg cfg = build_cfg(fn);
    ASSERT_GT(cfg.block_count(), 0u);
    EXPECT_EQ(cfg.blocks[0].first, 0u);
  }
}

TEST(Cfg, EdgesOnlyBetweenValidBlocks) {
  const LibraryBinary lib = compiled_fixture();
  for (const FunctionBinary& fn : lib.functions) {
    const Cfg cfg = build_cfg(fn);
    for (std::size_t b = 0; b < cfg.block_count(); ++b)
      for (std::size_t succ : cfg.graph.successors(b))
        EXPECT_LT(succ, cfg.block_count());
  }
}

TEST(Cfg, RetBlocksHaveNoSuccessors) {
  const LibraryBinary lib = compiled_fixture();
  for (const FunctionBinary& fn : lib.functions) {
    const Cfg cfg = build_cfg(fn);
    for (std::size_t b = 0; b < cfg.block_count(); ++b) {
      if (cfg.blocks[b].kind == BlockKind::ret) {
        EXPECT_TRUE(cfg.graph.successors(b).empty());
      }
    }
  }
}

TEST(Cfg, JumpTableEdgesPresent) {
  // Find a function with a switch (dispatcher archetype) and check the
  // indirect-jump block fans out to every table entry's block.
  const SourceLibrary src = generate_library("sw", 0x51, 40);
  const LibraryBinary lib = compile_library(src, Arch::amd64, OptLevel::O1);
  bool found_dispatch = false;
  for (const FunctionBinary& fn : lib.functions) {
    if (fn.jump_tables.empty()) continue;
    found_dispatch = true;
    const Cfg cfg = build_cfg(fn);
    for (std::size_t i = 0; i < fn.code.size(); ++i) {
      if (fn.code[i].op != Opcode::jmpi) continue;
      const std::size_t block = cfg.block_of[i];
      EXPECT_EQ(cfg.blocks[block].kind, BlockKind::indjump);
      const auto& table =
          fn.jump_tables[static_cast<std::size_t>(fn.code[i].imm)];
      EXPECT_EQ(cfg.graph.successors(block).size() <= table.size(), true);
      EXPECT_GE(cfg.graph.successors(block).size(), 1u);
    }
  }
  EXPECT_TRUE(found_dispatch);
}

TEST(Cfg, MostBlocksReachableFromEntry) {
  const LibraryBinary lib = compiled_fixture();
  for (const FunctionBinary& fn : lib.functions) {
    const Cfg cfg = build_cfg(fn);
    const auto reach = cfg.graph.reachable_from(0);
    std::size_t reachable = 0;
    for (bool r : reach)
      if (r) ++reachable;
    // The epilogue safety `ldi/ret` may be unreachable; everything else
    // should hang off the entry.
    EXPECT_GE(reachable + 2, cfg.block_count()) << fn.name;
  }
}

}  // namespace
}  // namespace patchecko
