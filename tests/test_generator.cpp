// Tests for the corpus generator: determinism, archetype structure, library
// invariants (acyclic calls, callable typing), and interpretability of every
// generated function.
#include <gtest/gtest.h>

#include "binary/binary.h"
#include "compiler/compiler.h"
#include "fuzz/fuzzer.h"
#include "source/generator.h"
#include "source/interp.h"

namespace patchecko {
namespace {

TEST(Generator, DeterministicFromSeed) {
  const SourceLibrary a = generate_library("same", 1234, 30);
  const SourceLibrary b = generate_library("same", 1234, 30);
  ASSERT_EQ(a.functions.size(), b.functions.size());
  // Compare through compiled binaries: byte-identical serialization.
  const auto bytes_a =
      serialize_library(compile_library(a, Arch::amd64, OptLevel::O2));
  const auto bytes_b =
      serialize_library(compile_library(b, Arch::amd64, OptLevel::O2));
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(Generator, DifferentSeedsDiffer) {
  const SourceLibrary a = generate_library("x", 1, 10);
  const SourceLibrary b = generate_library("x", 2, 10);
  const auto bytes_a =
      serialize_library(compile_library(a, Arch::amd64, OptLevel::O0));
  const auto bytes_b =
      serialize_library(compile_library(b, Arch::amd64, OptLevel::O0));
  EXPECT_NE(bytes_a, bytes_b);
}

TEST(Generator, RequestedFunctionCount) {
  EXPECT_EQ(generate_library("n", 5, 77).functions.size(), 77u);
}

TEST(Generator, StringPoolPopulated) {
  GeneratorConfig config;
  const SourceLibrary lib = generate_library("s", 5, 4, config);
  EXPECT_EQ(static_cast<int>(lib.strings.size()), config.string_count);
  for (const std::string& s : lib.strings) EXPECT_FALSE(s.empty());
}

TEST(Generator, CallGraphIsAcyclicAndTyped) {
  const SourceLibrary lib = generate_library("calls", 99, 60);
  // Every fn_call must target a lower index with an all-i64 signature and
  // matching arity.
  std::function<void(const Expr&, int)> check_expr = [&](const Expr& e,
                                                         int caller) {
    if (e.kind == Expr::Kind::fn_call) {
      ASSERT_GE(e.callee, 0);
      ASSERT_LT(e.callee, caller);
      const SourceFunction& callee =
          lib.functions[static_cast<std::size_t>(e.callee)];
      EXPECT_EQ(e.args.size(), callee.param_types.size());
      for (ValueType t : callee.param_types)
        EXPECT_EQ(t, ValueType::i64);
    }
    for (const auto& arg : e.args) check_expr(*arg, caller);
  };
  std::function<void(const std::vector<StmtPtr>&, int)> check_body =
      [&](const std::vector<StmtPtr>& body, int caller) {
        for (const auto& stmt : body) {
          for (const Expr* e :
               {stmt->expr.get(), stmt->base.get(), stmt->index.get(),
                stmt->value.get(), stmt->init.get(), stmt->bound.get()})
            if (e != nullptr) check_expr(*e, caller);
          check_body(stmt->then_body, caller);
          check_body(stmt->else_body, caller);
          for (const auto& c : stmt->cases) check_body(c, caller);
        }
      };
  for (std::size_t f = 0; f < lib.functions.size(); ++f)
    check_body(lib.functions[f].body, static_cast<int>(f));
}

TEST(Generator, PinnedArchetypeShapes) {
  Rng rng(42);
  const SourceFunction scanner =
      generate_function(rng, Archetype::scanner, 0);
  EXPECT_EQ(scanner.param_types.size(), 3u);
  EXPECT_EQ(scanner.param_types[0], ValueType::ptr);

  Rng rng2(42);
  const SourceFunction fp = generate_function(rng2, Archetype::fp_kernel, 0);
  EXPECT_EQ(fp.param_types[2], ValueType::f64);

  Rng rng3(42);
  const SourceFunction dispatcher =
      generate_function(rng3, Archetype::dispatcher, 0);
  for (ValueType t : dispatcher.param_types) EXPECT_EQ(t, ValueType::i64);
}

TEST(Generator, CopyShiftMemmoveFlagControlsLibcall) {
  auto contains_memmove = [](const SourceFunction& fn) {
    std::function<bool(const Expr&)> in_expr = [&](const Expr& e) {
      if (e.kind == Expr::Kind::libcall && e.lib_fn == LibFn::memmove)
        return true;
      for (const auto& a : e.args)
        if (in_expr(*a)) return true;
      return false;
    };
    std::function<bool(const std::vector<StmtPtr>&)> in_body =
        [&](const std::vector<StmtPtr>& body) {
          for (const auto& s : body) {
            for (const Expr* e :
                 {s->expr.get(), s->base.get(), s->index.get(),
                  s->value.get(), s->init.get(), s->bound.get()})
              if (e != nullptr && in_expr(*e)) return true;
            if (in_body(s->then_body) || in_body(s->else_body)) return true;
            for (const auto& c : s->cases)
              if (in_body(c)) return true;
          }
          return false;
        };
    return in_body(fn.body);
  };
  Rng with(7), without(7);
  EXPECT_TRUE(contains_memmove(generate_copy_shift(with, 0, true)));
  EXPECT_FALSE(contains_memmove(generate_copy_shift(without, 0, false)));
}

TEST(Generator, EveryArchetypeInterpretsCleanlyOnMatchedInputs) {
  // Property sweep: each archetype executes OK (or traps cleanly) on
  // signature-consistent random inputs, and never exceeds the step budget
  // wildly.
  for (std::size_t a = 0; a < archetype_count; ++a) {
    SourceLibrary lib;
    lib.name = "arch";
    GeneratorConfig config;
    lib.strings.assign(static_cast<std::size_t>(config.string_count), "s");
    Rng rng(1000 + a);
    lib.functions.push_back(
        generate_function(rng, static_cast<Archetype>(a), 0, config));
    Rng env_rng(2000 + a);
    FuzzConfig fuzz;
    for (int trial = 0; trial < 5; ++trial) {
      CallEnv env = random_env(env_rng, lib.functions[0].param_types, fuzz);
      const ExecResult r = interpret(lib, 0, env, 1u << 18);
      EXPECT_NE(r.status, ExecStatus::trap_step_limit)
          << archetype_name(static_cast<Archetype>(a));
    }
  }
}

TEST(Generator, ArchetypeDistributionCoversAll) {
  Rng rng(5);
  std::vector<int> counts(archetype_count, 0);
  for (int i = 0; i < 2000; ++i)
    ++counts[static_cast<std::size_t>(pick_archetype(rng))];
  for (std::size_t a = 0; a < archetype_count; ++a)
    EXPECT_GT(counts[a], 0) << archetype_name(static_cast<Archetype>(a));
}

TEST(Generator, NodeCountPositive) {
  const SourceLibrary lib = generate_library("nc", 3, 20);
  for (const SourceFunction& fn : lib.functions)
    EXPECT_GT(fn.node_count(), 0u) << fn.name;
}

TEST(Ast, CloneProducesIndependentCopy) {
  ExprPtr original = make_bin(BinOp::add, make_int(1), make_int(2));
  ExprPtr copy = original->clone();
  original->args[0]->int_value = 99;
  EXPECT_EQ(copy->args[0]->int_value, 1);
}

TEST(Ast, SourceFunctionCopyIsDeep) {
  Rng rng(8);
  SourceFunction a = generate_function(rng, Archetype::scalar_math, 0);
  SourceFunction b = a;  // copy ctor deep-clones the body
  ASSERT_FALSE(a.body.empty());
  EXPECT_NE(a.body[0].get(), b.body[0].get());
  EXPECT_EQ(a.node_count(), b.node_count());
}

TEST(Ast, ComparisonTypeIsInteger) {
  ExprPtr cmp = make_bin(BinOp::flt, make_fp(1.0), make_fp(2.0));
  EXPECT_EQ(cmp->type, ValueType::i64);
  ExprPtr sum = make_bin(BinOp::fadd, make_fp(1.0), make_fp(2.0));
  EXPECT_EQ(sum->type, ValueType::f64);
}

}  // namespace
}  // namespace patchecko
