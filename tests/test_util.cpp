// Unit tests for the util substrate: deterministic RNG, summary statistics,
// the Minkowski distance family, parallel_for, and table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace patchecko {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, GaussianRoughMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.15);
}

TEST(Rng, ForkIndependentStreams) {
  Rng root(77);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  EXPECT_NE(a(), b());
}

TEST(Rng, ForkDeterministic) {
  Rng r1(77), r2(77);
  Rng a = r1.fork(9);
  Rng b = r2.fork(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, WeightedPickFollowsWeights) {
  Rng rng(13);
  const std::vector<double> weights{1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> values{1, 2, 3, 4};
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, SummarizeEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, SummarizeSingleValue) {
  const std::vector<double> values{7.5};
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Minkowski, ManhattanAndEuclideanSpecialCases) {
  const std::vector<double> x{0, 0}, y{3, 4};
  EXPECT_DOUBLE_EQ(minkowski_distance(x, y, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(minkowski_distance(x, y, 2.0), 5.0);
}

TEST(Minkowski, IdentityOfIndiscernibles) {
  const std::vector<double> x{1, 2, 3};
  EXPECT_DOUBLE_EQ(minkowski_distance(x, x, 3.0), 0.0);
}

TEST(Minkowski, Symmetry) {
  const std::vector<double> x{1, 5, -2}, y{4, 0, 9};
  EXPECT_DOUBLE_EQ(minkowski_distance(x, y, 3.0),
                   minkowski_distance(y, x, 3.0));
}

TEST(Minkowski, TriangleInequalityP3) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> a(5), b(5), c(5);
    for (int i = 0; i < 5; ++i) {
      a[static_cast<std::size_t>(i)] = rng.uniform_real(-10, 10);
      b[static_cast<std::size_t>(i)] = rng.uniform_real(-10, 10);
      c[static_cast<std::size_t>(i)] = rng.uniform_real(-10, 10);
    }
    EXPECT_LE(minkowski_distance(a, c, 3.0),
              minkowski_distance(a, b, 3.0) +
                  minkowski_distance(b, c, 3.0) + 1e-9);
  }
}

TEST(Minkowski, RejectsSizeMismatch) {
  const std::vector<double> x{1}, y{1, 2};
  EXPECT_THROW(minkowski_distance(x, y, 3.0), std::invalid_argument);
}

TEST(Minkowski, RejectsNonPositiveOrder) {
  const std::vector<double> x{1}, y{2};
  EXPECT_THROW(minkowski_distance(x, y, 0.0), std::invalid_argument);
}

TEST(Cosine, ParallelAndOrthogonal) {
  const std::vector<double> x{1, 0}, y{2, 0}, z{0, 5};
  EXPECT_NEAR(cosine_similarity(x, y), 1.0, 1e-12);
  EXPECT_NEAR(cosine_similarity(x, z), 0.0, 1e-12);
}

TEST(Cosine, ZeroVectorYieldsZero) {
  const std::vector<double> x{0, 0}, y{1, 2};
  EXPECT_DOUBLE_EQ(cosine_similarity(x, y), 0.0);
}

TEST(SignedLog1p, SignAndMonotonicity) {
  EXPECT_DOUBLE_EQ(signed_log1p(0.0), 0.0);
  EXPECT_GT(signed_log1p(10.0), signed_log1p(5.0));
  EXPECT_DOUBLE_EQ(signed_log1p(-3.0), -signed_log1p(3.0));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> touched(257);
  parallel_for(touched.size(), 4,
               [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& count : touched) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, InlineWhenSingleThreaded) {
  int calls = 0;  // no synchronization: must run on the calling thread
  parallel_for(5, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ParallelFor, RethrowsLowestWorkerIndexWhenAllThrow) {
  // Worker w owns the strided indices {w, w+4, ...} and throws immediately,
  // so whatever the thread timing, the surfaced exception must be worker
  // 0's, thrown at index 0.
  try {
    parallel_for(8, 4, [](std::size_t i) {
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "0");
  }
}

TEST(ParallelFor, MultiExceptionRethrowIsDeterministic) {
  // With 2 workers, worker 0 owns {0,2,4,6} and worker 1 owns {1,3,5,7}.
  // Indices 5 and 6 both throw; worker 1 usually faults *first on the
  // clock* (index 5 precedes 6 in its stride), but the deterministic rule
  // is lowest worker index, so worker 0's exception ("6") must surface on
  // every repetition.
  for (int repeat = 0; repeat < 25; ++repeat) {
    try {
      parallel_for(8, 2, [](std::size_t i) {
        if (i == 5 || i == 6) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "6");
    }
  }
}

TEST(ParallelFor, OtherWorkersFinishAfterAnException) {
  // Worker 3 throws at its first index (3) and abandons the rest of its
  // stride {3,7,...,63}; the other three workers must still complete all
  // 48 of their items before the exception reaches the caller.
  std::vector<std::atomic<int>> touched(64);
  EXPECT_THROW(parallel_for(touched.size(), 4,
                            [&](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                              touched[i].fetch_add(1);
                            }),
               std::runtime_error);
  int done = 0;
  for (const auto& count : touched) done += count.load();
  EXPECT_EQ(done, 48);
}

TEST(ParallelFor, NestedParallelismDoesNotDeadlock) {
  std::atomic<int> total{0};
  parallel_for(4, 4, [&](std::size_t) {
    parallel_for(8, 4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"a", "bb"});
  table.add_row({"xxx", "y"});
  table.add_row({"z"});
  const std::string out = table.render();
  EXPECT_NE(out.find("xxx"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, FormattingHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.1234, 2), "12.34%");
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace patchecko
