// Tests for the run-health telemetry layer: heartbeat snapshot schema and
// determinism, the stall watchdog's deadline latching and cooperative
// cancellation, per-job resource accounting plumbing, bench-diff
// classification, and the no-tear guarantee of Registry::snapshot().
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dl/trainer.h"
#include "engine/engine.h"
#include "obs/benchdiff.h"
#include "obs/decision.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace patchecko {
namespace {

std::string scratch_path(const std::string& name) {
  const auto path =
      std::filesystem::temp_directory_path() / ("pk_health_test_" + name);
  std::filesystem::remove_all(path);
  return path.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

// Same shared universe shape as the engine tests: a lightly trained model
// and a scaled-down corpus, deterministic by construction.
struct HealthUniverse {
  SimilarityModel model;
  std::unique_ptr<EvalCorpus> corpus;
  std::unique_ptr<CveDatabase> database;
  FirmwareImage firmware;
  std::vector<std::string> some_cves;

  HealthUniverse() {
    TrainerConfig trainer;
    trainer.dataset.library_count = 16;
    trainer.dataset.functions_per_library = 12;
    trainer.epochs = 6;
    model = train_similarity_model(trainer).model;

    EvalConfig eval;
    eval.scale = 0.03;
    corpus = std::make_unique<EvalCorpus>(eval);
    database = std::make_unique<CveDatabase>(*corpus, DatabaseConfig{});
    firmware = corpus->build_firmware(android_things_device());
    for (const CveEntry& entry : database->entries()) {
      if (some_cves.size() == 4) break;
      some_cves.push_back(entry.spec.cve_id);
    }
  }

  ScanRequest request() const {
    ScanRequest request;
    request.model = &model;
    request.firmware = &firmware;
    request.database = database.get();
    request.cve_ids = some_cves;
    return request;
  }
};

const HealthUniverse& universe() {
  static HealthUniverse instance;
  return instance;
}

TEST(Health, SnapshotJsonlSchemaIsFixed) {
  obs::HealthSnapshot snapshot;
  snapshot.seq = 3;
  snapshot.t_seconds = 1.5;
  snapshot.jobs_done = 7;
  snapshot.jobs_total = 10;
  snapshot.analyze_done = 2;
  snapshot.detect_done = 3;
  snapshot.patch_done = 2;
  snapshot.rate_per_second = 2.0;
  snapshot.eta_seconds = 1.5;
  snapshot.cache_hits = 4;
  snapshot.cache_misses = 12;
  snapshot.cache_hit_ratio = 0.25;
  snapshot.ready_depth = 5;
  snapshot.pool_queue_depth = 2;
  snapshot.events_emitted = 40;
  snapshot.events_overflowed = 1;
  snapshot.stalled_jobs = 1;
  const std::string line =
      obs::health_snapshot_jsonl(snapshot, /*include_process=*/false);
  EXPECT_EQ(line,
            "{\"type\":\"heartbeat\",\"seq\":3,\"t_s\":1.5,"
            "\"jobs\":{\"done\":7,\"total\":10,\"analyze\":2,\"detect\":3,"
            "\"patch\":2},\"rate_per_s\":2,\"eta_s\":1.5,"
            "\"cache\":{\"hits\":4,\"misses\":12,\"hit_ratio\":0.25},"
            "\"queues\":{\"ready\":5,\"pool\":2},"
            "\"events\":{\"emitted\":40,\"overflow\":1},\"stalled_jobs\":1}");

  // Unknown ETA renders as null, and the machine-dependent process section
  // only appears when asked for.
  snapshot.eta_seconds = std::nan("");
  snapshot.rss_kb = 1024;
  snapshot.peak_rss_kb = 2048;
  const std::string with_process =
      obs::health_snapshot_jsonl(snapshot, /*include_process=*/true);
  EXPECT_NE(with_process.find("\"eta_s\":null"), std::string::npos);
  EXPECT_NE(with_process.find(
                "\"process\":{\"rss_kb\":1024,\"peak_rss_kb\":2048}"),
            std::string::npos);
  const auto parsed = obs::json::parse(with_process);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->get("eta_s").is_null());
}

TEST(Health, HeartbeatManualClockLifecycle) {
  obs::ManualClock clock;
  obs::Registry registry;  // empty: all registry-derived fields stay zero
  const std::string hb_file = scratch_path("manual_hb") + ".jsonl";
  obs::HeartbeatConfig config;
  config.file = hb_file;
  config.interval_seconds = 0.0;  // no ticker thread; tests drive poll()
  config.clock = &clock;
  config.registry = &registry;
  config.include_process = false;

  {
    obs::Heartbeat heartbeat(std::move(config));
    heartbeat.begin(4);
    EXPECT_EQ(heartbeat.snapshots_written(), 1u);

    clock.advance(2.0);
    heartbeat.job_done();
    heartbeat.job_done();
    heartbeat.poll();

    clock.advance(2.0);
    heartbeat.job_done();
    heartbeat.job_done();
    heartbeat.finish();
    EXPECT_EQ(heartbeat.snapshots_written(), 3u);
    heartbeat.finish();  // idempotent
    EXPECT_EQ(heartbeat.snapshots_written(), 3u);
  }

  const auto lines = lines_of(slurp(hb_file));
  ASSERT_EQ(lines.size(), 3u);

  const auto snapshot = [&](std::size_t i) {
    const auto parsed = obs::json::parse(lines[i]);
    EXPECT_TRUE(parsed.has_value()) << lines[i];
    return *parsed;
  };

  const auto first = snapshot(0);
  EXPECT_EQ(first.get("seq").as_number(), 0.0);
  EXPECT_EQ(first.get("t_s").as_number(), 0.0);
  EXPECT_EQ(first.get("jobs").get("done").as_number(), 0.0);
  EXPECT_EQ(first.get("jobs").get("total").as_number(), 4.0);
  EXPECT_EQ(first.get("rate_per_s").as_number(), 0.0);
  EXPECT_TRUE(first.get("eta_s").is_null());  // no progress signal yet
  EXPECT_TRUE(first.get("process").is_null());

  const auto mid = snapshot(1);
  EXPECT_EQ(mid.get("seq").as_number(), 1.0);
  EXPECT_EQ(mid.get("t_s").as_number(), 2.0);
  EXPECT_EQ(mid.get("jobs").get("done").as_number(), 2.0);
  // Window [(0,0),(2,2)]: 2 jobs over 2 seconds, 2 remaining -> ETA 2s.
  EXPECT_DOUBLE_EQ(mid.get("rate_per_s").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(mid.get("eta_s").as_number(), 2.0);

  const auto last = snapshot(2);
  EXPECT_EQ(last.get("seq").as_number(), 2.0);
  EXPECT_EQ(last.get("jobs").get("done").as_number(), 4.0);
  EXPECT_EQ(last.get("jobs").get("total").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(last.get("eta_s").as_number(), 0.0);  // nothing remaining
}

TEST(Health, SilentHeartbeatSamplesWithoutWritingLines) {
  // write_lines=false is the scan-service mode: snapshots are still taken
  // (the health endpoint reads the last one) but no JSONL goes anywhere.
  obs::ManualClock clock;
  obs::Registry registry;
  obs::HeartbeatConfig config;
  config.interval_seconds = 0.0;
  config.clock = &clock;
  config.registry = &registry;
  config.write_lines = false;

  obs::Heartbeat heartbeat(std::move(config));
  EXPECT_FALSE(heartbeat.last_snapshot().has_value());  // before begin()
  heartbeat.begin(3);
  heartbeat.job_done();
  heartbeat.job_done();
  clock.advance(1.5);
  heartbeat.poll();
  auto snapshot = heartbeat.last_snapshot();
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->jobs_done, 2u);
  EXPECT_EQ(snapshot->jobs_total, 3u);
  EXPECT_DOUBLE_EQ(snapshot->t_seconds, 1.5);
  heartbeat.job_done();
  heartbeat.finish();
  snapshot = heartbeat.last_snapshot();
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->jobs_done, 3u);
  // Silent mode writes no lines, but snapshots_written still counts samples.
  EXPECT_EQ(heartbeat.snapshots_written(), 3u);
}

TEST(Health, HeartbeatSnapshotsAreIdenticalAcrossJobCounts) {
  // The CI-facing determinism claim: with a fake clock and the process
  // section off, a --jobs=1 scan and a --jobs=8 scan of the same request
  // produce byte-identical heartbeat files. Snapshot values may only
  // depend on scheduling-independent state.
  const HealthUniverse& u = universe();
  const obs::EnabledScope obs_on(true);

  const auto run_with_jobs = [&](unsigned jobs, const std::string& tag) {
    const std::string hb_file = scratch_path("det_" + tag) + ".jsonl";
    obs::ManualClock clock;
    obs::HeartbeatConfig config;
    config.file = hb_file;
    config.interval_seconds = 0.0;
    config.clock = &clock;
    config.include_process = false;
    obs::Heartbeat heartbeat(std::move(config));

    EngineConfig engine_config;
    engine_config.jobs = jobs;
    engine_config.heartbeat = &heartbeat;
    ScanEngine engine(engine_config);
    engine.run(u.request());
    heartbeat.finish();  // flush + close before reading the file back
    return slurp(hb_file);
  };

  const std::string sequential = run_with_jobs(1, "seq");
  const std::string parallel = run_with_jobs(8, "par");
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);

  const auto lines = lines_of(sequential);
  ASSERT_GE(lines.size(), 2u);
  const auto final_snapshot = obs::json::parse(lines.back());
  ASSERT_TRUE(final_snapshot.has_value());
  const double total = final_snapshot->get("jobs").get("total").as_number();
  EXPECT_GT(total, 0.0);
  EXPECT_EQ(final_snapshot->get("jobs").get("done").as_number(), total);
}

TEST(Health, WatchdogSoftDeadlineFlagsExactlyOnce) {
  const obs::EnabledScope obs_on(true);
  const obs::EventsEnabledScope events_on(true);
  const std::uint64_t emitted0 = obs::EventLog::global().emitted();

  obs::ManualClock clock;
  obs::WatchdogConfig config;
  config.soft_deadline_seconds = 0.5;
  config.poll_interval_seconds = 0.0;  // no thread; poll() by hand
  config.clock = &clock;
  config.warn_stderr = false;
  obs::StallWatchdog watchdog(config);

  const obs::StallWatchdog::Job job =
      watchdog.job_started("detect", "CVE-0000-0001");
  watchdog.poll();
  EXPECT_EQ(watchdog.soft_flagged(), 0u);

  clock.advance(1.0);
  watchdog.poll();
  watchdog.poll();  // the flag latches: repeated sweeps must not re-warn
  watchdog.poll();
  EXPECT_EQ(watchdog.soft_flagged(), 1u);
  EXPECT_EQ(obs::EventLog::global().emitted() - emitted0, 1u);

  // No hard deadline configured: the cancel flag must never flip.
  EXPECT_EQ(watchdog.cancelled(), 0u);
  ASSERT_TRUE(job.cancel != nullptr);
  EXPECT_FALSE(job.cancel->load());
  watchdog.job_finished(job);
}

TEST(Health, WatchdogHardDeadlineSetsCooperativeCancel) {
  const obs::EnabledScope obs_on(true);
  obs::ManualClock clock;
  obs::WatchdogConfig config;
  config.soft_deadline_seconds = 0.1;
  config.hard_deadline_seconds = 0.2;
  config.poll_interval_seconds = 0.0;
  config.clock = &clock;
  config.warn_stderr = false;
  obs::StallWatchdog watchdog(config);

  const std::uint64_t soft0 =
      obs::Registry::global().counter("watchdog.soft_flags").value();
  const std::uint64_t cancel0 =
      obs::Registry::global().counter("watchdog.cancelled").value();

  const obs::StallWatchdog::Job slow =
      watchdog.job_started("detect", "CVE-0000-0002");
  const obs::StallWatchdog::Job fast =
      watchdog.job_started("analyze", "libfast");

  clock.advance(0.15);
  watchdog.job_finished(fast);  // finished before any deadline
  watchdog.poll();
  EXPECT_EQ(watchdog.soft_flagged(), 1u);
  EXPECT_EQ(watchdog.cancelled(), 0u);
  EXPECT_FALSE(slow.cancel->load());
  EXPECT_FALSE(fast.cancel->load());

  clock.advance(0.1);
  watchdog.poll();
  watchdog.poll();
  EXPECT_EQ(watchdog.cancelled(), 1u);
  EXPECT_TRUE(slow.cancel->load());
  EXPECT_FALSE(fast.cancel->load());
  watchdog.job_finished(slow);
  watchdog.poll();  // nothing in flight; counters must not move
  EXPECT_EQ(watchdog.soft_flagged(), 1u);
  EXPECT_EQ(watchdog.cancelled(), 1u);

  // The sweep also publishes registry counters for the heartbeat/export.
  EXPECT_EQ(obs::Registry::global().counter("watchdog.soft_flags").value() -
                soft0,
            1u);
  EXPECT_EQ(obs::Registry::global().counter("watchdog.cancelled").value() -
                cancel0,
            1u);
}

TEST(Health, EngineStallInjectionRecordsStalledOutcome) {
  // End-to-end: an injected oversleep in one detect job trips the real
  // watchdog poller, the pipeline abandons the job cooperatively, and the
  // scan records a deterministic `stalled` decision instead of hanging.
  const HealthUniverse& u = universe();
  const obs::EnabledScope obs_on(true);
  const std::string stalled_cve = u.some_cves.front();
  const std::string cache_dir = scratch_path("stall_cache");

  EngineConfig config;
  config.jobs = 2;
  config.cache_dir = cache_dir;
  config.stall_inject_label = stalled_cve;
  config.stall_inject_seconds = 0.4;
  config.watchdog.soft_deadline_seconds = 0.05;
  config.watchdog.hard_deadline_seconds = 0.1;
  config.watchdog.poll_interval_seconds = 0.01;
  config.watchdog.warn_stderr = false;

  const ScanReport report = ScanEngine(config).run(u.request());
  const CveScanResult* stalled_result = nullptr;
  for (const CveScanResult& result : report.results) {
    if (result.cve_id == stalled_cve) {
      stalled_result = &result;
      EXPECT_TRUE(result.stalled) << result.cve_id;
    } else {
      EXPECT_FALSE(result.stalled) << result.cve_id;
    }
  }
  ASSERT_NE(stalled_result, nullptr);
  EXPECT_NE(report.summary_text().find("stalled by watchdog"),
            std::string::npos);

  // The stalled flag survives the decision-record round trip.
  const obs::DecisionRecord record = decision_record(*stalled_result);
  EXPECT_TRUE(record.stalled);
  const std::string line = obs::decision_jsonl_line(record);
  EXPECT_NE(line.find("\"stalled\":true"), std::string::npos);
  const auto parsed = obs::parse_decision_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->stalled);
  EXPECT_NE(obs::explain_text(*parsed).find("STALLED"), std::string::npos);

  // A cancelled outcome is partial and must never be cached: a fresh engine
  // over the same cache directory, without the injected stall, has to
  // recompute and produce a clean (non-stalled) result for that CVE.
  EngineConfig clean = EngineConfig{};
  clean.jobs = 2;
  clean.cache_dir = cache_dir;
  const ScanReport second = ScanEngine(clean).run(u.request());
  for (const CveScanResult& result : second.results)
    EXPECT_FALSE(result.stalled) << result.cve_id;
}

TEST(Health, EngineRecordsPerJobResourceAccounting) {
  // CPU-time and allocation accounting flows job body -> JobEvent ->
  // JobTiming -> registry. Skip value assertions where the platform cannot
  // measure (cpu clock unsupported, allocation hook compiled out under
  // sanitizers).
  const HealthUniverse& u = universe();
  const obs::EnabledScope obs_on(true);
  obs::Registry& registry = obs::Registry::global();
  const std::uint64_t cpu0 =
      registry.histogram("engine.job_cpu_seconds.detect").count();
  const std::uint64_t allocations0 =
      registry.counter("engine.job_allocations").value();

  EngineConfig config;
  config.jobs = 2;
  std::vector<JobEvent> events;
  std::mutex events_mutex;
  const ScanReport report =
      ScanEngine(config).run(u.request(), [&](const JobEvent& event) {
        const std::lock_guard<std::mutex> lock(events_mutex);
        events.push_back(event);
      });

  ASSERT_FALSE(events.empty());
  ASSERT_EQ(events.size(), report.timings.size());
  const bool cpu_supported = obs::thread_cpu_seconds() >= 0.0;
  std::uint64_t total_allocations = 0;
  for (const JobTiming& timing : report.timings) {
    if (cpu_supported) EXPECT_GE(timing.cpu_seconds, 0.0);
    EXPECT_FALSE(timing.stalled);
    total_allocations += timing.allocations;
  }
  if (cpu_supported)
    EXPECT_EQ(registry.histogram("engine.job_cpu_seconds.detect").count() -
                  cpu0,
              u.some_cves.size());
  if (obs::allocation_counting_available()) {
    EXPECT_GT(total_allocations, 0u);
    EXPECT_EQ(registry.counter("engine.job_allocations").value() -
                  allocations0,
              total_allocations);
  }
  if (obs::process_rss_kb() > 0)
    EXPECT_GT(registry.gauge("process.rss_kb").value(), 0);
}

TEST(Health, HeartbeatRealTickerPublishesDuringThreadedRun) {
  // Real ticker thread + real watchdog poller + 8 workers: primarily a
  // TSan target (the CI race-check filter includes Health.*), but also
  // asserts the publisher makes progress on its own.
  const HealthUniverse& u = universe();
  const obs::EnabledScope obs_on(true);

  const std::string hb_file = scratch_path("ticker_hb") + ".jsonl";
  obs::HeartbeatConfig hb_config;
  hb_config.file = hb_file;
  hb_config.interval_seconds = 0.002;
  obs::Heartbeat heartbeat(std::move(hb_config));

  EngineConfig config;
  config.jobs = 8;
  config.heartbeat = &heartbeat;
  config.watchdog.soft_deadline_seconds = 60.0;  // never fires; thread runs
  config.watchdog.poll_interval_seconds = 0.002;
  ScanEngine(config).run(u.request());

  EXPECT_GE(heartbeat.snapshots_written(), 2u);
  heartbeat.finish();
  const auto lines = lines_of(slurp(hb_file));
  ASSERT_GE(lines.size(), 2u);
  for (const std::string& line : lines)
    EXPECT_TRUE(obs::json::parse(line).has_value()) << line;
}

TEST(Obs, RegistrySnapshotNeverTearsGaugePairs) {
  // Hammer one gauge from four writers while a reader snapshots: a
  // consistent snapshot must never report max < value (the reader clamps
  // because Gauge::add publishes the value before raising the high-water
  // mark).
  const obs::EnabledScope obs_on(true);
  obs::Registry registry;
  obs::Gauge& gauge = registry.gauge("tear.gauge");
  registry.counter("tear.counter");
  registry.histogram("tear.histogram");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w)
    writers.emplace_back([&gauge, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        gauge.add(+3);
        gauge.add(-3);
      }
    });

  for (int i = 0; i < 2000; ++i) {
    const obs::RegistrySnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.gauges.size(), 1u);
    ASSERT_EQ(snapshot.counters.size(), 1u);
    ASSERT_EQ(snapshot.histograms.size(), 1u);
    EXPECT_GE(snapshot.gauges[0].max, snapshot.gauges[0].value);
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
}

TEST(Obs, WriteMetricsArtifactsRoutesSummaryAwayFromJsonStream) {
  // Regression test for --metrics stdout pollution: the human summary and
  // the JSON document must go to the two distinct streams they were given.
  obs::Registry registry;
  {
    const obs::EnabledScope obs_on(true);
    registry.counter("route.counter").add(7);
  }
  obs::Tracer tracer;

  std::FILE* json_stream = std::tmpfile();
  std::FILE* summary_stream = std::tmpfile();
  ASSERT_NE(json_stream, nullptr);
  ASSERT_NE(summary_stream, nullptr);
  const int status = obs::write_metrics_artifacts(
      registry, tracer, nullptr, /*file=*/"", json_stream, summary_stream);
  EXPECT_EQ(status, 0);

  const auto read_all = [](std::FILE* stream) {
    std::rewind(stream);
    std::string text;
    char buffer[4096];
    for (std::size_t n; (n = std::fread(buffer, 1, sizeof buffer, stream));)
      text.append(buffer, n);
    return text;
  };
  const std::string json_text = read_all(json_stream);
  const std::string summary_text = read_all(summary_stream);
  std::fclose(json_stream);
  std::fclose(summary_stream);

  ASSERT_FALSE(json_text.empty());
  EXPECT_EQ(json_text.front(), '{');
  EXPECT_TRUE(obs::json::parse(json_text).has_value());
  EXPECT_NE(json_text.find("route.counter"), std::string::npos);
  EXPECT_FALSE(summary_text.empty());
  EXPECT_EQ(summary_text.find('{'), std::string::npos);
  EXPECT_EQ(summary_text.rfind("metrics:", 0), 0u);
}

TEST(BenchDiff, ParsesBothSchemaGenerations) {
  std::string error;
  const auto v2 = obs::parse_bench_json(
      R"({"bench":"demo","rows":[{"name":"cold","metrics":{"seconds":1.5,)"
      R"("misses":10}}],"higher_is_better":["hit_ratio"]})",
      &error);
  ASSERT_TRUE(v2.has_value()) << error;
  EXPECT_EQ(v2->bench, "demo");
  ASSERT_EQ(v2->rows.size(), 1u);
  ASSERT_NE(v2->rows[0].find("seconds"), nullptr);
  EXPECT_DOUBLE_EQ(*v2->rows[0].find("seconds"), 1.5);
  EXPECT_EQ(v2->higher_is_better.count("hit_ratio"), 1u);

  // v1: numeric row members become metrics.
  const auto v1 = obs::parse_bench_json(
      R"({"bench":"obs","rows":[{"name":"counter.add","enabled_ns":2.1,)"
      R"("disabled_ns":0.4}]})",
      &error);
  ASSERT_TRUE(v1.has_value()) << error;
  ASSERT_EQ(v1->rows.size(), 1u);
  ASSERT_NE(v1->rows[0].find("enabled_ns"), nullptr);
  EXPECT_DOUBLE_EQ(*v1->rows[0].find("enabled_ns"), 2.1);
  ASSERT_NE(v1->rows[0].find("disabled_ns"), nullptr);

  EXPECT_FALSE(obs::parse_bench_json("not json", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::load_bench_file("/nonexistent/BENCH_x.json", &error)
                   .has_value());
}

TEST(BenchDiff, ClassifiesDeltasAgainstToleranceBands) {
  std::string error;
  const auto old_file = obs::parse_bench_json(
      R"({"bench":"b","rows":[{"name":"r","metrics":{"seconds":1.0,)"
      R"("accuracy":0.9,"gone":5.0,"steady":2.0}}]})",
      &error);
  const auto new_file = obs::parse_bench_json(
      R"({"bench":"b","rows":[{"name":"r","metrics":{"seconds":1.5,)"
      R"("accuracy":0.5,"fresh":1.0,"steady":2.1}}]})",
      &error);
  ASSERT_TRUE(old_file.has_value());
  ASSERT_TRUE(new_file.has_value());

  obs::BenchFile newer = *new_file;
  newer.higher_is_better.insert("accuracy");
  const obs::BenchDiff diff =
      obs::diff_bench(*old_file, newer, obs::Tolerance{0.25, 0.0});

  const auto status_of = [&](const std::string& metric) {
    for (const obs::MetricDelta& delta : diff.deltas)
      if (delta.metric == metric) return delta.status;
    return obs::DeltaStatus::ok;
  };
  // seconds 1.0 -> 1.5 is +50% on a lower-is-better metric: regression.
  EXPECT_EQ(status_of("seconds"), obs::DeltaStatus::regressed);
  // accuracy 0.9 -> 0.5 drops on a higher-is-better metric: regression.
  EXPECT_EQ(status_of("accuracy"), obs::DeltaStatus::regressed);
  // steady 2.0 -> 2.1 is +5%: inside the 25% band.
  EXPECT_EQ(status_of("steady"), obs::DeltaStatus::ok);
  EXPECT_EQ(status_of("gone"), obs::DeltaStatus::removed);
  EXPECT_EQ(status_of("fresh"), obs::DeltaStatus::added);
  EXPECT_EQ(diff.regressions, 2u);

  const std::string table = obs::render_diff_table(diff);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
  EXPECT_NE(table.find("result: 2 regression(s)"), std::string::npos);

  // Identical inputs: zero regressions, every delta ok.
  const obs::BenchDiff same =
      obs::diff_bench(*old_file, *old_file, obs::Tolerance{});
  EXPECT_EQ(same.regressions, 0u);
  for (const obs::MetricDelta& delta : same.deltas)
    EXPECT_EQ(delta.status, obs::DeltaStatus::ok);
  EXPECT_NE(obs::render_diff_table(same).find("result: ok"),
            std::string::npos);

  // An improvement beyond the band exits clean but is labeled.
  obs::BenchFile faster = *old_file;
  for (auto& [key, value] : faster.rows[0].metrics)
    if (key == "seconds") value = 0.1;
  const obs::BenchDiff improved =
      obs::diff_bench(*old_file, faster, obs::Tolerance{0.25, 0.0});
  EXPECT_EQ(improved.regressions, 0u);
  EXPECT_EQ(improved.improvements, 1u);

  // A wide absolute band absorbs what the relative band flags.
  const obs::BenchDiff absorbed =
      obs::diff_bench(*old_file, newer, obs::Tolerance{0.0, 10.0});
  EXPECT_EQ(absorbed.regressions, 0u);
}

TEST(BenchDiff, ResourceSamplingHelpersAreMonotonic) {
  const obs::ResourceSample before = obs::resource_sample();
  std::vector<std::unique_ptr<int>> junk;
  for (int i = 0; i < 64; ++i) junk.push_back(std::make_unique<int>(i));
  const obs::ResourceSample after = obs::resource_sample();
  const obs::ResourceSample delta = obs::resource_delta(before, after);
  EXPECT_GE(delta.cpu_seconds, 0.0);
  if (obs::allocation_counting_available() && obs::enabled())
    EXPECT_GT(delta.allocations, 0u);
  // Either unsupported (-1) or a sane positive value; peak >= current.
  const std::int64_t rss = obs::process_rss_kb();
  const std::int64_t peak = obs::process_peak_rss_kb();
  if (rss > 0 && peak > 0) EXPECT_GE(peak, rss);
}

}  // namespace
}  // namespace patchecko
