// Tests for the related-work baselines and the Dataset-I pair builder.
#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "compiler/compiler.h"
#include "dl/dataset.h"
#include "source/generator.h"

namespace patchecko {
namespace {

TEST(Bindiff, SelfDistanceZero) {
  const SourceLibrary src = generate_library("bd", 0xBD, 8);
  const FunctionBinary fn =
      compile_function(src, 0, Arch::amd64, OptLevel::O2);
  EXPECT_DOUBLE_EQ(bindiff_distance(fn, fn), 0.0);
}

TEST(Bindiff, DifferentFunctionsPositive) {
  const SourceLibrary src = generate_library("bd2", 0xBD2, 8);
  const FunctionBinary a =
      compile_function(src, 0, Arch::amd64, OptLevel::O2);
  const FunctionBinary b =
      compile_function(src, 5, Arch::amd64, OptLevel::O2);
  EXPECT_GT(bindiff_distance(a, b), 0.0);
}

TEST(Bindiff, Symmetric) {
  const SourceLibrary src = generate_library("bd3", 0xBD3, 8);
  const FunctionBinary a =
      compile_function(src, 1, Arch::amd64, OptLevel::O2);
  const FunctionBinary b =
      compile_function(src, 2, Arch::amd64, OptLevel::O2);
  EXPECT_NEAR(bindiff_distance(a, b), bindiff_distance(b, a), 1e-9);
}

TEST(Bindiff, SameSourceCrossOptCloserThanDifferentSource) {
  const SourceLibrary src = generate_library("bd4", 0xBD4, 12);
  int wins = 0, total = 0;
  for (std::size_t f = 0; f + 1 < 8; ++f) {
    const FunctionBinary base =
        compile_function(src, f, Arch::amd64, OptLevel::O1);
    const FunctionBinary same =
        compile_function(src, f, Arch::amd64, OptLevel::Oz);
    const FunctionBinary other =
        compile_function(src, f + 1, Arch::amd64, OptLevel::O1);
    ++total;
    if (bindiff_distance(base, same) < bindiff_distance(base, other)) ++wins;
  }
  EXPECT_GE(wins * 2, total);
}

TEST(StaticRanking, OrdersByDistanceAscending) {
  const SourceLibrary src = generate_library("sr", 0x5A, 20);
  const LibraryBinary lib = compile_library(src, Arch::amd64, OptLevel::O2);
  std::vector<StaticFeatureVector> features;
  for (const auto& fn : lib.functions)
    features.push_back(extract_static_features(fn));
  const auto ranking = static_distance_ranking(features[4], features);
  // Self at distance 0 first.
  EXPECT_EQ(ranking.front().function_index, 4u);
  EXPECT_DOUBLE_EQ(ranking.front().distance, 0.0);
  for (std::size_t i = 1; i < ranking.size(); ++i)
    EXPECT_GE(ranking[i].distance, ranking[i - 1].distance);
}

// --- dataset -------------------------------------------------------------------

DatasetConfig tiny_dataset_config() {
  DatasetConfig config;
  config.library_count = 4;
  config.functions_per_library = 8;
  config.positives_per_function = 2;
  return config;
}

TEST(Dataset, VariantCorpusShape) {
  const DatasetConfig config = tiny_dataset_config();
  const auto corpus = build_variant_corpus(config);
  EXPECT_EQ(corpus.size(),
            config.library_count * config.functions_per_library);
  // Most functions have close to 24 variants (modulo simulated build
  // failures and small-edit augmentation).
  for (const auto& fv : corpus) {
    EXPECT_GE(fv.variants.size(), 10u);
    EXPECT_LE(fv.variants.size(), 24u + 6u);
  }
}

TEST(Dataset, MutatedVariantsMarked) {
  const DatasetConfig config = tiny_dataset_config();
  const auto corpus = build_variant_corpus(config);
  std::size_t with_mutations = 0;
  for (const auto& fv : corpus) {
    EXPECT_LE(fv.first_mutated, fv.variants.size());
    if (fv.has_mutated()) ++with_mutations;
  }
  EXPECT_GT(with_mutations, 0u);
}

TEST(Dataset, PairBundleShapes) {
  const DatasetConfig config = tiny_dataset_config();
  const auto corpus = build_variant_corpus(config);
  const DatasetBundle bundle = build_pair_dataset(corpus, config);

  for (const PairDataset* set :
       {&bundle.train, &bundle.val, &bundle.test}) {
    EXPECT_EQ(set->x.cols, 2 * static_feature_count);
    EXPECT_EQ(set->x.rows, set->y.size());
    EXPECT_EQ(set->x.data.size(), set->x.rows * set->x.cols);
  }
  EXPECT_GT(bundle.train.y.size(), bundle.val.y.size());
  EXPECT_TRUE(bundle.normalizer.fitted());
}

TEST(Dataset, LabelsRoughlyBalanced) {
  const DatasetConfig config = tiny_dataset_config();
  const auto corpus = build_variant_corpus(config);
  const DatasetBundle bundle = build_pair_dataset(corpus, config);
  std::size_t positives = 0;
  for (float y : bundle.train.y)
    if (y >= 0.5f) ++positives;
  const double frac =
      static_cast<double>(positives) / bundle.train.y.size();
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.65);
}

TEST(Dataset, DeterministicFromSeed) {
  const DatasetConfig config = tiny_dataset_config();
  const DatasetBundle a =
      build_pair_dataset(build_variant_corpus(config), config);
  const DatasetBundle b =
      build_pair_dataset(build_variant_corpus(config), config);
  EXPECT_EQ(a.train.y, b.train.y);
  EXPECT_EQ(a.train.x.data, b.train.x.data);
}

TEST(Dataset, BuildFailureRateShrinksVariants) {
  DatasetConfig all = tiny_dataset_config();
  all.build_failure_rate = 0.0;
  DatasetConfig flaky = tiny_dataset_config();
  flaky.build_failure_rate = 0.5;
  const auto corpus_all = build_variant_corpus(all);
  const auto corpus_flaky = build_variant_corpus(flaky);
  std::size_t variants_all = 0, variants_flaky = 0;
  for (const auto& fv : corpus_all) variants_all += fv.variants.size();
  for (const auto& fv : corpus_flaky) variants_flaky += fv.variants.size();
  EXPECT_GT(variants_all, variants_flaky);
}

}  // namespace
}  // namespace patchecko
