// Unit tests for MiniC semantics via the reference interpreter: arithmetic
// edge cases, traps, control flow, memory, the runtime library, and the
// exact loop-counter behaviour the compiler mirrors.
#include <gtest/gtest.h>

#include <limits>

#include "source/ast.h"
#include "source/interp.h"

namespace patchecko {
namespace {

// Builds a single-function library around `body`.
SourceLibrary lib_of(std::vector<StmtPtr> body,
                     std::vector<ValueType> params = {},
                     std::vector<ValueType> locals = {}) {
  SourceLibrary library;
  library.name = "t";
  library.strings = {"hello", "x"};
  SourceFunction fn;
  fn.name = "f";
  fn.param_types = std::move(params);
  fn.local_types = std::move(locals);
  fn.body = std::move(body);
  library.functions.push_back(std::move(fn));
  return library;
}

ExecResult run(const SourceLibrary& lib, CallEnv env = {}) {
  return interpret(lib, 0, env);
}

std::vector<StmtPtr> ret_expr(ExprPtr e) {
  std::vector<StmtPtr> body;
  body.push_back(make_ret(std::move(e)));
  return body;
}

TEST(Interp, IntegerConstant) {
  const auto lib = lib_of(ret_expr(make_int(42)));
  const ExecResult r = run(lib);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret.i, 42);
}

TEST(Interp, FallOffEndReturnsZero) {
  const auto lib = lib_of({});
  const ExecResult r = run(lib);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret.i, 0);
}

TEST(Interp, WrapAroundAddition) {
  const auto max = std::numeric_limits<std::int64_t>::max();
  const auto lib =
      lib_of(ret_expr(make_bin(BinOp::add, make_int(max), make_int(1))));
  const ExecResult r = run(lib);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret.i, std::numeric_limits<std::int64_t>::min());
}

TEST(Interp, DivisionTruncatesTowardZero) {
  const auto lib =
      lib_of(ret_expr(make_bin(BinOp::divi, make_int(-7), make_int(2))));
  EXPECT_EQ(run(lib).ret.i, -3);
}

TEST(Interp, DivisionByZeroTraps) {
  const auto lib =
      lib_of(ret_expr(make_bin(BinOp::divi, make_int(1), make_int(0))));
  EXPECT_EQ(run(lib).status, ExecStatus::trap_div_zero);
}

TEST(Interp, ModuloByZeroTraps) {
  const auto lib =
      lib_of(ret_expr(make_bin(BinOp::modi, make_int(1), make_int(0))));
  EXPECT_EQ(run(lib).status, ExecStatus::trap_div_zero);
}

TEST(Interp, Int64MinDividedByMinusOne) {
  const auto min = std::numeric_limits<std::int64_t>::min();
  const auto div =
      lib_of(ret_expr(make_bin(BinOp::divi, make_int(min), make_int(-1))));
  EXPECT_EQ(run(div).ret.i, min);  // defined as wrap, not UB
  const auto mod =
      lib_of(ret_expr(make_bin(BinOp::modi, make_int(min), make_int(-1))));
  EXPECT_EQ(run(mod).ret.i, 0);
}

TEST(Interp, ShiftCountsMasked) {
  const auto lib =
      lib_of(ret_expr(make_bin(BinOp::shl, make_int(1), make_int(65))));
  EXPECT_EQ(run(lib).ret.i, 2);
}

TEST(Interp, ComparisonsYieldZeroOne) {
  const auto lt =
      lib_of(ret_expr(make_bin(BinOp::lt, make_int(1), make_int(2))));
  EXPECT_EQ(run(lt).ret.i, 1);
  const auto ge =
      lib_of(ret_expr(make_bin(BinOp::ge, make_int(1), make_int(2))));
  EXPECT_EQ(run(ge).ret.i, 0);
}

TEST(Interp, ShortCircuitAndSkipsRhsTrap) {
  // false && (1/0) must not trap.
  ExprPtr trapping = make_bin(BinOp::divi, make_int(1), make_int(0));
  ExprPtr cond = make_bin(BinOp::land, make_int(0),
                          make_bin(BinOp::ne, std::move(trapping),
                                   make_int(5)));
  const auto lib = lib_of(ret_expr(std::move(cond)));
  const ExecResult r = run(lib);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret.i, 0);
}

TEST(Interp, ShortCircuitOrSkipsRhsTrap) {
  ExprPtr trapping = make_bin(BinOp::divi, make_int(1), make_int(0));
  ExprPtr cond = make_bin(BinOp::lor, make_int(7),
                          make_bin(BinOp::ne, std::move(trapping),
                                   make_int(5)));
  const auto lib = lib_of(ret_expr(std::move(cond)));
  const ExecResult r = run(lib);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret.i, 1);
}

TEST(Interp, FpArithmeticAndConversion) {
  ExprPtr v = make_bin(BinOp::fmul, make_fp(2.5), make_fp(4.0));
  const auto lib = lib_of(ret_expr(make_un(UnOp::to_i64, std::move(v))));
  EXPECT_EQ(run(lib).ret.i, 10);
}

TEST(Interp, FpDivisionByZeroIsZero) {
  ExprPtr v = make_bin(BinOp::fdiv, make_fp(1.0), make_fp(0.0));
  const auto lib = lib_of(ret_expr(make_un(UnOp::to_i64, std::move(v))));
  const ExecResult r = run(lib);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret.i, 0);
}

TEST(Interp, ForLoopAccumulates) {
  // for (i = 0; i < 5; ++i) acc = acc + i; return acc; -> 10
  std::vector<StmtPtr> loop_body;
  loop_body.push_back(make_assign(
      1, make_bin(BinOp::add, make_local(1, ValueType::i64),
                  make_local(0, ValueType::i64))));
  std::vector<StmtPtr> body;
  body.push_back(make_for(0, make_int(0), make_int(5),
                          std::move(loop_body)));
  body.push_back(make_ret(make_local(1, ValueType::i64)));
  const auto lib = lib_of(std::move(body), {}, {ValueType::i64,
                                                ValueType::i64});
  EXPECT_EQ(run(lib).ret.i, 10);
}

TEST(Interp, LoopCounterLandsPastBound) {
  // After `for (i = 0; i < 5; ++i) {}` the counter local must hold 5 —
  // exactly what the compiled loop leaves in the register.
  std::vector<StmtPtr> body;
  body.push_back(make_for(0, make_int(0), make_int(5), {}));
  body.push_back(make_ret(make_local(0, ValueType::i64)));
  const auto lib = lib_of(std::move(body), {}, {ValueType::i64});
  EXPECT_EQ(run(lib).ret.i, 5);
}

TEST(Interp, ZeroTripLoopStillInitializesCounter) {
  std::vector<StmtPtr> body;
  body.push_back(make_for(0, make_int(9), make_int(3), {}));
  body.push_back(make_ret(make_local(0, ValueType::i64)));
  const auto lib = lib_of(std::move(body), {}, {ValueType::i64});
  EXPECT_EQ(run(lib).ret.i, 9);
}

TEST(Interp, EarlyReturnInsideLoop) {
  std::vector<StmtPtr> then_body;
  then_body.push_back(make_ret(make_local(0, ValueType::i64)));
  std::vector<StmtPtr> loop_body;
  loop_body.push_back(make_if(
      make_bin(BinOp::eq, make_local(0, ValueType::i64), make_int(3)),
      std::move(then_body)));
  std::vector<StmtPtr> body;
  body.push_back(make_for(0, make_int(0), make_int(10),
                          std::move(loop_body)));
  body.push_back(make_ret(make_int(-1)));
  const auto lib = lib_of(std::move(body), {}, {ValueType::i64});
  EXPECT_EQ(run(lib).ret.i, 3);
}

TEST(Interp, SwitchDispatchesByModulo) {
  std::vector<std::vector<StmtPtr>> cases;
  for (int k = 0; k < 3; ++k) cases.push_back(ret_expr(make_int(100 + k)));
  std::vector<StmtPtr> body;
  body.push_back(make_switch(make_param(0, ValueType::i64),
                             std::move(cases)));
  body.push_back(make_ret(make_int(-1)));
  const auto lib = lib_of(std::move(body), {ValueType::i64});
  CallEnv env;
  env.args.push_back(Value::from_int(4));  // 4 % 3 == 1
  EXPECT_EQ(interpret(lib, 0, env).ret.i, 101);
  CallEnv neg;
  neg.args.push_back(Value::from_int(-1));  // normalized to 2
  EXPECT_EQ(interpret(lib, 0, neg).ret.i, 102);
}

TEST(Interp, BufferByteReadWrite) {
  // data[1] = data[0] + 1; return data[1];
  std::vector<StmtPtr> body;
  body.push_back(make_store(
      make_param(0, ValueType::ptr), make_int(1),
      make_bin(BinOp::add,
               make_load(make_param(0, ValueType::ptr), make_int(0), true),
               make_int(1)),
      true));
  body.push_back(make_ret(
      make_load(make_param(0, ValueType::ptr), make_int(1), true)));
  const auto lib = lib_of(std::move(body), {ValueType::ptr});
  CallEnv env;
  env.buffers.push_back({10, 0});
  env.args.push_back(Value::from_ptr(0));
  const ExecResult r = interpret(lib, 0, env);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret.i, 11);
  EXPECT_EQ(env.buffers[0][1], 11);
}

TEST(Interp, OutOfBoundsReadTraps) {
  const auto lib = lib_of(ret_expr(
      make_load(make_param(0, ValueType::ptr), make_int(10), true)),
      {ValueType::ptr});
  CallEnv env;
  env.buffers.push_back({1, 2, 3});
  env.args.push_back(Value::from_ptr(0));
  EXPECT_EQ(interpret(lib, 0, env).status, ExecStatus::trap_oob);
}

TEST(Interp, NegativeIndexTraps) {
  const auto lib = lib_of(ret_expr(
      make_load(make_param(0, ValueType::ptr), make_int(-1), true)),
      {ValueType::ptr});
  CallEnv env;
  env.buffers.push_back({1});
  env.args.push_back(Value::from_ptr(0));
  EXPECT_EQ(interpret(lib, 0, env).status, ExecStatus::trap_oob);
}

TEST(Interp, WordAccessLittleEndian) {
  std::vector<StmtPtr> body;
  body.push_back(make_store(make_param(0, ValueType::ptr), make_int(0),
                            make_int(0x0102030405060708LL), false));
  body.push_back(make_ret(
      make_load(make_param(0, ValueType::ptr), make_int(0), true)));
  const auto lib = lib_of(std::move(body), {ValueType::ptr});
  CallEnv env;
  env.buffers.push_back(std::vector<std::uint8_t>(8, 0));
  env.args.push_back(Value::from_ptr(0));
  const ExecResult r = interpret(lib, 0, env);
  EXPECT_EQ(r.ret.i, 0x08);  // low byte first
}

TEST(Interp, StringPoolReadable) {
  std::vector<ExprPtr> args;
  args.push_back(make_strref(0));  // "hello"
  const auto lib = lib_of(
      ret_expr(make_libcall(LibFn::strlen, std::move(args), ValueType::i64)));
  EXPECT_EQ(run(lib).ret.i, 5);
}

TEST(Interp, StringPoolWriteTraps) {
  const auto lib = lib_of([] {
    std::vector<StmtPtr> body;
    body.push_back(make_store(make_strref(0), make_int(0), make_int(1),
                              true));
    body.push_back(make_ret(make_int(0)));
    return body;
  }());
  EXPECT_EQ(run(lib).status, ExecStatus::trap_oob);
}

TEST(Interp, MemmoveOverlapForward) {
  // memmove(&data[1], &data[0], 3) over {1,2,3,4} -> {1,1,2,3}
  std::vector<ExprPtr> args;
  args.push_back(make_ptr_offset(make_param(0, ValueType::ptr), make_int(1)));
  args.push_back(make_param(0, ValueType::ptr));
  args.push_back(make_int(3));
  std::vector<StmtPtr> body;
  body.push_back(make_expr_stmt(
      make_libcall(LibFn::memmove, std::move(args), ValueType::ptr)));
  body.push_back(make_ret(make_int(0)));
  const auto lib = lib_of(std::move(body), {ValueType::ptr});
  CallEnv env;
  env.buffers.push_back({1, 2, 3, 4});
  env.args.push_back(Value::from_ptr(0));
  ASSERT_EQ(interpret(lib, 0, env).status, ExecStatus::ok);
  EXPECT_EQ(env.buffers[0], (std::vector<std::uint8_t>{1, 1, 2, 3}));
}

TEST(Interp, MemmoveNegativeLengthTraps) {
  std::vector<ExprPtr> args;
  args.push_back(make_param(0, ValueType::ptr));
  args.push_back(make_param(0, ValueType::ptr));
  args.push_back(make_int(-1));
  const auto lib = lib_of(ret_expr(
      make_libcall(LibFn::memmove, std::move(args), ValueType::ptr)),
      {ValueType::ptr});
  CallEnv env;
  env.buffers.push_back({1});
  env.args.push_back(Value::from_ptr(0));
  EXPECT_EQ(interpret(lib, 0, env).status, ExecStatus::trap_oob);
}

TEST(Interp, StrlenStopsAtBufferEndWithoutNul) {
  std::vector<ExprPtr> args;
  args.push_back(make_param(0, ValueType::ptr));
  const auto lib = lib_of(ret_expr(
      make_libcall(LibFn::strlen, std::move(args), ValueType::i64)),
      {ValueType::ptr});
  CallEnv env;
  env.buffers.push_back({'a', 'b', 'c'});  // no NUL
  env.args.push_back(Value::from_ptr(0));
  EXPECT_EQ(interpret(lib, 0, env).ret.i, 3);
}

TEST(Interp, StrcmpAgainstPoolString) {
  std::vector<ExprPtr> args;
  args.push_back(make_param(0, ValueType::ptr));
  args.push_back(make_strref(0));  // "hello"
  const auto lib = lib_of(ret_expr(
      make_libcall(LibFn::strcmp, std::move(args), ValueType::i64)),
      {ValueType::ptr});
  CallEnv env;
  env.buffers.push_back({'h', 'e', 'l', 'l', 'o', 0});
  env.args.push_back(Value::from_ptr(0));
  EXPECT_EQ(interpret(lib, 0, env).ret.i, 0);
}

TEST(Interp, MallocReturnsWritableBuffer) {
  // p = malloc(16); p[3] = 9; return p[3];
  std::vector<ExprPtr> margs;
  margs.push_back(make_int(16));
  std::vector<StmtPtr> body;
  body.push_back(make_assign(
      0, make_libcall(LibFn::malloc, std::move(margs), ValueType::ptr)));
  body.push_back(make_store(make_local(0, ValueType::ptr), make_int(3),
                            make_int(9), true));
  body.push_back(make_ret(
      make_load(make_local(0, ValueType::ptr), make_int(3), true)));
  const auto lib = lib_of(std::move(body), {}, {ValueType::ptr});
  const ExecResult r = run(lib);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret.i, 9);
}

TEST(Interp, StepLimitTrapsRunawayLoop) {
  // A huge loop against a small step budget.
  std::vector<StmtPtr> body;
  body.push_back(make_for(0, make_int(0), make_int(1 << 30), {}));
  body.push_back(make_ret(make_int(0)));
  const auto lib = lib_of(std::move(body), {}, {ValueType::i64});
  CallEnv env;
  EXPECT_EQ(interpret(lib, 0, env, /*step_limit=*/1000).status,
            ExecStatus::trap_step_limit);
}

TEST(Interp, MissingArgsDefaultToZero) {
  const auto lib = lib_of(ret_expr(make_param(0, ValueType::i64)),
                          {ValueType::i64});
  CallEnv env;  // no args supplied
  const ExecResult r = interpret(lib, 0, env);
  ASSERT_EQ(r.status, ExecStatus::ok);
  EXPECT_EQ(r.ret.i, 0);
}

TEST(Interp, PtrOffsetShiftsView) {
  // return (*(data+2))[0]
  const auto lib = lib_of(ret_expr(make_load(
      make_ptr_offset(make_param(0, ValueType::ptr), make_int(2)),
      make_int(0), true)), {ValueType::ptr});
  CallEnv env;
  env.buffers.push_back({10, 20, 30});
  env.args.push_back(Value::from_ptr(0));
  EXPECT_EQ(interpret(lib, 0, env).ret.i, 30);
}

TEST(Interp, IndexingNonPointerIsTypeTrap) {
  const auto lib = lib_of(ret_expr(
      make_load(make_param(0, ValueType::i64), make_int(0), true)),
      {ValueType::i64});
  CallEnv env;
  env.args.push_back(Value::from_int(123));
  EXPECT_EQ(interpret(lib, 0, env).status, ExecStatus::trap_type);
}


TEST(Interp, IndirectCallSelectsBySelectorParity) {
  // f0 returns 100, f1 returns 200; dispatcher calls (sel odd ? f1 : f0).
  SourceLibrary lib;
  lib.name = "icall";
  lib.strings = {"s"};
  SourceFunction even, odd, dispatch;
  even.name = "even";
  even.param_types = {ValueType::i64};
  even.body.push_back(make_ret(make_int(100)));
  odd.name = "odd";
  odd.param_types = {ValueType::i64};
  odd.body.push_back(make_ret(make_int(200)));
  dispatch.name = "dispatch";
  dispatch.param_types = {ValueType::i64};
  std::vector<ExprPtr> args;
  args.push_back(make_int(7));
  dispatch.body.push_back(make_ret(make_indirect_call(
      make_param(0, ValueType::i64), 0, 1, std::move(args))));
  lib.functions.push_back(std::move(even));
  lib.functions.push_back(std::move(odd));
  lib.functions.push_back(std::move(dispatch));

  CallEnv env_even;
  env_even.args.push_back(Value::from_int(4));
  EXPECT_EQ(interpret(lib, 2, env_even).ret.i, 100);
  CallEnv env_odd;
  env_odd.args.push_back(Value::from_int(5));
  EXPECT_EQ(interpret(lib, 2, env_odd).ret.i, 200);
}

}  // namespace
}  // namespace patchecko
