// Tests for the decision-provenance layer (src/obs): the structured event
// ring (per-thread sequence continuity under contention, exact overflow
// accounting, the no-op contract), the JSON parser, decision-record
// round-tripping including non-finite distances, explain_text rendering,
// and the Chrome trace export shape.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/decision.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchecko {
namespace {

using obs::Event;
using obs::EventLog;
using obs::EventsEnabledScope;
using obs::Field;
using obs::Severity;

TEST(Events, EmitRecordsOrderedSequencesAndFields) {
  EventsEnabledScope on(true);
  EventLog log;
  log.emit(Severity::info, "first", {Field::u64("n", 7)});
  log.emit(Severity::warn, "second");
  log.emit(Severity::debug, "third",
           {Field::text("why", "crash"), Field::f64("score", 0.5)});
  const std::vector<Event> events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(log.emitted(), 3u);
  EXPECT_EQ(log.overflowed(), 0u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);         // global order, 1-based
    EXPECT_EQ(events[i].thread_seq, i + 1);  // single thread: identical
    EXPECT_GE(events[i].t_seconds, 0.0);
  }
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].severity, Severity::warn);
  ASSERT_EQ(events[2].fields.size(), 2u);
  EXPECT_EQ(events[2].fields[0].s, "crash");
  EXPECT_DOUBLE_EQ(events[2].fields[1].f, 0.5);
}

TEST(Events, DisabledEmitIsANoOp) {
  EventsEnabledScope off(false);
  EventLog log;
  log.emit(Severity::error, "dropped", {Field::u64("n", 1)});
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_EQ(log.overflowed(), 0u);
  EXPECT_TRUE(log.events().empty());
  // The event flag is independent of the metrics flag.
  obs::EnabledScope metrics_on(true);
  log.emit(Severity::error, "still dropped");
  EXPECT_TRUE(log.events().empty());
}

TEST(Events, ConcurrentEmittersKeepGapFreePerThreadSequences) {
  EventsEnabledScope on(true);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 500;  // well below the ring cap
  EventLog log;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&log, t] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        log.emit(Severity::info, "worker",
                 {Field::u64("origin", t), Field::u64("n", i)});
    });
  for (std::thread& thread : threads) thread.join();

  const std::vector<Event> events = log.events();
  ASSERT_EQ(events.size(), kThreads * kPerThread);  // nothing lost below cap
  EXPECT_EQ(log.emitted(), kThreads * kPerThread);
  EXPECT_EQ(log.overflowed(), 0u);

  // Global sequence is a permutation-free 1..N in retained (oldest-first)
  // order; per-thread sequences are each exactly 1..kPerThread with no gap.
  std::map<std::uint32_t, std::uint64_t> last_thread_seq;
  std::set<std::uint64_t> global_seqs;
  for (const Event& event : events) {
    EXPECT_EQ(event.seq, events[0].seq + global_seqs.size());
    global_seqs.insert(event.seq);
    EXPECT_EQ(event.thread_seq, ++last_thread_seq[event.thread]);
  }
  ASSERT_EQ(last_thread_seq.size(), kThreads);
  for (const auto& [thread, last] : last_thread_seq)
    EXPECT_EQ(last, kPerThread) << "thread ordinal " << thread;
}

TEST(Events, RingOverflowDropsOldestAndCountsExactly) {
  EventsEnabledScope on(true);
  constexpr std::size_t kCapacity = 16;
  constexpr std::size_t kEmitted = 41;
  EventLog log(kCapacity);
  for (std::size_t i = 0; i < kEmitted; ++i)
    log.emit(Severity::info, "e" + std::to_string(i));
  EXPECT_EQ(log.emitted(), kEmitted);
  EXPECT_EQ(log.overflowed(), kEmitted - kCapacity);
  const std::vector<Event> events = log.events();
  ASSERT_EQ(events.size(), kCapacity);
  // The survivors are the *newest* kCapacity events, oldest-first.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(events[i].seq, kEmitted - kCapacity + i + 1);
    EXPECT_EQ(events[i].name,
              "e" + std::to_string(kEmitted - kCapacity + i));
  }
}

TEST(Events, ClearResetsSequencesAndCounters) {
  EventsEnabledScope on(true);
  EventLog log(4);
  for (int i = 0; i < 9; ++i) log.emit(Severity::info, "before");
  log.clear();
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_EQ(log.overflowed(), 0u);
  EXPECT_TRUE(log.events().empty());
  log.emit(Severity::info, "after");
  const std::vector<Event> events = log.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].thread_seq, 1u);
}

TEST(Events, JsonlLineHasTypedFieldsAndEscapes) {
  EventsEnabledScope on(true);
  EventLog log;
  log.emit(Severity::warn, "quote\"name",
           {Field::u64("u", 3), Field::i64("i", -4),
            Field::f64("f", 0.25), Field::text("s", "a\nb"),
            Field::f64("bad", std::numeric_limits<double>::quiet_NaN())});
  const std::vector<Event> events = log.events();
  ASSERT_EQ(events.size(), 1u);
  const std::string line = obs::event_jsonl_line(events[0]);
  EXPECT_NE(line.find("\"type\":\"event\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"quote\\\"name\""), std::string::npos);
  EXPECT_NE(line.find("\"sev\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"u\":3"), std::string::npos);
  EXPECT_NE(line.find("\"i\":-4"), std::string::npos);
  EXPECT_NE(line.find("\"f\":0.25"), std::string::npos);
  EXPECT_NE(line.find("\"s\":\"a\\nb\""), std::string::npos);
  EXPECT_NE(line.find("\"bad\":null"), std::string::npos);
  // The line must itself parse as one JSON object.
  const auto value = obs::json::parse(line);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->get("type").as_string(), "event");
  EXPECT_EQ(value->get("fields").get("u").as_number(0), 3.0);
}

TEST(Json, ParsesScalarsContainersAndEscapes) {
  const auto value = obs::json::parse(
      "{\"a\":[1,-2.5,true,false,null],\"s\":\"x\\u0041\\n\","
      "\"o\":{\"k\":3}}");
  ASSERT_TRUE(value.has_value());
  const auto& array = value->get("a").as_array();
  ASSERT_EQ(array.size(), 5u);
  EXPECT_EQ(array[0].as_number(0), 1.0);
  EXPECT_EQ(array[1].as_number(0), -2.5);
  EXPECT_TRUE(array[2].as_bool());
  EXPECT_FALSE(array[3].as_bool());
  EXPECT_TRUE(array[4].is_null());
  EXPECT_EQ(value->get("s").as_string(), "xA\n");
  EXPECT_EQ(value->get("o").get("k").as_number(0), 3.0);
  EXPECT_TRUE(value->get("absent").is_null());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(obs::json::parse("").has_value());
  EXPECT_FALSE(obs::json::parse("{").has_value());
  EXPECT_FALSE(obs::json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(obs::json::parse("[1,]").has_value());
  EXPECT_FALSE(obs::json::parse("\"unterminated").has_value());
  EXPECT_FALSE(obs::json::parse("nulx").has_value());
  EXPECT_FALSE(obs::json::parse("{} trailing").has_value());  // garbage after
}

obs::DecisionRecord sample_record() {
  obs::DecisionRecord record;
  record.cve_id = "CVE-2020-0001";
  record.library = "libexample.so";

  obs::CandidateRecord kept;
  kept.function_index = 12;
  kept.dl_score = 0.875;
  kept.validated = true;
  kept.env_distances = {0.25, std::numeric_limits<double>::quiet_NaN(), 0.5};
  kept.distance = 0.4375;
  kept.rank = 1;
  obs::CandidateRecord pruned;
  pruned.function_index = 31;
  pruned.dl_score = 0.5;
  pruned.validated = false;
  pruned.crash_env = 2;
  pruned.distance = std::numeric_limits<double>::infinity();

  record.from_vulnerable.threshold = 0.4;
  record.from_vulnerable.minkowski_p = 3.0;
  record.from_vulnerable.total = 64;
  record.from_vulnerable.executed = 1;
  record.from_vulnerable.candidates = {kept, pruned};
  record.from_patched = record.from_vulnerable;

  obs::PatchCandidateRecord pool;
  pool.function_index = 12;
  pool.distance_vulnerable = 0.1;
  pool.distance_patched = 0.9;
  pool.effect_matches_vulnerable = 3;
  pool.effect_matches_patched = 1;
  pool.chosen = true;
  record.pool = {pool};
  record.matched_function = 12;
  record.has_verdict = true;
  record.verdict_patched = false;
  record.votes_vulnerable = 6.5;
  record.votes_patched = 2.0;
  record.dynamic_distance_vulnerable = 0.1;
  record.dynamic_distance_patched = 0.9;
  record.evidence = {"libcall votes 3 vs 1 -> vulnerable"};
  return record;
}

TEST(Decision, JsonlRoundTripIsByteIdenticalIncludingNonFinite) {
  const obs::DecisionRecord record = sample_record();
  const std::string line = obs::decision_jsonl_line(record);
  EXPECT_NE(line.find("\"type\":\"decision\""), std::string::npos);
  EXPECT_NE(line.find("\"cve\":\"CVE-2020-0001\""), std::string::npos);
  // NaN env distance and +inf aggregate render as null...
  EXPECT_NE(line.find("[0.25,null,0.5]"), std::string::npos) << line;
  const auto parsed = obs::parse_decision_line(line);
  ASSERT_TRUE(parsed.has_value());
  // ...and parse back to NaN / +inf so a re-render is byte-identical.
  ASSERT_EQ(parsed->from_vulnerable.candidates.size(), 2u);
  EXPECT_TRUE(std::isnan(parsed->from_vulnerable.candidates[0]
                             .env_distances[1]));
  EXPECT_TRUE(std::isinf(parsed->from_vulnerable.candidates[1].distance));
  EXPECT_EQ(obs::decision_jsonl_line(*parsed), line);
}

TEST(Decision, ParseRejectsNonDecisionAndMalformedLines) {
  EXPECT_FALSE(obs::parse_decision_line("").has_value());
  EXPECT_FALSE(obs::parse_decision_line("not json").has_value());
  EXPECT_FALSE(obs::parse_decision_line(
                   "{\"type\":\"meta\",\"format\":\"patchecko-provenance\"}")
                   .has_value());
  EXPECT_FALSE(obs::parse_decision_line(
                   "{\"type\":\"event\",\"name\":\"pipeline.stage1\"}")
                   .has_value());
}

TEST(Decision, LibraryMissingRoundTrips) {
  obs::DecisionRecord record;
  record.cve_id = "CVE-2020-0002";
  record.library = "libgone.so";
  record.library_missing = true;
  const std::string line = obs::decision_jsonl_line(record);
  const auto parsed = obs::parse_decision_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->library_missing);
  EXPECT_FALSE(parsed->has_verdict);
  EXPECT_FALSE(parsed->matched_function.has_value());
  EXPECT_EQ(obs::decision_jsonl_line(*parsed), line);
}

TEST(Decision, ExplainTextRendersTheFullChain) {
  const std::string text = obs::explain_text(sample_record());
  EXPECT_NE(text.find("CVE-2020-0001"), std::string::npos) << text;
  EXPECT_NE(text.find("libexample.so"), std::string::npos);
  // Stage 1: score vs threshold for both query directions.
  EXPECT_NE(text.find("0.4"), std::string::npos);
  EXPECT_NE(text.find("0.875"), std::string::npos);
  // Stage 2: crash prune reason, rank, and the NaN env slot.
  EXPECT_NE(text.find("crashed in environment 2"), std::string::npos);
  EXPECT_NE(text.find("rank=1"), std::string::npos);
  EXPECT_NE(text.find("n/a"), std::string::npos);
  // Differential stage: pool choice and the verdict with its evidence.
  EXPECT_NE(text.find("chosen"), std::string::npos);
  EXPECT_NE(text.find("VULNERABLE"), std::string::npos);
  EXPECT_NE(text.find("libcall votes 3 vs 1"), std::string::npos);
}

TEST(Decision, ExplainTextForMissingLibrary) {
  obs::DecisionRecord record;
  record.cve_id = "CVE-2020-0002";
  record.library = "libgone.so";
  record.library_missing = true;
  const std::string text = obs::explain_text(record);
  EXPECT_NE(text.find("not present"), std::string::npos) << text;
}

TEST(ChromeTrace, ExportsSpansAndInstantEvents) {
  obs::EnabledScope metrics_on(true);
  EventsEnabledScope events_on(true);
  obs::Tracer tracer;
  EventLog log;
  {
    obs::ScopedSpan outer("scan", tracer);
    obs::ScopedSpan inner("detect", tracer);
    log.emit(Severity::info, "pipeline.ranked", {Field::u64("kept", 2)});
  }
  const std::string json = obs::chrome_trace_json(tracer, &log);
  const auto value = obs::json::parse(json);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->get("displayTimeUnit").as_string(), "ms");
  const auto& entries = value->get("traceEvents").as_array();
  ASSERT_EQ(entries.size(), 3u);  // two spans + one instant
  std::size_t spans = 0, instants = 0;
  for (const auto& entry : entries) {
    const std::string ph = entry.get("ph").as_string();
    if (ph == "X") {
      ++spans;
      EXPECT_GE(entry.get("dur").as_number(-1), 0.0);
      EXPECT_EQ(entry.get("pid").as_number(0), 1.0);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(entry.get("s").as_string(), "t");
      EXPECT_EQ(entry.get("name").as_string(), "pipeline.ranked");
      EXPECT_EQ(entry.get("args").get("kept").as_number(0), 2.0);
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 1u);
}

TEST(ChromeTrace, MetricsJsonReportsEventRingCounters) {
  obs::EnabledScope metrics_on(true);
  EventsEnabledScope events_on(true);
  obs::Registry registry;
  registry.counter("c").add(1);
  obs::Tracer tracer;
  EventLog log(4);
  for (int i = 0; i < 6; ++i) log.emit(Severity::info, "x");
  const std::string json = obs::export_json(registry, tracer, &log);
  const auto value = obs::json::parse(json);
  ASSERT_TRUE(value.has_value());
  const auto& events = value->get("events");
  EXPECT_EQ(events.get("emitted").as_number(0), 6.0);
  EXPECT_EQ(events.get("overflow").as_number(0), 2.0);
  EXPECT_EQ(events.get("retained").as_number(0), 4.0);
  const std::string summary = obs::summary_line(registry, &tracer, &log);
  EXPECT_NE(summary.find("2 events overwritten"), std::string::npos)
      << summary;
}

}  // namespace
}  // namespace patchecko
