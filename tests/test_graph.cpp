// Unit tests for the graph substrate: digraph invariants, cyclomatic
// complexity, Brandes betweenness centrality on known graphs, and the
// Hungarian assignment solver.
#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/matching.h"
#include "util/rng.h"

namespace patchecko {
namespace {

Digraph path_graph(std::size_t n) {
  Digraph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(Digraph, NodeAndEdgeCounting) {
  Digraph g;
  EXPECT_EQ(g.node_count(), 0u);
  const std::size_t a = g.add_node();
  const std::size_t b = g.add_node();
  g.add_edge(a, b);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
}

TEST(Digraph, DuplicateEdgesCollapse) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, SelfLoopAllowed) {
  Digraph g(1);
  g.add_edge(0, 0);
  EXPECT_TRUE(g.has_edge(0, 0));
}

TEST(Digraph, AddEdgeOutOfRangeThrows) {
  Digraph g(1);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
}

TEST(Digraph, InDegrees) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const auto degrees = g.in_degrees();
  EXPECT_EQ(degrees[0], 0u);
  EXPECT_EQ(degrees[2], 2u);
}

TEST(Digraph, ReachabilityFollowsEdges) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto reach = g.reachable_from(0);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);
}

TEST(Digraph, CyclomaticComplexityStraightLine) {
  // E - N + 2 = (n-1) - n + 2 = 1 for a path.
  EXPECT_EQ(path_graph(5).cyclomatic_complexity(), 1);
}

TEST(Digraph, CyclomaticComplexityDiamond) {
  Digraph g(4);  // if/else diamond: 4 edges, 4 nodes -> 2
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(g.cyclomatic_complexity(), 2);
}

TEST(Digraph, CyclomaticComplexityEmpty) {
  EXPECT_EQ(Digraph().cyclomatic_complexity(), 0);
}

TEST(Betweenness, PathGraphMiddleDominates) {
  // Directed path 0->1->2: node 1 lies on the only 0->2 shortest path.
  const auto c = betweenness_centrality(path_graph(3));
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

TEST(Betweenness, LongerPathAccumulates) {
  // 0->1->2->3: c(1) = paths 0->2,0->3 = 2; c(2) = 0->3,1->3 = 2.
  const auto c = betweenness_centrality(path_graph(4));
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 2.0);
}

TEST(Betweenness, StarCenterZeroOnDirectedOut) {
  // Directed star 0->{1,2,3}: no node between any pair.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto c = betweenness_centrality(g);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Betweenness, SplitShortestPathsShareCredit) {
  // 0->{1,2}->3: two equal shortest paths 0->3; each middle gets 0.5.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const auto c = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(c[1], 0.5);
  EXPECT_DOUBLE_EQ(c[2], 0.5);
}

TEST(Betweenness, EmptyGraph) {
  EXPECT_TRUE(betweenness_centrality(Digraph()).empty());
}

TEST(Hungarian, IdentityMatrix) {
  // Zero diagonal is the optimal assignment.
  const std::vector<std::vector<double>> cost{
      {0, 1, 1}, {1, 0, 1}, {1, 1, 0}};
  const AssignmentResult result = solve_assignment(cost);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(result.assignment[r], r);
}

TEST(Hungarian, KnownOptimal) {
  const std::vector<std::vector<double>> cost{
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const AssignmentResult result = solve_assignment(cost);
  // Optimal: (0,1)+(1,0)+(2,2) = 1+2+2 = 5.
  EXPECT_DOUBLE_EQ(result.total_cost, 5.0);
}

TEST(Hungarian, RectangularMoreColumns) {
  const std::vector<std::vector<double>> cost{{5, 1, 9}};
  const AssignmentResult result = solve_assignment(cost);
  EXPECT_EQ(result.assignment[0], 1u);
  EXPECT_DOUBLE_EQ(result.total_cost, 1.0);
}

TEST(Hungarian, EmptyInput) {
  const AssignmentResult result = solve_assignment({});
  EXPECT_TRUE(result.assignment.empty());
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST(Hungarian, OptimalityAgainstBruteForce) {
  // Property check: on random 4x4 matrices the solver matches exhaustive
  // search.
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<double>> cost(4, std::vector<double>(4));
    for (auto& row : cost)
      for (double& v : row) v = rng.uniform_real(0, 10);
    const AssignmentResult result = solve_assignment(cost);

    std::vector<std::size_t> perm{0, 1, 2, 3};
    double best = 1e18;
    do {
      double total = 0;
      for (std::size_t r = 0; r < 4; ++r) total += cost[r][perm[r]];
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(result.total_cost, best, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace patchecko
