// End-to-end integration tests: the full PATCHECKO workflow on a scaled-down
// evaluation universe. Asserts the paper's headline behaviours: targets
// found and ranked top-3, patch verdicts correct except the engineered
// one-integer miss, and the cross-device patch-gap signal.
#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.h"
#include "dl/trainer.h"

namespace patchecko {
namespace {

// Heavy fixture shared by every test in this file.
struct Universe {
  SimilarityModel model;
  std::unique_ptr<EvalCorpus> corpus;
  std::unique_ptr<CveDatabase> database;
  DeviceSpec things = android_things_device();
  std::vector<LibraryBinary> libraries;       // per corpus library
  std::vector<AnalyzedLibrary> analyzed;

  Universe() {
    TrainerConfig trainer;
    trainer.dataset.library_count = 24;
    trainer.dataset.functions_per_library = 18;
    trainer.epochs = 10;
    TrainingRun run = train_similarity_model(trainer);
    model = std::move(run.model);

    EvalConfig eval;
    eval.scale = 0.04;
    corpus = std::make_unique<EvalCorpus>(eval);
    database = std::make_unique<CveDatabase>(*corpus, DatabaseConfig{});
    for (std::size_t i = 0; i < corpus->library_specs().size(); ++i)
      libraries.push_back(corpus->compile_for_device(i, things));
    for (const LibraryBinary& lib : libraries)
      analyzed.push_back(analyze_library(lib));
  }
};

const Universe& universe() {
  static Universe instance;
  return instance;
}

TEST(Pipeline, ModelQualityInPaperBand) {
  TrainerConfig trainer;
  trainer.dataset.library_count = 24;
  trainer.dataset.functions_per_library = 18;
  trainer.epochs = 10;
  const TrainingRun run = train_similarity_model(trainer);
  EXPECT_GT(run.test_accuracy, 0.88);  // paper: >93% detection, ~96% train
  EXPECT_GT(run.test_auc, 0.93);       // paper cites 0.971 AUC
}

TEST(Pipeline, DatabaseCoversAllCves) {
  EXPECT_EQ(universe().database->entries().size(), 25u);
  for (const CveEntry& entry : universe().database->entries()) {
    EXPECT_FALSE(entry.environments.empty()) << entry.spec.cve_id;
    EXPECT_GT(entry.vulnerable_profile.successful_runs(), 0u)
        << entry.spec.cve_id;
    EXPECT_FALSE(entry.arch_refs.empty());
  }
}

TEST(Pipeline, DetectsMostTargetsTop3) {
  const Universe& u = universe();
  const Patchecko pipeline(&u.model);
  int found = 0, top3 = 0, total = 0;
  for (const CveEntry& entry : u.database->entries()) {
    const DetectionOutcome outcome = pipeline.detect(
        entry, u.analyzed[entry.library_index], /*query_is_patched=*/false);
    ++total;
    if (outcome.rank_of_target > 0) {
      ++found;
      if (outcome.rank_of_target <= 3) ++top3;
    }
    // Confusion-matrix bookkeeping is consistent.
    EXPECT_EQ(outcome.true_positives + outcome.false_negatives, 1);
    EXPECT_EQ(outcome.true_positives + outcome.true_negatives +
                  outcome.false_positives + outcome.false_negatives,
              static_cast<int>(outcome.total));
    EXPECT_LE(outcome.executed, outcome.candidates.size());
  }
  EXPECT_GE(found, 22);       // paper: 24 of 25 via the vulnerable query
  EXPECT_GE(top3, found - 2); // paper: top-3 100% of the time
}

TEST(Pipeline, DynamicStagePrunesCandidates) {
  const Universe& u = universe();
  const Patchecko pipeline(&u.model);
  std::size_t with_fps = 0, pruned = 0;
  for (const CveEntry& entry : u.database->entries()) {
    const DetectionOutcome outcome = pipeline.detect(
        entry, u.analyzed[entry.library_index], false);
    if (outcome.candidates.size() > 1) ++with_fps;
    if (outcome.executed < outcome.candidates.size()) ++pruned;
  }
  EXPECT_GT(with_fps, 15u);  // the DL stage produces copious candidates
}

TEST(Pipeline, PatchDetectionMatchesPaperShape) {
  const Universe& u = universe();
  const Patchecko pipeline(&u.model);
  int correct = 0, total = 0;
  bool cve_9470_wrong = false;
  for (const CveEntry& entry : u.database->entries()) {
    const PatchReport report =
        pipeline.full_report(entry, u.analyzed[entry.library_index]);
    ASSERT_TRUE(report.decision.has_value()) << entry.spec.cve_id;
    const bool truth = u.things.is_patched(entry.spec.cve_id);
    const bool says =
        report.decision->verdict == PatchVerdict::patched;
    if (says == truth)
      ++correct;
    else if (entry.spec.cve_id == "CVE-2018-9470")
      cve_9470_wrong = true;
    ++total;
  }
  EXPECT_GE(correct, 23);       // paper: 24/25
  EXPECT_TRUE(cve_9470_wrong);  // the paper's single engineered miss
}

TEST(Pipeline, Cve13209MissedByVulnerableQuery) {
  // The paper's N/A row: the heavily patched CVE-2017-13209 is invisible to
  // the vulnerable-function query but found by the patched query.
  const Universe& u = universe();
  const Patchecko pipeline(&u.model);
  const CveEntry& entry = u.database->by_id("CVE-2017-13209");
  const DetectionOutcome vuln_query = pipeline.detect(
      entry, u.analyzed[entry.library_index], /*query_is_patched=*/false);
  const DetectionOutcome patched_query = pipeline.detect(
      entry, u.analyzed[entry.library_index], /*query_is_patched=*/true);
  EXPECT_EQ(vuln_query.rank_of_target, -1);
  EXPECT_EQ(patched_query.rank_of_target, 1);
}

TEST(Pipeline, Cve9412MemmoveEvidence) {
  // The case study: the matched target still contains the memmove the
  // patch would have removed.
  const Universe& u = universe();
  const Patchecko pipeline(&u.model);
  const CveEntry& entry = u.database->by_id("CVE-2018-9412");
  const PatchReport report =
      pipeline.full_report(entry, u.analyzed[entry.library_index]);
  ASSERT_TRUE(report.decision.has_value());
  EXPECT_EQ(report.decision->verdict, PatchVerdict::vulnerable);
  bool memmove_evidence = false;
  for (const std::string& note : report.decision->evidence)
    if (note.find("memmove") != std::string::npos) memmove_evidence = true;
  EXPECT_TRUE(memmove_evidence);
}

TEST(Pipeline, MatchedFunctionIsTheTrueTarget) {
  const Universe& u = universe();
  const Patchecko pipeline(&u.model);
  int exact = 0, total = 0;
  for (const CveEntry& entry : u.database->entries()) {
    const PatchReport report =
        pipeline.full_report(entry, u.analyzed[entry.library_index]);
    if (!report.matched_function) continue;
    ++total;
    const auto& fn =
        u.libraries[entry.library_index].functions[*report.matched_function];
    if (fn.source_uid == entry.target_uid) ++exact;
  }
  EXPECT_GE(exact * 10, total * 9);  // >= 90% exact subject selection
}

TEST(Pipeline, CrossDeviceScanFindsPatchGap) {
  // Pixel 2 XL (07/2017 level) must show strictly more vulnerable verdicts
  // than Android Things (05/2018 level).
  const Universe& u = universe();
  const Patchecko pipeline(&u.model);
  const DeviceSpec pixel = pixel2xl_device();
  int things_vulnerable = 0, pixel_vulnerable = 0;
  for (const CveEntry& entry : u.database->entries()) {
    const PatchReport things_report =
        pipeline.full_report(entry, u.analyzed[entry.library_index]);
    if (things_report.decision &&
        things_report.decision->verdict == PatchVerdict::vulnerable)
      ++things_vulnerable;
    const LibraryBinary pixel_lib =
        u.corpus->compile_for_device(entry.library_index, pixel);
    const AnalyzedLibrary pixel_analyzed = analyze_library(pixel_lib);
    const PatchReport pixel_report =
        pipeline.full_report(entry, pixel_analyzed);
    if (pixel_report.decision &&
        pixel_report.decision->verdict == PatchVerdict::vulnerable)
      ++pixel_vulnerable;
  }
  EXPECT_GT(pixel_vulnerable, things_vulnerable);
}

}  // namespace
}  // namespace patchecko
