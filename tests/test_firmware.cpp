// Tests for the evaluation corpus and firmware assembly: paper-faithful
// library sizes and CVE mapping, device patch levels, slot planting, uid
// stability, and stripping.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "firmware/firmware.h"

namespace patchecko {
namespace {

TEST(FirmwareSpecs, SixteenLibrariesWithPaperSizes) {
  const auto libs = standard_libraries();
  ASSERT_EQ(libs.size(), 16u);
  std::map<std::string, std::size_t> sizes;
  for (const auto& lib : libs) sizes[lib.name] = lib.function_count;
  // Spot-check against Table VI "Total" values.
  EXPECT_EQ(sizes.at("libstagefright"), 5646u);
  EXPECT_EQ(sizes.at("libwebview"), 13729u);
  EXPECT_EQ(sizes.at("libminijail"), 116u);
  EXPECT_EQ(sizes.at("libdrmframework"), 617u);
}

TEST(FirmwareSpecs, TwentyFiveCvesAllHosted) {
  const auto cves = standard_cves();
  ASSERT_EQ(cves.size(), 25u);
  std::set<std::string> lib_names;
  for (const auto& lib : standard_libraries()) lib_names.insert(lib.name);
  std::set<std::string> ids;
  for (const auto& cve : cves) {
    EXPECT_TRUE(lib_names.count(cve.library)) << cve.cve_id;
    ids.insert(cve.cve_id);
  }
  EXPECT_EQ(ids.size(), 25u);  // no duplicates
}

TEST(FirmwareSpecs, PaperCaseStudyShapes) {
  for (const auto& cve : standard_cves()) {
    if (cve.cve_id == "CVE-2018-9412") {
      EXPECT_EQ(cve.kind, PatchKind::remove_memmove_loop);
    }
    if (cve.cve_id == "CVE-2018-9470") {
      EXPECT_EQ(cve.kind, PatchKind::constant_tweak);
    }
  }
}

TEST(FirmwareSpecs, AndroidThingsPatchSetMatchesTable8) {
  const DeviceSpec device = android_things_device();
  EXPECT_EQ(device.patched_cves.size(), 10u);
  EXPECT_TRUE(device.is_patched("CVE-2017-13209"));
  EXPECT_TRUE(device.is_patched("CVE-2017-13182"));
  EXPECT_FALSE(device.is_patched("CVE-2018-9412"));
  EXPECT_FALSE(device.is_patched("CVE-2018-9470"));
}

TEST(FirmwareSpecs, DevicesDifferInArch) {
  EXPECT_NE(android_things_device().arch, pixel2xl_device().arch);
}

class CorpusFixture : public ::testing::Test {
 protected:
  static const EvalCorpus& corpus() {
    static EvalCorpus instance = [] {
      EvalConfig config;
      config.scale = 0.02;
      return EvalCorpus(config);
    }();
    return instance;
  }
};

TEST_F(CorpusFixture, EveryCveGetsAUniqueSlotPerLibrary) {
  std::map<std::size_t, std::set<std::size_t>> slots;
  for (const HostedCve& cve : corpus().hosted_cves()) {
    EXPECT_TRUE(slots[cve.library_index].insert(cve.slot).second)
        << cve.spec.cve_id << " collides in library " << cve.library_index;
  }
}

TEST_F(CorpusFixture, VulnerableVersionPlantedInBaseSource) {
  for (const HostedCve& cve : corpus().hosted_cves()) {
    const SourceLibrary& src = corpus().vulnerable_source(cve.library_index);
    EXPECT_EQ(src.functions[cve.slot].name, cve.pair.vulnerable.name);
  }
}

TEST_F(CorpusFixture, DevicePatchStatusSelectsVersion) {
  const DeviceSpec things = android_things_device();
  const HostedCve& patched_cve = corpus().hosted("CVE-2017-13232");
  const HostedCve& unpatched_cve = corpus().hosted("CVE-2018-9412");
  const SourceLibrary patched_lib =
      corpus().source_for_device(patched_cve.library_index, things);
  const SourceLibrary unpatched_lib =
      corpus().source_for_device(unpatched_cve.library_index, things);
  // Patched CVEs get the patched body (more statements or different shape);
  // compare node counts against the pair's two versions.
  EXPECT_EQ(patched_lib.functions[patched_cve.slot].node_count(),
            patched_cve.pair.patched.node_count());
  EXPECT_EQ(unpatched_lib.functions[unpatched_cve.slot].node_count(),
            unpatched_cve.pair.vulnerable.node_count());
}

TEST_F(CorpusFixture, UidStableAcrossDevicesAndBuilds) {
  const HostedCve& cve = corpus().hosted("CVE-2017-13208");
  const LibraryBinary things =
      corpus().compile_for_device(cve.library_index, android_things_device());
  const LibraryBinary pixel =
      corpus().compile_for_device(cve.library_index, pixel2xl_device());
  const LibraryBinary reference = corpus().compile_reference(cve.library_index);
  const std::uint64_t uid = corpus().target_uid(cve);
  EXPECT_EQ(things.functions[cve.slot].source_uid, uid);
  EXPECT_EQ(pixel.functions[cve.slot].source_uid, uid);
  EXPECT_EQ(reference.functions[cve.slot].source_uid, uid);
}

TEST_F(CorpusFixture, DeviceBinariesAreStripped) {
  const LibraryBinary lib =
      corpus().compile_for_device(0, android_things_device());
  EXPECT_TRUE(lib.stripped);
  for (const FunctionBinary& fn : lib.functions)
    EXPECT_TRUE(fn.name.empty());
}

TEST_F(CorpusFixture, ReferenceBinariesKeepSymbols) {
  const LibraryBinary lib = corpus().compile_reference(0);
  EXPECT_FALSE(lib.stripped);
  bool any_named = false;
  for (const FunctionBinary& fn : lib.functions)
    if (!fn.name.empty()) any_named = true;
  EXPECT_TRUE(any_named);
}

TEST_F(CorpusFixture, ScaleControlsFunctionCounts) {
  // At scale 0.02 libstagefright shrinks but stays >= the floor of 24.
  const std::size_t idx = corpus().library_index("libstagefright");
  const std::size_t count = corpus().library_specs()[idx].function_count;
  EXPECT_GE(count, 24u);
  EXPECT_LT(count, 5646u);
}

TEST_F(CorpusFixture, SlotOriginalHasPtrParam) {
  // The anti-aliasing rule: planted slots replace functions that later
  // dispatchers can never call.
  for (const HostedCve& cve : corpus().hosted_cves()) {
    // Verify by construction through determinism: regenerate the library
    // without planting and check the displaced function's signature.
    // (The planted pair carries the slot; the invariant is enforced at
    // construction, so here we just confirm the CVE function's own slot.)
    EXPECT_LT(cve.slot,
              corpus().vulnerable_source(cve.library_index).functions.size());
  }
}

TEST_F(CorpusFixture, FirmwareImageAggregates) {
  const FirmwareImage image =
      corpus().build_firmware(android_things_device());
  EXPECT_EQ(image.libraries.size(), 16u);
  EXPECT_GT(image.total_functions(), 300u);
  EXPECT_EQ(image.device, "Android Things 1.0");
}

TEST_F(CorpusFixture, DeterministicAcrossInstances) {
  EvalConfig config;
  config.scale = 0.02;
  const EvalCorpus other(config);
  const auto a = serialize_library(corpus().compile_reference(3));
  const auto b = serialize_library(other.compile_reference(3));
  EXPECT_EQ(a, b);
}


TEST_F(CorpusFixture, FirmwareFileRoundTrip) {
  const FirmwareImage image =
      corpus().build_firmware(android_things_device());
  const std::string path = "/tmp/pk_test_firmware.img";
  ASSERT_TRUE(save_firmware(image, path));
  const auto loaded = load_firmware(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->device, image.device);
  ASSERT_EQ(loaded->libraries.size(), image.libraries.size());
  for (std::size_t i = 0; i < image.libraries.size(); ++i) {
    EXPECT_EQ(loaded->libraries[i].name, image.libraries[i].name);
    EXPECT_EQ(loaded->libraries[i].function_count(),
              image.libraries[i].function_count());
    EXPECT_EQ(serialize_library(loaded->libraries[i]),
              serialize_library(image.libraries[i]));
  }
  std::remove(path.c_str());
}

TEST(FirmwareFile, LoadRejectsMissingAndGarbage) {
  EXPECT_FALSE(load_firmware("/tmp/definitely_missing.img").has_value());
  const std::string path = "/tmp/pk_garbage.img";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage bytes", f);
  std::fclose(f);
  EXPECT_FALSE(load_firmware(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace patchecko
