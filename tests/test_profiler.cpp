// Tests for the sampling span profiler (src/obs/profiler): trie
// aggregation of scope entries and manual samples, allocation attribution
// to the innermost scope, capture lifecycle (start/stop guard, reset,
// pre-existing-scope absorption), deterministic folded/top renderings, and
// the acceptance contract — an engine scan's entries-folded export is
// byte-identical across --jobs, and canonical report output is unchanged
// by profiling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dl/trainer.h"
#include "engine/engine.h"
#include "firmware/firmware.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace patchecko {
namespace {

using obs::EnabledScope;
using obs::FoldMetric;
using obs::ManualClock;
using obs::ProfileNode;
using obs::Profiler;
using obs::ProfileReport;
using obs::ScopedSpan;
using obs::Tracer;

/// Manual-clock, sampler-thread-free config: tests drive sample_once().
Profiler::Config manual_config(const ManualClock& clock) {
  Profiler::Config config;
  config.hz = 0;
  config.clock = &clock;
  return config;
}

const ProfileNode* find_child(const ProfileNode& node,
                              const std::string& name) {
  for (const ProfileNode& child : node.children)
    if (child.name == name) return &child;
  return nullptr;
}

TEST(Profiler, StartWhileRunningIsRefused) {
  EnabledScope on(true);
  ManualClock clock;
  Profiler& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.start(manual_config(clock)));  // daemon maps to 409
  EXPECT_TRUE(profiler.running());  // refused start didn't clobber anything
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  profiler.stop();
}

TEST(Profiler, EntriesAggregateIntoTrie) {
  EnabledScope on(true);
  Tracer tracer;
  ManualClock clock(10.0);
  Profiler& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  for (int i = 0; i < 3; ++i) {
    ScopedSpan outer("p.outer", tracer);
    { ScopedSpan inner("p.inner", tracer); }
    { ScopedSpan inner("p.inner", tracer); }
  }
  clock.advance(2.5);
  const ProfileReport report = profiler.stop();

  EXPECT_DOUBLE_EQ(report.duration_seconds, 2.5);
  EXPECT_EQ(report.hz, 0.0);
  EXPECT_EQ(report.truncated, 0u);
  const ProfileNode* outer = find_child(report.root, "p.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->entries, 3u);
  const ProfileNode* inner = find_child(*outer, "p.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->entries, 6u);
  EXPECT_EQ(obs::folded_stacks(report, FoldMetric::entries),
            "p.outer 3\np.outer;p.inner 6\n");
}

TEST(Profiler, ManualSamplesLandOnInnermostScope) {
  EnabledScope on(true);
  Tracer tracer;
  ManualClock clock;
  Profiler& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  {
    ScopedSpan outer("s.outer", tracer);
    {
      ScopedSpan inner("s.inner", tracer);
      for (int i = 0; i < 3; ++i) profiler.sample_once();
    }
    for (int i = 0; i < 2; ++i) profiler.sample_once();
  }
  profiler.sample_once();  // no scope open on any thread: sweep, no sample
  const ProfileReport report = profiler.stop();

  EXPECT_EQ(report.sweeps, 6u);
  EXPECT_EQ(report.samples, 5u);
  EXPECT_EQ(obs::folded_stacks(report, FoldMetric::samples),
            "s.outer 2\ns.outer;s.inner 3\n");
}

// The determinism acceptance at the primitive level: K threads parked
// inside the same scope path, swept a fixed number of times, yield exactly
// K samples per sweep on the leaf — for any K, run after run.
void parked_thread_capture(int threads, int sweeps, std::string* folded) {
  Tracer tracer;
  ManualClock clock;
  Profiler& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  std::atomic<int> parked{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t)
    workers.emplace_back([&] {
      ScopedSpan work("park.work", tracer);
      ScopedSpan leaf("park.leaf", tracer);
      parked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  while (parked.load() < threads) std::this_thread::yield();
  for (int i = 0; i < sweeps; ++i) profiler.sample_once();
  release.store(true);
  for (std::thread& worker : workers) worker.join();
  *folded = obs::folded_stacks(profiler.stop(), FoldMetric::samples);
}

TEST(Profiler, ParkedThreadSamplingIsDeterministic) {
  EnabledScope on(true);
  std::string one, four, four_again;
  parked_thread_capture(1, 4, &one);
  parked_thread_capture(4, 4, &four);
  parked_thread_capture(4, 4, &four_again);
  EXPECT_EQ(one, "park.work;park.leaf 4\n");
  EXPECT_EQ(four, "park.work;park.leaf 16\n");
  EXPECT_EQ(four, four_again);  // byte-identical run to run
}

TEST(Profiler, AllocationsAttributeToInnermostScope) {
  if (!obs::allocation_counting_available())
    GTEST_SKIP() << "alloc hook compiled out under sanitizers";
  EnabledScope on(true);
  Tracer tracer;
  ManualClock clock;
  Profiler& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  constexpr std::size_t kBytes = 1u << 20;
  {
    ScopedSpan outer("alloc.outer", tracer);
    {
      ScopedSpan inner("alloc.inner", tracer);
      std::vector<char> block(kBytes);
      block[0] = 1;
      block[kBytes - 1] = 2;
    }
  }
  const ProfileReport report = profiler.stop();

  ASSERT_TRUE(report.alloc_available);
  const ProfileNode* outer = find_child(report.root, "alloc.outer");
  ASSERT_NE(outer, nullptr);
  const ProfileNode* inner = find_child(*outer, "alloc.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(inner->alloc_bytes, kBytes);
  EXPECT_GE(inner->alloc_count, 1u);
  // Self attribution: the big block belongs to the inner scope, not the
  // outer one (which only pays incidental bookkeeping allocations).
  EXPECT_LT(outer->alloc_bytes, kBytes / 2);
}

TEST(Profiler, ScopesOpenAtStartAreInvisibleAndAbsorbed) {
  EnabledScope on(true);
  Tracer tracer;
  ManualClock clock;
  Profiler& profiler = Profiler::global();
  auto pre = std::make_unique<ScopedSpan>("pre.open", tracer);
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  { ScopedSpan inner("pre.inner", tracer); }
  pre.reset();  // pop of a pre-capture scope: absorbed, trie stays balanced
  { ScopedSpan after("pre.after", tracer); }
  const ProfileReport report = profiler.stop();

  EXPECT_EQ(find_child(report.root, "pre.open"), nullptr);
  // Both capture-era scopes are roots: pre.open contributed no path prefix.
  EXPECT_EQ(obs::folded_stacks(report, FoldMetric::entries),
            "pre.after 1\npre.inner 1\n");
}

TEST(Profiler, ScopesSpanningStopThenRestartStayBalanced) {
  EnabledScope on(true);
  Tracer tracer;
  ManualClock clock;
  Profiler& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  auto open = std::make_unique<ScopedSpan>("cross.capture", tracer);
  profiler.stop();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  open.reset();  // pop from the previous capture: absorbed
  { ScopedSpan fresh("cross.fresh", tracer); }
  const ProfileReport report = profiler.stop();

  EXPECT_EQ(find_child(report.root, "cross.capture"), nullptr);
  EXPECT_EQ(obs::folded_stacks(report, FoldMetric::entries),
            "cross.fresh 1\n");
}

void open_nested(Tracer& tracer, int remaining) {
  if (remaining == 0) return;
  ScopedSpan span("deep.scope", tracer);
  open_nested(tracer, remaining - 1);
}

TEST(Profiler, DepthCapTruncatesButStaysBalanced) {
  EnabledScope on(true);
  Tracer tracer;
  ManualClock clock;
  Profiler& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  constexpr int kDepth = static_cast<int>(Profiler::max_depth) + 6;
  open_nested(tracer, kDepth);
  const ProfileReport report = profiler.stop();

  EXPECT_EQ(report.truncated, 6u);
  std::size_t depth = 0;
  const ProfileNode* node = &report.root;
  while ((node = find_child(*node, "deep.scope")) != nullptr) ++depth;
  EXPECT_EQ(depth, Profiler::max_depth);
}

TEST(Profiler, ReportIsReadableMidCapture) {
  EnabledScope on(true);
  Tracer tracer;
  ManualClock clock(5.0);
  Profiler& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  { ScopedSpan live("mid.live", tracer); }
  clock.advance(1.0);
  const ProfileReport mid = profiler.report();
  EXPECT_DOUBLE_EQ(mid.duration_seconds, 1.0);
  const ProfileNode* live = find_child(mid.root, "mid.live");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->entries, 1u);
  profiler.stop();
}

TEST(Profiler, SummaryPicksHottestLeafAndCountsCaptures) {
  EnabledScope on(true);
  Tracer tracer;
  ManualClock clock;
  Profiler& profiler = Profiler::global();
  const std::uint64_t captures_before = profiler.captures();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  {
    ScopedSpan cold("sum.cold", tracer);
  }
  {
    ScopedSpan hot("sum.hot", tracer);
    profiler.sample_once();
    profiler.sample_once();
  }
  clock.advance(0.5);
  profiler.stop();

  EXPECT_EQ(profiler.captures(), captures_before + 1);
  const auto summary = profiler.last_capture();
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->hot_path, "sum.hot");
  EXPECT_EQ(summary->hot_samples, 2u);
  EXPECT_EQ(summary->sweeps, 2u);
  EXPECT_EQ(summary->samples, 2u);
  EXPECT_DOUBLE_EQ(summary->duration_seconds, 0.5);
}

TEST(Profiler, TopTableIsDeterministicAndRanksBySelf) {
  EnabledScope on(true);
  Tracer tracer;
  ManualClock clock;
  Profiler& profiler = Profiler::global();
  ASSERT_TRUE(profiler.start(manual_config(clock)));
  {
    ScopedSpan a("tbl.a", tracer);
    profiler.sample_once();
    {
      ScopedSpan b("tbl.b", tracer);
      profiler.sample_once();
      profiler.sample_once();
    }
  }
  clock.advance(1.0);
  const ProfileReport report = profiler.stop();

  const std::string table = obs::profile_top_table(report);
  EXPECT_EQ(table, obs::profile_top_table(report));  // stable rendering
  // tbl.b (self 2) ranks above tbl.a (self 1); inclusive of tbl.a is 3.
  const auto b_pos = table.find("tbl.a;tbl.b");
  const auto a_pos = table.find("tbl.a\n");
  ASSERT_NE(b_pos, std::string::npos) << table;
  ASSERT_NE(a_pos, std::string::npos) << table;
  EXPECT_LT(b_pos, a_pos);
  EXPECT_NE(table.find("sweeps 3, samples 3"), std::string::npos) << table;
}

TEST(Profiler, SamplerThreadCollectsAgainstRealClock) {
  EnabledScope on(true);
  Tracer tracer;
  Profiler& profiler = Profiler::global();
  Profiler::Config config;
  config.hz = 500;  // real sampler thread
  ASSERT_TRUE(profiler.start(config));
  {
    ScopedSpan busy("real.busy", tracer);
    // Park long enough for several sweep intervals at 500 Hz.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const ProfileReport report = profiler.stop();
  EXPECT_GT(report.sweeps, 0u);
  EXPECT_GT(report.duration_seconds, 0.0);
  const ProfileNode* busy = find_child(report.root, "real.busy");
  ASSERT_NE(busy, nullptr);
  EXPECT_GT(busy->samples, 0u);
}

// ---------------------------------------------------------------------------
// Engine-level acceptance: the entries-folded export of a real scan is
// byte-identical across --jobs under ManualClock, and profiling leaves the
// canonical report untouched.

struct ProfilerUniverse {
  SimilarityModel model;
  std::unique_ptr<EvalCorpus> corpus;
  std::unique_ptr<CveDatabase> database;
  FirmwareImage firmware;
  std::vector<std::string> cves;

  ProfilerUniverse() {
    TrainerConfig trainer;
    trainer.dataset.library_count = 12;
    trainer.dataset.functions_per_library = 10;
    trainer.epochs = 4;
    model = train_similarity_model(trainer).model;
    EvalConfig eval;
    eval.scale = 0.02;
    corpus = std::make_unique<EvalCorpus>(eval);
    database = std::make_unique<CveDatabase>(*corpus, DatabaseConfig{});
    firmware = corpus->build_firmware(android_things_device());
    for (const CveEntry& entry : database->entries()) {
      if (cves.size() == 3) break;
      cves.push_back(entry.spec.cve_id);
    }
  }

  ScanRequest request() const {
    ScanRequest request;
    request.model = &model;
    request.firmware = &firmware;
    request.database = database.get();
    request.cve_ids = cves;
    return request;
  }
};

const ProfilerUniverse& profiler_universe() {
  static ProfilerUniverse instance;
  return instance;
}

TEST(Profiler, EngineEntriesFoldedIsByteIdenticalAcrossJobs) {
  EnabledScope on(true);
  const ProfilerUniverse& u = profiler_universe();
  ManualClock clock;
  Profiler& profiler = Profiler::global();

  std::vector<std::string> folded;
  std::vector<std::string> canonical;
  for (const int jobs : {1, 4}) {
    EngineConfig config;
    config.jobs = jobs;
    config.use_cache = false;
    ASSERT_TRUE(profiler.start(manual_config(clock)));
    const ScanReport report = ScanEngine(config).run(u.request());
    folded.push_back(
        obs::folded_stacks(profiler.stop(), FoldMetric::entries));
    canonical.push_back(report.canonical_text());
  }

  ASSERT_FALSE(folded[0].empty());
  EXPECT_EQ(folded[0], folded[1]);
  EXPECT_EQ(canonical[0], canonical[1]);
  EXPECT_NE(folded[0].find("pipeline."), std::string::npos) << folded[0];

  // Sampler-off bit-identity: the same scan without a capture produces the
  // same canonical report bytes.
  EngineConfig config;
  config.jobs = 4;
  config.use_cache = false;
  const ScanReport unprofiled = ScanEngine(config).run(u.request());
  EXPECT_EQ(unprofiled.canonical_text(), canonical[1]);
}

}  // namespace
}  // namespace patchecko
