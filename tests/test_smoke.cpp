// End-to-end smoke: generate, compile, execute, extract — nothing crashes
// and the basic invariants hold.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "features/static_features.h"
#include "source/generator.h"
#include "source/interp.h"
#include "vm/machine.h"

namespace patchecko {
namespace {

TEST(Smoke, GenerateCompileRun) {
  const SourceLibrary source = generate_library("smoke", 7, 12);
  ASSERT_EQ(source.functions.size(), 12u);

  const LibraryBinary binary =
      compile_library(source, Arch::amd64, OptLevel::O1, 1000);
  ASSERT_EQ(binary.functions.size(), 12u);

  const Machine machine(binary);
  Rng rng(99);
  for (std::size_t f = 0; f < binary.functions.size(); ++f) {
    CallEnv env;
    for (ValueType t : binary.functions[f].param_types) {
      switch (t) {
        case ValueType::ptr: {
          env.buffers.emplace_back(32, 0xab);
          env.args.push_back(
              Value::from_ptr(static_cast<int>(env.buffers.size()) - 1));
          break;
        }
        case ValueType::i64:
          env.args.push_back(Value::from_int(32));
          break;
        case ValueType::f64:
          env.args.push_back(Value::from_fp(1.5));
          break;
      }
    }
    const RunResult result = machine.run(f, env);
    // Any status is legal; what matters is the VM never hangs or aborts.
    EXPECT_LE(result.steps, MachineConfig{}.step_limit + 1);
    const StaticFeatureVector features =
        extract_static_features(binary.functions[f]);
    EXPECT_GT(features[2], 0.0) << "num_inst of function " << f;
  }
}

}  // namespace
}  // namespace patchecko
