// Tests for the neural-network stack: numerical gradient checking, learning
// on synthetic separable data, metrics, and model serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "dl/network.h"
#include "dl/similarity_model.h"

namespace patchecko {
namespace {

TEST(Matrix, IndexingRowMajor) {
  Matrix m(2, 3);
  m.at(1, 2) = 5.f;
  EXPECT_EQ(m.data[1 * 3 + 2], 5.f);
  EXPECT_EQ(m.rows, 2u);
  EXPECT_EQ(m.cols, 3u);
}

TEST(DenseLayer, ForwardComputesAffine) {
  Rng rng(1);
  DenseLayer layer(2, 1, rng);
  layer.weights() = {2.f, 3.f};  // w[0][0]=2 (in0->out0), w[1][0]=3
  layer.biases() = {1.f};
  Matrix x(1, 2);
  x.data = {4.f, 5.f};
  const Matrix y = layer.forward(x);
  EXPECT_FLOAT_EQ(y.data[0], 2.f * 4.f + 3.f * 5.f + 1.f);
}

TEST(DenseLayer, ForwardRejectsBadShape) {
  Rng rng(1);
  DenseLayer layer(3, 2, rng);
  Matrix x(1, 4);
  EXPECT_THROW(layer.forward(x), std::invalid_argument);
}

TEST(Network, GradientMatchesNumericalEstimate) {
  // Single-layer logistic regression: analytic gradient from train_epoch's
  // backward pass must match the numeric derivative of the BCE loss.
  Rng rng(7);
  Network net({3, 1}, 7);
  Matrix x(4, 3);
  std::vector<float> y{1.f, 0.f, 1.f, 0.f};
  Rng data_rng(9);
  for (float& v : x.data)
    v = static_cast<float>(data_rng.uniform_real(-1, 1));

  auto loss_of = [&](Network& n) {
    return n.evaluate(x, y).loss;
  };

  // Numeric gradient wrt the first weight.
  const float eps = 1e-3f;
  Network plus = net, minus = net;
  plus.layers()[0].weights()[0] += eps;
  minus.layers()[0].weights()[0] -= eps;
  const double numeric =
      (loss_of(plus) - loss_of(minus)) / (2.0 * eps);

  // Analytic gradient: run one batch backward by hand via train_epoch with
  // zero learning rate is not possible; instead approximate using a tiny
  // learning-rate SGD-like probe: the Adam first step moves opposite in
  // sign to the gradient.
  Network probe = net;
  TrainConfig config;
  config.learning_rate = 1e-4f;
  config.batch_size = 4;
  Rng shuffle(1);
  const float before = probe.layers()[0].weights()[0];
  (void)probe.train_epoch(x, y, config, shuffle);
  const float after = probe.layers()[0].weights()[0];
  if (std::abs(numeric) > 1e-4) {
    EXPECT_LT((after - before) * numeric, 0.0)
        << "Adam must step against the gradient";
  }
}

TEST(Network, LearnsLinearlySeparableData) {
  Rng data_rng(11);
  const std::size_t n = 600;
  Matrix x(n, 4);
  std::vector<float> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    float sum = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      const float v = static_cast<float>(data_rng.uniform_real(-1, 1));
      x.at(r, c) = v;
      sum += v;
    }
    y[r] = sum > 0 ? 1.f : 0.f;
  }
  Network net({4, 16, 8, 1}, 3);
  TrainConfig config;
  Rng shuffle(5);
  EpochStats stats;
  for (int epoch = 0; epoch < 30; ++epoch)
    stats = net.train_epoch(x, y, config, shuffle);
  EXPECT_GT(stats.accuracy, 0.95);
}

TEST(Network, LearnsXorNonlinearity) {
  Matrix x(4, 2);
  x.data = {0, 0, 0, 1, 1, 0, 1, 1};
  std::vector<float> y{0.f, 1.f, 1.f, 0.f};
  Network net({2, 8, 8, 1}, 21);
  TrainConfig config;
  config.learning_rate = 5e-3f;
  config.batch_size = 4;
  Rng shuffle(2);
  for (int epoch = 0; epoch < 800; ++epoch)
    (void)net.train_epoch(x, y, config, shuffle);
  const auto preds = net.predict(x);
  EXPECT_LT(preds[0], 0.5f);
  EXPECT_GT(preds[1], 0.5f);
  EXPECT_GT(preds[2], 0.5f);
  EXPECT_LT(preds[3], 0.5f);
}

TEST(Network, PatcheckoModelShape) {
  const Network net = Network::make_patchecko_model(1);
  EXPECT_EQ(net.layers().size(), 6u);  // the paper's 6-layer sequential
  EXPECT_EQ(net.layers().front().in_dim(), 96u);
  EXPECT_EQ(net.layers().back().out_dim(), 1u);
}

TEST(Network, DeterministicFromSeed) {
  Network a = Network::make_patchecko_model(5);
  Network b = Network::make_patchecko_model(5);
  std::vector<float> input(96, 0.3f);
  EXPECT_EQ(a.predict_one(input), b.predict_one(input));
}

TEST(Metrics, AucPerfectAndInverted) {
  const std::vector<float> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc_score({0.1f, 0.2f, 0.8f, 0.9f}, labels), 1.0);
  EXPECT_DOUBLE_EQ(auc_score({0.9f, 0.8f, 0.2f, 0.1f}, labels), 0.0);
}

TEST(Metrics, AucTiesGiveHalf) {
  const std::vector<float> labels{0, 1};
  EXPECT_DOUBLE_EQ(auc_score({0.5f, 0.5f}, labels), 0.5);
}

TEST(Metrics, AucDegenerateClasses) {
  EXPECT_DOUBLE_EQ(auc_score({0.2f, 0.4f}, {1.f, 1.f}), 0.5);
}

TEST(Metrics, AccuracyThreshold) {
  const std::vector<float> labels{0, 1, 1};
  EXPECT_DOUBLE_EQ(accuracy_score({0.2f, 0.9f, 0.4f}, labels), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy_score({0.2f, 0.9f, 0.4f}, labels, 0.3f), 1.0);
}

TEST(SimilarityModel, ScoreIsSymmetric) {
  Network net = Network::make_patchecko_model(13);
  FeatureNormalizer normalizer;
  normalizer.fit({});
  const SimilarityModel model(std::move(net), normalizer);
  StaticFeatureVector a{}, b{};
  a.fill(3.0);
  b.fill(8.0);
  EXPECT_FLOAT_EQ(model.score(a, b), model.score(b, a));
}

TEST(SimilarityModel, SaveLoadRoundTrip) {
  Network net = Network::make_patchecko_model(17);
  std::vector<StaticFeatureVector> corpus(10);
  Rng rng(2);
  for (auto& v : corpus)
    for (double& x : v) x = rng.uniform_real(0, 20);
  FeatureNormalizer normalizer;
  normalizer.fit(corpus);
  const SimilarityModel model(std::move(net), normalizer);

  const std::string path = "/tmp/pk_test_model.bin";
  ASSERT_TRUE(model.save(path));
  const auto loaded = SimilarityModel::load(path);
  ASSERT_TRUE(loaded.has_value());

  StaticFeatureVector a{}, b{};
  a.fill(2.0);
  b.fill(11.0);
  EXPECT_FLOAT_EQ(model.score(a, b), loaded->score(a, b));
  std::filesystem::remove(path);
}

TEST(SimilarityModel, LoadRejectsMissingAndCorrupt) {
  EXPECT_FALSE(SimilarityModel::load("/tmp/definitely_missing_model.bin")
                   .has_value());
  const std::string path = "/tmp/pk_corrupt_model.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a model", f);
  std::fclose(f);
  EXPECT_FALSE(SimilarityModel::load(path).has_value());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace patchecko
