// bench_diff — standalone benchmark trajectory comparison.
//
//   bench_diff OLD.json NEW.json [--rel-tol F] [--abs-tol F]
//   bench_diff --old baselines/ --new fresh/ [--rel-tol F]
//
// Thin wrapper over the shared bench-diff driver; `patchecko bench-diff`
// runs the same code. Exits 0 when every metric is within tolerance, 1 on
// a regression, 2 on usage or IO errors.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/bench_diff_cmd.h"

int main(int argc, char** argv) {
  using patchecko::cli::parse_args;
  using patchecko::cli::UsageError;
  // Split positional paths from --options up front (parse_args rejects bare
  // tokens), mirroring its value-binding rule: a non-"--" token right after
  // a value-less "--key" is that option's value, not a positional.
  std::vector<std::string> option_tokens = {"bench-diff"};
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional.push_back(token);
      continue;
    }
    option_tokens.push_back(token);
    if (token.find('=') == std::string::npos && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0)
      option_tokens.push_back(argv[++i]);
  }
  try {
    return patchecko::run_bench_diff(parse_args(option_tokens), positional);
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
