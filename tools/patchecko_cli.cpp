// patchecko — command-line front end for the full workflow.
//
//   patchecko train  --out model.bin [--libraries N] [--functions N]
//                    [--epochs N]
//   patchecko build-firmware --device things|pixel --out fw.img
//                    [--scale S] [--seed N]
//   patchecko inspect --firmware fw.img
//   patchecko disasm  --firmware fw.img --library NAME --function INDEX
//   patchecko scan   --model model.bin --firmware fw.img [--cve ID]
//                    [--scale S] [--seed N] [--threads N] [--metrics[=FILE]]
//                    [--events[=FILE]] [--trace-out=FILE]
//                    [--prefilter on|off|verify] [--prefilter-top-k N]
//                    [--prefilter-min-total N]
//   patchecko batch-scan --model model.bin --firmware fw.img [--cve ID]
//                    [--jobs N] [--cache-dir DIR] [--no-cache]
//                    [--scale S] [--seed N] [--verbose] [--metrics[=FILE]]
//                    [--events[=FILE]] [--trace-out=FILE]
//                    [--heartbeat[=FILE][:interval_ms]]
//                    [--watchdog-soft S] [--watchdog-hard S]
//                    [--stall-inject LABEL:SECONDS]
//                    [--prefilter on|off|verify] [--prefilter-top-k N]
//                    [--prefilter-min-total N]
//   patchecko explain --provenance FILE [--cve ID] [--function INDEX]
//   patchecko bench-diff --old PATH --new PATH [--rel-tol F] [--abs-tol F]
//   patchecko corpus build  --dir DIR [--jobs N] [--scale S] [--seed N]
//                    [--arch a,b,...] [--opt O0,O2,...]
//   patchecko corpus verify --dir DIR
//   patchecko corpus gc     --dir DIR [--dry-run]
//   patchecko corpus stats  --dir DIR [--json]
//   patchecko serve  --model model.bin --socket PATH [--tcp PORT]
//                    [--scale S] [--seed N] [--jobs N] [--cache-dir DIR]
//                    [--no-cache] [--corpus-dir DIR]
//                    [--queue-limit N] [--dispatchers N]
//                    [--max-frame-bytes N] [--events=FILE]
//                    [--heartbeat=FILE[:interval_ms]]
//                    [--access-log[=FILE]] [--stats-out=FILE[:interval_ms]]
//                    [--stats-window S]
//                    [--prefilter on|off|verify] [--prefilter-top-k N]
//                    [--prefilter-min-total N]
//   patchecko client --socket PATH | --tcp PORT [--op submit|status|health|
//                    reload|drain|ping|stats|profile] [--firmware fw.img]
//                    [--cve ID] [--provenance[=FILE]] [--request-id N]
//                    [--scale S] [--seed N] [--seconds S] [--hz N]
//                    [--profile-out=FILE]
//   patchecko top    --socket PATH | --tcp PORT [--once] [--interval MS]
//
// `scan` rebuilds the vulnerability database deterministically from the
// corpus seed, loads the stripped firmware image from disk, and runs the
// two-stage pipeline plus the differential engine for each CVE, exactly as
// the paper's evaluation does. `batch-scan` runs the same workload through
// the batch engine: a dependency-aware job graph on the shared thread pool,
// with analyze/detect results served from a content-addressed cache.
// `--metrics` turns on the observability layer (src/obs): a one-line stage/
// cache/pruning summary on stderr plus the full JSON metrics document on
// stdout (or written to FILE). `--events` records decision provenance and
// structured events as JSONL; `--trace-out` writes a Chrome trace_event
// file loadable in Perfetto; `explain` renders the human-readable decision
// chain from a prior scan's provenance file (including `prefiltered` prune
// decisions — candidates the retrieval shortlist kept from the NN).
// `--prefilter` enables the sub-linear stage-1 retrieval index
// (src/retrieval): `on` scores only each query's top-K nearest functions,
// `verify` additionally measures shortlist-vs-exact recall. `--heartbeat` appends live
// JSONL run-health snapshots during batch-scan; `--watchdog-soft/-hard`
// flag and cancel stalled jobs; `bench-diff` compares two BENCH_*.json
// files (or baseline directories) and exits nonzero on a perf regression.
//
// `serve` keeps the model, CVE corpus, and result cache resident in a
// long-lived daemon speaking the length-prefixed JSON protocol of
// src/service/protocol.h over a Unix-domain socket (and optionally TCP on
// 127.0.0.1); `client` submits scans and control requests to it. SIGHUP —
// or a `reload` request — hot-swaps the corpus snapshot without dropping
// in-flight scans; SIGINT/SIGTERM shut down gracefully (queued scans are
// cancelled with structured errors, telemetry files are flushed) and exit
// with 128+signal. The same interrupt handling applies to `batch-scan`.
//
// Daemon observability: `--access-log` writes one JSONL line per completed
// request (after its response frame); the `stats` request — and the
// periodic `--stats-out` dump — expose the sliding-window per-endpoint
// rollup; `top` polls `stats` and renders a deterministic text dashboard
// (`--once` for a single scriptable frame).
//
// Profiling: `--profile[=FILE][:hz]` on scan/batch-scan samples the live
// span stacks for the run's duration, prints a self-time/allocation top
// table on stderr, and writes flamegraph.pl/speedscope-compatible folded
// stacks to FILE. `client --op profile [--seconds S] [--hz N]` captures the
// same thing from a running daemon (409 while another capture is active);
// `top` shows the last capture's hottest leaf.
#include <chrono>
#include <cstdio>
#include <thread>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/pipeline.h"
#include "corpus/builder.h"
#include "dl/trainer.h"
#include "engine/engine.h"
#include "obs/decision.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/signals.h"
#include "service/top.h"
#include "tools/bench_diff_cmd.h"
#include "util/cli_args.h"
#include "util/parallel.h"
#include "util/timer.h"

using namespace patchecko;
using cli::Args;
using cli::UsageError;
using cli::metrics_spec_from;
using cli::output_spec_from;
using cli::parse_args;
using cli::require_known_options;

namespace {

int write_text_file(const std::string& path, const std::string& content,
                    const char* what) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s to %s\n", what, path.c_str());
    return 1;
  }
  // The notice goes to stderr with the other progress text — stdout is
  // reserved for the report (or the JSONL itself in stdout mode).
  std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
  return 0;
}

/// Emits the end-of-run metrics artifacts: summary line on stderr (it must
/// never corrupt piped report/JSONL output), JSON on stdout or to the
/// requested file. No-op when --metrics was not given.
int emit_metrics(const cli::MetricsSpec& spec) {
  if (!spec.enabled) return 0;
  return obs::write_metrics_artifacts(
      obs::Registry::global(), obs::Tracer::global(),
      &obs::EventLog::global(), spec.file, stdout, stderr);
}

/// Emits the provenance JSONL: deterministic meta + decision lines first
/// (byte-identical across runs for unchanged inputs), wall-clock event
/// lines after. No-op when --events was not given.
int emit_events(const cli::OutputSpec& spec, const ScanReport& report) {
  if (!spec.enabled) return 0;
  std::string out = report.provenance_jsonl();
  for (const obs::Event& event : obs::EventLog::global().events())
    out += obs::event_jsonl_line(event) + "\n";
  if (spec.file.empty()) {
    std::printf("%s", out.c_str());
    return 0;
  }
  return write_text_file(spec.file, out, "events");
}

/// Starts the in-process --profile capture. Returns whether a capture was
/// actually started (the caller passes that to emit_profile, so a pop
/// without a push is impossible even if something else owns the profiler).
bool start_profile(const cli::ProfileSpec& spec) {
  if (!spec.enabled) return false;
  obs::Profiler::Config config;
  config.hz = spec.hz;
  if (!obs::Profiler::global().start(config)) {
    std::fprintf(stderr,
                 "warning: a profiler capture is already running; "
                 "--profile ignored\n");
    return false;
  }
  return true;
}

/// Stops the --profile capture and emits its artifacts: the self-time/
/// allocation top table on stderr (diagnostics never corrupt the piped
/// report), folded stacks to the requested file.
int emit_profile(const cli::ProfileSpec& spec, bool started) {
  if (!started) return 0;
  const obs::ProfileReport report = obs::Profiler::global().stop();
  std::fprintf(stderr, "%s", obs::profile_top_table(report).c_str());
  if (spec.file.empty()) return 0;
  return write_text_file(spec.file, obs::folded_stacks(report),
                         "folded profile");
}

/// Emits the Chrome trace_event file. No-op when --trace-out was not given.
int emit_trace(const cli::OutputSpec& spec) {
  if (!spec.enabled) return 0;
  return write_text_file(
      spec.file,
      obs::chrome_trace_json(obs::Tracer::global(), &obs::EventLog::global()) +
          "\n",
      "trace");
}

/// Shared --prefilter/--prefilter-top-k/--prefilter-min-total parsing for
/// scan, batch-scan, and serve (the flags mean the same thing through every
/// entry point).
void apply_prefilter_options(const Args& args, PipelineConfig& config) {
  if (args.has("prefilter")) {
    const std::string value = args.get("prefilter", "");
    const auto mode = retrieval::parse_prefilter_mode(value);
    if (!mode) throw UsageError("--prefilter expects on, off, or verify");
    config.prefilter_mode = *mode;
  }
  if (args.has("prefilter-top-k")) {
    const long top_k = args.get_long("prefilter-top-k", 0);
    if (top_k <= 0) throw UsageError("--prefilter-top-k must be > 0");
    config.prefilter_top_k = static_cast<std::size_t>(top_k);
  }
  if (args.has("prefilter-min-total")) {
    const long min_total = args.get_long("prefilter-min-total", -1);
    if (min_total < 0)
      throw UsageError("--prefilter-min-total must be >= 0");
    config.prefilter_min_total = static_cast<std::size_t>(min_total);
  }
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  patchecko train --out model.bin [--libraries N] "
               "[--functions N] [--epochs N] [--metrics[=FILE]]\n"
               "  patchecko build-firmware --device things|pixel --out "
               "fw.img [--scale S] [--seed N] [--metrics[=FILE]]\n"
               "  patchecko inspect --firmware fw.img [--metrics[=FILE]]\n"
               "  patchecko disasm --firmware fw.img --library NAME "
               "--function INDEX [--metrics[=FILE]]\n"
               "  patchecko scan --model model.bin --firmware fw.img "
               "[--cve ID] [--scale S] [--seed N] [--threads N]\n"
               "                 [--metrics[=FILE]] [--events[=FILE]] "
               "[--trace-out=FILE] [--profile[=FILE][:hz]]\n"
               "                 [--prefilter on|off|verify] "
               "[--prefilter-top-k N] [--prefilter-min-total N]\n"
               "  patchecko batch-scan --model model.bin --firmware fw.img "
               "[--cve ID] [--jobs N] [--cache-dir DIR] [--no-cache]\n"
               "                 [--scale S] [--seed N] [--verbose] "
               "[--metrics[=FILE]] [--events[=FILE]] [--trace-out=FILE]\n"
               "                 [--heartbeat[=FILE][:interval_ms]] "
               "[--watchdog-soft S] [--watchdog-hard S]\n"
               "                 [--stall-inject LABEL:SECONDS] "
               "[--canonical[=FILE]] [--profile[=FILE][:hz]]\n"
               "                 [--prefilter on|off|verify] "
               "[--prefilter-top-k N] [--prefilter-min-total N]\n"
               "  patchecko explain --provenance FILE [--cve ID] "
               "[--function INDEX]\n"
               "  patchecko bench-diff --old PATH --new PATH [--rel-tol F] "
               "[--abs-tol F]\n"
               "  patchecko corpus build --dir DIR [--jobs N] [--scale S] "
               "[--seed N] [--arch a,b,...] [--opt O0,O2,...]\n"
               "  patchecko corpus verify|gc|stats --dir DIR [--dry-run] "
               "[--json]\n"
               "  patchecko serve --model model.bin --socket PATH "
               "[--tcp PORT] [--scale S] [--seed N] [--jobs N]\n"
               "                 [--cache-dir DIR] [--no-cache] "
               "[--corpus-dir DIR] [--queue-limit N] [--dispatchers N]\n"
               "                 [--max-frame-bytes N] [--events=FILE] "
               "[--heartbeat=FILE[:interval_ms]]\n"
               "                 [--access-log[=FILE]] "
               "[--stats-out=FILE[:interval_ms]] [--stats-window S]\n"
               "                 [--prefilter on|off|verify] "
               "[--prefilter-top-k N] [--prefilter-min-total N]\n"
               "  patchecko client --socket PATH | --tcp PORT "
               "[--op submit|status|health|reload|drain|ping|stats|profile]\n"
               "                 [--firmware fw.img] [--cve ID] "
               "[--provenance[=FILE]] [--request-id N]\n"
               "                 [--scale S] [--seed N] [--seconds S] "
               "[--hz N] [--profile-out=FILE]\n"
               "  patchecko top --socket PATH | --tcp PORT [--once] "
               "[--interval MS]\n");
  return 2;
}

int cmd_train(const Args& args) {
  require_known_options(args, {"out", "libraries", "functions", "epochs",
                               "scale", "seed", "metrics"});
  const cli::MetricsSpec metrics = metrics_spec_from(args);
  obs::set_enabled(metrics.enabled);
  const std::string out = args.get("out", "");
  if (out.empty()) return usage();
  TrainerConfig config;
  config.dataset.library_count =
      static_cast<std::size_t>(args.get_count("libraries", 60));
  config.dataset.functions_per_library =
      static_cast<std::size_t>(args.get_count("functions", 24));
  config.epochs = static_cast<std::size_t>(args.get_count("epochs", 12));
  config.verbose = true;
  std::printf("training on %zu libraries x %zu functions, %zu epochs...\n",
              config.dataset.library_count,
              config.dataset.functions_per_library, config.epochs);
  const TrainingRun run = train_similarity_model(config);
  std::printf("test accuracy %.2f%%, AUC %.4f\n", run.test_accuracy * 100.0,
              run.test_auc);
  if (!run.model.save(out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("model written to %s\n", out.c_str());
  return emit_metrics(metrics);
}

EvalConfig eval_config_from(const Args& args) {
  EvalConfig config;
  config.scale = args.get_double("scale", 0.1);
  if (config.scale <= 0.0)
    throw UsageError("--scale must be > 0");
  config.seed = static_cast<std::uint64_t>(
      args.get_long("seed", static_cast<long>(config.seed)));
  return config;
}

// --- corpus lifecycle ------------------------------------------------------

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

Arch parse_arch(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(Arch::arm64); ++i)
    if (name == arch_name(static_cast<Arch>(i)))
      return static_cast<Arch>(i);
  throw UsageError("unknown arch '" + name +
                   "' (expected x86, amd64, arm32, or arm64)");
}

OptLevel parse_opt(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(OptLevel::Ofast); ++i)
    if (name == opt_level_name(static_cast<OptLevel>(i)))
      return static_cast<OptLevel>(i);
  throw UsageError("unknown opt level '" + name +
                   "' (expected O0, O1, O2, O3, Oz, or Ofast)");
}

corpus::PrebuiltStore open_store(const Args& args) {
  const std::string dir = args.get("dir", "");
  if (dir.empty())
    throw UsageError("corpus " + args.command + " requires --dir DIR");
  return corpus::PrebuiltStore(dir);
}

int cmd_corpus_build(const Args& args) {
  require_known_options(
      args, {"dir", "jobs", "scale", "seed", "arch", "opt", "metrics"});
  const cli::MetricsSpec metrics = metrics_spec_from(args);
  obs::set_enabled(metrics.enabled);
  corpus::PrebuiltStore store = open_store(args);
  corpus::BuildMatrix matrix;
  matrix.eval = eval_config_from(args);
  matrix.jobs = static_cast<unsigned>(
      args.get_count("jobs", static_cast<long>(default_worker_threads())));
  if (args.has("arch"))
    for (const std::string& name : split_csv(args.get("arch", "")))
      matrix.arches.push_back(parse_arch(name));
  if (args.has("opt"))
    for (const std::string& name : split_csv(args.get("opt", "")))
      matrix.opts.push_back(parse_opt(name));
  std::printf("populating corpus store %s (scale %.2f, %u jobs)...\n",
              store.root().c_str(), matrix.eval.scale, matrix.jobs);
  const corpus::BuildReport report = corpus::build_store(store, matrix);
  // CI greps "built N, reused M" to assert a warm rebuild recompiles
  // nothing — keep this line format stable.
  std::printf("requested %llu artifacts (%llu libraries, %llu entries): "
              "built %llu, reused %llu in %.2fs\n",
              static_cast<unsigned long long>(report.requested),
              static_cast<unsigned long long>(report.library_artifacts),
              static_cast<unsigned long long>(report.entry_artifacts),
              static_cast<unsigned long long>(report.built),
              static_cast<unsigned long long>(report.reused),
              report.build_seconds);
  return emit_metrics(metrics);
}

int cmd_corpus_verify(const Args& args) {
  require_known_options(args, {"dir"});
  corpus::PrebuiltStore store = open_store(args);
  if (const auto issue = store.verify()) {
    std::fprintf(stderr, "error: corpus store %s: object %s",
                 store.root().c_str(), issue->object.c_str());
    if (!issue->key.empty())
      std::fprintf(stderr, " [%s]", issue->key.c_str());
    std::fprintf(stderr, ": %s\n", issue->detail.c_str());
    return 1;
  }
  const corpus::StoreStats stats = store.stats();
  std::printf("corpus store ok: %llu objects, %llu bytes verified\n",
              static_cast<unsigned long long>(stats.entries),
              static_cast<unsigned long long>(stats.bytes));
  return 0;
}

int cmd_corpus_gc(const Args& args) {
  require_known_options(args, {"dir", "dry-run"});
  corpus::PrebuiltStore store = open_store(args);
  const bool dry_run = args.has("dry-run");
  const corpus::GcResult result = store.gc(dry_run);
  if (!dry_run && !store.flush()) {
    std::fprintf(stderr, "error: cannot write manifest in %s\n",
                 store.root().c_str());
    return 1;
  }
  std::printf("%s %llu objects, %llu bytes%s\n",
              dry_run ? "would remove" : "removed",
              static_cast<unsigned long long>(result.removed_objects),
              static_cast<unsigned long long>(result.reclaimed_bytes),
              dry_run ? " (dry run)" : "");
  return 0;
}

int cmd_corpus_stats(const Args& args) {
  require_known_options(args, {"dir", "json"});
  corpus::PrebuiltStore store = open_store(args);
  if (args.has("json")) {
    std::printf("%s\n", store.stats_json().c_str());
    return 0;
  }
  const corpus::StoreStats stats = store.stats();
  std::printf("corpus store %s\n"
              "  entries     %llu\n"
              "  bytes       %llu\n"
              "  generation  %llu\n",
              store.root().c_str(),
              static_cast<unsigned long long>(stats.entries),
              static_cast<unsigned long long>(stats.bytes),
              static_cast<unsigned long long>(stats.generation));
  return 0;
}

int cmd_build_firmware(const Args& args) {
  require_known_options(args, {"out", "device", "scale", "seed", "metrics"});
  const cli::MetricsSpec metrics = metrics_spec_from(args);
  obs::set_enabled(metrics.enabled);
  const std::string out = args.get("out", "");
  if (out.empty()) return usage();
  const std::string device_name = args.get("device", "things");
  if (device_name != "things" && device_name != "pixel")
    throw UsageError("--device expects 'things' or 'pixel', got '" +
                     device_name + "'");
  const DeviceSpec device =
      device_name == "pixel" ? pixel2xl_device() : android_things_device();
  const EvalConfig config = eval_config_from(args);
  std::printf("building \"%s\" firmware (scale %.2f)...\n",
              device.name.c_str(), config.scale);
  const EvalCorpus corpus(config);
  const FirmwareImage image = corpus.build_firmware(device);
  if (!save_firmware(image, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%zu libraries, %zu functions -> %s\n", image.libraries.size(),
              image.total_functions(), out.c_str());
  return emit_metrics(metrics);
}

int cmd_inspect(const Args& args) {
  require_known_options(args, {"firmware", "metrics"});
  const cli::MetricsSpec metrics = metrics_spec_from(args);
  obs::set_enabled(metrics.enabled);
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }
  std::printf("device : %s\n", image->device.c_str());
  std::printf("%-20s %-8s %-6s %-10s %s\n", "library", "arch", "opt",
               "functions", "stripped");
  for (const LibraryBinary& lib : image->libraries)
    std::printf("%-20s %-8s %-6s %-10zu %s\n", lib.name.c_str(),
                std::string(arch_name(lib.arch)).c_str(),
                std::string(opt_level_name(lib.opt)).c_str(),
                lib.function_count(), lib.stripped ? "yes" : "no");
  std::printf("total: %zu functions\n", image->total_functions());
  return emit_metrics(metrics);
}

int cmd_disasm(const Args& args) {
  require_known_options(args, {"firmware", "library", "function", "metrics"});
  const cli::MetricsSpec metrics = metrics_spec_from(args);
  obs::set_enabled(metrics.enabled);
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }
  const std::string library = args.get("library", "");
  const long index_arg = args.get_long("function", 0);
  if (index_arg < 0)
    throw UsageError("--function must be >= 0");
  const auto index = static_cast<std::size_t>(index_arg);
  for (const LibraryBinary& lib : image->libraries) {
    if (lib.name != library) continue;
    if (index >= lib.function_count()) {
      std::fprintf(stderr, "error: function index out of range (%zu)\n",
                   lib.function_count());
      return 1;
    }
    const FunctionBinary& fn = lib.functions[index];
    std::printf("%s!fn_%zu  (%zu instructions, frame %lld bytes)\n",
                lib.name.c_str(), index, fn.code.size(),
                static_cast<long long>(fn.frame_size));
    for (std::size_t i = 0; i < fn.code.size(); ++i)
      std::printf("%4zu  %s\n", i, to_string(fn.code[i]).c_str());
    return emit_metrics(metrics);
  }
  std::fprintf(stderr, "error: no library named %s\n", library.c_str());
  return 1;
}

int cmd_scan(const Args& args) {
  require_known_options(
      args, {"model", "firmware", "cve", "scale", "seed", "threads",
             "metrics", "events", "trace-out", "profile", "prefilter",
             "prefilter-top-k", "prefilter-min-total"});
  const cli::MetricsSpec metrics = metrics_spec_from(args);
  const cli::OutputSpec events = output_spec_from(args, "events");
  const cli::OutputSpec trace_out =
      output_spec_from(args, "trace-out", /*value_required=*/true);
  const cli::ProfileSpec profile = cli::profile_spec_from(args);
  // The profiler snapshots span stacks, so spans must actually be pushed.
  obs::set_enabled(metrics.enabled || trace_out.enabled || profile.enabled);
  obs::set_events_enabled(events.enabled || trace_out.enabled);
  const bool profiling = start_profile(profile);
  const auto model = SimilarityModel::load(args.get("model", ""));
  if (!model) {
    std::fprintf(stderr, "error: cannot load model (run `patchecko train`)\n");
    return 1;
  }
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }
  const std::string only_cve = args.get("cve", "");

  const EvalConfig config = eval_config_from(args);
  std::printf("building vulnerability database (scale %.2f)...\n",
              config.scale);
  const EvalCorpus corpus(config);
  const CveDatabase database(corpus, DatabaseConfig{});

  PipelineConfig pipeline_config;
  pipeline_config.worker_threads = static_cast<unsigned>(args.get_count(
      "threads", static_cast<long>(default_worker_threads())));
  apply_prefilter_options(args, pipeline_config);
  const Patchecko pipeline(&*model, pipeline_config);

  std::map<std::string, const LibraryBinary*> by_name;
  for (const LibraryBinary& lib : image->libraries) by_name[lib.name] = &lib;

  Stopwatch total;
  int vulnerable = 0, patched = 0, missing = 0;
  ScanReport provenance;  ///< results only; feeds --events rendering
  std::map<std::size_t, AnalyzedLibrary> analyzed_cache;
  for (const CveEntry& entry : database.entries()) {
    if (!only_cve.empty() && entry.spec.cve_id != only_cve) continue;
    CveScanResult result;
    result.cve_id = entry.spec.cve_id;
    result.library = entry.spec.library;
    const auto lib_it = by_name.find(entry.spec.library);
    if (lib_it == by_name.end()) {
      std::printf("%-16s %-18s library not in image\n",
                  entry.spec.cve_id.c_str(), entry.spec.library.c_str());
      ++missing;
      result.library_missing = true;
      provenance.results.push_back(std::move(result));
      continue;
    }
    auto [cached, inserted] = analyzed_cache.try_emplace(entry.library_index);
    if (inserted)
      cached->second = analyze_library(
          *lib_it->second, pipeline_config.worker_threads,
          pipeline_config.prefilter_mode != retrieval::PrefilterMode::off);
    // Both query directions run explicitly (full_report's exact workflow)
    // so the outcomes — and their decision provenance — are in hand.
    result.from_vulnerable =
        pipeline.detect(entry, cached->second, /*query_is_patched=*/false);
    result.from_patched =
        pipeline.detect(entry, cached->second, /*query_is_patched=*/true);
    result.report = pipeline.report_from(entry, cached->second,
                                         result.from_vulnerable,
                                         result.from_patched);
    const PatchReport& report = result.report;
    if (!report.decision) {
      std::printf("%-16s %-18s no match\n", entry.spec.cve_id.c_str(),
                  entry.spec.library.c_str());
      ++missing;
      provenance.results.push_back(std::move(result));
      continue;
    }
    const bool is_patched =
        report.decision->verdict == PatchVerdict::patched;
    std::printf("%-16s %-18s %s (function #%zu)\n",
                entry.spec.cve_id.c_str(), entry.spec.library.c_str(),
                is_patched ? "patched" : "VULNERABLE",
                *report.matched_function);
    for (const std::string& note : report.decision->evidence)
      std::printf("                   evidence: %s\n", note.c_str());
    (is_patched ? patched : vulnerable) += 1;
    provenance.results.push_back(std::move(result));
  }
  std::printf("\nscan finished in %.1fs: %d vulnerable, %d patched, %d "
              "unresolved\n",
              total.elapsed_seconds(), vulnerable, patched, missing);
  int status = emit_metrics(metrics);
  if (const int rc = emit_profile(profile, profiling); rc != 0) status = rc;
  if (const int rc = emit_events(events, provenance); rc != 0) status = rc;
  if (const int rc = emit_trace(trace_out); rc != 0) status = rc;
  return status;
}

int cmd_batch_scan(const Args& args) {
  // Validate every option before the expensive corpus/database build.
  require_known_options(args, {"model", "firmware", "cve", "jobs", "cache-dir",
                               "no-cache", "scale", "seed", "verbose",
                               "metrics", "events", "trace-out", "profile",
                               "heartbeat", "watchdog-soft", "watchdog-hard",
                               "stall-inject", "canonical", "prefilter",
                               "prefilter-top-k", "prefilter-min-total"});
  const cli::MetricsSpec metrics = metrics_spec_from(args);
  const cli::OutputSpec events = output_spec_from(args, "events");
  const cli::OutputSpec canonical = output_spec_from(args, "canonical");
  const cli::OutputSpec trace_out =
      output_spec_from(args, "trace-out", /*value_required=*/true);
  const cli::HeartbeatSpec heartbeat = cli::heartbeat_spec_from(args);
  const cli::ProfileSpec profile = cli::profile_spec_from(args);
  const double watchdog_soft = args.get_double("watchdog-soft", 0.0);
  const double watchdog_hard = args.get_double("watchdog-hard", 0.0);
  if ((args.has("watchdog-soft") && watchdog_soft <= 0.0) ||
      (args.has("watchdog-hard") && watchdog_hard <= 0.0))
    throw UsageError("watchdog deadlines must be > 0 seconds");
  const bool watchdog_on = watchdog_soft > 0.0 || watchdog_hard > 0.0;
  // Heartbeat/watchdog *sample* the registry and event log, so they need
  // the obs flags on even without --metrics/--events.
  obs::set_enabled(metrics.enabled || trace_out.enabled || heartbeat.enabled ||
                   watchdog_on || profile.enabled);
  obs::set_events_enabled(events.enabled || trace_out.enabled || watchdog_on);
  const bool profiling = start_profile(profile);
  EngineConfig engine_config;
  engine_config.jobs = static_cast<unsigned>(
      args.get_count("jobs", static_cast<long>(default_worker_threads())));
  engine_config.cache_dir = args.get("cache-dir", "");
  engine_config.use_cache = !args.has("no-cache");
  if (args.has("no-cache") && args.has("cache-dir"))
    throw UsageError("--no-cache and --cache-dir are mutually exclusive");
  engine_config.watchdog.soft_deadline_seconds = watchdog_soft;
  engine_config.watchdog.hard_deadline_seconds = watchdog_hard;
  apply_prefilter_options(args, engine_config.pipeline);
  if (args.has("stall-inject")) {
    // LABEL:SECONDS — the test hook that makes a detect job oversleep.
    const std::string value = args.get("stall-inject", "");
    const auto colon = value.rfind(':');
    if (colon == std::string::npos || colon == 0)
      throw UsageError("--stall-inject expects LABEL:SECONDS");
    engine_config.stall_inject_label = value.substr(0, colon);
    try {
      engine_config.stall_inject_seconds = std::stod(value.substr(colon + 1));
    } catch (const std::exception&) {
      throw UsageError("--stall-inject expects LABEL:SECONDS");
    }
    if (engine_config.stall_inject_seconds <= 0.0)
      throw UsageError("--stall-inject seconds must be > 0");
  }
  // Ctrl-C / kill stop launching queued jobs, cancel in-flight work at the
  // next cooperative check, and still flush every telemetry artifact.
  service::install_signal_handlers(/*with_sighup=*/false);
  engine_config.interrupt = &service::interrupt_flag();
  std::optional<obs::Heartbeat> heartbeat_publisher;
  if (heartbeat.enabled) {
    obs::HeartbeatConfig heartbeat_config;
    heartbeat_config.file = heartbeat.file;
    heartbeat_config.interval_seconds = heartbeat.interval_seconds;
    heartbeat_publisher.emplace(std::move(heartbeat_config));
    engine_config.heartbeat = &*heartbeat_publisher;
  }

  const auto model = SimilarityModel::load(args.get("model", ""));
  if (!model) {
    std::fprintf(stderr, "error: cannot load model (run `patchecko train`)\n");
    return 1;
  }
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }

  const EvalConfig config = eval_config_from(args);
  // Bare --canonical reserves stdout for the report bytes, so the progress
  // note joins the other diagnostics on stderr.
  std::fprintf(args.has("canonical") && args.get("canonical", "").empty()
                   ? stderr
                   : stdout,
               "building vulnerability database (scale %.2f)...\n",
               config.scale);
  const EvalCorpus corpus(config);
  const CveDatabase database(corpus, DatabaseConfig{});

  ScanEngine engine(engine_config);

  ScanRequest request;
  request.model = &*model;
  request.firmware = &*image;
  request.database = &database;
  if (args.has("cve")) request.cve_ids.push_back(args.get("cve", ""));

  const bool verbose = args.has("verbose");
  const ProgressFn progress = [verbose](const JobEvent& event) {
    if (!verbose) return;
    std::fprintf(stderr, "[%zu/%zu] %-7s %-20s %7.3fs%s\n",
                 event.sequence + 1, event.total_jobs,
                 std::string(job_kind_name(event.kind)).c_str(),
                 event.label.c_str(), event.seconds,
                 event.cache_hit ? "  (cache)" : "");
  };

  const ScanReport report = engine.run(request, progress);
  // Bare --canonical reserves stdout for the canonical report bytes (the
  // artifact CI byte-compares against the service); the human listing and
  // summary move aside.
  const bool canonical_stdout = canonical.enabled && canonical.file.empty();
  if (canonical_stdout) {
    std::fputs(report.canonical_text().c_str(), stdout);
  } else {
    for (const CveScanResult& result : report.results) {
      if (result.library_missing) {
        std::printf("%-16s %-18s library not in image\n",
                    result.cve_id.c_str(), result.library.c_str());
        continue;
      }
      if (!result.report.decision) {
        std::printf("%-16s %-18s no match\n", result.cve_id.c_str(),
                    result.library.c_str());
        continue;
      }
      const bool is_patched =
          result.report.decision->verdict == PatchVerdict::patched;
      std::printf("%-16s %-18s %s (function #%zu)\n", result.cve_id.c_str(),
                  result.library.c_str(),
                  is_patched ? "patched" : "VULNERABLE",
                  *result.report.matched_function);
      for (const std::string& note : result.report.decision->evidence)
        std::printf("                   evidence: %s\n", note.c_str());
    }
    std::printf("\n%s", report.summary_text().c_str());
  }
  int status = emit_metrics(metrics);
  if (const int rc = emit_profile(profile, profiling); rc != 0) status = rc;
  if (canonical.enabled && !canonical.file.empty()) {
    if (const int rc = write_text_file(canonical.file, report.canonical_text(),
                                       "canonical report");
        rc != 0)
      status = rc;
  }
  if (const int rc = emit_events(events, report); rc != 0) status = rc;
  if (const int rc = emit_trace(trace_out); rc != 0) status = rc;
  if (report.interrupted && service::interrupt_signal() != 0) {
    std::fprintf(stderr,
                 "scan interrupted by signal %d: %zu queued jobs cancelled; "
                 "partial report emitted\n",
                 service::interrupt_signal(), report.jobs_cancelled);
    return 128 + service::interrupt_signal();
  }
  return status;
}

int cmd_explain(const Args& args) {
  require_known_options(args, {"provenance", "cve", "function"});
  const std::string path = args.get("provenance", "");
  if (path.empty()) return usage();
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read provenance file %s\n",
                 path.c_str());
    return 1;
  }
  const std::string only_cve = args.get("cve", "");
  const bool by_function = args.has("function");
  const long function_arg = args.get_long("function", 0);
  if (by_function && function_arg < 0)
    throw UsageError("--function must be >= 0");
  const auto wanted_function = static_cast<std::uint64_t>(function_arg);

  std::size_t shown = 0;
  std::vector<std::string> available;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto record = obs::parse_decision_line(line);
    if (!record) continue;  // meta or event line
    available.push_back(record->cve_id);
    if (!only_cve.empty() && record->cve_id != only_cve) continue;
    if (by_function &&
        !(record->matched_function == wanted_function))
      continue;
    if (shown != 0) std::printf("\n");
    std::printf("%s", obs::explain_text(*record).c_str());
    ++shown;
  }
  if (shown != 0) return 0;
  std::fprintf(stderr, "no matching decision record in %s\n", path.c_str());
  if (!available.empty()) {
    std::fprintf(stderr, "recorded CVEs:");
    for (const std::string& cve : available)
      std::fprintf(stderr, " %s", cve.c_str());
    std::fprintf(stderr, "\n");
  }
  return 1;
}

int cmd_serve(const Args& args) {
  require_known_options(
      args, {"model", "socket", "tcp", "scale", "seed", "jobs", "cache-dir",
             "no-cache", "corpus-dir", "queue-limit", "dispatchers",
             "max-frame-bytes", "events", "heartbeat", "access-log",
             "stats-out", "stats-window", "scan-delay", "prefilter",
             "prefilter-top-k", "prefilter-min-total"});
  service::ServiceConfig config;
  config.socket_path = args.get("socket", "");
  if (config.socket_path.empty() && !args.has("tcp"))
    throw UsageError("serve needs --socket PATH and/or --tcp PORT");
  if (args.has("tcp")) {
    const long port = args.get_long("tcp", 0);
    if (port < 0 || port > 65535)
      throw UsageError("--tcp expects a port in [0, 65535]");
    config.tcp_port = static_cast<int>(port);
  }
  config.eval = eval_config_from(args);
  config.engine.jobs = static_cast<unsigned>(
      args.get_count("jobs", static_cast<long>(default_worker_threads())));
  config.engine.cache_dir = args.get("cache-dir", "");
  config.engine.use_cache = !args.has("no-cache");
  if (args.has("no-cache") && args.has("cache-dir"))
    throw UsageError("--no-cache and --cache-dir are mutually exclusive");
  config.engine.interrupt = &service::interrupt_flag();
  apply_prefilter_options(args, config.engine.pipeline);
  config.queue_limit =
      static_cast<std::size_t>(args.get_count("queue-limit", 64));
  config.dispatchers = static_cast<unsigned>(args.get_count("dispatchers", 2));
  config.max_frame_bytes = static_cast<std::size_t>(args.get_count(
      "max-frame-bytes",
      static_cast<long>(service::kDefaultMaxFrameBytes)));
  config.events = output_spec_from(args, "events", /*value_required=*/true);
  config.heartbeat = cli::heartbeat_spec_from(args);
  if (config.heartbeat.enabled && config.heartbeat.file.empty())
    throw UsageError(
        "serve --heartbeat requires a file path (per-request files are "
        "derived from it)");
  // Bare --access-log goes to stderr (one line per request is tolerable
  // operator output); --stats-out must name a file — a periodic full stats
  // document would drown the daemon's stderr.
  config.access_log = output_spec_from(args, "access-log");
  config.stats_out = cli::heartbeat_spec_from(args, "stats-out");
  if (config.stats_out.enabled && config.stats_out.file.empty())
    throw UsageError("serve --stats-out requires a file path");
  config.stats_window_seconds = args.get_double("stats-window", 60.0);
  if (config.stats_window_seconds <= 0.0)
    throw UsageError("--stats-window must be > 0 seconds");
  // Test hook: artificial per-scan dispatch delay, for deterministic
  // backpressure exercises against a fast corpus.
  config.scan_delay_seconds = args.get_double("scan-delay", 0.0);
  if (config.scan_delay_seconds < 0.0)
    throw UsageError("--scan-delay must be >= 0");
  // Store-backed corpus: startup and SIGHUP reloads assemble snapshots from
  // the prebuilt store (self-healing on misses) instead of recompiling, and
  // health/stats grow a corpus_store block.
  std::shared_ptr<corpus::PrebuiltStore> prebuilt;
  if (args.has("corpus-dir")) {
    const std::string dir = args.get("corpus-dir", "");
    if (dir.empty()) throw UsageError("--corpus-dir requires a directory");
    prebuilt = std::make_shared<corpus::PrebuiltStore>(dir);
    config.snapshot_builder = corpus::store_backed_builder(prebuilt);
    config.corpus_store_stats_json = [prebuilt] {
      return prebuilt->stats_json();
    };
  }

  // The daemon always runs with obs on: the health endpoint samples the
  // registry and per-request provenance needs the event machinery.
  obs::set_enabled(true);
  obs::set_events_enabled(true);

  const auto model = SimilarityModel::load(args.get("model", ""));
  if (!model) {
    std::fprintf(stderr, "error: cannot load model (run `patchecko train`)\n");
    return 1;
  }
  config.model = &*model;
  if (prebuilt != nullptr)
    std::printf("loading vulnerability database from corpus store %s "
                "(scale %.2f)...\n",
                prebuilt->root().c_str(), config.eval.scale);
  else
    std::printf("building vulnerability database (scale %.2f)...\n",
                config.eval.scale);
  service::ScanService svc(config);
  service::install_signal_handlers(/*with_sighup=*/true);
  svc.start();
  if (!config.socket_path.empty())
    std::printf("listening on unix:%s\n", config.socket_path.c_str());
  if (svc.tcp_port() >= 0)
    std::printf("listening on tcp:127.0.0.1:%d\n", svc.tcp_port());
  // CI and scripts tail this output to learn the daemon is ready (and which
  // ephemeral port it got), so it must not sit in a stdio buffer.
  std::fflush(stdout);

  while (!service::interrupt_flag().load(std::memory_order_acquire) &&
         !svc.drained()) {
    if (service::consume_reload_request()) {
      const auto snapshot = svc.reload(std::nullopt, std::nullopt);
      std::printf("corpus reloaded: version %llu (%zu CVEs)\n",
                  static_cast<unsigned long long>(snapshot->version),
                  snapshot->database.entries().size());
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const bool interrupted =
      service::interrupt_flag().load(std::memory_order_acquire);
  svc.stop();
  if (interrupted) {
    std::fprintf(stderr, "interrupted by signal %d; shut down cleanly\n",
                 service::interrupt_signal());
    return 128 + service::interrupt_signal();
  }
  std::printf("drained; shutting down\n");
  return 0;
}

service::ServiceClient client_connect(const Args& args) {
  if (args.has("socket"))
    return service::ServiceClient::connect_unix(args.get("socket", ""));
  if (args.has("tcp")) {
    const long port = args.get_long("tcp", 0);
    if (port < 1 || port > 65535)
      throw UsageError("--tcp expects a port in [1, 65535]");
    return service::ServiceClient::connect_tcp(static_cast<int>(port));
  }
  throw UsageError("client needs --socket PATH or --tcp PORT");
}

int cmd_client(const Args& args) {
  require_known_options(args, {"socket", "tcp", "op", "firmware", "cve",
                               "provenance", "request-id", "scale", "seed",
                               "seconds", "hz", "profile-out"});
  const std::string op = args.get("op", "submit");
  if (op != "submit" && op != "status" && op != "health" && op != "reload" &&
      op != "drain" && op != "ping" && op != "stats" && op != "profile")
    throw UsageError(
        "--op expects submit|status|health|reload|drain|ping|stats|profile, "
        "got '" + op + "'");
  const cli::OutputSpec provenance = output_spec_from(args, "provenance");
  service::ServiceClient client = client_connect(args);
  if (!client.connected()) {
    std::fprintf(stderr, "error: cannot connect to the scan service\n");
    return 1;
  }

  if (op != "submit") {
    std::string payload;
    if (op == "status") {
      if (!args.has("request-id"))
        throw UsageError("--op status needs --request-id N");
      const long id = args.get_long("request-id", 0);
      if (id < 0) throw UsageError("--request-id must be >= 0");
      payload =
          service::status_request_json(static_cast<std::uint64_t>(id));
    } else if (op == "health") {
      payload = service::health_request_json();
    } else if (op == "reload") {
      std::optional<double> scale;
      std::optional<std::uint64_t> seed;
      if (args.has("scale")) {
        scale = args.get_double("scale", 0.0);
        if (*scale <= 0.0) throw UsageError("--scale must be > 0");
      }
      if (args.has("seed")) {
        const long value = args.get_long("seed", 0);
        if (value < 0) throw UsageError("--seed must be >= 0");
        seed = static_cast<std::uint64_t>(value);
      }
      payload = service::reload_request_json(scale, seed);
    } else if (op == "drain") {
      payload = service::drain_request_json();
    } else if (op == "stats") {
      payload = service::stats_request_json();
    } else if (op == "profile") {
      const double seconds = args.get_double("seconds", 1.0);
      if (seconds <= 0.0 || seconds > 300.0)
        throw UsageError("--seconds must be in (0, 300]");
      const long hz = args.has("hz") ? cli::checked_hz("--hz",
                                                       args.get("hz", ""))
                                     : 97;
      payload = service::profile_request_json(seconds, hz);
    } else {
      payload = service::ping_request_json();
    }
    // Profile captures can legitimately take minutes; validate the output
    // spec before blocking the daemon for the capture window.
    const cli::OutputSpec profile_out =
        output_spec_from(args, "profile-out");
    const auto response = client.call(payload);
    if (!response) {
      std::fprintf(stderr, "error: connection closed without a response\n");
      return 1;
    }
    const auto doc = obs::json::parse(*response);
    if (op == "profile" && doc &&
        doc->get("type").as_string() == "profile") {
      // Folded stacks on stdout (or --profile-out=FILE) so the capture
      // pipes straight into flamegraph.pl; the top table joins the other
      // diagnostics on stderr.
      const std::string folded = doc->get("folded").as_string();
      std::fprintf(stderr, "%s", doc->get("top").as_string().c_str());
      if (profile_out.enabled && !profile_out.file.empty())
        return write_text_file(profile_out.file, folded, "folded profile");
      std::fwrite(folded.data(), 1, folded.size(), stdout);
      return 0;
    }
    std::printf("%s\n", response->c_str());
    return doc && doc->get("type").as_string() == "error" ? 1 : 0;
  }

  // submit: stream the scan through, reserving stdout for the canonical
  // report bytes so `cmp` against a one-shot --canonical run is meaningful.
  const std::string firmware = args.get("firmware", "");
  if (firmware.empty()) throw UsageError("--op submit needs --firmware PATH");
  std::vector<std::string> cve_ids;
  if (args.has("cve")) cve_ids.push_back(args.get("cve", ""));
  // Optional client-named request: the daemon honors the id (rejecting
  // duplicates), so scripted storms can pre-assign ids they later grep for
  // in the access log / event files.
  std::uint64_t request_id = 0;
  if (args.has("request-id")) {
    const long id = args.get_long("request-id", 0);
    if (id < 1) throw UsageError("submit --request-id must be >= 1");
    request_id = static_cast<std::uint64_t>(id);
  }
  if (!client.send(service::scan_request_json(firmware, cve_ids,
                                              provenance.enabled,
                                              request_id))) {
    std::fprintf(stderr, "error: cannot submit scan request\n");
    return 1;
  }
  const auto first = client.receive();
  if (!first) {
    std::fprintf(stderr, "error: connection closed without a response\n");
    return 1;
  }
  const auto first_doc = obs::json::parse(*first);
  if (!first_doc) {
    std::fprintf(stderr, "error: malformed response payload\n");
    return 1;
  }
  if (first_doc->get("type").as_string() == "error") {
    const int code = static_cast<int>(first_doc->get("code").as_number());
    std::fprintf(stderr, "error %d: %s\n", code,
                 first_doc->get("message").as_string().c_str());
    // Backpressure rejects get their own exit code so load drivers can
    // distinguish "shed" from "broken".
    return code == 429 ? 3 : 1;
  }
  std::fprintf(stderr, "accepted: request %llu\n",
               static_cast<unsigned long long>(
                   first_doc->get("request_id").as_number()));
  const auto second = client.receive();
  if (!second) {
    std::fprintf(stderr, "error: connection closed before the result\n");
    return 1;
  }
  const auto doc = obs::json::parse(*second);
  if (!doc) {
    std::fprintf(stderr, "error: malformed response payload\n");
    return 1;
  }
  if (doc->get("type").as_string() == "error") {
    std::fprintf(stderr, "error %d: %s\n",
                 static_cast<int>(doc->get("code").as_number()),
                 doc->get("message").as_string().c_str());
    return 1;
  }
  const std::string report = doc->get("report").as_string();
  std::fwrite(report.data(), 1, report.size(), stdout);
  std::fflush(stdout);
  std::fprintf(stderr, "%s", doc->get("summary").as_string().c_str());
  if (provenance.enabled) {
    const std::string decisions = doc->get("provenance").as_string();
    if (provenance.file.empty())
      std::fprintf(stderr, "%s", decisions.c_str());
    else if (const int rc =
                 write_text_file(provenance.file, decisions, "provenance");
             rc != 0)
      return rc;
  }
  if (doc->get("interrupted").as_bool(false)) {
    std::fprintf(stderr, "warning: scan interrupted; report is partial\n");
    return 1;
  }
  return 0;
}

int cmd_top(const Args& args) {
  require_known_options(args, {"socket", "tcp", "once", "interval"});
  const bool once = args.has("once");
  // Same bounds discipline as the HeartbeatSpec interval suffix: strictly
  // positive, and capped so a fat-fingered value (ms vs s confusion) can't
  // freeze the dashboard for hours.
  const long interval_ms = args.get_count("interval", 1000);
  if (interval_ms > 3600000)
    throw UsageError("--interval must be <= 3600000 ms (1 hour), got " +
                     std::to_string(interval_ms));
  service::ServiceClient client = client_connect(args);
  if (!client.connected()) {
    std::fprintf(stderr, "error: cannot connect to the scan service\n");
    return 1;
  }
  // Ctrl-C out of the refresh loop is a normal way to leave a dashboard,
  // not a failure — exit 0, unlike the 128+signal convention of the
  // long-running scan commands.
  service::install_signal_handlers(/*with_sighup=*/false);
  for (;;) {
    const auto response = client.call(service::stats_request_json());
    if (!response) {
      std::fprintf(stderr, "error: connection closed without a response\n");
      return 1;
    }
    const auto doc = obs::json::parse(*response);
    if (!doc) {
      std::fprintf(stderr, "error: malformed stats response (%zu bytes)\n",
                   response->size());
      return 1;
    }
    if (doc->get("type").as_string() == "error") {
      std::fprintf(stderr, "error %d: %s\n",
                   static_cast<int>(doc->get("code").as_number()),
                   doc->get("message").as_string().c_str());
      return 1;
    }
    std::string invalid;
    if (!service::validate_stats(*doc, &invalid)) {
      // A short or mis-shapen document must not paint a dashboard of
      // zeros — name the first missing piece and bail.
      std::fprintf(stderr, "error: invalid stats response: %s\n",
                   invalid.c_str());
      return 1;
    }
    const std::string frame = service::render_top(*doc);
    if (once) {
      std::fputs(frame.c_str(), stdout);
      return 0;
    }
    // Repaint in place: cursor home + clear-to-end, then the fresh frame.
    std::printf("\033[H\033[J%s", frame.c_str());
    std::fflush(stdout);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(interval_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (service::interrupt_flag().load(std::memory_order_acquire)) {
        std::printf("\n");
        return 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

/// `patchecko corpus <verb> ...` — the verb parses as the command once the
/// `corpus` token is shifted off.
int cmd_corpus(int argc, char** argv) {
  const Args args = parse_args(argc - 1, argv + 1);
  if (args.command == "build") return cmd_corpus_build(args);
  if (args.command == "verify") return cmd_corpus_verify(args);
  if (args.command == "gc") return cmd_corpus_gc(args);
  if (args.command == "stats") return cmd_corpus_stats(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "corpus")
      return cmd_corpus(argc, argv);
    const Args args = parse_args(argc, argv);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "build-firmware") return cmd_build_firmware(args);
    if (args.command == "inspect") return cmd_inspect(args);
    if (args.command == "disasm") return cmd_disasm(args);
    if (args.command == "scan") return cmd_scan(args);
    if (args.command == "batch-scan") return cmd_batch_scan(args);
    if (args.command == "explain") return cmd_explain(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "client") return cmd_client(args);
    if (args.command == "top") return cmd_top(args);
    if (args.command == "bench-diff") return patchecko::run_bench_diff(args);
    return usage();
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
