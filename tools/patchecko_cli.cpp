// patchecko — command-line front end for the full workflow.
//
//   patchecko train  --out model.bin [--libraries N] [--functions N]
//                    [--epochs N]
//   patchecko build-firmware --device things|pixel --out fw.img
//                    [--scale S] [--seed N]
//   patchecko inspect --firmware fw.img
//   patchecko disasm  --firmware fw.img --library NAME --function INDEX
//   patchecko scan   --model model.bin --firmware fw.img [--cve ID]
//                    [--scale S] [--seed N] [--threads N] [--metrics[=FILE]]
//   patchecko batch-scan --model model.bin --firmware fw.img [--cve ID]
//                    [--jobs N] [--cache-dir DIR] [--no-cache]
//                    [--scale S] [--seed N] [--verbose] [--metrics[=FILE]]
//
// `scan` rebuilds the vulnerability database deterministically from the
// corpus seed, loads the stripped firmware image from disk, and runs the
// two-stage pipeline plus the differential engine for each CVE, exactly as
// the paper's evaluation does. `batch-scan` runs the same workload through
// the batch engine: a dependency-aware job graph on the shared thread pool,
// with analyze/detect results served from a content-addressed cache.
// `--metrics` turns on the observability layer (src/obs): a one-line stage/
// cache/pruning summary plus the full JSON metrics document on stdout (or
// written to FILE).
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

#include "core/pipeline.h"
#include "dl/trainer.h"
#include "engine/engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cli_args.h"
#include "util/parallel.h"
#include "util/timer.h"

using namespace patchecko;
using cli::Args;
using cli::UsageError;
using cli::metrics_spec_from;
using cli::parse_args;
using cli::require_known_options;

namespace {

/// Emits the end-of-run metrics artifacts: summary line on stdout, JSON on
/// stdout or to the requested file. No-op when --metrics was not given.
int emit_metrics(const cli::MetricsSpec& spec) {
  if (!spec.enabled) return 0;
  std::printf("%s\n", obs::summary_line(obs::Registry::global()).c_str());
  const std::string json =
      obs::export_json(obs::Registry::global(), obs::Tracer::global());
  if (spec.file.empty()) {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::ofstream out(spec.file, std::ios::trunc);
  out << json << '\n';
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write metrics to %s\n",
                 spec.file.c_str());
    return 1;
  }
  std::printf("metrics written to %s\n", spec.file.c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  patchecko train --out model.bin [--libraries N] "
               "[--functions N] [--epochs N]\n"
               "  patchecko build-firmware --device things|pixel --out "
               "fw.img [--scale S] [--seed N]\n"
               "  patchecko inspect --firmware fw.img\n"
               "  patchecko disasm --firmware fw.img --library NAME "
               "--function INDEX\n"
               "  patchecko scan --model model.bin --firmware fw.img "
               "[--cve ID] [--scale S] [--seed N] [--threads N]\n"
               "                 [--metrics[=FILE]]\n"
               "  patchecko batch-scan --model model.bin --firmware fw.img "
               "[--cve ID] [--jobs N] [--cache-dir DIR] [--no-cache]\n"
               "                 [--scale S] [--seed N] [--verbose] "
               "[--metrics[=FILE]]\n");
  return 2;
}

int cmd_train(const Args& args) {
  require_known_options(
      args, {"out", "libraries", "functions", "epochs", "scale", "seed"});
  const std::string out = args.get("out", "");
  if (out.empty()) return usage();
  TrainerConfig config;
  config.dataset.library_count =
      static_cast<std::size_t>(args.get_count("libraries", 60));
  config.dataset.functions_per_library =
      static_cast<std::size_t>(args.get_count("functions", 24));
  config.epochs = static_cast<std::size_t>(args.get_count("epochs", 12));
  config.verbose = true;
  std::printf("training on %zu libraries x %zu functions, %zu epochs...\n",
              config.dataset.library_count,
              config.dataset.functions_per_library, config.epochs);
  const TrainingRun run = train_similarity_model(config);
  std::printf("test accuracy %.2f%%, AUC %.4f\n", run.test_accuracy * 100.0,
              run.test_auc);
  if (!run.model.save(out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("model written to %s\n", out.c_str());
  return 0;
}

EvalConfig eval_config_from(const Args& args) {
  EvalConfig config;
  config.scale = args.get_double("scale", 0.1);
  if (config.scale <= 0.0)
    throw UsageError("--scale must be > 0");
  config.seed = static_cast<std::uint64_t>(
      args.get_long("seed", static_cast<long>(config.seed)));
  return config;
}

int cmd_build_firmware(const Args& args) {
  require_known_options(args, {"out", "device", "scale", "seed"});
  const std::string out = args.get("out", "");
  if (out.empty()) return usage();
  const std::string device_name = args.get("device", "things");
  if (device_name != "things" && device_name != "pixel")
    throw UsageError("--device expects 'things' or 'pixel', got '" +
                     device_name + "'");
  const DeviceSpec device =
      device_name == "pixel" ? pixel2xl_device() : android_things_device();
  const EvalConfig config = eval_config_from(args);
  std::printf("building \"%s\" firmware (scale %.2f)...\n",
              device.name.c_str(), config.scale);
  const EvalCorpus corpus(config);
  const FirmwareImage image = corpus.build_firmware(device);
  if (!save_firmware(image, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%zu libraries, %zu functions -> %s\n", image.libraries.size(),
              image.total_functions(), out.c_str());
  return 0;
}

int cmd_inspect(const Args& args) {
  require_known_options(args, {"firmware"});
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }
  std::printf("device : %s\n", image->device.c_str());
  std::printf("%-20s %-8s %-6s %-10s %s\n", "library", "arch", "opt",
               "functions", "stripped");
  for (const LibraryBinary& lib : image->libraries)
    std::printf("%-20s %-8s %-6s %-10zu %s\n", lib.name.c_str(),
                std::string(arch_name(lib.arch)).c_str(),
                std::string(opt_level_name(lib.opt)).c_str(),
                lib.function_count(), lib.stripped ? "yes" : "no");
  std::printf("total: %zu functions\n", image->total_functions());
  return 0;
}

int cmd_disasm(const Args& args) {
  require_known_options(args, {"firmware", "library", "function"});
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }
  const std::string library = args.get("library", "");
  const long index_arg = args.get_long("function", 0);
  if (index_arg < 0)
    throw UsageError("--function must be >= 0");
  const auto index = static_cast<std::size_t>(index_arg);
  for (const LibraryBinary& lib : image->libraries) {
    if (lib.name != library) continue;
    if (index >= lib.function_count()) {
      std::fprintf(stderr, "error: function index out of range (%zu)\n",
                   lib.function_count());
      return 1;
    }
    const FunctionBinary& fn = lib.functions[index];
    std::printf("%s!fn_%zu  (%zu instructions, frame %lld bytes)\n",
                lib.name.c_str(), index, fn.code.size(),
                static_cast<long long>(fn.frame_size));
    for (std::size_t i = 0; i < fn.code.size(); ++i)
      std::printf("%4zu  %s\n", i, to_string(fn.code[i]).c_str());
    return 0;
  }
  std::fprintf(stderr, "error: no library named %s\n", library.c_str());
  return 1;
}

int cmd_scan(const Args& args) {
  require_known_options(
      args, {"model", "firmware", "cve", "scale", "seed", "threads",
             "metrics"});
  const cli::MetricsSpec metrics = metrics_spec_from(args);
  obs::set_enabled(metrics.enabled);
  const auto model = SimilarityModel::load(args.get("model", ""));
  if (!model) {
    std::fprintf(stderr, "error: cannot load model (run `patchecko train`)\n");
    return 1;
  }
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }
  const std::string only_cve = args.get("cve", "");

  const EvalConfig config = eval_config_from(args);
  std::printf("building vulnerability database (scale %.2f)...\n",
              config.scale);
  const EvalCorpus corpus(config);
  const CveDatabase database(corpus, DatabaseConfig{});

  PipelineConfig pipeline_config;
  pipeline_config.worker_threads = static_cast<unsigned>(args.get_count(
      "threads", static_cast<long>(default_worker_threads())));
  const Patchecko pipeline(&*model, pipeline_config);

  std::map<std::string, const LibraryBinary*> by_name;
  for (const LibraryBinary& lib : image->libraries) by_name[lib.name] = &lib;

  Stopwatch total;
  int vulnerable = 0, patched = 0, missing = 0;
  std::map<std::size_t, AnalyzedLibrary> analyzed_cache;
  for (const CveEntry& entry : database.entries()) {
    if (!only_cve.empty() && entry.spec.cve_id != only_cve) continue;
    const auto lib_it = by_name.find(entry.spec.library);
    if (lib_it == by_name.end()) {
      std::printf("%-16s %-18s library not in image\n",
                  entry.spec.cve_id.c_str(), entry.spec.library.c_str());
      ++missing;
      continue;
    }
    auto [cached, inserted] = analyzed_cache.try_emplace(entry.library_index);
    if (inserted)
      cached->second = analyze_library(*lib_it->second,
                                       pipeline_config.worker_threads);
    const PatchReport report = pipeline.full_report(entry, cached->second);
    if (!report.decision) {
      std::printf("%-16s %-18s no match\n", entry.spec.cve_id.c_str(),
                  entry.spec.library.c_str());
      ++missing;
      continue;
    }
    const bool is_patched =
        report.decision->verdict == PatchVerdict::patched;
    std::printf("%-16s %-18s %s (function #%zu)\n",
                entry.spec.cve_id.c_str(), entry.spec.library.c_str(),
                is_patched ? "patched" : "VULNERABLE",
                *report.matched_function);
    for (const std::string& note : report.decision->evidence)
      std::printf("                   evidence: %s\n", note.c_str());
    (is_patched ? patched : vulnerable) += 1;
  }
  std::printf("\nscan finished in %.1fs: %d vulnerable, %d patched, %d "
              "unresolved\n",
              total.elapsed_seconds(), vulnerable, patched, missing);
  return emit_metrics(metrics);
}

int cmd_batch_scan(const Args& args) {
  // Validate every option before the expensive corpus/database build.
  require_known_options(args, {"model", "firmware", "cve", "jobs", "cache-dir",
                               "no-cache", "scale", "seed", "verbose",
                               "metrics"});
  const cli::MetricsSpec metrics = metrics_spec_from(args);
  obs::set_enabled(metrics.enabled);
  EngineConfig engine_config;
  engine_config.jobs = static_cast<unsigned>(
      args.get_count("jobs", static_cast<long>(default_worker_threads())));
  engine_config.cache_dir = args.get("cache-dir", "");
  engine_config.use_cache = !args.has("no-cache");
  if (args.has("no-cache") && args.has("cache-dir"))
    throw UsageError("--no-cache and --cache-dir are mutually exclusive");

  const auto model = SimilarityModel::load(args.get("model", ""));
  if (!model) {
    std::fprintf(stderr, "error: cannot load model (run `patchecko train`)\n");
    return 1;
  }
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }

  const EvalConfig config = eval_config_from(args);
  std::printf("building vulnerability database (scale %.2f)...\n",
              config.scale);
  const EvalCorpus corpus(config);
  const CveDatabase database(corpus, DatabaseConfig{});

  ScanEngine engine(engine_config);

  ScanRequest request;
  request.model = &*model;
  request.firmware = &*image;
  request.database = &database;
  if (args.has("cve")) request.cve_ids.push_back(args.get("cve", ""));

  const bool verbose = args.has("verbose");
  const ProgressFn progress = [verbose](const JobEvent& event) {
    if (!verbose) return;
    std::fprintf(stderr, "[%zu/%zu] %-7s %-20s %7.3fs%s\n",
                 event.sequence + 1, event.total_jobs,
                 std::string(job_kind_name(event.kind)).c_str(),
                 event.label.c_str(), event.seconds,
                 event.cache_hit ? "  (cache)" : "");
  };

  const ScanReport report = engine.run(request, progress);
  for (const CveScanResult& result : report.results) {
    if (result.library_missing) {
      std::printf("%-16s %-18s library not in image\n", result.cve_id.c_str(),
                  result.library.c_str());
      continue;
    }
    if (!result.report.decision) {
      std::printf("%-16s %-18s no match\n", result.cve_id.c_str(),
                  result.library.c_str());
      continue;
    }
    const bool is_patched =
        result.report.decision->verdict == PatchVerdict::patched;
    std::printf("%-16s %-18s %s (function #%zu)\n", result.cve_id.c_str(),
                result.library.c_str(), is_patched ? "patched" : "VULNERABLE",
                *result.report.matched_function);
    for (const std::string& note : result.report.decision->evidence)
      std::printf("                   evidence: %s\n", note.c_str());
  }
  std::printf("\n%s", report.summary_text().c_str());
  return emit_metrics(metrics);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "build-firmware") return cmd_build_firmware(args);
    if (args.command == "inspect") return cmd_inspect(args);
    if (args.command == "disasm") return cmd_disasm(args);
    if (args.command == "scan") return cmd_scan(args);
    if (args.command == "batch-scan") return cmd_batch_scan(args);
    return usage();
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
