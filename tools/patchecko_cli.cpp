// patchecko — command-line front end for the full workflow.
//
//   patchecko train  --out model.bin [--libraries N] [--functions N]
//                    [--epochs N]
//   patchecko build-firmware --device things|pixel --out fw.img
//                    [--scale S] [--seed N]
//   patchecko inspect --firmware fw.img
//   patchecko disasm  --firmware fw.img --library NAME --function INDEX
//   patchecko scan   --model model.bin --firmware fw.img [--cve ID]
//                    [--scale S] [--seed N] [--threads N]
//
// `scan` rebuilds the vulnerability database deterministically from the
// corpus seed, loads the stripped firmware image from disk, and runs the
// two-stage pipeline plus the differential engine for each CVE, exactly as
// the paper's evaluation does.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/pipeline.h"
#include "dl/trainer.h"
#include "util/parallel.h"
#include "util/timer.h"

using namespace patchecko;

namespace {

struct Args {
  std::map<std::string, std::string> options;
  std::string command;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  long get_long(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atol(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args.options[key] = argv[i + 1];
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  patchecko train --out model.bin [--libraries N] "
               "[--functions N] [--epochs N]\n"
               "  patchecko build-firmware --device things|pixel --out "
               "fw.img [--scale S] [--seed N]\n"
               "  patchecko inspect --firmware fw.img\n"
               "  patchecko disasm --firmware fw.img --library NAME "
               "--function INDEX\n"
               "  patchecko scan --model model.bin --firmware fw.img "
               "[--cve ID] [--scale S] [--seed N] [--threads N]\n");
  return 2;
}

int cmd_train(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) return usage();
  TrainerConfig config;
  config.dataset.library_count =
      static_cast<std::size_t>(args.get_long("libraries", 60));
  config.dataset.functions_per_library =
      static_cast<std::size_t>(args.get_long("functions", 24));
  config.epochs = static_cast<std::size_t>(args.get_long("epochs", 12));
  config.verbose = true;
  std::printf("training on %zu libraries x %zu functions, %zu epochs...\n",
              config.dataset.library_count,
              config.dataset.functions_per_library, config.epochs);
  const TrainingRun run = train_similarity_model(config);
  std::printf("test accuracy %.2f%%, AUC %.4f\n", run.test_accuracy * 100.0,
              run.test_auc);
  if (!run.model.save(out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("model written to %s\n", out.c_str());
  return 0;
}

EvalConfig eval_config_from(const Args& args) {
  EvalConfig config;
  config.scale = args.get_double("scale", 0.1);
  config.seed = static_cast<std::uint64_t>(
      args.get_long("seed", static_cast<long>(config.seed)));
  return config;
}

int cmd_build_firmware(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) return usage();
  const std::string device_name = args.get("device", "things");
  const DeviceSpec device =
      device_name == "pixel" ? pixel2xl_device() : android_things_device();
  const EvalConfig config = eval_config_from(args);
  std::printf("building \"%s\" firmware (scale %.2f)...\n",
              device.name.c_str(), config.scale);
  const EvalCorpus corpus(config);
  const FirmwareImage image = corpus.build_firmware(device);
  if (!save_firmware(image, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%zu libraries, %zu functions -> %s\n", image.libraries.size(),
              image.total_functions(), out.c_str());
  return 0;
}

int cmd_inspect(const Args& args) {
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }
  std::printf("device : %s\n", image->device.c_str());
  std::printf("%-20s %-8s %-6s %-10s %s\n", "library", "arch", "opt",
              "functions", "stripped");
  for (const LibraryBinary& lib : image->libraries)
    std::printf("%-20s %-8s %-6s %-10zu %s\n", lib.name.c_str(),
                std::string(arch_name(lib.arch)).c_str(),
                std::string(opt_level_name(lib.opt)).c_str(),
                lib.function_count(), lib.stripped ? "yes" : "no");
  std::printf("total: %zu functions\n", image->total_functions());
  return 0;
}

int cmd_disasm(const Args& args) {
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }
  const std::string library = args.get("library", "");
  const auto index = static_cast<std::size_t>(args.get_long("function", 0));
  for (const LibraryBinary& lib : image->libraries) {
    if (lib.name != library) continue;
    if (index >= lib.function_count()) {
      std::fprintf(stderr, "error: function index out of range (%zu)\n",
                   lib.function_count());
      return 1;
    }
    const FunctionBinary& fn = lib.functions[index];
    std::printf("%s!fn_%zu  (%zu instructions, frame %lld bytes)\n",
                lib.name.c_str(), index, fn.code.size(),
                static_cast<long long>(fn.frame_size));
    for (std::size_t i = 0; i < fn.code.size(); ++i)
      std::printf("%4zu  %s\n", i, to_string(fn.code[i]).c_str());
    return 0;
  }
  std::fprintf(stderr, "error: no library named %s\n", library.c_str());
  return 1;
}

int cmd_scan(const Args& args) {
  const auto model = SimilarityModel::load(args.get("model", ""));
  if (!model) {
    std::fprintf(stderr, "error: cannot load model (run `patchecko train`)\n");
    return 1;
  }
  const auto image = load_firmware(args.get("firmware", ""));
  if (!image) {
    std::fprintf(stderr, "error: cannot load firmware image\n");
    return 1;
  }
  const std::string only_cve = args.get("cve", "");

  const EvalConfig config = eval_config_from(args);
  std::printf("building vulnerability database (scale %.2f)...\n",
              config.scale);
  const EvalCorpus corpus(config);
  const CveDatabase database(corpus, DatabaseConfig{});

  PipelineConfig pipeline_config;
  pipeline_config.worker_threads = static_cast<unsigned>(
      args.get_long("threads",
                    static_cast<long>(default_worker_threads())));
  const Patchecko pipeline(&*model, pipeline_config);

  std::map<std::string, const LibraryBinary*> by_name;
  for (const LibraryBinary& lib : image->libraries) by_name[lib.name] = &lib;

  Stopwatch total;
  int vulnerable = 0, patched = 0, missing = 0;
  std::map<std::size_t, AnalyzedLibrary> analyzed_cache;
  for (const CveEntry& entry : database.entries()) {
    if (!only_cve.empty() && entry.spec.cve_id != only_cve) continue;
    const auto lib_it = by_name.find(entry.spec.library);
    if (lib_it == by_name.end()) {
      std::printf("%-16s %-18s library not in image\n",
                  entry.spec.cve_id.c_str(), entry.spec.library.c_str());
      ++missing;
      continue;
    }
    auto [cached, inserted] = analyzed_cache.try_emplace(entry.library_index);
    if (inserted)
      cached->second = analyze_library(*lib_it->second,
                                       pipeline_config.worker_threads);
    const PatchReport report = pipeline.full_report(entry, cached->second);
    if (!report.decision) {
      std::printf("%-16s %-18s no match\n", entry.spec.cve_id.c_str(),
                  entry.spec.library.c_str());
      ++missing;
      continue;
    }
    const bool is_patched =
        report.decision->verdict == PatchVerdict::patched;
    std::printf("%-16s %-18s %s (function #%zu)\n",
                entry.spec.cve_id.c_str(), entry.spec.library.c_str(),
                is_patched ? "patched" : "VULNERABLE",
                *report.matched_function);
    for (const std::string& note : report.decision->evidence)
      std::printf("                   evidence: %s\n", note.c_str());
    (is_patched ? patched : vulnerable) += 1;
  }
  std::printf("\nscan finished in %.1fs: %d vulnerable, %d patched, %d "
              "unresolved\n",
              total.elapsed_seconds(), vulnerable, patched, missing);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command == "train") return cmd_train(args);
  if (args.command == "build-firmware") return cmd_build_firmware(args);
  if (args.command == "inspect") return cmd_inspect(args);
  if (args.command == "disasm") return cmd_disasm(args);
  if (args.command == "scan") return cmd_scan(args);
  return usage();
}
