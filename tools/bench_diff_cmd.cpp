#include "tools/bench_diff_cmd.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "obs/benchdiff.h"

namespace patchecko {

namespace {

namespace fs = std::filesystem;

struct DiffPair {
  std::string label;  ///< file name shown in errors / table headers
  std::string old_path;
  std::string new_path;
};

}  // namespace

int run_bench_diff(const cli::Args& args,
                   const std::vector<std::string>& positional) {
  cli::require_known_options(args, {"old", "new", "rel-tol", "abs-tol"});
  if (positional.size() > 2)
    throw cli::UsageError("bench-diff takes at most two paths (old, new)");
  std::string old_path = args.get("old", "");
  std::string new_path = args.get("new", "");
  if (old_path.empty() && !positional.empty()) old_path = positional[0];
  if (new_path.empty() && positional.size() > 1) new_path = positional[1];
  if (old_path.empty() || new_path.empty())
    throw cli::UsageError(
        "bench-diff needs an old and a new BENCH_*.json file (or two "
        "baseline directories): bench-diff OLD NEW or --old OLD --new NEW");

  obs::Tolerance tolerance;
  tolerance.rel = args.get_double("rel-tol", 0.25);
  tolerance.abs = args.get_double("abs-tol", 0.0);
  if (tolerance.rel < 0.0 || tolerance.abs < 0.0)
    throw cli::UsageError("tolerances must be >= 0");

  std::vector<DiffPair> pairs;
  if (fs::is_directory(old_path)) {
    if (!fs::is_directory(new_path))
      throw cli::UsageError("--old is a directory, so --new must be one too");
    for (const fs::directory_entry& entry : fs::directory_iterator(old_path)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) != 0 ||
          entry.path().extension() != ".json")
        continue;
      pairs.push_back({name, entry.path().string(),
                       (fs::path(new_path) / name).string()});
    }
    // directory_iterator order is unspecified; sort for stable output.
    std::sort(pairs.begin(), pairs.end(),
              [](const DiffPair& a, const DiffPair& b) {
                return a.label < b.label;
              });
    if (pairs.empty()) {
      std::fprintf(stderr, "error: no BENCH_*.json files in %s\n",
                   old_path.c_str());
      return 2;
    }
  } else {
    pairs.push_back({fs::path(old_path).filename().string(), old_path,
                     new_path});
  }

  bool io_error = false;
  std::size_t regressions = 0;
  for (const DiffPair& pair : pairs) {
    std::string error;
    const auto old_file = obs::load_bench_file(pair.old_path, &error);
    if (!old_file) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      io_error = true;
      continue;
    }
    const auto new_file = obs::load_bench_file(pair.new_path, &error);
    if (!new_file) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      io_error = true;
      continue;
    }
    const obs::BenchDiff diff = diff_bench(*old_file, *new_file, tolerance);
    std::fputs(render_diff_table(diff).c_str(), stdout);
    regressions += diff.regressions;
  }
  if (io_error) return 2;
  return regressions == 0 ? 0 : 1;
}

}  // namespace patchecko
