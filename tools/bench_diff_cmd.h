// Shared driver behind `patchecko bench-diff` and the standalone
// `bench_diff` tool: option handling, single-file vs baseline-directory
// dispatch, table rendering, and the exit-status contract
//
//   0 — every metric within tolerance
//   1 — at least one metric regressed
//   2 — usage or IO error (missing/unparseable input)
//
// CI runs it as a soft gate: the rendered tables are archived as an
// artifact and a nonzero status marks the regression without blocking.
#pragma once

#include <string>
#include <vector>

#include "util/cli_args.h"

namespace patchecko {

/// Options: --old PATH --new PATH [--rel-tol F] [--abs-tol F]. PATH pairs
/// may also arrive positionally (old first) via `positional` — the
/// standalone tool accepts `bench_diff OLD.json NEW.json`. When --old is a
/// directory, --new must be one too and every BENCH_*.json in the old
/// directory is compared against its same-named counterpart.
int run_bench_diff(const cli::Args& args,
                   const std::vector<std::string>& positional = {});

}  // namespace patchecko
