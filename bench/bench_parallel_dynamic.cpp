// Section V-E extension: the paper parallelizes environment execution and
// names per-candidate parallelism as future work ("Future works will focus
// on parallelizing the candidate function execution"). This bench implements
// and measures it: dynamic-analysis wall time for the largest evaluation
// library as a function of worker threads.
#include <cstdio>

#include "harness.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace patchecko;

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  // CVE-2018-9498 lives in the 13,729-function libwebview analog: the
  // heaviest dynamic stage of the whole evaluation.
  const CveEntry& entry = ctx.database->by_id("CVE-2018-9498");
  const AnalyzedLibrary& target = ctx.analyzed_for(entry, false);

  std::printf(
      "=== Future-work extension: parallel candidate execution "
      "(CVE-2018-9498, %zu functions) ===\n",
      target.features.size());
  TextTable table({"threads", "DA seconds", "speedup", "executed",
                   "rank"});

  double baseline = 0.0;
  const unsigned hw = default_worker_threads();
  std::vector<bench::BenchRow> json_rows;
  for (unsigned threads : {1u, 2u, 4u, hw}) {
    PipelineConfig config;
    config.worker_threads = threads;
    const Patchecko pipeline(&ctx.model, config);
    const DetectionOutcome outcome =
        pipeline.detect(entry, target, /*query_is_patched=*/false);
    if (threads == 1) baseline = outcome.da_seconds;
    table.add_row({std::to_string(threads),
                   fmt_double(outcome.da_seconds, 3),
                   fmt_double(baseline / outcome.da_seconds, 2) + "x",
                   std::to_string(outcome.executed),
                   std::to_string(outcome.rank_of_target)});
    json_rows.emplace_back("threads_" + std::to_string(threads),
                           std::vector<std::pair<std::string, double>>{
                               {"da_seconds", outcome.da_seconds}});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The ranking is identical at every thread count (the stage is "
      "deterministic and order-independent); only wall time changes.\n");
  if (hw <= 1)
    std::printf(
        "NOTE: this host exposes a single hardware thread, so no speedup is "
        "observable here; on a multi-core analysis server the stage scales "
        "with the candidate count.\n");
  return bench::write_bench_json("parallel_dynamic", json_rows) ? 0 : 1;
}
