// Table II companion + microbenchmarks: instrumented execution cost of the
// dynamic-analysis engine (the GDB/gdbserver tracing analog): raw VM
// throughput, feature-collection overhead, and end-to-end candidate
// profiling.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "compiler/compiler.h"
#include "fuzz/fuzzer.h"
#include "harness.h"
#include "similarity/similarity.h"
#include "source/generator.h"
#include "util/table.h"
#include "vm/machine.h"

using namespace patchecko;

namespace {

struct Fixture {
  LibraryBinary library;
  std::vector<CallEnv> environments;
};

const Fixture& fixture() {
  static const Fixture fx = [] {
    Fixture out;
    const SourceLibrary source = generate_library("dynlib", 0xD1A, 64);
    out.library = compile_library(source, Arch::arm32, OptLevel::O2, 1);
    Rng rng(0xF077);
    FuzzConfig config;
    out.environments =
        generate_environments(out.library, 3, rng, config);
    return out;
  }();
  return fx;
}

void BM_ExecuteInstrumented(benchmark::State& state) {
  const Fixture& fx = fixture();
  const Machine machine(fx.library);
  std::size_t f = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.run(f, fx.environments.front()));
    f = (f + 1) % fx.library.functions.size();
  }
}
BENCHMARK(BM_ExecuteInstrumented);

void BM_ExecuteUninstrumented(benchmark::State& state) {
  const Fixture& fx = fixture();
  MachineConfig config;
  config.collect_features = false;
  const Machine machine(fx.library, config);
  std::size_t f = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.run(f, fx.environments.front()));
    f = (f + 1) % fx.library.functions.size();
  }
}
BENCHMARK(BM_ExecuteUninstrumented);

void BM_ProfileFunction(benchmark::State& state) {
  const Fixture& fx = fixture();
  const Machine machine(fx.library);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        profile_function(machine, 3, fx.environments));
}
BENCHMARK(BM_ProfileFunction);

void BM_ProfileDistance(benchmark::State& state) {
  const Fixture& fx = fixture();
  const Machine machine(fx.library);
  const DynamicProfile a = profile_function(machine, 3, fx.environments);
  const DynamicProfile b = profile_function(machine, 5, fx.environments);
  for (auto _ : state)
    benchmark::DoNotOptimize(profile_distance(a, b, 3.0));
}
BENCHMARK(BM_ProfileDistance);

}  // namespace

int main(int argc, char** argv) {
  const Fixture& fx = fixture();
  const Machine machine(fx.library);
  const RunResult result = machine.run(3, fx.environments.front());

  std::printf("=== Table II: the 21 dynamic features ===\n");
  TextTable table({"#", "Feature", "Example value (fn_3, env_0)"});
  const auto values = result.features.to_array();
  for (std::size_t i = 0; i < DynamicFeatures::count; ++i)
    table.add_row({std::to_string(i + 1),
                   std::string(DynamicFeatures::name(i)),
                   fmt_double(values[i], 2)});
  std::printf("%s\n", table.render().c_str());

  return bench::run_gbench_to_json("dynamic_features", &argc, argv);
}
