// Tables IV and V reproduction: top-10 candidate ranking by dynamic
// similarity for CVE-2018-9412 on Android Things, queried with the
// vulnerable reference (Table IV) and the patched reference (Table V),
// with ground-truth symbol names shown for verification.
#include <cstdio>

#include "harness.h"
#include "util/table.h"

using namespace patchecko;

namespace {

int run_ranking(const bench::EvalContext& ctx, const CveEntry& entry,
                bool query_is_patched) {
  const Patchecko pipeline(&ctx.model);
  const AnalyzedLibrary& target = ctx.analyzed_for(entry, false);
  const DetectionOutcome outcome =
      pipeline.detect(entry, target, query_is_patched);

  TextTable table({"Candidate", "Sim", "Ground truth"});
  std::size_t shown = 0;
  for (const RankedCandidate& ranked : outcome.ranking) {
    if (shown++ >= 10) break;
    const bool is_target =
        target.binary->functions[ranked.function_index].source_uid ==
        entry.target_uid;
    std::string name = ctx.corpus->function_name(entry.library_index,
                                                 ranked.function_index);
    if (is_target) name += "   <-- target";
    table.add_row({"candidate_" + std::to_string(ranked.function_index),
                   fmt_double(ranked.distance, 1), name});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(target rank: %d; %zu candidates executed)\n\n",
              outcome.rank_of_target, outcome.executed);
  return outcome.rank_of_target;
}

}  // namespace

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const CveEntry& entry = ctx.database->by_id("CVE-2018-9412");

  std::printf(
      "=== Table IV: function similarity for CVE-2018-9412, vulnerable "
      "query (top 10) ===\n");
  const int vulnerable_rank = run_ranking(ctx, entry,
                                          /*query_is_patched=*/false);

  std::printf(
      "=== Table V: function similarity for CVE-2018-9412, patched query "
      "(top 10) ===\n");
  const int patched_rank = run_ranking(ctx, entry, /*query_is_patched=*/true);

  std::printf(
      "Shape check (paper): with the vulnerable query the target tops the "
      "list with a clear gap to rank 2; with the patched query it lands in "
      "the top 2 but without a decisive margin — the unpatched target is "
      "*near* the patched reference but not identical.\n");
  const bool wrote = bench::write_bench_json(
      "table4_5_ranking",
      {bench::BenchRow("cve_2018_9412",
                       {{"vulnerable_query_rank",
                         static_cast<double>(vulnerable_rank)},
                        {"patched_query_rank",
                         static_cast<double>(patched_rank)}})});
  return wrote ? 0 : 1;
}
