// Tables VI and VII reproduction: per-CVE deep-learning classification
// (TP/TN/FP/FN, FP rate), dynamic-analysis execution counts and final rank,
// and per-stage processing time — on Android Things, queried first with the
// vulnerable reference (Table VI) then with the patched reference
// (Table VII).
#include <cstdio>

#include "harness.h"
#include "util/table.h"

using namespace patchecko;

namespace {

struct TableSummary {
  double mean_fp_rate = 0.0;
  double mean_dl_seconds = 0.0;
  double mean_da_seconds = 0.0;
};

TableSummary run_table(const bench::EvalContext& ctx, bool query_is_patched) {
  const Patchecko pipeline(&ctx.model);
  TextTable table({"CVE", "TP", "TN", "FP", "FN", "Total", "FP(%)",
                   "Execution", "Ranking", "DP(s)", "DA(s)"});

  double fp_rate_sum = 0.0, dp_sum = 0.0, da_sum = 0.0;
  std::size_t rows = 0;
  int found_in_top3 = 0, found = 0;

  for (const CveEntry& entry : ctx.database->entries()) {
    const AnalyzedLibrary& target = ctx.analyzed_for(entry, false);
    const DetectionOutcome outcome =
        pipeline.detect(entry, target, query_is_patched);
    table.add_row({
        entry.spec.cve_id,
        std::to_string(outcome.true_positives),
        std::to_string(outcome.true_negatives),
        std::to_string(outcome.false_positives),
        std::to_string(outcome.false_negatives),
        std::to_string(outcome.total),
        fmt_percent(outcome.false_positive_rate()),
        std::to_string(outcome.executed),
        outcome.rank_of_target > 0 ? std::to_string(outcome.rank_of_target)
                                   : std::string("N/A"),
        fmt_double(outcome.dl_seconds, 3),
        fmt_double(outcome.da_seconds, 3),
    });
    fp_rate_sum += outcome.false_positive_rate();
    dp_sum += outcome.dl_seconds;
    da_sum += outcome.da_seconds;
    ++rows;
    if (outcome.rank_of_target > 0) {
      ++found;
      if (outcome.rank_of_target <= 3) ++found_in_top3;
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "Average FP rate %s   (paper: %.2f%%)   mean DP %ss, mean DA %ss\n",
      fmt_percent(fp_rate_sum / static_cast<double>(rows)).c_str(),
      query_is_patched ? 5.67 : 6.16,
      fmt_double(dp_sum / static_cast<double>(rows), 3).c_str(),
      fmt_double(da_sum / static_cast<double>(rows), 3).c_str());
  std::printf(
      "Target ranked in top 3 for %d of %d detected CVEs (paper: 100%% of "
      "detected; one N/A where the DL stage misses a patched target)\n\n",
      found_in_top3, found);
  const double n = static_cast<double>(rows);
  return TableSummary{fp_rate_sum / n, dp_sum / n, da_sum / n};
}

}  // namespace

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();

  std::printf(
      "=== Table VI: detection on Android Things, vulnerable-function query "
      "===\n");
  const TableSummary vulnerable = run_table(ctx, /*query_is_patched=*/false);

  std::printf(
      "=== Table VII: detection on Android Things, patched-function query "
      "===\n");
  const TableSummary patched = run_table(ctx, /*query_is_patched=*/true);

  const auto json_row = [](const char* name, const TableSummary& summary) {
    return bench::BenchRow(name, {{"mean_fp_rate", summary.mean_fp_rate},
                                  {"mean_dl_seconds", summary.mean_dl_seconds},
                                  {"mean_da_seconds", summary.mean_da_seconds}});
  };
  const bool wrote = bench::write_bench_json(
      "table6_7_accuracy", {json_row("vulnerable_query", vulnerable),
                            json_row("patched_query", patched)});
  return wrote ? 0 : 1;
}
