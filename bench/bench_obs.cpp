// Observability overhead micro-bench: per-operation cost of the metric
// primitives with metrics enabled vs the no-op (disabled) mode. The
// acceptance bar for the instrumentation is that disabled-mode cost is a
// single relaxed atomic load per call site — close to free next to the
// nanosecond-scale work the hot paths do per event — so bench_engine_cache
// stays within noise with metrics off.
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

using namespace patchecko;

namespace {

volatile std::uint64_t g_sink = 0;

template <typename Fn>
double ns_per_op(std::size_t iterations, const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) fn(i);
  const std::chrono::duration<double, std::nano> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / static_cast<double>(iterations);
}

void row(const char* name, double on_ns, double off_ns) {
  std::printf("%-24s %10.2f %10.2f\n", name, on_ns, off_ns);
}

}  // namespace

int main() {
  constexpr std::size_t iters = 4'000'000;
  constexpr std::size_t span_iters = 200'000;  // bounded by Tracer::max_spans

  obs::Registry registry;
  obs::Counter& counter = registry.counter("bench.counter");
  obs::Gauge& gauge = registry.gauge("bench.gauge");
  obs::Histogram& histogram = registry.histogram("bench.histogram");
  obs::Tracer tracer;

  std::printf("=== Observability primitives: ns/op ===\n");
  std::printf("%-24s %10s %10s\n", "operation", "enabled", "disabled");

  double on = 0, off = 0;
  {
    obs::EnabledScope scope(true);
    on = ns_per_op(iters, [&](std::size_t) { counter.add(); });
  }
  {
    obs::EnabledScope scope(false);
    off = ns_per_op(iters, [&](std::size_t) { counter.add(); });
  }
  row("counter.add", on, off);

  {
    obs::EnabledScope scope(true);
    on = ns_per_op(iters, [&](std::size_t i) {
      gauge.add(i % 2 == 0 ? 1 : -1);
    });
  }
  {
    obs::EnabledScope scope(false);
    off = ns_per_op(iters, [&](std::size_t i) {
      gauge.add(i % 2 == 0 ? 1 : -1);
    });
  }
  row("gauge.add", on, off);

  {
    obs::EnabledScope scope(true);
    on = ns_per_op(iters, [&](std::size_t i) {
      histogram.record(1e-6 * static_cast<double>(i % 1024));
    });
  }
  {
    obs::EnabledScope scope(false);
    off = ns_per_op(iters, [&](std::size_t i) {
      histogram.record(1e-6 * static_cast<double>(i % 1024));
    });
  }
  row("histogram.record", on, off);

  {
    obs::EnabledScope scope(true);
    on = ns_per_op(span_iters, [&](std::size_t) {
      const obs::ScopedSpan span("bench.span", tracer);
    });
  }
  {
    obs::EnabledScope scope(false);
    off = ns_per_op(span_iters, [&](std::size_t) {
      const obs::ScopedSpan span("bench.span", tracer);
    });
  }
  row("scoped_span", on, off);

  g_sink = counter.value() + static_cast<std::uint64_t>(gauge.max()) +
           histogram.count() + tracer.spans().size();
  std::printf("(spans recorded: %zu, dropped: %llu)\n", tracer.spans().size(),
              static_cast<unsigned long long>(tracer.dropped()));
  return 0;
}
