// Observability overhead micro-bench: per-operation cost of the metric,
// span, and event primitives with instrumentation enabled vs the no-op
// (disabled) mode. The acceptance bar for the instrumentation is that
// disabled-mode cost is a single relaxed atomic load per call site — close
// to free next to the nanosecond-scale work the hot paths do per event — so
// bench_engine_cache stays within noise with everything off. Rows are also
// written to BENCH_obs.json (write_bench_json) so the perf trajectory is
// tracked across PRs.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "harness.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/rollup.h"
#include "obs/trace.h"

using namespace patchecko;

namespace {

volatile std::uint64_t g_sink = 0;

template <typename Fn>
double ns_per_op(std::size_t iterations, const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) fn(i);
  const std::chrono::duration<double, std::nano> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / static_cast<double>(iterations);
}

void row(std::vector<bench::BenchRow>& rows, const char* name, double on_ns,
         double off_ns) {
  std::printf("%-24s %10.2f %10.2f\n", name, on_ns, off_ns);
  rows.push_back(bench::BenchRow{name, on_ns, off_ns});
}

}  // namespace

int main() {
  constexpr std::size_t iters = 4'000'000;
  constexpr std::size_t span_iters = 200'000;  // bounded by Tracer::max_spans
  constexpr std::size_t event_iters = 1'000'000;

  obs::Registry registry;
  obs::Counter& counter = registry.counter("bench.counter");
  obs::Gauge& gauge = registry.gauge("bench.gauge");
  obs::Histogram& histogram = registry.histogram("bench.histogram");
  obs::Tracer tracer;
  obs::EventLog events;

  std::printf("=== Observability primitives: ns/op ===\n");
  std::printf("%-24s %10s %10s\n", "operation", "enabled", "disabled");
  std::vector<bench::BenchRow> rows;

  double on = 0, off = 0;
  {
    obs::EnabledScope scope(true);
    on = ns_per_op(iters, [&](std::size_t) { counter.add(); });
  }
  {
    obs::EnabledScope scope(false);
    off = ns_per_op(iters, [&](std::size_t) { counter.add(); });
  }
  row(rows, "counter.add", on, off);

  {
    obs::EnabledScope scope(true);
    on = ns_per_op(iters, [&](std::size_t i) {
      gauge.add(i % 2 == 0 ? 1 : -1);
    });
  }
  {
    obs::EnabledScope scope(false);
    off = ns_per_op(iters, [&](std::size_t i) {
      gauge.add(i % 2 == 0 ? 1 : -1);
    });
  }
  row(rows, "gauge.add", on, off);

  {
    obs::EnabledScope scope(true);
    on = ns_per_op(iters, [&](std::size_t i) {
      histogram.record(1e-6 * static_cast<double>(i % 1024));
    });
  }
  {
    obs::EnabledScope scope(false);
    off = ns_per_op(iters, [&](std::size_t i) {
      histogram.record(1e-6 * static_cast<double>(i % 1024));
    });
  }
  row(rows, "histogram.record", on, off);

  {
    obs::EnabledScope scope(true);
    on = ns_per_op(span_iters, [&](std::size_t) {
      const obs::ScopedSpan span("bench.span", tracer);
    });
  }
  {
    obs::EnabledScope scope(false);
    off = ns_per_op(span_iters, [&](std::size_t) {
      const obs::ScopedSpan span("bench.span", tracer);
    });
  }
  row(rows, "scoped_span", on, off);

  // Bare emit: event flag checked inside emit(), no payload construction.
  {
    obs::EventsEnabledScope scope(true);
    on = ns_per_op(event_iters,
                   [&](std::size_t) {
                     events.emit(obs::Severity::info, "bench.event");
                   });
  }
  {
    obs::EventsEnabledScope scope(false);
    off = ns_per_op(event_iters,
                    [&](std::size_t) {
                      events.emit(obs::Severity::info, "bench.event");
                    });
  }
  row(rows, "event.emit", on, off);

  // Gated call site with a field payload: the production pattern — the
  // field vector must never be constructed in no-op mode, so disabled-mode
  // cost has to hold the same sub-ns bar as the metric primitives.
  {
    obs::EventsEnabledScope scope(true);
    on = ns_per_op(event_iters, [&](std::size_t i) {
      if (obs::events_enabled())
        events.emit(obs::Severity::info, "bench.event",
                    {obs::Field::u64("i", i),
                     obs::Field::f64("value", 0.5 * static_cast<double>(i))});
    });
  }
  {
    obs::EventsEnabledScope scope(false);
    off = ns_per_op(event_iters, [&](std::size_t i) {
      if (obs::events_enabled())
        events.emit(obs::Severity::info, "bench.event",
                    {obs::Field::u64("i", i),
                     obs::Field::f64("value", 0.5 * static_cast<double>(i))});
    });
  }
  row(rows, "event.emit_fields", on, off);

  // Service rollup: record() is on every daemon request path, so its
  // disabled mode must hold the same single-relaxed-load bar; snapshot()
  // runs once per `stats` request and merely needs to stay cheap.
  obs::Rollup rollup;
  constexpr std::size_t snapshot_iters = 50'000;
  {
    rollup.set_enabled(true);
    on = ns_per_op(iters, [&](std::size_t i) {
      rollup.record(static_cast<obs::Endpoint>(i % obs::kEndpointCount),
                    1e-6 * static_cast<double>(i % 1024), 0.0, false);
    });
  }
  {
    rollup.set_enabled(false);
    off = ns_per_op(iters, [&](std::size_t i) {
      rollup.record(static_cast<obs::Endpoint>(i % obs::kEndpointCount),
                    1e-6 * static_cast<double>(i % 1024), 0.0, false);
    });
  }
  row(rows, "rollup.record", on, off);

  {
    rollup.set_enabled(true);
    on = ns_per_op(snapshot_iters, [&](std::size_t) {
      g_sink = g_sink + rollup.snapshot().totals.size();
    });
  }
  {
    rollup.set_enabled(false);
    off = ns_per_op(snapshot_iters, [&](std::size_t) {
      g_sink = g_sink + rollup.snapshot().totals.size();
    });
  }
  row(rows, "rollup.snapshot", on, off);

  // Profiler scope boundary, exactly as ScopedSpan's ctor/dtor run it: the
  // disabled column is the production no-op path (one relaxed load) and
  // must hold the same sub-ns bar as the other primitives; the enabled
  // column is the trie push/pop plus the allocation-delta flush. hz = 0
  // keeps the sampler thread out of the measurement (its cadence cost is
  // the sample_once row).
  obs::Profiler& profiler = obs::Profiler::global();
  obs::Profiler::Config profiler_config;
  profiler_config.hz = 0.0;
  {
    profiler.start(profiler_config);
    on = ns_per_op(iters, [&](std::size_t) {
      if (obs::profiling_enabled()) {
        obs::detail::profile_scope_push("bench.pscope");
        obs::detail::profile_scope_pop();
      }
    });
    profiler.stop();
  }
  off = ns_per_op(iters, [&](std::size_t) {
    if (obs::profiling_enabled()) {
      obs::detail::profile_scope_push("bench.pscope");
      obs::detail::profile_scope_pop();
    }
  });
  row(rows, "profiler.scope", on, off);

  // One sampler sweep over the registry with a live two-deep stack; the
  // disabled column is a sweep attempt with no capture running (sampler
  // fully off — the overhead a daemon pays between captures).
  constexpr std::size_t sweep_iters = 200'000;
  {
    profiler.start(profiler_config);
    obs::detail::profile_scope_push("bench.sweep");
    obs::detail::profile_scope_push("bench.sweep.leaf");
    on = ns_per_op(sweep_iters, [&](std::size_t) { profiler.sample_once(); });
    obs::detail::profile_scope_pop();
    obs::detail::profile_scope_pop();
    profiler.stop();
  }
  off = ns_per_op(sweep_iters, [&](std::size_t) { profiler.sample_once(); });
  row(rows, "profiler.sample_once", on, off);

  g_sink = counter.value() + static_cast<std::uint64_t>(gauge.max()) +
           histogram.count() + tracer.spans().size() + events.emitted();
  std::printf("(spans recorded: %zu, dropped: %llu; events emitted: %llu, "
              "overwritten: %llu)\n",
              tracer.spans().size(),
              static_cast<unsigned long long>(tracer.dropped()),
              static_cast<unsigned long long>(events.emitted()),
              static_cast<unsigned long long>(events.overflowed()));
  return bench::write_bench_json("obs", rows) ? 0 : 1;
}
