// Stage-1 retrieval acceptance bench: exact all-pairs NN scoring vs the
// quantized shortlist prefilter, at corpus scales spanning 100x.
//
// For each scale N the bench builds a clustered synthetic feature corpus
// (heavy-tailed counts around library-family prototypes — the shape real
// Table-I features take), indexes it, and measures per query:
//
//   exact:      score(query, f) with the trained similarity network for all
//               N functions — what detect() does with the prefilter off;
//   prefilter:  index.top_k(query, K) probe + K network scores — what
//               detect() does with the prefilter on.
//
// Recall is the fraction of the exact quantized top-K found in the
// shortlist (the index's contract; the engine's verify mode measures the
// same thing in production scans). The bench FAILS (nonzero exit) unless
// the largest scale shows >= 10x stage-1 speedup and every scale holds
// >= 99% recall. Scales shrink under PATCHECKO_SCALE < 1 for fast CI runs.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "harness.h"
#include "retrieval/index.h"
#include "retrieval/quantizer.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using namespace patchecko;

namespace {

constexpr std::size_t kTopK = 32;
constexpr int kQueries = 8;

StaticFeatureVector random_feature_vector(Rng& rng) {
  StaticFeatureVector out{};
  for (double& value : out)
    value = std::floor(std::exp(rng.uniform_real(0.0, 9.0)));
  return out;
}

std::vector<StaticFeatureVector> clustered_corpus(std::size_t n,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t prototypes = std::max<std::size_t>(n / 40, 4);
  std::vector<StaticFeatureVector> centers;
  for (std::size_t c = 0; c < prototypes; ++c)
    centers.push_back(random_feature_vector(rng));
  std::vector<StaticFeatureVector> corpus;
  corpus.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StaticFeatureVector vec = rng.pick(centers);
    for (double& value : vec)
      value = std::floor(value * rng.uniform_real(0.7, 1.4));
    corpus.push_back(vec);
  }
  return corpus;
}

/// Exact top-K under the index metric: ground truth for recall.
std::vector<std::uint32_t> exact_top_k(
    const std::vector<retrieval::QuantizedVector>& codes,
    const retrieval::QuantizedVector& query, std::size_t k) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scored;
  scored.reserve(codes.size());
  for (std::uint32_t i = 0; i < codes.size(); ++i)
    scored.emplace_back(retrieval::quantized_distance_sq(query, codes[i]), i);
  const std::size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  std::sort(out.begin(), out.end());
  return out;
}

struct ScaleResult {
  std::size_t n = 0;
  double exact_ms_per_query = 0.0;
  double prefilter_ms_per_query = 0.0;
  double speedup = 0.0;
  double recall = 0.0;
  double index_build_ms = 0.0;
  double index_mb = 0.0;
};

ScaleResult run_scale(const SimilarityModel& model, std::size_t n,
                      std::uint64_t seed) {
  ScaleResult result;
  result.n = n;
  const std::vector<StaticFeatureVector> corpus = clustered_corpus(n, seed);
  const retrieval::FunctionIndex index = retrieval::FunctionIndex::build(corpus);
  result.index_build_ms = index.stats().build_seconds * 1e3;
  result.index_mb =
      static_cast<double>(index.stats().memory_bytes) / (1024.0 * 1024.0);

  std::vector<retrieval::QuantizedVector> codes;
  codes.reserve(n);
  for (const StaticFeatureVector& vec : corpus)
    codes.push_back(retrieval::quantize(vec));

  Rng rng(seed * 31 + 5);
  std::vector<StaticFeatureVector> queries;
  for (int q = 0; q < kQueries; ++q) {
    StaticFeatureVector query =
        corpus[static_cast<std::size_t>(rng.uniform(0, n - 1))];
    for (double& value : query)
      value = std::floor(value * rng.uniform_real(0.85, 1.2));
    queries.push_back(query);
  }

  // `sink` defeats dead-code elimination of the score loops.
  volatile float sink = 0.0f;

  Stopwatch timer;
  for (const StaticFeatureVector& query : queries)
    for (std::size_t i = 0; i < corpus.size(); ++i)
      sink = sink + model.score(query, corpus[i]);
  result.exact_ms_per_query = timer.elapsed_seconds() * 1e3 / kQueries;

  std::size_t recalled = 0, expected = 0;
  timer.restart();
  for (const StaticFeatureVector& query : queries) {
    const std::vector<std::uint32_t> shortlist = index.top_k(query, kTopK);
    for (const std::uint32_t i : shortlist)
      sink = sink + model.score(query, corpus[i]);
  }
  result.prefilter_ms_per_query = timer.elapsed_seconds() * 1e3 / kQueries;
  result.speedup = result.exact_ms_per_query / result.prefilter_ms_per_query;

  // Recall measured outside the timers: the shortlist must contain the
  // exact quantized top-K.
  for (const StaticFeatureVector& query : queries) {
    const retrieval::QuantizedVector code = retrieval::quantize(query);
    const std::vector<std::uint32_t> shortlist = index.top_k(code, kTopK);
    const std::vector<std::uint32_t> exact = exact_top_k(codes, code, kTopK);
    expected += exact.size();
    for (const std::uint32_t i : exact)
      if (std::binary_search(shortlist.begin(), shortlist.end(), i))
        ++recalled;
  }
  result.recall =
      expected == 0 ? 1.0
                    : static_cast<double>(recalled) /
                          static_cast<double>(expected);
  (void)sink;
  return result;
}

}  // namespace

int main() {
  const Stopwatch setup_watch;
  const SimilarityModel& model = bench::shared_model();
  const double setup_seconds = setup_watch.elapsed_seconds();

  double scale = 1.0;
  if (const char* env = std::getenv("PATCHECKO_SCALE"))
    scale = std::atof(env) > 0 ? std::atof(env) : 1.0;
  const auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(static_cast<std::size_t>(n * scale), 256);
  };
  // 1x / 10x / 100x: sub-linearity shows as speedup growing with N.
  const std::vector<std::size_t> sizes{scaled(1000), scaled(10000),
                                       scaled(100000)};

  std::printf("=== Stage-1 retrieval: exact all-pairs vs top-%zu prefilter ===\n",
              kTopK);
  TextTable table({"functions", "exact ms/q", "prefilter ms/q", "speedup",
                   "recall", "build ms", "index MB"});
  std::vector<bench::BenchRow> rows;
  std::vector<ScaleResult> results;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const ScaleResult r = run_scale(model, sizes[i], 97 + i);
    results.push_back(r);
    table.add_row({std::to_string(r.n), fmt_double(r.exact_ms_per_query, 2),
                   fmt_double(r.prefilter_ms_per_query, 3),
                   fmt_double(r.speedup, 1) + "x", fmt_double(r.recall, 4),
                   fmt_double(r.index_build_ms, 1),
                   fmt_double(r.index_mb, 2)});
    rows.emplace_back("n" + std::to_string(r.n),
                      std::vector<std::pair<std::string, double>>{
                          {"exact_ms_per_query", r.exact_ms_per_query},
                          {"prefilter_ms_per_query", r.prefilter_ms_per_query},
                          {"speedup", r.speedup},
                          {"recall", r.recall},
                          {"index_build_ms", r.index_build_ms}});
  }
  std::printf("%s\n", table.render().c_str());

  // Setup note: model acquisition cost (trained cold or served from the
  // harness disk cache) — recorded so setup-cost changes are visible in
  // the bench trajectory alongside the per-scale rows.
  rows.emplace_back("setup", std::vector<std::pair<std::string, double>>{
                                 {"model_seconds", setup_seconds}});

  bool ok = bench::write_bench_json("retrieval", rows, {"speedup", "recall"});
  for (const ScaleResult& r : results) {
    if (r.recall < 0.99) {
      std::printf("FAIL: recall %.4f < 0.99 at n=%zu\n", r.recall, r.n);
      ok = false;
    }
  }
  const ScaleResult& largest = results.back();
  if (largest.speedup < 10.0) {
    std::printf("FAIL: stage-1 speedup %.1fx < 10x at n=%zu\n",
                largest.speedup, largest.n);
    ok = false;
  }
  if (ok)
    std::printf(
        "stage-1 speedup %.1fx at n=%zu with %.2f%% recall; prefilter cost "
        "stays flat while the exact scan grows linearly.\n",
        largest.speedup, largest.n, largest.recall * 100.0);
  return ok ? 0 : 1;
}
