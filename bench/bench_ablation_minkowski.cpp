// Ablation 1 (DESIGN.md §6): sensitivity of the dynamic ranking to the
// Minkowski order p (the paper fixes p=3) and to the number of execution
// environments K (Eq. 2 averages over K).
#include <cstdio>

#include "harness.h"
#include "util/table.h"

using namespace patchecko;

namespace {

struct RankStats {
  int top1 = 0;
  int top3 = 0;
  int found = 0;
  int total = 0;
};

RankStats rank_stats(const bench::EvalContext& ctx, double p,
                     std::size_t max_envs) {
  PipelineConfig config;
  config.minkowski_p = p;
  const Patchecko pipeline(&ctx.model, config);
  RankStats stats;
  for (const CveEntry& entry : ctx.database->entries()) {
    // Truncate the environment set to K = max_envs.
    CveEntry limited = entry;
    if (limited.environments.size() > max_envs) {
      limited.environments.resize(max_envs);
      auto trim = [&](DynamicProfile& profile) {
        if (profile.per_env.size() > max_envs)
          profile.per_env.resize(max_envs);
      };
      trim(limited.vulnerable_profile);
      trim(limited.patched_profile);
      for (auto& [arch, refs] : limited.arch_refs) {
        trim(refs.vulnerable_profile);
        trim(refs.patched_profile);
      }
    }
    const AnalyzedLibrary& target = ctx.analyzed_for(entry, false);
    const DetectionOutcome outcome =
        pipeline.detect(limited, target, /*query_is_patched=*/false);
    ++stats.total;
    if (outcome.rank_of_target > 0) {
      ++stats.found;
      if (outcome.rank_of_target == 1) ++stats.top1;
      if (outcome.rank_of_target <= 3) ++stats.top3;
    }
  }
  return stats;
}

}  // namespace

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const std::size_t k_full =
      ctx.database->entries().front().environments.size();

  std::printf("=== Ablation: Minkowski order p (K=%zu environments) ===\n",
              k_full);
  std::vector<bench::BenchRow> json_rows;
  TextTable p_table({"p", "top-1", "top-3", "found", "total"});
  for (double p : {1.0, 2.0, 3.0, 4.0}) {
    const RankStats stats = rank_stats(ctx, p, k_full);
    p_table.add_row({fmt_double(p, 0), std::to_string(stats.top1),
                     std::to_string(stats.top3), std::to_string(stats.found),
                     std::to_string(stats.total)});
    json_rows.emplace_back("p" + fmt_double(p, 0),
                           std::vector<std::pair<std::string, double>>{
                               {"top1", static_cast<double>(stats.top1)},
                               {"top3", static_cast<double>(stats.top3)}});
  }
  std::printf("%s\n", p_table.render().c_str());

  std::printf("=== Ablation: number of execution environments K (p=3) ===\n");
  TextTable k_table({"K", "top-1", "top-3", "found", "total"});
  for (std::size_t k = 1; k <= k_full; ++k) {
    const RankStats stats = rank_stats(ctx, 3.0, k);
    k_table.add_row({std::to_string(k), std::to_string(stats.top1),
                     std::to_string(stats.top3), std::to_string(stats.found),
                     std::to_string(stats.total)});
  }
  std::printf("%s\n", k_table.render().c_str());
  std::printf(
      "Shape check: ranking quality is stable in p (the paper's p=3 is not "
      "load-bearing) and improves/stabilizes with more environments.\n");
  const bool wrote = bench::write_bench_json("ablation_minkowski", json_rows,
                                             {"top1", "top3"});
  return wrote ? 0 : 1;
}
