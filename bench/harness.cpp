#include "harness.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "corpus/builder.h"
#include "obs/json.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace patchecko::bench {

namespace {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

std::string env_string(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

}  // namespace

HarnessConfig harness_config() {
  HarnessConfig config;
  config.eval.scale = env_double("PATCHECKO_SCALE", 1.0);
  config.trainer.epochs = static_cast<std::size_t>(
      env_double("PATCHECKO_EPOCHS", 12));
  config.trainer.verbose = false;
  config.cache_dir = env_string("PATCHECKO_CACHE", "/tmp/patchecko_cache");
  std::filesystem::create_directories(config.cache_dir);
  return config;
}

const SimilarityModel& shared_model() {
  static SimilarityModel model = [] {
    const HarnessConfig config = harness_config();
    std::ostringstream path;
    // v-tag invalidates cached models when the corpus generator evolves.
    path << config.cache_dir << "/model_v4_e" << config.trainer.epochs << "_s"
         << config.trainer.dataset.seed << "_l"
         << config.trainer.dataset.library_count << ".bin";
    std::fprintf(stderr, "[harness] similarity model: %s\n",
                 path.str().c_str());
    return load_or_train_model(path.str(), config.trainer);
  }();
  return model;
}

const AnalyzedLibrary& EvalContext::analyzed_for(const CveEntry& entry,
                                                 bool pixel_device) const {
  return pixel_device ? pixel_analyzed[entry.library_index]
                      : things_analyzed[entry.library_index];
}

const EvalContext& shared_eval_context() {
  static EvalContext context = [] {
    EvalContext ctx;
    ctx.config = harness_config();
    ctx.model = shared_model();
    std::fprintf(stderr,
                 "[harness] building evaluation corpus (scale=%.3f)...\n",
                 ctx.config.eval.scale);
    ctx.corpus = std::make_unique<EvalCorpus>(ctx.config.eval);
    const std::string store_dir = env_string("PATCHECKO_CORPUS", "");
    const Stopwatch database_watch;
    if (!store_dir.empty()) {
      // Store-backed: populate missing artifacts once (a warm store builds
      // nothing), then assemble the database from stored entries.
      std::fprintf(stderr,
                   "[harness] loading vulnerability database from corpus "
                   "store %s...\n",
                   store_dir.c_str());
      corpus::PrebuiltStore store(store_dir);
      corpus::BuildMatrix matrix;
      matrix.eval = ctx.config.eval;
      matrix.database = ctx.config.database;
      matrix.jobs = default_worker_threads();
      corpus::build_store(store, matrix);
      ctx.database = std::make_unique<CveDatabase>(
          corpus::load_database(store, *ctx.corpus, ctx.config.database));
      ctx.database_store_backed = true;
    } else {
      std::fprintf(stderr, "[harness] building vulnerability database...\n");
      ctx.database =
          std::make_unique<CveDatabase>(*ctx.corpus, ctx.config.database);
    }
    ctx.database_seconds = database_watch.elapsed_seconds();
    ctx.things = android_things_device();
    ctx.pixel = pixel2xl_device();

    const std::size_t libs = ctx.corpus->library_specs().size();
    std::fprintf(stderr, "[harness] compiling device firmware images...\n");
    for (std::size_t i = 0; i < libs; ++i) {
      ctx.things_libraries.push_back(
          ctx.corpus->compile_for_device(i, ctx.things));
      ctx.pixel_libraries.push_back(
          ctx.corpus->compile_for_device(i, ctx.pixel));
    }
    for (std::size_t i = 0; i < libs; ++i) {
      ctx.things_analyzed.push_back(
          analyze_library(ctx.things_libraries[i]));
      ctx.pixel_analyzed.push_back(analyze_library(ctx.pixel_libraries[i]));
    }
    std::fprintf(stderr, "[harness] ready.\n");
    return ctx;
  }();
  return context;
}

bool write_bench_json(const std::string& bench,
                      const std::vector<BenchRow>& rows,
                      const std::vector<std::string>& higher_is_better) {
  const std::string dir = env_string("PATCHECKO_BENCH_DIR", ".");
  const std::string path = dir + "/BENCH_" + bench + ".json";
  std::string out;
  out += "{\"bench\":";
  obs::json::append_string(out, bench);
  out += ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"name\":";
    obs::json::append_string(out, rows[i].name);
    out += ",\"metrics\":{";
    for (std::size_t m = 0; m < rows[i].metrics.size(); ++m) {
      if (m != 0) out += ',';
      obs::json::append_string(out, rows[i].metrics[m].first);
      out += ':';
      obs::json::append_double(out, rows[i].metrics[m].second);
    }
    out += "}}";
  }
  out += "],\"higher_is_better\":[";
  for (std::size_t i = 0; i < higher_is_better.size(); ++i) {
    if (i != 0) out += ',';
    obs::json::append_string(out, higher_is_better[i]);
  }
  out += "]}\n";
  std::ofstream file(path, std::ios::trunc);
  file << out;
  if (!file.good()) {
    std::fprintf(stderr, "[harness] warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "[harness] wrote %s\n", path.c_str());
  return true;
}

namespace {

/// Console reporter that also collects per-benchmark timings for the
/// BENCH_*.json trajectory file.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      BenchRow row;
      row.name = run.benchmark_name();
      row.set("real_ns", run.GetAdjustedRealTime());
      row.set("cpu_ns", run.GetAdjustedCPUTime());
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchRow>& rows() const { return rows_; }

 private:
  std::vector<BenchRow> rows_;
};

}  // namespace

int run_gbench_to_json(const std::string& bench, int* argc, char** argv) {
  benchmark::Initialize(argc, argv);
  if (benchmark::ReportUnrecognizedArguments(*argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return write_bench_json(bench, reporter.rows()) ? 0 : 1;
}

}  // namespace patchecko::bench
