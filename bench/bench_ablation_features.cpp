// Ablation 2 (DESIGN.md §6): what the dynamic stage's accuracy is made of —
//   (a) architecture-matched reference profiles vs cross-architecture
//       (database-build) reference profiles,
//   (b) dropping whole dynamic-feature families from the distance.
#include <algorithm>
#include <cstdio>

#include "harness.h"
#include "util/stats.h"
#include "util/table.h"

using namespace patchecko;

namespace {

// Family masks over the 21 Table II features.
struct Family {
  const char* name;
  std::size_t begin, end;  // [begin, end) feature indices to DROP
};

double masked_distance(const DynamicFeatures& a, const DynamicFeatures& b,
                       std::size_t drop_begin, std::size_t drop_end) {
  auto va = a.to_array();
  auto vb = b.to_array();
  for (std::size_t i = drop_begin; i < drop_end; ++i) {
    va[i] = 0.0;
    vb[i] = 0.0;
  }
  return minkowski_distance(va, vb, 3.0);
}

}  // namespace

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const Patchecko pipeline(&ctx.model);

  // --- (a) arch-matched vs cross-arch reference profiles -------------------
  std::printf(
      "=== Ablation: on-device (arch-matched) vs cross-arch reference "
      "profiles ===\n");
  TextTable ref_table({"references", "top-1", "top-3", "found"});
  std::vector<bench::BenchRow> json_rows;
  for (const bool cross_arch : {false, true}) {
    int top1 = 0, top3 = 0, found = 0;
    for (const CveEntry& entry : ctx.database->entries()) {
      CveEntry variant = entry;
      if (cross_arch) variant.arch_refs.clear();  // force db-arch fallback
      const DetectionOutcome outcome = pipeline.detect(
          variant, ctx.analyzed_for(entry, false), /*query_is_patched=*/false);
      if (outcome.rank_of_target > 0) {
        ++found;
        if (outcome.rank_of_target == 1) ++top1;
        if (outcome.rank_of_target <= 3) ++top3;
      }
    }
    ref_table.add_row({cross_arch ? "cross-arch (amd64 db build)"
                                  : "arch-matched (on-device)",
                       std::to_string(top1), std::to_string(top3),
                       std::to_string(found)});
    json_rows.emplace_back(cross_arch ? "cross_arch" : "arch_matched",
                           std::vector<std::pair<std::string, double>>{
                               {"top1", static_cast<double>(top1)},
                               {"top3", static_cast<double>(top3)}});
  }
  std::printf("%s\n", ref_table.render().c_str());

  // --- (b) dynamic-feature family dropout ----------------------------------
  std::printf(
      "=== Ablation: dropping dynamic-feature families from the ranking "
      "distance ===\n");
  const Family families[] = {
      {"none (all 21 features)", 0, 0},
      {"drop stack-depth stats (F2-F5)", 1, 5},
      {"drop instruction counts (F6-F12)", 5, 12},
      {"drop hot-site frequencies (F13-F14)", 12, 14},
      {"drop memory-region counts (F15-F19)", 14, 19},
      {"drop runtime interface (F1,F20,F21)", 19, 21},
  };
  TextTable fam_table({"variant", "top-1", "top-3", "found"});
  const Machine* machine = nullptr;
  for (const Family& family : families) {
    int top1 = 0, top3 = 0, found = 0;
    for (const CveEntry& entry : ctx.database->entries()) {
      const AnalyzedLibrary& target = ctx.analyzed_for(entry, false);
      const Machine local_machine(*target.binary);
      machine = &local_machine;
      const DetectionOutcome base =
          pipeline.detect(entry, target, /*query_is_patched=*/false);
      const ArchRefs* refs = entry.refs_for(target.binary->arch);
      if (refs == nullptr) continue;
      // Re-rank the validated candidates with the masked distance.
      std::vector<std::pair<std::size_t, double>> reranked;
      for (const RankedCandidate& candidate : base.ranking) {
        const DynamicProfile profile = profile_function(
            *machine, candidate.function_index, entry.environments);
        double total = 0.0;
        std::size_t used = 0;
        for (std::size_t e = 0; e < profile.per_env.size(); ++e) {
          if (!profile.per_env[e].has_value() ||
              !refs->vulnerable_profile.per_env[e].has_value())
            continue;
          total += masked_distance(*refs->vulnerable_profile.per_env[e],
                                   *profile.per_env[e], family.begin,
                                   family.end);
          ++used;
        }
        reranked.emplace_back(candidate.function_index,
                              used > 0 ? total / static_cast<double>(used)
                                       : 1e18);
      }
      std::stable_sort(reranked.begin(), reranked.end(),
                       [](const auto& a, const auto& b) {
                         return a.second < b.second;
                       });
      for (std::size_t r = 0; r < reranked.size(); ++r) {
        if (target.binary->functions[reranked[r].first].source_uid ==
            entry.target_uid) {
          ++found;
          if (r == 0) ++top1;
          if (r < 3) ++top3;
          break;
        }
      }
    }
    fam_table.add_row({family.name, std::to_string(top1),
                       std::to_string(top3), std::to_string(found)});
  }
  std::printf("%s\n", fam_table.render().c_str());
  std::printf(
      "Shape check: cross-arch references degrade top-1 sharply (codegen "
      "noise swamps patch-sized deltas); no single feature family is "
      "irreplaceable, but instruction counts and hot-site frequencies carry "
      "the most signal (the paper's Table III observation).\n");
  const bool wrote = bench::write_bench_json("ablation_features", json_rows,
                                             {"top1", "top3"});
  return wrote ? 0 : 1;
}
