// Shared benchmark harness: one trained model and one evaluation universe
// per process, with disk caching so the bench suite doesn't retrain the
// network for every table.
//
// Environment knobs (all optional):
//   PATCHECKO_SCALE   — evaluation-library scale factor (default 1.0 = the
//                       paper's function counts; use 0.05 for a fast pass)
//   PATCHECKO_EPOCHS  — training epochs (default 12)
//   PATCHECKO_CACHE   — cache directory (default /tmp/patchecko_cache)
//   PATCHECKO_CORPUS  — prebuilt-corpus store directory; when set, the CVE
//                       database loads from the store (populated on first
//                       use) instead of rebuilding cold every bench run
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cve_database.h"
#include "core/pipeline.h"
#include "dl/trainer.h"
#include "firmware/firmware.h"

namespace patchecko::bench {

struct HarnessConfig {
  TrainerConfig trainer;
  EvalConfig eval;
  DatabaseConfig database;
  PipelineConfig pipeline;
  std::string cache_dir;
};

/// Defaults + environment overrides.
HarnessConfig harness_config();

/// Trains (or loads from cache) the similarity model.
const SimilarityModel& shared_model();

/// The full evaluation universe: corpus, CVE database, both device
/// firmwares' analyzed libraries, and the pipeline. Built once per process.
struct EvalContext {
  HarnessConfig config;
  SimilarityModel model;
  std::unique_ptr<EvalCorpus> corpus;
  std::unique_ptr<CveDatabase> database;
  /// How long the database took to assemble, and whether it came from the
  /// prebuilt store ($PATCHECKO_CORPUS) — benches record these as setup
  /// rows so the before/after cost is visible in the BENCH JSONs.
  double database_seconds = 0.0;
  bool database_store_backed = false;
  DeviceSpec things;
  DeviceSpec pixel;
  // Compiled + analyzed libraries per device, indexed like corpus libraries.
  std::vector<LibraryBinary> things_libraries;
  std::vector<AnalyzedLibrary> things_analyzed;
  std::vector<LibraryBinary> pixel_libraries;
  std::vector<AnalyzedLibrary> pixel_analyzed;

  const AnalyzedLibrary& analyzed_for(const CveEntry& entry,
                                      bool pixel_device) const;
};

const EvalContext& shared_eval_context();

/// One measured row of a benchmark table: a name plus named metric values.
/// Metric order is preserved in the JSON output.
struct BenchRow {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;

  BenchRow() = default;
  BenchRow(std::string row_name,
           std::vector<std::pair<std::string, double>> row_metrics)
      : name(std::move(row_name)), metrics(std::move(row_metrics)) {}
  /// Back-compat shape for the enabled-vs-disabled micro-benches.
  BenchRow(std::string row_name, double enabled_ns, double disabled_ns)
      : name(std::move(row_name)),
        metrics{{"enabled_ns", enabled_ns}, {"disabled_ns", disabled_ns}} {}

  BenchRow& set(std::string key, double value) {
    metrics.emplace_back(std::move(key), value);
    return *this;
  }
};

/// Writes BENCH_<bench>.json — {"bench","rows":[{"name",..,"metrics":{K:V}}],
/// "higher_is_better":[K,..]} — so the perf trajectory is machine-trackable
/// across PRs (bench-diff consumes these). Metrics listed in
/// `higher_is_better` regress when they *drop* (accuracy, throughput);
/// everything else regresses when it grows (latency, misses). Directory from
/// $PATCHECKO_BENCH_DIR (default "."). Returns false (after printing a
/// warning) when the file cannot be written.
bool write_bench_json(const std::string& bench,
                      const std::vector<BenchRow>& rows,
                      const std::vector<std::string>& higher_is_better = {});

/// Runs google-benchmark (Initialize + RunSpecifiedBenchmarks) and captures
/// each benchmark's real/CPU ns into BENCH_<bench>.json alongside the normal
/// console output. Returns the process exit status (nonzero when the JSON
/// could not be written).
int run_gbench_to_json(const std::string& bench, int* argc, char** argv);

}  // namespace patchecko::bench
