// Section VI comparison: PATCHECKO's hybrid pipeline vs the prior-work
// families it claims to outperform —
//   * static-distance-only matching (scalable but leaves a large candidate
//     set: the rank of the true function is poor),
//   * BinDiff-style CFG bipartite matching (better precision, much slower),
//   * PATCHECKO (DL stage + dynamic pruning: top-3 and fast).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baseline/baseline.h"
#include "baseline/graph_embedding.h"
#include "harness.h"
#include "util/table.h"
#include "util/timer.h"

using namespace patchecko;

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const Patchecko pipeline(&ctx.model);

  std::printf("training the graph-embedding comparator ([41] analog)...\n");
  const GraphEmbedTrainingRun gnn =
      train_graph_embedder(GraphEmbedConfig{}, 24, 16, 0x6411);
  std::printf("graph-embedding test AUC %.3f (paper cites 0.971 for [41])\n\n",
              gnn.test_auc);

  std::printf(
      "=== Related-work comparison: rank of the true function per method "
      "===\n");
  TextTable table({"CVE", "Total", "static-only rank", "bindiff rank",
                   "graph-embed rank", "patchecko rank", "static(s)",
                   "bindiff(s)", "gnn(s)", "patchecko(s)"});

  double sums[4] = {0, 0, 0, 0};
  int wins[4] = {0, 0, 0, 0};
  std::size_t rows = 0;
  for (const CveEntry& entry : ctx.database->entries()) {
    const AnalyzedLibrary& target = ctx.analyzed_for(entry, false);
    const std::size_t n = target.features.size();
    // Cap the Hungarian-matching baseline's cost on the largest libraries.
    if (n > 3000) continue;

    auto rank_of_uid = [&](const std::vector<std::size_t>& order) {
      for (std::size_t r = 0; r < order.size(); ++r)
        if (target.binary->functions[order[r]].source_uid ==
            entry.target_uid)
          return static_cast<int>(r) + 1;
      return -1;
    };

    // 1. Static-distance-only.
    Stopwatch watch;
    const auto static_ranked =
        static_distance_ranking(entry.vulnerable_features, target.features);
    std::vector<std::size_t> static_order;
    for (const auto& s : static_ranked)
      static_order.push_back(s.function_index);
    const int static_rank = rank_of_uid(static_order);
    const double static_seconds = watch.elapsed_seconds();

    // 2. BinDiff-style graph matching.
    watch.restart();
    std::vector<std::pair<std::size_t, double>> bindiff_scores;
    for (std::size_t f = 0; f < n; ++f)
      bindiff_scores.emplace_back(
          f, bindiff_distance(entry.vulnerable_binary,
                              target.binary->functions[f]));
    std::stable_sort(bindiff_scores.begin(), bindiff_scores.end(),
                     [](const auto& a, const auto& b) {
                       return a.second < b.second;
                     });
    std::vector<std::size_t> bindiff_order;
    for (const auto& s : bindiff_scores) bindiff_order.push_back(s.first);
    const int bindiff_rank = rank_of_uid(bindiff_order);
    const double bindiff_seconds = watch.elapsed_seconds();

    // 3. Graph-embedding similarity ([41] analog): rank by descending
    //    cosine to the reference function's embedding.
    watch.restart();
    const EmbeddingGraph query_graph =
        embedding_graph(entry.vulnerable_binary);
    const auto query_embedding = gnn.model.embed(query_graph);
    std::vector<std::pair<std::size_t, double>> gnn_scores;
    for (std::size_t f = 0; f < n; ++f) {
      const auto candidate =
          gnn.model.embed(embedding_graph(target.binary->functions[f]));
      double dot = 0.0, nq = 0.0, nc = 0.0;
      for (std::size_t d = 0; d < candidate.size(); ++d) {
        dot += query_embedding[d] * candidate[d];
        nq += query_embedding[d] * query_embedding[d];
        nc += candidate[d] * candidate[d];
      }
      const double cosine =
          (nq > 0 && nc > 0) ? dot / std::sqrt(nq * nc) : 0.0;
      gnn_scores.emplace_back(f, -cosine);  // ascending sort => best first
    }
    std::stable_sort(gnn_scores.begin(), gnn_scores.end(),
                     [](const auto& a, const auto& b) {
                       return a.second < b.second;
                     });
    std::vector<std::size_t> gnn_order;
    for (const auto& s : gnn_scores) gnn_order.push_back(s.first);
    const int gnn_rank = rank_of_uid(gnn_order);
    const double gnn_seconds = watch.elapsed_seconds();

    // 4. PATCHECKO hybrid.
    watch.restart();
    const DetectionOutcome outcome =
        pipeline.detect(entry, target, /*query_is_patched=*/false);
    const double patchecko_seconds = watch.elapsed_seconds();

    table.add_row({entry.spec.cve_id, std::to_string(n),
                   static_rank > 0 ? std::to_string(static_rank) : "N/A",
                   bindiff_rank > 0 ? std::to_string(bindiff_rank) : "N/A",
                   gnn_rank > 0 ? std::to_string(gnn_rank) : "N/A",
                   outcome.rank_of_target > 0
                       ? std::to_string(outcome.rank_of_target)
                       : "N/A",
                   fmt_double(static_seconds, 3),
                   fmt_double(bindiff_seconds, 3),
                   fmt_double(gnn_seconds, 3),
                   fmt_double(patchecko_seconds, 3)});
    sums[0] += static_seconds;
    sums[1] += bindiff_seconds;
    sums[2] += gnn_seconds;
    sums[3] += patchecko_seconds;
    if (static_rank == 1) ++wins[0];
    if (bindiff_rank == 1) ++wins[1];
    if (gnn_rank == 1) ++wins[2];
    if (outcome.rank_of_target == 1) ++wins[3];
    ++rows;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nrank-1 hits: static-only %d, bindiff %d, graph-embed %d, "
      "patchecko %d (of %zu)\n",
      wins[0], wins[1], wins[2], wins[3], rows);
  std::printf(
      "total time : static %.2fs, bindiff %.2fs, gnn %.2fs, patchecko "
      "%.2fs\n",
      sums[0], sums[1], sums[2], sums[3]);
  std::printf(
      "\nShape check (paper, Section VI): pure static similarity leaves a "
      "large candidate set to triage; graph matching is accurate but does "
      "not scale; the hybrid pipeline is both accurate (top-3) and fast.\n");
  const auto json_row = [](const char* name, double seconds, int rank1_wins) {
    return bench::BenchRow(
        name, {{"total_seconds", seconds},
               {"rank1_hits", static_cast<double>(rank1_wins)}});
  };
  const bool wrote = bench::write_bench_json(
      "baseline_compare",
      {json_row("static_only", sums[0], wins[0]),
       json_row("bindiff", sums[1], wins[1]),
       json_row("graph_embed", sums[2], wins[2]),
       json_row("patchecko", sums[3], wins[3])},
      {"rank1_hits"});
  return wrote ? 0 : 1;
}
