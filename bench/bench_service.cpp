// Scan-service acceptance bench: a cold one-shot batch scan (fresh engine,
// fresh cache) is the reference; a resident daemon serving the same request
// over its Unix-domain socket must return a byte-identical report, and the
// warm repeat — model, corpus, and result cache all resident — must be at
// least 2x faster than the cold one-shot, protocol overhead included.
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "firmware/firmware.h"
#include "harness.h"
#include "obs/json.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/timer.h"

using namespace patchecko;
namespace svc = patchecko::service;
namespace json = patchecko::obs::json;

namespace {

struct TimedResult {
  double seconds = 0.0;
  std::string report;
  double cache_hits = 0.0;
};

/// Submits one scan over the socket and returns client-observed wall time
/// plus the report text extracted from the result frame.
std::optional<TimedResult> submit(svc::ServiceClient& client,
                                  const std::string& firmware_path) {
  const Stopwatch watch;
  if (!client.send(svc::scan_request_json(firmware_path, {}, false)))
    return std::nullopt;
  const auto accepted = client.receive();
  if (!accepted) return std::nullopt;
  const auto result = client.receive();
  if (!result) return std::nullopt;
  TimedResult timed;
  timed.seconds = watch.elapsed_seconds();
  const auto doc = json::parse(*result);
  if (!doc || doc->get("type").as_string() != "result") {
    std::printf("FAIL: unexpected frame: %s\n", result->c_str());
    return std::nullopt;
  }
  timed.report = doc->get("report").as_string();
  timed.cache_hits = doc->get("cache").get("hits").as_number();
  return timed;
}

}  // namespace

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const FirmwareImage firmware = ctx.corpus->build_firmware(ctx.things);

  const auto dir =
      std::filesystem::temp_directory_path() / "pk_bench_service";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string firmware_path = (dir / "fw.img").string();
  if (!save_firmware(firmware, firmware_path)) {
    std::printf("FAIL: cannot save firmware image\n");
    return 1;
  }

  // Reference: what a from-scratch `patchecko batch-scan` pays per request.
  ScanRequest oneshot;
  oneshot.model = &ctx.model;
  oneshot.firmware = &firmware;
  oneshot.database = ctx.database.get();
  EngineConfig cold_config;
  cold_config.jobs = default_worker_threads();
  const Stopwatch cold_watch;
  const ScanReport cold = ScanEngine(cold_config).run(oneshot);
  const double cold_seconds = cold_watch.elapsed_seconds();
  const std::string cold_report = cold.canonical_text();

  svc::ServiceConfig config;
  config.socket_path = (dir / "svc.sock").string();
  config.model = &ctx.model;
  config.eval = ctx.config.eval;
  config.engine.jobs = default_worker_threads();
  svc::ScanService service(config);
  service.start();

  auto client = svc::ServiceClient::connect_unix(config.socket_path);
  if (!client.connected()) {
    std::printf("FAIL: cannot connect to service socket\n");
    return 1;
  }

  const auto first = submit(client, firmware_path);
  const auto warm = submit(client, firmware_path);
  if (!first || !warm) {
    std::printf("FAIL: scan request over the socket failed\n");
    return 1;
  }

  // Warm throughput: repeat requests against the resident cache.
  constexpr int kWarmRequests = 8;
  const Stopwatch burst_watch;
  for (int i = 0; i < kWarmRequests; ++i)
    if (!submit(client, firmware_path)) {
      std::printf("FAIL: warm burst request %d failed\n", i);
      return 1;
    }
  const double burst_seconds = burst_watch.elapsed_seconds();
  const double requests_per_sec = kWarmRequests / burst_seconds;
  service.stop();

  std::printf("=== Scan service: warm daemon vs cold one-shot (%zu CVEs) ===\n",
              ctx.database->entries().size());
  TextTable table({"run", "seconds", "speedup vs cold"});
  const auto add = [&](const char* name, double seconds) {
    table.add_row({name, fmt_double(seconds, 3),
                   fmt_double(cold_seconds / seconds, 2) + "x"});
  };
  add("cold one-shot", cold_seconds);
  add("daemon first", first->seconds);
  add("daemon warm", warm->seconds);
  std::printf("%s\n", table.render().c_str());
  std::printf("warm burst: %d requests in %.3fs (%.1f req/s)\n",
              kWarmRequests, burst_seconds, requests_per_sec);

  bool ok = bench::write_bench_json(
      "service",
      {// Setup note: how long the shared database took to assemble and
       // whether it came from the prebuilt store ($PATCHECKO_CORPUS) — the
       // before/after record for the store's setup-cost win.
       bench::BenchRow("setup",
                       {{"database_build_seconds", ctx.database_seconds},
                        {"store_backed",
                         ctx.database_store_backed ? 1.0 : 0.0}}),
       bench::BenchRow("cold_oneshot", {{"seconds", cold_seconds}}),
       bench::BenchRow("daemon_first", {{"seconds", first->seconds}}),
       bench::BenchRow("daemon_warm",
                       {{"seconds", warm->seconds},
                        {"requests_per_sec", requests_per_sec}})},
      {"requests_per_sec"});

  if (first->report != cold_report) {
    std::printf("FAIL: daemon report differs from one-shot report\n");
    ok = false;
  }
  if (warm->report != cold_report) {
    std::printf("FAIL: warm daemon report differs from one-shot report\n");
    ok = false;
  }
  if (warm->cache_hits == 0.0) {
    std::printf("FAIL: warm request hit the result cache zero times\n");
    ok = false;
  }
  if (warm->seconds * 2.0 > cold_seconds) {
    std::printf("FAIL: warm daemon scan not >= 2x faster (%.3fs vs %.3fs)\n",
                warm->seconds, cold_seconds);
    ok = false;
  }
  if (ok)
    std::printf(
        "daemon reports byte-identical to one-shot; warm speedup %.1fx; "
        "%.1f warm req/s.\n",
        cold_seconds / warm->seconds, requests_per_sec);
  return ok ? 0 : 1;
}
