// Batch engine acceptance bench: a cold batch-scan populates the
// content-addressed cache; a warm re-scan of the same request must be at
// least 2x faster and produce a byte-identical canonical report, and a
// fresh single-job engine served from the same cache directory must agree
// byte-for-byte with the multi-job cold run (determinism across both job
// count and cache temperature).
#include <cstdio>
#include <filesystem>
#include <string>

#include "engine/engine.h"
#include "harness.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace patchecko;

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const FirmwareImage firmware = ctx.corpus->build_firmware(ctx.things);

  ScanRequest request;
  request.model = &ctx.model;
  request.firmware = &firmware;
  request.database = ctx.database.get();

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "pk_bench_engine_cache")
          .string();
  std::filesystem::remove_all(cache_dir);

  EngineConfig config;
  config.jobs = default_worker_threads();
  config.cache_dir = cache_dir;

  std::printf(
      "=== Batch engine: content-addressed cache (%zu CVEs, jobs=%u) ===\n",
      ctx.database->entries().size(), config.jobs);

  ScanEngine engine(config);
  const ScanReport cold = engine.run(request);
  const ScanReport warm = engine.run(request);

  EngineConfig sequential = config;
  sequential.jobs = 1;
  const ScanReport replay = ScanEngine(sequential).run(request);  // disk only

  TextTable table({"run", "jobs", "seconds", "speedup", "cache hits",
                   "cache misses"});
  const auto add = [&table](const char* name, unsigned jobs,
                            const ScanReport& report, double baseline) {
    table.add_row({name, std::to_string(jobs),
                   fmt_double(report.total_seconds, 3),
                   fmt_double(baseline / report.total_seconds, 2) + "x",
                   std::to_string(report.cache.hits()),
                   std::to_string(report.cache.misses())});
  };
  add("cold", config.jobs, cold, cold.total_seconds);
  add("warm (memory)", config.jobs, warm, cold.total_seconds);
  add("fresh engine (disk)", 1, replay, cold.total_seconds);
  std::printf("%s\n", table.render().c_str());

  const auto json_row = [](const char* name, const ScanReport& report) {
    return bench::BenchRow(
        name, {{"seconds", report.total_seconds},
               {"cache_misses", static_cast<double>(report.cache.misses())}});
  };
  bool ok = bench::write_bench_json(
      "engine_cache",
      {json_row("cold", cold), json_row("warm_memory", warm),
       json_row("replay_disk", replay)});
  if (warm.canonical_text() != cold.canonical_text()) {
    std::printf("FAIL: warm report differs from cold report\n");
    ok = false;
  }
  if (replay.canonical_text() != cold.canonical_text()) {
    std::printf("FAIL: jobs=1 disk-served report differs from cold report\n");
    ok = false;
  }
  if (warm.cache.misses() != 0) {
    std::printf("FAIL: warm run missed the cache %llu times\n",
                static_cast<unsigned long long>(warm.cache.misses()));
    ok = false;
  }
  if (warm.total_seconds * 2.0 > cold.total_seconds) {
    std::printf("FAIL: warm run not >= 2x faster (%.3fs vs %.3fs)\n",
                warm.total_seconds, cold.total_seconds);
    ok = false;
  }
  if (ok)
    std::printf(
        "warm/cold reports byte-identical; warm speedup %.1fx; jobs=1 and "
        "jobs=%u agree exactly.\n",
        cold.total_seconds / warm.total_seconds, config.jobs);
  return ok ? 0 : 1;
}
