// Threat-model boundary study (Section II-A says packed/obfuscated code is
// out of scope): how fast does detection degrade when the target library is
// obfuscated with semantics-preserving transformations of increasing
// strength? Run on a mid-size library with all the CVEs it hosts.
#include <cstdio>

#include "binary/obfuscate.h"
#include "harness.h"
#include "util/table.h"

using namespace patchecko;

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const Patchecko pipeline(&ctx.model);

  std::printf(
      "=== Extension: detection accuracy under target obfuscation ===\n");
  TextTable table({"strength", "found", "top-3", "avg FP rate",
                   "avg candidates"});

  std::vector<bench::BenchRow> json_rows;
  for (double strength : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    int found = 0, top3 = 0, total = 0;
    double fp_rate_sum = 0.0;
    double candidates_sum = 0.0;
    for (const CveEntry& entry : ctx.database->entries()) {
      const LibraryBinary& original =
          *ctx.analyzed_for(entry, false).binary;
      if (original.function_count() > 1500) continue;  // keep it quick
      Rng rng(0x0BF0 + static_cast<std::uint64_t>(strength * 100));
      const LibraryBinary obfuscated = obfuscate_library(
          original, rng, ObfuscationConfig::strength(strength));
      const AnalyzedLibrary analyzed = analyze_library(obfuscated);
      const DetectionOutcome outcome =
          pipeline.detect(entry, analyzed, /*query_is_patched=*/false);
      ++total;
      fp_rate_sum += outcome.false_positive_rate();
      candidates_sum += static_cast<double>(outcome.candidates.size());
      if (outcome.rank_of_target > 0) {
        ++found;
        if (outcome.rank_of_target <= 3) ++top3;
      }
    }
    table.add_row({fmt_double(strength, 2),
                   std::to_string(found) + "/" + std::to_string(total),
                   std::to_string(top3),
                   fmt_percent(fp_rate_sum / total),
                   fmt_double(candidates_sum / total, 1)});
    json_rows.emplace_back("strength_" + fmt_double(strength, 2),
                           std::vector<std::pair<std::string, double>>{
                               {"found", static_cast<double>(found)},
                               {"top3", static_cast<double>(top3)}});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape check: mild obfuscation (junk nops, mov substitution) mostly "
      "survives the pipeline — the dynamic stage is semantics-based — while "
      "heavy CFG trampolining erodes the *static* stage's candidate recall, "
      "which is exactly why the paper scopes obfuscated binaries out.\n");
  const bool wrote = bench::write_bench_json("obfuscation", json_rows,
                                             {"found", "top3"});
  return wrote ? 0 : 1;
}
