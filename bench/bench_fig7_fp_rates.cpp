// Figure 7 reproduction: deep-learning false-positive rate per CVE, for the
// vulnerable and patched query versions, on both devices (Android Things 1.0
// and Google Pixel 2 XL). The paper observes that a patched CVE queried with
// its vulnerable signature (and vice versa) shows a shifted FP profile —
// most visibly for CVE-2017-13209 and CVE-2018-9412.
#include <cstdio>

#include "harness.h"
#include "util/table.h"

using namespace patchecko;

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const Patchecko pipeline(&ctx.model);

  std::printf(
      "=== Figure 7: false positive rates (vulnerable vs patched query, "
      "both devices) ===\n");
  TextTable table({"CVE", "Things vuln", "Things patched", "Pixel2 vuln",
                   "Pixel2 patched"});

  double sums[4] = {0, 0, 0, 0};
  for (const CveEntry& entry : ctx.database->entries()) {
    std::vector<std::string> row{entry.spec.cve_id};
    int column = 0;
    for (const bool pixel : {false, true}) {
      const AnalyzedLibrary& target = ctx.analyzed_for(entry, pixel);
      for (const bool patched_query : {false, true}) {
        const DetectionOutcome outcome =
            pipeline.detect(entry, target, patched_query);
        row.push_back(fmt_percent(outcome.false_positive_rate()));
        sums[column++] += outcome.false_positive_rate();
      }
    }
    table.add_row(std::move(row));
  }
  table.add_row({"AVERAGE", fmt_percent(sums[0] / 25.0),
                 fmt_percent(sums[1] / 25.0), fmt_percent(sums[2] / 25.0),
                 fmt_percent(sums[3] / 25.0)});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShape check (paper): FP rates sit in the 0.5%%-17%% band; for a "
      "CVE that is patched on the device, the *patched* query tends to show "
      "the lower FP rate, and vice versa.\n");
  const bool wrote = bench::write_bench_json(
      "fig7_fp_rates",
      {bench::BenchRow("average_fp_rate",
                       {{"things_vulnerable", sums[0] / 25.0},
                        {"things_patched", sums[1] / 25.0},
                        {"pixel2_vulnerable", sums[2] / 25.0},
                        {"pixel2_patched", sums[3] / 25.0}})});
  return wrote ? 0 : 1;
}
