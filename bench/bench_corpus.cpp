// Prebuilt-corpus store acceptance bench: a store-backed snapshot load must
// be at least 5x faster than the cold compile/fuzz/profile database build it
// replaces, bit-identical to it, and a second `build` over the unchanged
// matrix must recompile nothing. BENCH_corpus.json feeds the bench-diff
// perf gate.
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/cve_database.h"
#include "corpus/builder.h"
#include "corpus/serialize.h"
#include "harness.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/timer.h"

using namespace patchecko;

int main() {
  const bench::HarnessConfig config = bench::harness_config();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pk_bench_corpus_store")
          .string();
  std::filesystem::remove_all(dir);

  // Cold: the full database build every scan, bench, and CI run used to pay.
  const Stopwatch cold_watch;
  const EvalCorpus cold_corpus(config.eval);
  const CveDatabase cold_database(cold_corpus, config.database);
  const double cold_seconds = cold_watch.elapsed_seconds();

  corpus::PrebuiltStore store(dir);
  corpus::BuildMatrix matrix;
  matrix.eval = config.eval;
  matrix.database = config.database;
  matrix.jobs = default_worker_threads();
  const corpus::BuildReport populate = corpus::build_store(store, matrix);
  const corpus::BuildReport repopulate = corpus::build_store(store, matrix);

  const Stopwatch warm_watch;
  corpus::SnapshotLoadStats load_stats;
  const auto warm =
      corpus::load_snapshot(store, 1, config.eval, config.database,
                            &load_stats);
  const double warm_seconds = warm_watch.elapsed_seconds();
  const double speedup = cold_seconds / warm_seconds;

  std::printf("=== Prebuilt-corpus store (%zu CVEs, scale %.2f) ===\n",
              cold_database.entries().size(), config.eval.scale);
  TextTable table({"phase", "seconds", "built", "reused"});
  table.add_row({"cold database build", fmt_double(cold_seconds, 3), "-",
                 "-"});
  table.add_row({"store populate", fmt_double(populate.build_seconds, 3),
                 std::to_string(populate.built),
                 std::to_string(populate.reused)});
  table.add_row({"store re-populate",
                 fmt_double(repopulate.build_seconds, 3),
                 std::to_string(repopulate.built),
                 std::to_string(repopulate.reused)});
  table.add_row({"warm snapshot load", fmt_double(warm_seconds, 3), "-",
                 std::to_string(load_stats.entries_loaded)});
  std::printf("%s\nwarm speedup: %.1fx\n", table.render().c_str(), speedup);

  bool ok = bench::write_bench_json(
      "corpus",
      {bench::BenchRow("cold_build", {{"seconds", cold_seconds}}),
       bench::BenchRow("store_populate",
                       {{"seconds", populate.build_seconds},
                        {"built", static_cast<double>(populate.built)}}),
       bench::BenchRow(
           "store_repopulate",
           {{"seconds", repopulate.build_seconds},
            {"recompiles", static_cast<double>(repopulate.built)}}),
       bench::BenchRow("warm_load", {{"seconds", warm_seconds},
                                     {"warm_speedup", speedup}})},
      {"warm_speedup"});

  if (repopulate.built != 0) {
    std::printf("FAIL: second build recompiled %llu artifacts\n",
                static_cast<unsigned long long>(repopulate.built));
    ok = false;
  }
  if (load_stats.entries_built != 0) {
    std::printf("FAIL: warm load fell back to %llu cold entry builds\n",
                static_cast<unsigned long long>(load_stats.entries_built));
    ok = false;
  }
  if (warm->database.entries().size() != cold_database.entries().size()) {
    std::printf("FAIL: warm snapshot has %zu entries, cold build %zu\n",
                warm->database.entries().size(),
                cold_database.entries().size());
    ok = false;
  } else {
    for (std::size_t i = 0; i < cold_database.entries().size(); ++i) {
      if (corpus::serialize_cve_entry(warm->database.entries()[i]) !=
          corpus::serialize_cve_entry(cold_database.entries()[i])) {
        std::printf("FAIL: warm entry %zu differs from the cold build\n", i);
        ok = false;
        break;
      }
    }
  }
  if (speedup < 5.0) {
    std::printf("FAIL: warm load only %.1fx faster than cold build "
                "(%.3fs vs %.3fs); need >= 5x\n",
                speedup, warm_seconds, cold_seconds);
    ok = false;
  }
  if (ok)
    std::printf("store-backed snapshot bit-identical to cold build; "
                "zero recompiles on re-populate; %.1fx warm speedup.\n",
                speedup);
  return ok ? 0 : 1;
}
