// Table VIII reproduction: final patch-presence verdicts for all 25 CVEs on
// Android Things vs ground truth. The paper reports 24/25 correct, with the
// single miss on CVE-2018-9470 whose patch changes one integer constant.
#include <cstdio>

#include "harness.h"
#include "util/table.h"

using namespace patchecko;

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const Patchecko pipeline(&ctx.model);

  std::printf(
      "=== Table VIII: patch-presence results on Android Things (patch "
      "level %s) ===\n",
      ctx.things.patch_level.c_str());
  TextTable table({"CVE", "PATCHECKO Patched(?)", "Ground Truth Patched(?)",
                   "Match", "Evidence"});

  int correct = 0, total = 0;
  for (const CveEntry& entry : ctx.database->entries()) {
    const AnalyzedLibrary& target = ctx.analyzed_for(entry, false);
    const PatchReport report = pipeline.full_report(entry, target);
    const bool truth = ctx.things.is_patched(entry.spec.cve_id);
    std::string verdict = "-";
    std::string evidence;
    bool match = false;
    if (report.decision) {
      const bool says_patched =
          report.decision->verdict == PatchVerdict::patched;
      verdict = says_patched ? "yes" : "0";
      match = says_patched == truth;
      if (!report.decision->evidence.empty())
        evidence = report.decision->evidence.front();
      if (evidence.size() > 60) evidence.resize(60);
    }
    correct += match ? 1 : 0;
    ++total;
    table.add_row({entry.spec.cve_id, verdict, truth ? "yes" : "0",
                   match ? "OK" : "MISS", evidence});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPatch detection accuracy: %d/%d = %s   (paper: 96%%, single miss "
      "on CVE-2018-9470, a one-integer patch)\n",
      correct, total,
      fmt_percent(static_cast<double>(correct) / total).c_str());
  const bool wrote = bench::write_bench_json(
      "table8_patch_detection",
      {bench::BenchRow("android_things",
                       {{"accuracy", static_cast<double>(correct) / total},
                        {"cves", static_cast<double>(total)}})},
      {"accuracy", "cves"});
  return wrote ? 0 : 1;
}
