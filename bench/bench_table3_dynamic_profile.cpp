// Table III reproduction: per-candidate dynamic feature vectors (F1..F21)
// for the validated candidates of CVE-2018-9412's vulnerable function in the
// libstagefright analog on Android Things, with the vulnerability-database
// reference function in the last row. The paper's tell: only the true
// candidate shares the reference's branch/arith hot-site frequencies
// (F13/F14) and anonymous-memory profile (F18).
#include <cstdio>

#include "harness.h"
#include "util/table.h"

using namespace patchecko;

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();
  const Patchecko pipeline(&ctx.model);
  const CveEntry& entry = ctx.database->by_id("CVE-2018-9412");
  const AnalyzedLibrary& target = ctx.analyzed_for(entry, false);

  std::printf(
      "=== Table III: dynamic feature vectors of validated candidates "
      "(CVE-2018-9412, %s) ===\n",
      ctx.things.name.c_str());

  const DetectionOutcome outcome =
      pipeline.detect(entry, target, /*query_is_patched=*/false);

  std::vector<std::string> header{"Candidate"};
  for (std::size_t f = 1; f <= DynamicFeatures::count; ++f)
    header.push_back("F" + std::to_string(f));
  TextTable table(header);

  const Machine machine(*target.binary);
  // First environment's feature vector per candidate (the paper's table
  // shows one fixed environment).
  auto row_for = [&](const std::string& label,
                     const DynamicFeatures& features) {
    std::vector<std::string> row{label};
    for (double v : features.to_array())
      row.push_back(fmt_double(v, v == static_cast<long long>(v) ? 0 : 2));
    table.add_row(std::move(row));
  };

  std::size_t shown = 0;
  for (const RankedCandidate& ranked : outcome.ranking) {
    if (shown >= 14) break;  // the paper's excerpt shows a subset
    const RunResult result =
        machine.run(ranked.function_index, entry.environments.front());
    if (result.status != ExecStatus::ok) continue;
    row_for("candidate_" + std::to_string(ranked.function_index),
            result.features);
    ++shown;
  }

  const ArchRefs* refs = entry.refs_for(target.binary->arch);
  if (refs != nullptr && !refs->vulnerable_profile.per_env.empty() &&
      refs->vulnerable_profile.per_env.front().has_value()) {
    row_for("Vulnerable function (database)",
            *refs->vulnerable_profile.per_env.front());
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\n%zu of %zu deep-learning candidates survived execution validation "
      "(paper: 38 of 252). The database row matches exactly one candidate's "
      "F13/F14/F18 — the true removeUnsynchronization analog.\n",
      outcome.executed, outcome.candidates.size());

  std::printf("\nTable II feature legend:\n");
  for (std::size_t f = 0; f < DynamicFeatures::count; ++f)
    std::printf("  F%-2zu %s\n", f + 1,
                std::string(DynamicFeatures::name(f)).c_str());
  const bool wrote = bench::write_bench_json(
      "table3_dynamic_profile",
      {bench::BenchRow(
          "cve_2018_9412",
          {{"survivors", static_cast<double>(outcome.executed)},
           {"candidates", static_cast<double>(outcome.candidates.size())}})});
  return wrote ? 0 : 1;
}
