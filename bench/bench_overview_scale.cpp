// Section II-A reproduction: the scale of whole-firmware analysis (library
// and function counts per image) and the throughput of the static stage that
// makes scanning them tractable — plus the number of candidate functions a
// purely static approach leaves for manual triage.
#include <cstdio>

#include "harness.h"
#include "util/table.h"
#include "util/timer.h"

using namespace patchecko;

int main() {
  const bench::EvalContext& ctx = bench::shared_eval_context();

  std::printf("=== Section II-A: whole-firmware scale ===\n");
  TextTable scale({"Image", "Libraries", "Functions"});
  std::size_t things_fns = 0, pixel_fns = 0;
  for (const auto& lib : ctx.things_libraries) things_fns += lib.function_count();
  for (const auto& lib : ctx.pixel_libraries) pixel_fns += lib.function_count();
  scale.add_row({ctx.things.name, std::to_string(ctx.things_libraries.size()),
                 std::to_string(things_fns)});
  scale.add_row({ctx.pixel.name, std::to_string(ctx.pixel_libraries.size()),
                 std::to_string(pixel_fns)});
  scale.add_row({"(paper) Android Things 1.0", "379", "440532"});
  scale.add_row({"(paper) iOS 12.0.1", "198", "93714"});
  std::printf("%s\n", scale.render().c_str());

  // Static-stage throughput: feature extraction + model scoring per function.
  const CveEntry& entry = ctx.database->entries().front();
  const LibraryBinary& lib = ctx.things_libraries[entry.library_index];
  Stopwatch watch;
  const AnalyzedLibrary analyzed = analyze_library(lib);
  const double extract_seconds = watch.elapsed_seconds();

  watch.restart();
  std::size_t hits = 0;
  for (const auto& features : analyzed.features)
    if (ctx.model.score(entry.vulnerable_features, features) >= 0.5f) ++hits;
  const double score_seconds = watch.elapsed_seconds();

  std::printf("Static stage throughput on %s (%zu functions):\n",
              lib.name.c_str(), lib.function_count());
  std::printf("  feature extraction : %.3fs (%.0f functions/s)\n",
              extract_seconds,
              static_cast<double>(lib.function_count()) / extract_seconds);
  std::printf("  DL pair scoring    : %.3fs (%.0f pairs/s), %zu hits\n",
              score_seconds,
              static_cast<double>(lib.function_count()) / score_seconds,
              hits);
  std::printf(
      "\nWhy the hybrid design: scanning a full image statically is cheap, "
      "but the static stage alone leaves hundreds of candidates per CVE "
      "(paper: 600+ for a 3000-function binary); the dynamic stage exists "
      "to prune them automatically.\n");
  const double fns = static_cast<double>(lib.function_count());
  const bool wrote = bench::write_bench_json(
      "overview_scale",
      {bench::BenchRow("static_stage",
                       {{"extract_fns_per_s", fns / extract_seconds},
                        {"score_pairs_per_s", fns / score_seconds}})},
      {"extract_fns_per_s", "score_pairs_per_s"});
  return wrote ? 0 : 1;
}
