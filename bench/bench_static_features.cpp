// Table I companion + microbenchmarks: the 48 static features with a sample
// extraction, and google-benchmark timings for CFG recovery and feature
// extraction (the per-function cost of the paper's IDA plugin analog).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "compiler/compiler.h"
#include "features/static_features.h"
#include "harness.h"
#include "source/generator.h"
#include "util/table.h"

using namespace patchecko;

namespace {

const LibraryBinary& sample_library() {
  static const LibraryBinary library = [] {
    const SourceLibrary source = generate_library("featlib", 0xF3A7, 200);
    return compile_library(source, Arch::arm32, OptLevel::O2, 1);
  }();
  return library;
}

void BM_BuildCfg(benchmark::State& state) {
  const LibraryBinary& library = sample_library();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_cfg(library.functions[i]));
    i = (i + 1) % library.functions.size();
  }
}
BENCHMARK(BM_BuildCfg);

void BM_ExtractStaticFeatures(benchmark::State& state) {
  const LibraryBinary& library = sample_library();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extract_static_features(library.functions[i]));
    i = (i + 1) % library.functions.size();
  }
}
BENCHMARK(BM_ExtractStaticFeatures);

void BM_ExtractWholeLibrary(benchmark::State& state) {
  const LibraryBinary& library = sample_library();
  for (auto _ : state) {
    std::vector<StaticFeatureVector> all;
    all.reserve(library.functions.size());
    for (const auto& fn : library.functions)
      all.push_back(extract_static_features(fn));
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              library.functions.size()));
}
BENCHMARK(BM_ExtractWholeLibrary);

}  // namespace

int main(int argc, char** argv) {
  // Table I listing with a concrete example vector.
  const LibraryBinary& library = sample_library();
  const StaticFeatureVector example =
      extract_static_features(library.functions[7]);
  std::printf("=== Table I: the 48 static function features ===\n");
  TextTable table({"#", "Feature", "Example value (fn_7, arm32 -O2)"});
  for (std::size_t i = 0; i < static_feature_count; ++i)
    table.add_row({std::to_string(i + 1),
                   std::string(static_feature_name(i)),
                   fmt_double(example[i], 2)});
  std::printf("%s\n", table.render().c_str());

  return bench::run_gbench_to_json("static_features", &argc, argv);
}
