// Figure 8 reproduction: training accuracy and loss of the deep-learning
// similarity model, plus the headline test accuracy (paper: ~96% train
// accuracy, >93% detection accuracy, 0.971 AUC reported for prior work).
#include <cstdio>

#include "harness.h"
#include "util/table.h"

using namespace patchecko;

int main() {
  bench::HarnessConfig config = bench::harness_config();
  config.trainer.verbose = false;

  std::printf("=== Figure 8: training the deep learning model ===\n");
  std::printf(
      "Dataset I analog: %zu libraries x %zu functions, 4 architectures x 6 "
      "optimization levels (%.0f%% build-failure rate), split 60/20/20 by "
      "source function\n\n",
      config.trainer.dataset.library_count,
      config.trainer.dataset.functions_per_library,
      config.trainer.dataset.build_failure_rate * 100.0);

  const TrainingRun run = train_similarity_model(config.trainer);

  TextTable curve({"epoch", "train_acc", "train_loss", "val_acc",
                   "val_loss"});
  for (std::size_t e = 0; e < run.train_history.size(); ++e)
    curve.add_row({std::to_string(e + 1),
                   fmt_double(run.train_history[e].accuracy, 4),
                   fmt_double(run.train_history[e].loss, 4),
                   fmt_double(run.val_history[e].accuracy, 4),
                   fmt_double(run.val_history[e].loss, 4)});
  std::printf("%s\n", curve.render().c_str());

  std::printf("pairs: train=%zu val=%zu test=%zu\n", run.train_pairs,
              run.val_pairs, run.test_pairs);
  std::printf("test accuracy : %s (paper: ~0.96 training accuracy)\n",
              fmt_double(run.test_accuracy, 4).c_str());
  std::printf("test AUC      : %s (paper cites 0.971 AUC for [41])\n",
              fmt_double(run.test_auc, 4).c_str());
  const bool wrote = bench::write_bench_json(
      "fig8_training",
      {bench::BenchRow("model", {{"test_accuracy", run.test_accuracy},
                                 {"test_auc", run.test_auc},
                                 {"final_train_loss",
                                  run.train_history.back().loss}})},
      {"test_accuracy", "test_auc"});
  return wrote ? 0 : 1;
}
