// Hidden-patch-gap audit (the paper's motivating scenario): vendors claim a
// security-patch level, but do the binaries actually contain the patches?
// This audit compares each device's *claimed* patch status against what
// PATCHECKO finds in the shipped binaries — and plants two deliberate gaps
// (CVEs the vendor claims patched while shipping the vulnerable build).
// PATCHECKO exposes the CVE-2018-9412 gap; the CVE-2018-9470 gap survives
// the audit because its one-integer patch is the differential engine's
// documented blind spot (paper Table VIII).
#include <algorithm>
#include <cstdio>

#include "core/pipeline.h"
#include "dl/trainer.h"

using namespace patchecko;

int main() {
  std::printf("training model...\n");
  TrainerConfig trainer;
  trainer.dataset.library_count = 30;
  trainer.dataset.functions_per_library = 20;
  trainer.epochs = 10;
  const TrainingRun run = train_similarity_model(trainer);

  EvalConfig eval;
  eval.scale = 0.05;
  const EvalCorpus corpus(eval);
  const CveDatabase database(corpus, DatabaseConfig{});
  const Patchecko pipeline(&run.model);

  DeviceSpec device = android_things_device();
  // The vendor's *claim*: everything at the 2018-05 level plus two more
  // CVEs they report as fixed in their changelog...
  std::vector<std::string> claimed = device.patched_cves;
  claimed.push_back("CVE-2018-9412");   // claimed, NOT actually shipped
  claimed.push_back("CVE-2018-9470");   // claimed, NOT actually shipped

  std::printf(
      "\nauditing \"%s\" — vendor changelog claims %zu CVEs patched\n\n",
      device.name.c_str(), claimed.size());
  std::printf("  %-16s %-10s %-12s %s\n", "CVE", "claimed", "measured",
              "assessment");

  int hidden_gaps = 0, confirmed = 0;
  std::size_t current_lib = static_cast<std::size_t>(-1);
  LibraryBinary library;
  AnalyzedLibrary analyzed;
  for (const CveEntry& entry : database.entries()) {
    const bool vendor_claims =
        std::find(claimed.begin(), claimed.end(), entry.spec.cve_id) !=
        claimed.end();
    if (!vendor_claims) continue;  // audit only claimed fixes

    if (entry.library_index != current_lib) {
      current_lib = entry.library_index;
      library = corpus.compile_for_device(current_lib, device);
      analyzed = analyze_library(library);
    }
    const PatchReport report = pipeline.full_report(entry, analyzed);
    const bool measured_patched =
        report.decision &&
        report.decision->verdict == PatchVerdict::patched;
    const bool gap = vendor_claims && !measured_patched;
    std::printf("  %-16s %-10s %-12s %s\n", entry.spec.cve_id.c_str(),
                "patched", measured_patched ? "patched" : "vulnerable",
                gap ? "HIDDEN PATCH GAP" : "confirmed");
    hidden_gaps += gap ? 1 : 0;
    confirmed += gap ? 0 : 1;
  }

  std::printf(
      "\naudit result: %d claims confirmed, %d hidden patch gaps found\n",
      confirmed, hidden_gaps);
  std::printf(
      "(the paper: 80.4%% of vendor firmware ships with known-vulnerable "
      "third-party code, and vendors at times report patches they never "
      "shipped)\n");
  return 0;
}
