// Whole-firmware vulnerability scan: run all 25 database CVEs against every
// library of a device image and print the findings — the workflow a
// penetration tester would run against a vendor OTA payload.
//
// PATCHECKO_SCALE (default 0.1) shrinks the paper-sized libraries.
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "dl/trainer.h"
#include "util/timer.h"

using namespace patchecko;

int main(int argc, char** argv) {
  const char* scale_env = std::getenv("PATCHECKO_SCALE");
  EvalConfig eval;
  eval.scale = scale_env != nullptr ? std::atof(scale_env) : 0.1;
  const bool pixel = argc > 1 && std::string_view(argv[1]) == "--pixel";

  std::printf("training model...\n");
  TrainerConfig trainer;
  trainer.dataset.library_count = 30;
  trainer.dataset.functions_per_library = 20;
  trainer.epochs = 10;
  const TrainingRun run = train_similarity_model(trainer);

  std::printf("building corpus + database (scale %.2f)...\n", eval.scale);
  const EvalCorpus corpus(eval);
  const CveDatabase database(corpus, DatabaseConfig{});
  const DeviceSpec device =
      pixel ? pixel2xl_device() : android_things_device();

  std::printf("scanning firmware image of \"%s\" (%s patch level)...\n\n",
              device.name.c_str(), device.patch_level.c_str());

  const Patchecko pipeline(&run.model);
  Stopwatch total;
  int vulnerable = 0, patched = 0, unmatched = 0;
  std::size_t current_lib = static_cast<std::size_t>(-1);
  LibraryBinary library;
  AnalyzedLibrary analyzed;

  for (const CveEntry& entry : database.entries()) {
    if (entry.library_index != current_lib) {
      current_lib = entry.library_index;
      library = corpus.compile_for_device(current_lib, device);
      analyzed = analyze_library(library);
    }
    const PatchReport report = pipeline.full_report(entry, analyzed);
    if (!report.decision) {
      std::printf("  %-16s %-18s -> no match\n", entry.spec.cve_id.c_str(),
                  library.name.c_str());
      ++unmatched;
      continue;
    }
    const bool is_patched =
        report.decision->verdict == PatchVerdict::patched;
    std::printf("  %-16s %-18s -> %s (matched function #%zu)\n",
                entry.spec.cve_id.c_str(), library.name.c_str(),
                is_patched ? "patched" : "VULNERABLE",
                *report.matched_function);
    if (is_patched)
      ++patched;
    else
      ++vulnerable;
  }

  std::printf(
      "\nscan finished in %.1fs: %d still vulnerable, %d patched, %d "
      "unmatched\n",
      total.elapsed_seconds(), vulnerable, patched, unmatched);
  return 0;
}
