// Cross-platform study: one source function compiled for all 4 architectures
// at all 6 optimization levels (24 binaries). Shows how far the raw static
// features drift across the build matrix — and that the trained model still
// recognizes every variant pair as same-source while separating a different
// function (the heterogeneous-compilation challenge of Section II-A).
#include <cstdio>

#include "compiler/compiler.h"
#include "dl/trainer.h"
#include "source/generator.h"
#include "util/table.h"

using namespace patchecko;

int main() {
  std::printf("training model...\n");
  TrainerConfig trainer;
  trainer.dataset.library_count = 40;
  trainer.dataset.functions_per_library = 20;
  trainer.epochs = 12;
  const TrainingRun run = train_similarity_model(trainer);

  const SourceLibrary source = generate_library("study", 0xCA5E, 8);
  const std::size_t subject = 4;
  const std::size_t other = 5;

  std::printf("\nsubject: %s | decoy: %s\n\n",
              source.functions[subject].name.c_str(),
              source.functions[other].name.c_str());

  // Reference build the others are compared against.
  const FunctionBinary reference =
      compile_function(source, subject, Arch::amd64, OptLevel::O0, 0);
  const StaticFeatureVector ref_features =
      extract_static_features(reference);

  TextTable table({"arch", "opt", "num_inst", "num_bb", "size_fun",
                   "size_local", "model score vs amd64-O0",
                   "decoy score"});
  int matched = 0, total = 0;
  for (Arch arch : all_arches) {
    for (OptLevel opt : all_opt_levels) {
      const FunctionBinary variant =
          compile_function(source, subject, arch, opt, 0);
      const StaticFeatureVector features = extract_static_features(variant);
      const FunctionBinary decoy =
          compile_function(source, other, arch, opt, 0);
      const float score = run.model.score(ref_features, features);
      const float decoy_score =
          run.model.score(ref_features, extract_static_features(decoy));
      table.add_row({std::string(arch_name(arch)),
                     std::string(opt_level_name(opt)),
                     fmt_double(features[2], 0), fmt_double(features[17], 0),
                     fmt_double(features[8], 0), fmt_double(features[3], 0),
                     fmt_double(score, 3), fmt_double(decoy_score, 3)});
      ++total;
      if (score >= 0.5f && decoy_score < 0.5f) ++matched;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "model separated subject from decoy in %d of %d build configurations\n"
      "note how -O0 inflates num_inst/size_local (everything spilled), x86 "
      "pays two-operand copies, and ARM gets denser encodings — the "
      "classifier sees through most of that drift (the hardest cases are "
      "exactly why PATCHECKO adds the dynamic stage).\n",
      matched, total);
  return 0;
}
