// Quickstart: the smallest end-to-end PATCHECKO run.
//
//   1. train the deep-learning similarity model on a generated corpus,
//   2. build a firmware library that secretly contains a vulnerable
//      function,
//   3. run the two-stage pipeline against the CVE database entry,
//   4. check whether the match is still vulnerable or already patched.
//
// Runs in a few seconds; every step is the same API a real integration
// would use.
#include <cstdio>

#include "core/pipeline.h"
#include "dl/trainer.h"

using namespace patchecko;

int main() {
  // --- 1. Train the similarity model (scaled-down Dataset I). -------------
  std::printf("[1/4] training the similarity model...\n");
  TrainerConfig trainer;
  trainer.dataset.library_count = 24;
  trainer.dataset.functions_per_library = 16;
  trainer.epochs = 8;
  const TrainingRun run = train_similarity_model(trainer);
  std::printf("      test accuracy %.1f%%, AUC %.3f\n",
              run.test_accuracy * 100.0, run.test_auc);

  // --- 2. Build the evaluation universe (tiny scale). ---------------------
  std::printf("[2/4] generating firmware + vulnerability database...\n");
  EvalConfig eval;
  eval.scale = 0.03;  // shrink the paper's library sizes for the demo
  const EvalCorpus corpus(eval);
  const CveDatabase database(corpus, DatabaseConfig{});
  const DeviceSpec device = android_things_device();

  // --- 3. Hunt one CVE in the stripped target library. --------------------
  const CveEntry& entry = database.by_id("CVE-2018-9412");
  std::printf("[3/4] scanning %s for %s...\n",
              corpus.library_specs()[entry.library_index].name.c_str(),
              entry.spec.cve_id.c_str());
  const LibraryBinary target_library =
      corpus.compile_for_device(entry.library_index, device);
  const AnalyzedLibrary target = analyze_library(target_library);

  const Patchecko pipeline(&run.model);
  const DetectionOutcome outcome =
      pipeline.detect(entry, target, /*query_is_patched=*/false);
  std::printf(
      "      %zu functions scanned; %zu DL candidates; %zu survived "
      "execution validation; target ranked #%d\n",
      outcome.total, outcome.candidates.size(), outcome.executed,
      outcome.rank_of_target);

  // --- 4. Patch presence. ---------------------------------------------------
  std::printf("[4/4] differential analysis...\n");
  const PatchReport report = pipeline.full_report(entry, target);
  if (report.decision) {
    std::printf("      verdict: the device's %s is %s\n",
                entry.spec.cve_id.c_str(),
                report.decision->verdict == PatchVerdict::patched
                    ? "PATCHED"
                    : "STILL VULNERABLE");
    for (const std::string& note : report.decision->evidence)
      std::printf("      evidence: %s\n", note.c_str());
  } else {
    std::printf("      no match found\n");
  }
  return 0;
}
