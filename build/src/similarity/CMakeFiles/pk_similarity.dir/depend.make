# Empty dependencies file for pk_similarity.
# This may be replaced when dependencies are built.
