file(REMOVE_RECURSE
  "CMakeFiles/pk_similarity.dir/similarity.cpp.o"
  "CMakeFiles/pk_similarity.dir/similarity.cpp.o.d"
  "libpk_similarity.a"
  "libpk_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
