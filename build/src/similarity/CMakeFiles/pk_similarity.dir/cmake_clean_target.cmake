file(REMOVE_RECURSE
  "libpk_similarity.a"
)
