# CMake generated Testfile for 
# Source directory: /root/repo/src/source
# Build directory: /root/repo/build/src/source
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
