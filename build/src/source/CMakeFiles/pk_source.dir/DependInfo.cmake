
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/source/ast.cpp" "src/source/CMakeFiles/pk_source.dir/ast.cpp.o" "gcc" "src/source/CMakeFiles/pk_source.dir/ast.cpp.o.d"
  "/root/repo/src/source/generator.cpp" "src/source/CMakeFiles/pk_source.dir/generator.cpp.o" "gcc" "src/source/CMakeFiles/pk_source.dir/generator.cpp.o.d"
  "/root/repo/src/source/interp.cpp" "src/source/CMakeFiles/pk_source.dir/interp.cpp.o" "gcc" "src/source/CMakeFiles/pk_source.dir/interp.cpp.o.d"
  "/root/repo/src/source/mutate.cpp" "src/source/CMakeFiles/pk_source.dir/mutate.cpp.o" "gcc" "src/source/CMakeFiles/pk_source.dir/mutate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/pk_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
