file(REMOVE_RECURSE
  "libpk_source.a"
)
