file(REMOVE_RECURSE
  "CMakeFiles/pk_source.dir/ast.cpp.o"
  "CMakeFiles/pk_source.dir/ast.cpp.o.d"
  "CMakeFiles/pk_source.dir/generator.cpp.o"
  "CMakeFiles/pk_source.dir/generator.cpp.o.d"
  "CMakeFiles/pk_source.dir/interp.cpp.o"
  "CMakeFiles/pk_source.dir/interp.cpp.o.d"
  "CMakeFiles/pk_source.dir/mutate.cpp.o"
  "CMakeFiles/pk_source.dir/mutate.cpp.o.d"
  "libpk_source.a"
  "libpk_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
