# Empty dependencies file for pk_source.
# This may be replaced when dependencies are built.
