file(REMOVE_RECURSE
  "libpk_vm.a"
)
