file(REMOVE_RECURSE
  "CMakeFiles/pk_vm.dir/machine.cpp.o"
  "CMakeFiles/pk_vm.dir/machine.cpp.o.d"
  "libpk_vm.a"
  "libpk_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
