# Empty dependencies file for pk_vm.
# This may be replaced when dependencies are built.
