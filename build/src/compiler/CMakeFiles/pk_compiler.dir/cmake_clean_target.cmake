file(REMOVE_RECURSE
  "libpk_compiler.a"
)
