file(REMOVE_RECURSE
  "CMakeFiles/pk_compiler.dir/compiler.cpp.o"
  "CMakeFiles/pk_compiler.dir/compiler.cpp.o.d"
  "CMakeFiles/pk_compiler.dir/lower.cpp.o"
  "CMakeFiles/pk_compiler.dir/lower.cpp.o.d"
  "CMakeFiles/pk_compiler.dir/passes.cpp.o"
  "CMakeFiles/pk_compiler.dir/passes.cpp.o.d"
  "CMakeFiles/pk_compiler.dir/regalloc.cpp.o"
  "CMakeFiles/pk_compiler.dir/regalloc.cpp.o.d"
  "libpk_compiler.a"
  "libpk_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
