
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/compiler.cpp" "src/compiler/CMakeFiles/pk_compiler.dir/compiler.cpp.o" "gcc" "src/compiler/CMakeFiles/pk_compiler.dir/compiler.cpp.o.d"
  "/root/repo/src/compiler/lower.cpp" "src/compiler/CMakeFiles/pk_compiler.dir/lower.cpp.o" "gcc" "src/compiler/CMakeFiles/pk_compiler.dir/lower.cpp.o.d"
  "/root/repo/src/compiler/passes.cpp" "src/compiler/CMakeFiles/pk_compiler.dir/passes.cpp.o" "gcc" "src/compiler/CMakeFiles/pk_compiler.dir/passes.cpp.o.d"
  "/root/repo/src/compiler/regalloc.cpp" "src/compiler/CMakeFiles/pk_compiler.dir/regalloc.cpp.o" "gcc" "src/compiler/CMakeFiles/pk_compiler.dir/regalloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/binary/CMakeFiles/pk_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/source/CMakeFiles/pk_source.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pk_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pk_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
