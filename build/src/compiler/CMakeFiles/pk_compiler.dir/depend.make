# Empty dependencies file for pk_compiler.
# This may be replaced when dependencies are built.
