# Empty compiler generated dependencies file for pk_graph.
# This may be replaced when dependencies are built.
