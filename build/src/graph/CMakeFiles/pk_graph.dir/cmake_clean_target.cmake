file(REMOVE_RECURSE
  "libpk_graph.a"
)
