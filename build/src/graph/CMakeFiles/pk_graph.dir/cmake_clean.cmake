file(REMOVE_RECURSE
  "CMakeFiles/pk_graph.dir/digraph.cpp.o"
  "CMakeFiles/pk_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/pk_graph.dir/matching.cpp.o"
  "CMakeFiles/pk_graph.dir/matching.cpp.o.d"
  "libpk_graph.a"
  "libpk_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
