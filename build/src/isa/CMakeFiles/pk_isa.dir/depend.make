# Empty dependencies file for pk_isa.
# This may be replaced when dependencies are built.
