file(REMOVE_RECURSE
  "libpk_isa.a"
)
