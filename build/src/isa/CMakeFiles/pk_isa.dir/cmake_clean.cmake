file(REMOVE_RECURSE
  "CMakeFiles/pk_isa.dir/isa.cpp.o"
  "CMakeFiles/pk_isa.dir/isa.cpp.o.d"
  "libpk_isa.a"
  "libpk_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
