# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("graph")
subdirs("isa")
subdirs("source")
subdirs("compiler")
subdirs("binary")
subdirs("firmware")
subdirs("features")
subdirs("dl")
subdirs("vm")
subdirs("fuzz")
subdirs("similarity")
subdirs("diff")
subdirs("core")
subdirs("baseline")
