
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/dataset.cpp" "src/dl/CMakeFiles/pk_dl.dir/dataset.cpp.o" "gcc" "src/dl/CMakeFiles/pk_dl.dir/dataset.cpp.o.d"
  "/root/repo/src/dl/network.cpp" "src/dl/CMakeFiles/pk_dl.dir/network.cpp.o" "gcc" "src/dl/CMakeFiles/pk_dl.dir/network.cpp.o.d"
  "/root/repo/src/dl/similarity_model.cpp" "src/dl/CMakeFiles/pk_dl.dir/similarity_model.cpp.o" "gcc" "src/dl/CMakeFiles/pk_dl.dir/similarity_model.cpp.o.d"
  "/root/repo/src/dl/trainer.cpp" "src/dl/CMakeFiles/pk_dl.dir/trainer.cpp.o" "gcc" "src/dl/CMakeFiles/pk_dl.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/pk_features.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/pk_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/source/CMakeFiles/pk_source.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/pk_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pk_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pk_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
