file(REMOVE_RECURSE
  "libpk_dl.a"
)
