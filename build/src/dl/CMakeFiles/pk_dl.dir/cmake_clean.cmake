file(REMOVE_RECURSE
  "CMakeFiles/pk_dl.dir/dataset.cpp.o"
  "CMakeFiles/pk_dl.dir/dataset.cpp.o.d"
  "CMakeFiles/pk_dl.dir/network.cpp.o"
  "CMakeFiles/pk_dl.dir/network.cpp.o.d"
  "CMakeFiles/pk_dl.dir/similarity_model.cpp.o"
  "CMakeFiles/pk_dl.dir/similarity_model.cpp.o.d"
  "CMakeFiles/pk_dl.dir/trainer.cpp.o"
  "CMakeFiles/pk_dl.dir/trainer.cpp.o.d"
  "libpk_dl.a"
  "libpk_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
