# Empty dependencies file for pk_dl.
# This may be replaced when dependencies are built.
