# Empty dependencies file for pk_baseline.
# This may be replaced when dependencies are built.
