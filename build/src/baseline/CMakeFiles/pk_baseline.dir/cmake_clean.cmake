file(REMOVE_RECURSE
  "CMakeFiles/pk_baseline.dir/baseline.cpp.o"
  "CMakeFiles/pk_baseline.dir/baseline.cpp.o.d"
  "CMakeFiles/pk_baseline.dir/graph_embedding.cpp.o"
  "CMakeFiles/pk_baseline.dir/graph_embedding.cpp.o.d"
  "libpk_baseline.a"
  "libpk_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
