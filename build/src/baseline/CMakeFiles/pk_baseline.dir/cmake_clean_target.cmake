file(REMOVE_RECURSE
  "libpk_baseline.a"
)
