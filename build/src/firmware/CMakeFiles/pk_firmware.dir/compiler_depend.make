# Empty compiler generated dependencies file for pk_firmware.
# This may be replaced when dependencies are built.
