file(REMOVE_RECURSE
  "CMakeFiles/pk_firmware.dir/firmware.cpp.o"
  "CMakeFiles/pk_firmware.dir/firmware.cpp.o.d"
  "libpk_firmware.a"
  "libpk_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
