file(REMOVE_RECURSE
  "libpk_firmware.a"
)
