# Empty compiler generated dependencies file for pk_binary.
# This may be replaced when dependencies are built.
