file(REMOVE_RECURSE
  "libpk_binary.a"
)
