file(REMOVE_RECURSE
  "CMakeFiles/pk_binary.dir/binary.cpp.o"
  "CMakeFiles/pk_binary.dir/binary.cpp.o.d"
  "CMakeFiles/pk_binary.dir/cfg.cpp.o"
  "CMakeFiles/pk_binary.dir/cfg.cpp.o.d"
  "CMakeFiles/pk_binary.dir/obfuscate.cpp.o"
  "CMakeFiles/pk_binary.dir/obfuscate.cpp.o.d"
  "libpk_binary.a"
  "libpk_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
