file(REMOVE_RECURSE
  "CMakeFiles/pk_diff.dir/differential.cpp.o"
  "CMakeFiles/pk_diff.dir/differential.cpp.o.d"
  "libpk_diff.a"
  "libpk_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
