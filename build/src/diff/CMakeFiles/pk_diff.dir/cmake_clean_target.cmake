file(REMOVE_RECURSE
  "libpk_diff.a"
)
