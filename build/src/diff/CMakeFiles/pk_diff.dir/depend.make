# Empty dependencies file for pk_diff.
# This may be replaced when dependencies are built.
