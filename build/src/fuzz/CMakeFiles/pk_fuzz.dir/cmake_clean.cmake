file(REMOVE_RECURSE
  "CMakeFiles/pk_fuzz.dir/fuzzer.cpp.o"
  "CMakeFiles/pk_fuzz.dir/fuzzer.cpp.o.d"
  "libpk_fuzz.a"
  "libpk_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
