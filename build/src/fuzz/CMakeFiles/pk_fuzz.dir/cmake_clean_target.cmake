file(REMOVE_RECURSE
  "libpk_fuzz.a"
)
