# Empty dependencies file for pk_fuzz.
# This may be replaced when dependencies are built.
