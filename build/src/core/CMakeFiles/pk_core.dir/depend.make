# Empty dependencies file for pk_core.
# This may be replaced when dependencies are built.
