file(REMOVE_RECURSE
  "libpk_core.a"
)
