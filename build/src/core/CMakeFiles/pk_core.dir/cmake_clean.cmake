file(REMOVE_RECURSE
  "CMakeFiles/pk_core.dir/cve_database.cpp.o"
  "CMakeFiles/pk_core.dir/cve_database.cpp.o.d"
  "CMakeFiles/pk_core.dir/pipeline.cpp.o"
  "CMakeFiles/pk_core.dir/pipeline.cpp.o.d"
  "libpk_core.a"
  "libpk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
