file(REMOVE_RECURSE
  "CMakeFiles/pk_features.dir/static_features.cpp.o"
  "CMakeFiles/pk_features.dir/static_features.cpp.o.d"
  "libpk_features.a"
  "libpk_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
