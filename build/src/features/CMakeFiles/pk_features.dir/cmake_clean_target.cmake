file(REMOVE_RECURSE
  "libpk_features.a"
)
