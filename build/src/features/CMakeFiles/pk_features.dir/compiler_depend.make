# Empty compiler generated dependencies file for pk_features.
# This may be replaced when dependencies are built.
