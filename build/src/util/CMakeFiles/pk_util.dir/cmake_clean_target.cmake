file(REMOVE_RECURSE
  "libpk_util.a"
)
