file(REMOVE_RECURSE
  "CMakeFiles/pk_util.dir/parallel.cpp.o"
  "CMakeFiles/pk_util.dir/parallel.cpp.o.d"
  "CMakeFiles/pk_util.dir/stats.cpp.o"
  "CMakeFiles/pk_util.dir/stats.cpp.o.d"
  "CMakeFiles/pk_util.dir/table.cpp.o"
  "CMakeFiles/pk_util.dir/table.cpp.o.d"
  "libpk_util.a"
  "libpk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
