# Empty dependencies file for pk_util.
# This may be replaced when dependencies are built.
