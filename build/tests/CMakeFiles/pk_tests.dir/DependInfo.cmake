
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline_dataset.cpp" "tests/CMakeFiles/pk_tests.dir/test_baseline_dataset.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_baseline_dataset.cpp.o.d"
  "/root/repo/tests/test_binary_cfg.cpp" "tests/CMakeFiles/pk_tests.dir/test_binary_cfg.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_binary_cfg.cpp.o.d"
  "/root/repo/tests/test_compiler.cpp" "tests/CMakeFiles/pk_tests.dir/test_compiler.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_compiler.cpp.o.d"
  "/root/repo/tests/test_diff.cpp" "tests/CMakeFiles/pk_tests.dir/test_diff.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_diff.cpp.o.d"
  "/root/repo/tests/test_dl.cpp" "tests/CMakeFiles/pk_tests.dir/test_dl.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_dl.cpp.o.d"
  "/root/repo/tests/test_features.cpp" "tests/CMakeFiles/pk_tests.dir/test_features.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_features.cpp.o.d"
  "/root/repo/tests/test_firmware.cpp" "tests/CMakeFiles/pk_tests.dir/test_firmware.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_firmware.cpp.o.d"
  "/root/repo/tests/test_fuzz_similarity.cpp" "tests/CMakeFiles/pk_tests.dir/test_fuzz_similarity.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_fuzz_similarity.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/pk_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/pk_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_embedding.cpp" "tests/CMakeFiles/pk_tests.dir/test_graph_embedding.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_graph_embedding.cpp.o.d"
  "/root/repo/tests/test_interp.cpp" "tests/CMakeFiles/pk_tests.dir/test_interp.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_interp.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/pk_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_mutate.cpp" "tests/CMakeFiles/pk_tests.dir/test_mutate.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_mutate.cpp.o.d"
  "/root/repo/tests/test_obfuscate.cpp" "tests/CMakeFiles/pk_tests.dir/test_obfuscate.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_obfuscate.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/pk_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_semantics_equivalence.cpp" "tests/CMakeFiles/pk_tests.dir/test_semantics_equivalence.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_semantics_equivalence.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/pk_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/pk_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_vm.cpp" "tests/CMakeFiles/pk_tests.dir/test_vm.cpp.o" "gcc" "tests/CMakeFiles/pk_tests.dir/test_vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/pk_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/diff/CMakeFiles/pk_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/pk_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/pk_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/pk_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pk_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/pk_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/pk_features.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/pk_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/pk_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/source/CMakeFiles/pk_source.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pk_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pk_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
