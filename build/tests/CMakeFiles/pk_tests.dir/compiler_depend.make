# Empty compiler generated dependencies file for pk_tests.
# This may be replaced when dependencies are built.
