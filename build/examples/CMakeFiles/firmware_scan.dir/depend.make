# Empty dependencies file for firmware_scan.
# This may be replaced when dependencies are built.
