file(REMOVE_RECURSE
  "CMakeFiles/firmware_scan.dir/firmware_scan.cpp.o"
  "CMakeFiles/firmware_scan.dir/firmware_scan.cpp.o.d"
  "firmware_scan"
  "firmware_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
