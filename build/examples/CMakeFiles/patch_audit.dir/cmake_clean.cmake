file(REMOVE_RECURSE
  "CMakeFiles/patch_audit.dir/patch_audit.cpp.o"
  "CMakeFiles/patch_audit.dir/patch_audit.cpp.o.d"
  "patch_audit"
  "patch_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patch_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
