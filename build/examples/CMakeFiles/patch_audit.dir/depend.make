# Empty dependencies file for patch_audit.
# This may be replaced when dependencies are built.
