
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/pk_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/diff/CMakeFiles/pk_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/pk_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/pk_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/pk_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pk_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/pk_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/pk_features.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/pk_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/binary/CMakeFiles/pk_binary.dir/DependInfo.cmake"
  "/root/repo/build/src/source/CMakeFiles/pk_source.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pk_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pk_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
