file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_dynamic.dir/bench_parallel_dynamic.cpp.o"
  "CMakeFiles/bench_parallel_dynamic.dir/bench_parallel_dynamic.cpp.o.d"
  "bench_parallel_dynamic"
  "bench_parallel_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
