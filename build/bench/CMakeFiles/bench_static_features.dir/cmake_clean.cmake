file(REMOVE_RECURSE
  "CMakeFiles/bench_static_features.dir/bench_static_features.cpp.o"
  "CMakeFiles/bench_static_features.dir/bench_static_features.cpp.o.d"
  "bench_static_features"
  "bench_static_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
