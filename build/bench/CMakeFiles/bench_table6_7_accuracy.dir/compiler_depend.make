# Empty compiler generated dependencies file for bench_table6_7_accuracy.
# This may be replaced when dependencies are built.
