# Empty dependencies file for bench_obfuscation.
# This may be replaced when dependencies are built.
