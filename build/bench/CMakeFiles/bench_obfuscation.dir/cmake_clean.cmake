file(REMOVE_RECURSE
  "CMakeFiles/bench_obfuscation.dir/bench_obfuscation.cpp.o"
  "CMakeFiles/bench_obfuscation.dir/bench_obfuscation.cpp.o.d"
  "bench_obfuscation"
  "bench_obfuscation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
