file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_5_ranking.dir/bench_table4_5_ranking.cpp.o"
  "CMakeFiles/bench_table4_5_ranking.dir/bench_table4_5_ranking.cpp.o.d"
  "bench_table4_5_ranking"
  "bench_table4_5_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_5_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
