file(REMOVE_RECURSE
  "CMakeFiles/bench_overview_scale.dir/bench_overview_scale.cpp.o"
  "CMakeFiles/bench_overview_scale.dir/bench_overview_scale.cpp.o.d"
  "bench_overview_scale"
  "bench_overview_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overview_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
