# Empty compiler generated dependencies file for bench_overview_scale.
# This may be replaced when dependencies are built.
