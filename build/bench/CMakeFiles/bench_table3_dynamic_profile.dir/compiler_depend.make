# Empty compiler generated dependencies file for bench_table3_dynamic_profile.
# This may be replaced when dependencies are built.
