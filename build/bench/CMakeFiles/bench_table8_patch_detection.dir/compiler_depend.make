# Empty compiler generated dependencies file for bench_table8_patch_detection.
# This may be replaced when dependencies are built.
