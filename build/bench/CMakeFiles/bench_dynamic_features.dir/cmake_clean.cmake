file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_features.dir/bench_dynamic_features.cpp.o"
  "CMakeFiles/bench_dynamic_features.dir/bench_dynamic_features.cpp.o.d"
  "bench_dynamic_features"
  "bench_dynamic_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
