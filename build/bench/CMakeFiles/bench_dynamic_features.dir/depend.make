# Empty dependencies file for bench_dynamic_features.
# This may be replaced when dependencies are built.
