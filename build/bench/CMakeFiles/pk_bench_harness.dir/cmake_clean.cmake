file(REMOVE_RECURSE
  "CMakeFiles/pk_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/pk_bench_harness.dir/harness.cpp.o.d"
  "libpk_bench_harness.a"
  "libpk_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pk_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
