# Empty compiler generated dependencies file for pk_bench_harness.
# This may be replaced when dependencies are built.
