file(REMOVE_RECURSE
  "libpk_bench_harness.a"
)
