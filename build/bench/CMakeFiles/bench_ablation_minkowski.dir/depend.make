# Empty dependencies file for bench_ablation_minkowski.
# This may be replaced when dependencies are built.
