file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_minkowski.dir/bench_ablation_minkowski.cpp.o"
  "CMakeFiles/bench_ablation_minkowski.dir/bench_ablation_minkowski.cpp.o.d"
  "bench_ablation_minkowski"
  "bench_ablation_minkowski.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_minkowski.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
