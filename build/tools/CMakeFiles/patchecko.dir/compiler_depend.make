# Empty compiler generated dependencies file for patchecko.
# This may be replaced when dependencies are built.
