file(REMOVE_RECURSE
  "CMakeFiles/patchecko.dir/patchecko_cli.cpp.o"
  "CMakeFiles/patchecko.dir/patchecko_cli.cpp.o.d"
  "patchecko"
  "patchecko.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchecko.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
