#include "baseline/graph_embedding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "binary/cfg.h"
#include "compiler/compiler.h"
#include "dl/network.h"  // auc_score
#include "source/generator.h"

namespace patchecko {

EmbeddingGraph embedding_graph(const FunctionBinary& function) {
  const Cfg cfg = build_cfg(function);
  EmbeddingGraph graph;
  graph.node_features.resize(cfg.block_count());
  graph.successors.resize(cfg.block_count());
  const auto in_degrees = cfg.graph.in_degrees();
  for (std::size_t b = 0; b < cfg.block_count(); ++b) {
    const BasicBlock& block = cfg.blocks[b];
    double arith = 0, calls = 0, mem = 0, branches = 0, constants = 0;
    for (std::size_t i = block.first; i <= block.last; ++i) {
      const Opcode op = function.code[i].op;
      if (is_arith(op)) ++arith;
      if (is_call(op) || op == Opcode::libcall || op == Opcode::syscall)
        ++calls;
      if (is_load(op) || is_store(op)) ++mem;
      if (is_branch(op)) ++branches;
      if (op == Opcode::ldi) ++constants;
    }
    auto& x = graph.node_features[b];
    x = {std::log1p(static_cast<double>(block.instruction_count())),
         std::log1p(arith),
         std::log1p(calls),
         std::log1p(mem),
         std::log1p(branches),
         std::log1p(static_cast<double>(cfg.graph.successors(b).size())),
         std::log1p(static_cast<double>(in_degrees[b])),
         std::log1p(constants)};
    graph.successors[b] = cfg.graph.successors(b);
  }
  return graph;
}

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

struct GraphEmbedder::Forward {
  // mu[t][v * dim + d]: node embeddings after t rounds (mu[0] == 0).
  std::vector<std::vector<double>> mu;
  // s[t][v * dim + d]: neighbour sums feeding round t (t in [1, T]).
  std::vector<std::vector<double>> s;
  std::vector<double> graph_sum;  // sum_v mu_v^T
  std::vector<double> embedding;  // W3 * graph_sum
};

GraphEmbedder::GraphEmbedder(const GraphEmbedConfig& config,
                             std::uint64_t seed)
    : config_(config) {
  Rng rng(seed);
  const std::size_t dim = config_.embedding_dim;
  const double scale1 = std::sqrt(1.0 / block_feature_count);
  const double scale2 = std::sqrt(1.0 / static_cast<double>(dim));
  w1_.resize(dim * block_feature_count);
  w2_.resize(dim * dim);
  w3_.resize(dim * dim);
  for (double& w : w1_) w = rng.gaussian(0.0, scale1);
  for (double& w : w2_) w = rng.gaussian(0.0, scale2 * 0.5);
  for (double& w : w3_) w = rng.gaussian(0.0, scale2);
}

GraphEmbedder::Forward GraphEmbedder::forward(
    const EmbeddingGraph& graph) const {
  const std::size_t dim = config_.embedding_dim;
  const std::size_t n = graph.node_count();
  Forward cache;
  cache.mu.assign(static_cast<std::size_t>(config_.iterations) + 1,
                  std::vector<double>(n * dim, 0.0));
  cache.s.assign(static_cast<std::size_t>(config_.iterations) + 1,
                 std::vector<double>(n * dim, 0.0));

  for (int t = 1; t <= config_.iterations; ++t) {
    const auto& prev = cache.mu[static_cast<std::size_t>(t) - 1];
    auto& s = cache.s[static_cast<std::size_t>(t)];
    auto& mu = cache.mu[static_cast<std::size_t>(t)];
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t u : graph.successors[v])
        for (std::size_t d = 0; d < dim; ++d)
          s[v * dim + d] += prev[u * dim + d];
      for (std::size_t d = 0; d < dim; ++d) {
        double pre = 0.0;
        for (std::size_t f = 0; f < block_feature_count; ++f)
          pre += w1_[d * block_feature_count + f] * graph.node_features[v][f];
        for (std::size_t k = 0; k < dim; ++k)
          pre += w2_[d * dim + k] * s[v * dim + k];
        mu[v * dim + d] = std::tanh(pre);
      }
    }
  }

  cache.graph_sum.assign(dim, 0.0);
  const auto& last = cache.mu[static_cast<std::size_t>(config_.iterations)];
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t d = 0; d < dim; ++d)
      cache.graph_sum[d] += last[v * dim + d];

  cache.embedding.assign(dim, 0.0);
  for (std::size_t d = 0; d < dim; ++d)
    for (std::size_t k = 0; k < dim; ++k)
      cache.embedding[d] += w3_[d * dim + k] * cache.graph_sum[k];
  return cache;
}

std::vector<double> GraphEmbedder::embed(const EmbeddingGraph& graph) const {
  return forward(graph).embedding;
}

double GraphEmbedder::similarity(const EmbeddingGraph& a,
                                 const EmbeddingGraph& b) const {
  const std::vector<double> ea = embed(a);
  const std::vector<double> eb = embed(b);
  const double na = norm(ea), nb = norm(eb);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(ea, eb) / (na * nb);
}

void GraphEmbedder::backward(const EmbeddingGraph& graph,
                             const Forward& cache,
                             const std::vector<double>& grad_embedding) {
  const std::size_t dim = config_.embedding_dim;
  const std::size_t n = graph.node_count();
  const double lr = config_.learning_rate;

  // Gradients accumulate locally, applied at the end (plain SGD).
  std::vector<double> gw1(w1_.size(), 0.0), gw2(w2_.size(), 0.0),
      gw3(w3_.size(), 0.0);

  // e = W3 g  =>  dW3 = de (x) g,  dg = W3^T de.
  std::vector<double> grad_sum(dim, 0.0);
  for (std::size_t d = 0; d < dim; ++d)
    for (std::size_t k = 0; k < dim; ++k) {
      gw3[d * dim + k] += grad_embedding[d] * cache.graph_sum[k];
      grad_sum[k] += w3_[d * dim + k] * grad_embedding[d];
    }

  // d mu_v^T = dg for every node.
  std::vector<double> grad_mu(n * dim);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t d = 0; d < dim; ++d)
      grad_mu[v * dim + d] = grad_sum[d];

  for (int t = config_.iterations; t >= 1; --t) {
    const auto& mu = cache.mu[static_cast<std::size_t>(t)];
    const auto& s = cache.s[static_cast<std::size_t>(t)];
    std::vector<double> grad_prev(n * dim, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      // d pre = d mu * (1 - mu^2)
      std::vector<double> grad_pre(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        const double m = mu[v * dim + d];
        grad_pre[d] = grad_mu[v * dim + d] * (1.0 - m * m);
      }
      for (std::size_t d = 0; d < dim; ++d) {
        for (std::size_t f = 0; f < block_feature_count; ++f)
          gw1[d * block_feature_count + f] +=
              grad_pre[d] * graph.node_features[v][f];
        for (std::size_t k = 0; k < dim; ++k)
          gw2[d * dim + k] += grad_pre[d] * s[v * dim + k];
      }
      // ds = W2^T d pre; ds flows to predecessors' mu^{t-1}.
      std::vector<double> grad_s(dim, 0.0);
      for (std::size_t d = 0; d < dim; ++d)
        for (std::size_t k = 0; k < dim; ++k)
          grad_s[k] += w2_[d * dim + k] * grad_pre[d];
      for (std::size_t u : graph.successors[v])
        for (std::size_t d = 0; d < dim; ++d)
          grad_prev[u * dim + d] += grad_s[d];
    }
    grad_mu = std::move(grad_prev);
  }

  for (std::size_t i = 0; i < w1_.size(); ++i) w1_[i] -= lr * gw1[i];
  for (std::size_t i = 0; i < w2_.size(); ++i) w2_[i] -= lr * gw2[i];
  for (std::size_t i = 0; i < w3_.size(); ++i) w3_[i] -= lr * gw3[i];
}

double GraphEmbedder::train_pair(const EmbeddingGraph& a,
                                 const EmbeddingGraph& b, bool same_source) {
  const Forward fa = forward(a);
  const Forward fb = forward(b);
  const double na = norm(fa.embedding), nb = norm(fb.embedding);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  const double cosine = dot(fa.embedding, fb.embedding) / (na * nb);

  double loss, dcos;
  if (same_source) {
    loss = 1.0 - cosine;
    dcos = -1.0;
  } else {
    loss = std::max(0.0, cosine - config_.margin);
    dcos = loss > 0.0 ? 1.0 : 0.0;
  }
  if (dcos == 0.0) return loss;

  const std::size_t dim = config_.embedding_dim;
  std::vector<double> grad_a(dim), grad_b(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    grad_a[d] = dcos * (fb.embedding[d] / (na * nb) -
                        cosine * fa.embedding[d] / (na * na));
    grad_b[d] = dcos * (fa.embedding[d] / (na * nb) -
                        cosine * fb.embedding[d] / (nb * nb));
  }
  backward(a, fa, grad_a);
  backward(b, fb, grad_b);
  return loss;
}

GraphEmbedTrainingRun train_graph_embedder(
    const GraphEmbedConfig& config, std::size_t library_count,
    std::size_t functions_per_library, std::uint64_t seed) {
  GraphEmbedTrainingRun run;
  run.model = GraphEmbedder(config, seed);
  Rng rng(seed ^ 0x6E4B);

  // Variant graphs per source function: two arches x two opt levels keeps
  // the corpus cheap while retaining the cross-platform premise.
  struct FnGraphs {
    std::vector<EmbeddingGraph> variants;
  };
  std::vector<FnGraphs> corpus;
  for (std::size_t lib = 0; lib < library_count; ++lib) {
    const SourceLibrary source = generate_library(
        "gnn_" + std::to_string(lib), rng.fork(lib + 1)(),
        functions_per_library);
    const std::size_t first = corpus.size();
    corpus.resize(corpus.size() + source.functions.size());
    for (Arch arch : {Arch::amd64, Arch::arm32}) {
      for (OptLevel opt : {OptLevel::O1, OptLevel::O2}) {
        const LibraryBinary binary = compile_library(source, arch, opt);
        for (std::size_t f = 0; f < binary.functions.size(); ++f)
          corpus[first + f].variants.push_back(
              embedding_graph(binary.functions[f]));
      }
    }
  }

  // Pairs, split by function 80/20.
  std::vector<std::size_t> order(corpus.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  const std::size_t train_end = order.size() * 8 / 10;

  auto make_pairs = [&](std::size_t begin, std::size_t end) {
    std::vector<GraphPair> pairs;
    for (std::size_t k = begin; k < end; ++k) {
      const FnGraphs& fn = corpus[order[k]];
      if (fn.variants.size() < 2) continue;
      for (int p = 0; p < 2; ++p) {
        GraphPair positive;
        positive.a = fn.variants[static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(fn.variants.size()) - 1))];
        positive.b = fn.variants[static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(fn.variants.size()) - 1))];
        positive.same_source = true;
        pairs.push_back(std::move(positive));

        const std::size_t other =
            order[begin + static_cast<std::size_t>(rng.uniform(
                      0, static_cast<std::int64_t>(end - begin) - 1))];
        if (other == order[k] || corpus[other].variants.empty()) continue;
        GraphPair negative;
        negative.a = fn.variants.front();
        negative.b = corpus[other].variants.front();
        negative.same_source = false;
        pairs.push_back(std::move(negative));
      }
    }
    return pairs;
  };
  std::vector<GraphPair> train_pairs = make_pairs(0, train_end);
  const std::vector<GraphPair> test_pairs =
      make_pairs(train_end, order.size());

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    std::shuffle(train_pairs.begin(), train_pairs.end(), rng);
    double total = 0.0;
    for (const GraphPair& pair : train_pairs)
      total += run.model.train_pair(pair.a, pair.b, pair.same_source);
    run.epoch_losses.push_back(
        train_pairs.empty() ? 0.0
                            : total / static_cast<double>(train_pairs.size()));
  }

  std::vector<float> scores, labels;
  std::size_t correct = 0;
  for (const GraphPair& pair : test_pairs) {
    const double cosine = run.model.similarity(pair.a, pair.b);
    scores.push_back(static_cast<float>(cosine));
    labels.push_back(pair.same_source ? 1.f : 0.f);
    if ((cosine >= 0.5) == pair.same_source) ++correct;
  }
  run.test_auc = auc_score(scores, labels);
  run.test_accuracy = test_pairs.empty()
                          ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(test_pairs.size());
  return run;
}

}  // namespace patchecko
