// Structure2vec-style graph embedding baseline — the paper's main prior-art
// comparator ([41] Xu et al., "Neural network-based graph embedding for
// cross-platform binary code similarity detection", CCS 2017).
//
// Each CFG basic block carries a small raw feature vector x_v; T rounds of
// neighbourhood aggregation produce node embeddings
//
//     mu_v^{t+1} = tanh( W1 x_v + W2 * sum_{u in succ(v)} mu_u^t )
//
// and the graph embedding is W3 * sum_v mu_v^T. Two functions are similar
// when their embeddings' cosine is high. The model trains siamese-style on
// the same same-source/different-source pairs as the PATCHECKO classifier,
// with manual backpropagation through the unrolled aggregation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "binary/binary.h"
#include "util/rng.h"

namespace patchecko {

/// Raw per-basic-block features fed to the embedding network.
constexpr std::size_t block_feature_count = 8;

/// A CFG prepared for embedding: per-node features + successor lists.
struct EmbeddingGraph {
  std::vector<std::array<double, block_feature_count>> node_features;
  std::vector<std::vector<std::size_t>> successors;

  std::size_t node_count() const { return node_features.size(); }
};

/// Extracts the embedding graph of a compiled function.
EmbeddingGraph embedding_graph(const FunctionBinary& function);

struct GraphEmbedConfig {
  std::size_t embedding_dim = 32;
  int iterations = 3;           ///< T rounds of aggregation
  double learning_rate = 5e-3;
  std::size_t epochs = 4;
  double margin = 0.3;          ///< hinge margin for negative pairs
};

/// The trainable siamese model.
class GraphEmbedder {
 public:
  GraphEmbedder() = default;
  GraphEmbedder(const GraphEmbedConfig& config, std::uint64_t seed);

  /// Embedding of one graph (length embedding_dim).
  std::vector<double> embed(const EmbeddingGraph& graph) const;

  /// Cosine of the two graphs' embeddings in [-1, 1]; higher = more similar.
  double similarity(const EmbeddingGraph& a, const EmbeddingGraph& b) const;

  /// One SGD step on a labelled pair (label 1 = same source). Returns the
  /// pair loss before the update.
  double train_pair(const EmbeddingGraph& a, const EmbeddingGraph& b,
                    bool same_source);

  const GraphEmbedConfig& config() const { return config_; }

 private:
  struct Forward;  // cached activations for backprop

  Forward forward(const EmbeddingGraph& graph) const;
  void backward(const EmbeddingGraph& graph, const Forward& cache,
                const std::vector<double>& grad_embedding);

  GraphEmbedConfig config_;
  // W1: dim x features, W2: dim x dim, W3: dim x dim (row-major).
  std::vector<double> w1_, w2_, w3_;
};

struct GraphPair {
  EmbeddingGraph a;
  EmbeddingGraph b;
  bool same_source = false;
};

struct GraphEmbedTrainingRun {
  GraphEmbedder model;
  std::vector<double> epoch_losses;
  double test_auc = 0.0;
  double test_accuracy = 0.0;  ///< at the best symmetric cosine threshold 0
};

/// Builds a pair corpus from compiled variants (cross arch/opt positives,
/// random negatives) and trains the embedder.
GraphEmbedTrainingRun train_graph_embedder(
    const GraphEmbedConfig& config, std::size_t library_count,
    std::size_t functions_per_library, std::uint64_t seed);

}  // namespace patchecko
