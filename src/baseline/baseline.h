// State-of-the-art baselines (Section VI comparison).
//
// 1. BinDiff-style graph matching: basic blocks of two functions are matched
//    via minimum-cost bipartite assignment over block-level feature vectors;
//    the normalized assignment cost is the dissimilarity. This reproduces
//    the structure-matching family of prior work ([44], [16], [17]).
// 2. Static-only detector: rank target functions by plain (normalized)
//    feature distance to the query, no neural network and no dynamic stage —
//    the scalability-first approach the paper argues leaves hundreds of
//    candidates to triage.
#pragma once

#include <cstddef>
#include <vector>

#include "binary/binary.h"
#include "features/static_features.h"

namespace patchecko {

/// Dissimilarity in [0, +inf): 0 = structurally identical block sets.
double bindiff_distance(const FunctionBinary& a, const FunctionBinary& b);

struct StaticRanked {
  std::size_t function_index = 0;
  double distance = 0.0;
};

/// Ranks every target function by Euclidean distance between
/// log1p-compressed feature vectors (closest first).
std::vector<StaticRanked> static_distance_ranking(
    const StaticFeatureVector& query,
    const std::vector<StaticFeatureVector>& functions);

}  // namespace patchecko
