#include "baseline/baseline.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "binary/cfg.h"
#include "graph/matching.h"
#include "util/stats.h"

namespace patchecko {

namespace {

// Per-basic-block descriptor used for the assignment cost.
struct BlockVector {
  std::array<double, 6> v{};
};

std::vector<BlockVector> block_vectors(const FunctionBinary& fn,
                                       const Cfg& cfg) {
  std::vector<BlockVector> out;
  const auto in_degrees = cfg.graph.in_degrees();
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const BasicBlock& block = cfg.blocks[b];
    BlockVector bv;
    double arith = 0, calls = 0, mem = 0;
    for (std::size_t i = block.first; i <= block.last; ++i) {
      const Opcode op = fn.code[i].op;
      if (is_arith(op)) ++arith;
      if (is_call(op) || op == Opcode::libcall || op == Opcode::syscall)
        ++calls;
      if (is_load(op) || is_store(op)) ++mem;
    }
    bv.v = {static_cast<double>(block.instruction_count()),
            arith,
            calls,
            mem,
            static_cast<double>(cfg.graph.successors(b).size()),
            static_cast<double>(in_degrees[b])};
    out.push_back(bv);
  }
  return out;
}

double block_cost(const BlockVector& a, const BlockVector& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.v.size(); ++i)
    d += std::abs(std::log1p(a.v[i]) - std::log1p(b.v[i]));
  return d;
}

}  // namespace

double bindiff_distance(const FunctionBinary& a, const FunctionBinary& b) {
  const Cfg cfg_a = build_cfg(a);
  const Cfg cfg_b = build_cfg(b);
  const auto blocks_a = block_vectors(a, cfg_a);
  const auto blocks_b = block_vectors(b, cfg_b);
  if (blocks_a.empty() || blocks_b.empty())
    return blocks_a.size() == blocks_b.size() ? 0.0 : 1e9;

  std::vector<std::vector<double>> cost(blocks_a.size());
  for (std::size_t r = 0; r < blocks_a.size(); ++r) {
    cost[r].resize(blocks_b.size());
    for (std::size_t c = 0; c < blocks_b.size(); ++c)
      cost[r][c] = block_cost(blocks_a[r], blocks_b[c]);
  }
  const AssignmentResult assignment = solve_assignment(cost);
  // Unmatched blocks (size mismatch) are charged their own mass.
  const double size_penalty = std::abs(
      static_cast<double>(blocks_a.size()) -
      static_cast<double>(blocks_b.size()));
  const double denom =
      static_cast<double>(std::max(blocks_a.size(), blocks_b.size()));
  return (assignment.total_cost + size_penalty) / denom;
}

std::vector<StaticRanked> static_distance_ranking(
    const StaticFeatureVector& query,
    const std::vector<StaticFeatureVector>& functions) {
  std::vector<StaticRanked> out;
  out.reserve(functions.size());
  StaticFeatureVector lq{};
  for (std::size_t i = 0; i < static_feature_count; ++i)
    lq[i] = signed_log1p(query[i]);
  for (std::size_t f = 0; f < functions.size(); ++f) {
    double d = 0.0;
    for (std::size_t i = 0; i < static_feature_count; ++i) {
      const double diff = signed_log1p(functions[f][i]) - lq[i];
      d += diff * diff;
    }
    out.push_back({f, std::sqrt(d)});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const StaticRanked& x, const StaticRanked& y) {
                     return x.distance < y.distance;
                   });
  return out;
}

}  // namespace patchecko
