#include "binary/obfuscate.h"

#include <vector>

namespace patchecko {

namespace {

bool is_plain_reg(std::uint8_t r) {
  return r != reg::none && r != reg::sp && r != reg::fp;
}

}  // namespace

FunctionBinary obfuscate_function(const FunctionBinary& function, Rng& rng,
                                  const ObfuscationConfig& config) {
  FunctionBinary out = function;
  out.code.clear();

  // Phase 1: expand instructions; remember where each original landed.
  std::vector<std::int32_t> new_start(function.code.size(), 0);
  for (std::size_t i = 0; i < function.code.size(); ++i) {
    while (rng.chance(config.nop_rate)) {
      Instruction nop;
      nop.op = Opcode::nop;
      out.code.push_back(nop);
    }
    new_start[i] = static_cast<std::int32_t>(out.code.size());
    const Instruction& inst = function.code[i];
    if (inst.op == Opcode::mov && is_plain_reg(inst.dst) &&
        is_plain_reg(inst.src1) &&
        rng.chance(config.mov_substitution_rate)) {
      Instruction push;
      push.op = Opcode::push;
      push.src1 = inst.src1;
      Instruction pop;
      pop.op = Opcode::pop;
      pop.dst = inst.dst;
      out.code.push_back(push);
      out.code.push_back(pop);
      continue;
    }
    out.code.push_back(inst);
  }

  // Phase 2: re-resolve direct branch targets and jump tables.
  auto remap = [&](std::int32_t target) {
    if (target < 0 ||
        static_cast<std::size_t>(target) >= new_start.size())
      return target;
    return new_start[static_cast<std::size_t>(target)];
  };
  for (Instruction& inst : out.code)
    if (is_conditional_branch(inst.op) || inst.op == Opcode::jmp)
      inst.target = remap(inst.target);
  for (auto& table : out.jump_tables)
    for (std::int32_t& entry : table) entry = remap(entry);

  // Phase 3: branch trampolines appended past the function body.
  const std::size_t body_end = out.code.size();
  for (std::size_t i = 0; i < body_end; ++i) {
    Instruction& inst = out.code[i];
    const bool direct_branch =
        is_conditional_branch(inst.op) || inst.op == Opcode::jmp;
    if (!direct_branch || !rng.chance(config.trampoline_rate)) continue;
    Instruction trampoline;
    trampoline.op = Opcode::jmp;
    trampoline.target = inst.target;
    inst.target = static_cast<std::int32_t>(out.code.size());
    out.code.push_back(trampoline);
  }

  return out;
}

LibraryBinary obfuscate_library(const LibraryBinary& library, Rng& rng,
                                const ObfuscationConfig& config) {
  LibraryBinary out = library;
  for (FunctionBinary& fn : out.functions)
    fn = obfuscate_function(fn, rng, config);
  return out;
}

}  // namespace patchecko
