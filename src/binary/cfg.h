// Control-flow-graph recovery (the disassembler stage).
//
// The paper builds on IDA Pro for function boundaries and CFGs; here the
// container gives us boundaries and this module reconstructs basic blocks
// and edges directly from the instruction stream, including indirect-jump
// (switch) successors via the function's jump tables.
#pragma once

#include <cstddef>
#include <vector>

#include "binary/binary.h"
#include "graph/digraph.h"

namespace patchecko {

/// Basic-block category flags, mirroring the fcb_* rows of Table I.
enum class BlockKind : std::uint8_t {
  normal = 0,  ///< falls through or ends in a direct jump
  indjump,     ///< ends with an indirect jump (switch dispatch)
  ret,         ///< ends with a return
  cndret,      ///< conditional branch whose taken target is a return block
  noret,       ///< ends in a call that never returns (unused by our ISA)
  enoret,      ///< external no-return block (block performing a syscall)
  external,    ///< external normal block (block performing a library call)
  error,       ///< execution passes beyond the function end
};

struct BasicBlock {
  std::size_t first = 0;  ///< index of first instruction
  std::size_t last = 0;   ///< index of last instruction (inclusive)
  BlockKind kind = BlockKind::normal;

  std::size_t instruction_count() const { return last - first + 1; }
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  Digraph graph;                       ///< one node per block
  std::vector<std::size_t> block_of;   ///< instruction index -> block index

  std::size_t block_count() const { return blocks.size(); }
};

/// Recovers the CFG of a compiled function. Handles empty functions (no
/// blocks) gracefully.
Cfg build_cfg(const FunctionBinary& function);

}  // namespace patchecko
