#include "binary/binary.h"

#include <cstring>
#include <stdexcept>

namespace patchecko {

std::int64_t FunctionBinary::byte_size() const {
  std::int64_t total = 0;
  for (const Instruction& inst : code) total += encoded_size(inst, arch);
  return total;
}

void LibraryBinary::strip() {
  for (FunctionBinary& fn : functions) fn.name.clear();
  stripped = true;
}

namespace {

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
  }
  void i64(std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) bytes_.push_back((u >> (8 * i)) & 0xff);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::int64_t i64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return static_cast<std::int64_t>(v);
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  void need(std::size_t n) {
    if (pos_ + n > bytes_.size())
      throw std::runtime_error("deserialize_library: truncated input");
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

constexpr std::uint32_t format_magic = 0x504b4c42;  // "PKLB"

}  // namespace

std::vector<std::uint8_t> serialize_library(const LibraryBinary& library) {
  Writer w;
  w.u32(format_magic);
  w.str(library.name);
  w.u8(static_cast<std::uint8_t>(library.arch));
  w.u8(static_cast<std::uint8_t>(library.opt));
  w.u8(library.stripped ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(library.strings.size()));
  for (const std::string& s : library.strings) w.str(s);
  w.u32(static_cast<std::uint32_t>(library.functions.size()));
  for (const FunctionBinary& fn : library.functions) {
    w.str(fn.name);
    w.u32(fn.id);
    w.i64(fn.frame_size);
    w.i64(static_cast<std::int64_t>(fn.source_uid));
    w.u32(static_cast<std::uint32_t>(fn.param_types.size()));
    for (ValueType t : fn.param_types) w.u8(static_cast<std::uint8_t>(t));
    w.u32(static_cast<std::uint32_t>(fn.jump_tables.size()));
    for (const auto& table : fn.jump_tables) {
      w.u32(static_cast<std::uint32_t>(table.size()));
      for (std::int32_t entry : table)
        w.u32(static_cast<std::uint32_t>(entry));
    }
    w.u32(static_cast<std::uint32_t>(fn.code.size()));
    for (const Instruction& inst : fn.code) {
      w.u8(static_cast<std::uint8_t>(inst.op));
      w.u8(inst.dst);
      w.u8(inst.src1);
      w.u8(inst.src2);
      w.i64(inst.imm);
      w.u32(static_cast<std::uint32_t>(inst.target));
    }
  }
  return w.take();
}

LibraryBinary deserialize_library(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (r.u32() != format_magic)
    throw std::runtime_error("deserialize_library: bad magic");
  LibraryBinary library;
  library.name = r.str();
  library.arch = static_cast<Arch>(r.u8());
  library.opt = static_cast<OptLevel>(r.u8());
  library.stripped = r.u8() != 0;
  const std::uint32_t string_count = r.u32();
  library.strings.reserve(string_count);
  for (std::uint32_t i = 0; i < string_count; ++i)
    library.strings.push_back(r.str());
  const std::uint32_t fn_count = r.u32();
  library.functions.reserve(fn_count);
  for (std::uint32_t i = 0; i < fn_count; ++i) {
    FunctionBinary fn;
    fn.arch = library.arch;
    fn.opt = library.opt;
    fn.name = r.str();
    fn.id = r.u32();
    fn.frame_size = r.i64();
    fn.source_uid = static_cast<std::uint64_t>(r.i64());
    const std::uint32_t param_count = r.u32();
    for (std::uint32_t p = 0; p < param_count; ++p)
      fn.param_types.push_back(static_cast<ValueType>(r.u8()));
    const std::uint32_t table_count = r.u32();
    for (std::uint32_t t = 0; t < table_count; ++t) {
      std::vector<std::int32_t> table(r.u32());
      for (auto& entry : table)
        entry = static_cast<std::int32_t>(r.u32());
      fn.jump_tables.push_back(std::move(table));
    }
    const std::uint32_t code_count = r.u32();
    fn.code.reserve(code_count);
    for (std::uint32_t c = 0; c < code_count; ++c) {
      Instruction inst;
      inst.op = static_cast<Opcode>(r.u8());
      inst.dst = r.u8();
      inst.src1 = r.u8();
      inst.src2 = r.u8();
      inst.imm = r.i64();
      inst.target = static_cast<std::int32_t>(r.u32());
      fn.code.push_back(inst);
    }
    library.functions.push_back(std::move(fn));
  }
  return library;
}

}  // namespace patchecko
