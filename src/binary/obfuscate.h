// Binary obfuscation (extension study).
//
// The paper's threat model excludes packed/obfuscated code (Section II-A).
// This module makes that boundary measurable: three semantics-preserving
// binary transformations of increasing aggressiveness let the benchmarks
// quantify how detection accuracy degrades as a target drifts from the
// compiler-idiomatic code the model was trained on.
//
//   * nop padding        — junk insertion between instructions
//   * mov substitution   — `mov d, a` becomes `push a; pop d`
//   * branch trampolines — direct branches detour through appended jumps,
//                          perturbing the CFG the static features measure
//
// All three preserve exact semantics; test_obfuscate.cpp proves it by
// differential execution.
#pragma once

#include "binary/binary.h"
#include "util/rng.h"

namespace patchecko {

struct ObfuscationConfig {
  /// Probability of inserting a nop before any given instruction.
  double nop_rate = 0.0;
  /// Probability of rewriting an eligible mov into push/pop.
  double mov_substitution_rate = 0.0;
  /// Probability of detouring a direct branch through a trampoline.
  double trampoline_rate = 0.0;

  /// Convenience presets of increasing strength in [0, 1].
  static ObfuscationConfig strength(double s) {
    ObfuscationConfig config;
    config.nop_rate = 0.35 * s;
    config.mov_substitution_rate = 0.8 * s;
    config.trampoline_rate = 0.6 * s;
    return config;
  }
};

/// Returns an obfuscated copy of `function`. Branch targets and jump tables
/// are re-resolved across insertions, so the result executes identically.
FunctionBinary obfuscate_function(const FunctionBinary& function, Rng& rng,
                                  const ObfuscationConfig& config);

/// Obfuscates every function of a library copy.
LibraryBinary obfuscate_library(const LibraryBinary& library, Rng& rng,
                                const ObfuscationConfig& config);

}  // namespace patchecko
