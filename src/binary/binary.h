// Binary containers: compiled functions, libraries, and symbol handling.
//
// Firmware in the paper is distributed as stripped COTS binaries; the only
// ground truth PATCHECKO may use at *analysis* time is the machine code
// itself. FunctionBinary therefore carries a `source_uid` that identifies the
// originating source function for *evaluation bookkeeping only* (computing
// TP/FP columns of Tables VI/VII) — no analysis stage reads it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "source/ast.h"

namespace patchecko {

/// One compiled function: the unit PATCHECKO compares.
struct FunctionBinary {
  std::string name;  ///< symbol; cleared by LibraryBinary::strip()
  Arch arch = Arch::amd64;
  OptLevel opt = OptLevel::O0;
  std::uint32_t id = 0;  ///< index within its library (call targets)

  std::vector<Instruction> code;
  std::vector<std::vector<std::int32_t>> jump_tables;
  std::int64_t frame_size = 0;  ///< bytes of spill slots / locals

  /// Export-signature metadata: the paper drives candidate functions through
  /// dlopen/dlsym with LibFuzzer-generated inputs, which requires knowing the
  /// exported prototype. We keep the same information.
  std::vector<ValueType> param_types;

  /// Evaluation-only ground-truth label (hash of library seed + source
  /// function index). Never consulted by any analysis stage.
  std::uint64_t source_uid = 0;

  /// Total encoded byte size under this function's architecture.
  std::int64_t byte_size() const;
};

/// A compiled shared library: functions + string pool + symbol visibility.
struct LibraryBinary {
  std::string name;
  Arch arch = Arch::amd64;
  OptLevel opt = OptLevel::O0;
  bool stripped = false;
  std::vector<FunctionBinary> functions;
  std::vector<std::string> strings;

  /// Removes all symbol names (the COTS condition the paper targets).
  void strip();

  std::size_t function_count() const { return functions.size(); }
};

/// Serialization: a simple tagged little-endian container format, so
/// firmware images can round-trip through files like real update payloads.
std::vector<std::uint8_t> serialize_library(const LibraryBinary& library);
LibraryBinary deserialize_library(const std::vector<std::uint8_t>& bytes);

}  // namespace patchecko
