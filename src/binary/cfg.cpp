#include "binary/cfg.h"

#include <algorithm>
#include <set>

namespace patchecko {

Cfg build_cfg(const FunctionBinary& function) {
  Cfg cfg;
  const auto& code = function.code;
  const std::size_t n = code.size();
  if (n == 0) return cfg;

  // --- Leaders: entry, branch targets, jump-table entries, fallthroughs of
  // control transfers.
  std::set<std::size_t> leaders{0};
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& inst = code[i];
    if (is_conditional_branch(inst.op) || inst.op == Opcode::jmp) {
      if (inst.target >= 0 && static_cast<std::size_t>(inst.target) < n)
        leaders.insert(static_cast<std::size_t>(inst.target));
      if (i + 1 < n) leaders.insert(i + 1);
    } else if (inst.op == Opcode::jmpi) {
      const auto table_id = static_cast<std::size_t>(inst.imm);
      if (table_id < function.jump_tables.size())
        for (std::int32_t entry : function.jump_tables[table_id])
          if (entry >= 0 && static_cast<std::size_t>(entry) < n)
            leaders.insert(static_cast<std::size_t>(entry));
      if (i + 1 < n) leaders.insert(i + 1);
    } else if (inst.op == Opcode::ret) {
      if (i + 1 < n) leaders.insert(i + 1);
    }
  }

  // --- Blocks: consecutive leader-to-leader ranges.
  std::vector<std::size_t> starts(leaders.begin(), leaders.end());
  cfg.block_of.assign(n, 0);
  for (std::size_t b = 0; b < starts.size(); ++b) {
    BasicBlock block;
    block.first = starts[b];
    block.last = (b + 1 < starts.size()) ? starts[b + 1] - 1 : n - 1;
    for (std::size_t i = block.first; i <= block.last; ++i)
      cfg.block_of[i] = b;
    cfg.blocks.push_back(block);
    cfg.graph.add_node();
  }

  // --- Edges + block kinds.
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    BasicBlock& block = cfg.blocks[b];
    const Instruction& last = code[block.last];
    const bool has_fallthrough = block.last + 1 < n;

    if (last.op == Opcode::ret) {
      block.kind = BlockKind::ret;
    } else if (last.op == Opcode::jmpi) {
      block.kind = BlockKind::indjump;
      const auto table_id = static_cast<std::size_t>(last.imm);
      if (table_id < function.jump_tables.size())
        for (std::int32_t entry : function.jump_tables[table_id])
          if (entry >= 0 && static_cast<std::size_t>(entry) < n)
            cfg.graph.add_edge(b, cfg.block_of[static_cast<std::size_t>(
                                      entry)]);
    } else if (last.op == Opcode::jmp) {
      if (last.target >= 0 && static_cast<std::size_t>(last.target) < n)
        cfg.graph.add_edge(b, cfg.block_of[static_cast<std::size_t>(
                                  last.target)]);
    } else if (is_conditional_branch(last.op)) {
      if (last.target >= 0 && static_cast<std::size_t>(last.target) < n)
        cfg.graph.add_edge(b, cfg.block_of[static_cast<std::size_t>(
                                  last.target)]);
      if (has_fallthrough)
        cfg.graph.add_edge(b, cfg.block_of[block.last + 1]);
    } else {
      // Plain fallthrough; a block running past the function end is the
      // paper's fcb_error category.
      if (has_fallthrough)
        cfg.graph.add_edge(b, cfg.block_of[block.last + 1]);
      else
        block.kind = BlockKind::error;
    }
  }

  // --- Refinement passes for the remaining Table I block categories.
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    BasicBlock& block = cfg.blocks[b];
    if (block.kind != BlockKind::normal) continue;
    const Instruction& last = code[block.last];
    if (is_conditional_branch(last.op) && last.target >= 0 &&
        static_cast<std::size_t>(last.target) < n) {
      const BasicBlock& taken =
          cfg.blocks[cfg.block_of[static_cast<std::size_t>(last.target)]];
      if (taken.kind == BlockKind::ret) {
        block.kind = BlockKind::cndret;
        continue;
      }
    }
    bool has_libcall = false;
    bool has_syscall = false;
    for (std::size_t i = block.first; i <= block.last; ++i) {
      if (code[i].op == Opcode::libcall) has_libcall = true;
      if (code[i].op == Opcode::syscall) has_syscall = true;
    }
    if (has_syscall)
      block.kind = BlockKind::enoret;
    else if (has_libcall)
      block.kind = BlockKind::external;
  }

  return cfg;
}

}  // namespace patchecko
