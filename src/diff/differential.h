// The differential engine (Section III-D): patch-presence detection.
//
// Given the CVE's vulnerable reference f_v, the patched reference f_p, and
// the matched target f_t, the engine combines three evidence sources:
//   1. static features — per-feature votes on whether f_t sits closer to
//      f_v or f_p on every feature the patch actually changed,
//   2. differential signatures — CFG topology plus semantic markers
//      (library-call sets, dispatch tables, frame layout); a library call
//      that the patch removed (e.g. CVE-2018-9412's memmove) is a
//      high-weight marker,
//   3. dynamic semantic similarity — sim(f_v, f_t) vs sim(f_p, f_t).
//
// A patch that changes only a constant value (the paper's CVE-2018-9470)
// leaves every evidence source indistinguishable; the engine then defaults
// to "patched", reproducing the paper's single misclassification.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "binary/binary.h"
#include "features/static_features.h"

namespace patchecko {

/// Semantic signature used for the differential comparison. Deliberately
/// excludes immediate *values* (too noisy across compilations) — which is
/// exactly why a one-integer patch is invisible to it.
struct DiffSignature {
  std::array<int, libfn_count> libcall_counts{};
  int basic_blocks = 0;
  int edges = 0;
  long cyclomatic = 0;
  int params = 0;
  std::int64_t frame_size = 0;
  int jump_tables = 0;
  int string_refs = 0;
  int conditional_branches = 0;
};

DiffSignature make_signature(const FunctionBinary& function);

/// L1 distance over the signature fields (libcall counts + topology).
double signature_distance(const DiffSignature& a, const DiffSignature& b);

enum class PatchVerdict : std::uint8_t { vulnerable, patched };

struct PatchDecision {
  PatchVerdict verdict = PatchVerdict::vulnerable;
  double votes_vulnerable = 0.0;
  double votes_patched = 0.0;
  double dynamic_distance_vulnerable = 0.0;
  double dynamic_distance_patched = 0.0;
  std::vector<std::string> evidence;  ///< human-readable markers
};

/// Runs the differential analysis. `dyn_dist_*` are the Stage-2 similarity
/// scores of the target against each reference (lower = more similar).
PatchDecision detect_patch(const StaticFeatureVector& vulnerable_features,
                           const StaticFeatureVector& patched_features,
                           const StaticFeatureVector& target_features,
                           const DiffSignature& vulnerable_signature,
                           const DiffSignature& patched_signature,
                           const DiffSignature& target_signature,
                           double dyn_dist_vulnerable,
                           double dyn_dist_patched);

}  // namespace patchecko
