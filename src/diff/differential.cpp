#include "diff/differential.h"

#include <cmath>
#include <sstream>

#include "binary/cfg.h"

namespace patchecko {

DiffSignature make_signature(const FunctionBinary& function) {
  DiffSignature sig;
  for (const Instruction& inst : function.code) {
    if (inst.op == Opcode::libcall) {
      const auto fn = static_cast<std::size_t>(inst.imm);
      if (fn < libfn_count) ++sig.libcall_counts[fn];
    }
    if (inst.op == Opcode::ldstr) ++sig.string_refs;
    if (is_conditional_branch(inst.op)) ++sig.conditional_branches;
  }
  const Cfg cfg = build_cfg(function);
  sig.basic_blocks = static_cast<int>(cfg.block_count());
  sig.edges = static_cast<int>(cfg.graph.edge_count());
  sig.cyclomatic = cfg.graph.cyclomatic_complexity();
  sig.params = static_cast<int>(function.param_types.size());
  sig.frame_size = function.frame_size;
  sig.jump_tables = static_cast<int>(function.jump_tables.size());
  return sig;
}

double signature_distance(const DiffSignature& a, const DiffSignature& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < libfn_count; ++i)
    d += std::abs(a.libcall_counts[i] - b.libcall_counts[i]);
  d += std::abs(a.basic_blocks - b.basic_blocks);
  d += std::abs(a.edges - b.edges);
  d += std::abs(static_cast<double>(a.cyclomatic - b.cyclomatic));
  d += std::abs(a.params - b.params);
  d += std::abs(static_cast<double>(a.frame_size - b.frame_size)) / 8.0;
  d += std::abs(a.jump_tables - b.jump_tables);
  d += std::abs(a.string_refs - b.string_refs);
  d += std::abs(a.conditional_branches - b.conditional_branches);
  return d;
}

namespace {

// Votes for whichever reference the target value sits closer to.
void vote_closer(double target, double vulnerable, double patched,
                 double weight, PatchDecision& decision) {
  if (vulnerable == patched) return;  // the patch did not move this metric
  const double dv = std::abs(target - vulnerable);
  const double dp = std::abs(target - patched);
  if (dv < dp)
    decision.votes_vulnerable += weight;
  else if (dp < dv)
    decision.votes_patched += weight;
}

}  // namespace

PatchDecision detect_patch(const StaticFeatureVector& vulnerable_features,
                           const StaticFeatureVector& patched_features,
                           const StaticFeatureVector& target_features,
                           const DiffSignature& vulnerable_signature,
                           const DiffSignature& patched_signature,
                           const DiffSignature& target_signature,
                           double dyn_dist_vulnerable,
                           double dyn_dist_patched) {
  PatchDecision decision;
  decision.dynamic_distance_vulnerable = dyn_dist_vulnerable;
  decision.dynamic_distance_patched = dyn_dist_patched;

  // 1. Static feature votes: only features the patch itself moved count.
  for (std::size_t i = 0; i < static_feature_count; ++i)
    vote_closer(target_features[i], vulnerable_features[i],
                patched_features[i], 1.0, decision);

  // 2. Signature markers. Library-call differences are the strongest
  //    indicator (e.g. the memmove that CVE-2018-9412's patch removed).
  for (std::size_t fn = 0; fn < libfn_count; ++fn) {
    const int cv = vulnerable_signature.libcall_counts[fn];
    const int cp = patched_signature.libcall_counts[fn];
    if (cv == cp) continue;
    const int ct = target_signature.libcall_counts[fn];
    const bool towards_vulnerable =
        std::abs(ct - cv) < std::abs(ct - cp);
    if (towards_vulnerable)
      decision.votes_vulnerable += 3.0;
    else
      decision.votes_patched += 3.0;
    std::ostringstream note;
    note << libfn_name(static_cast<LibFn>(fn)) << " count " << ct
         << " (vulnerable=" << cv << ", patched=" << cp << ") -> "
         << (towards_vulnerable ? "vulnerable" : "patched");
    decision.evidence.push_back(note.str());
  }
  vote_closer(target_signature.basic_blocks, vulnerable_signature.basic_blocks,
              patched_signature.basic_blocks, 2.0, decision);
  vote_closer(target_signature.edges, vulnerable_signature.edges,
              patched_signature.edges, 2.0, decision);
  vote_closer(static_cast<double>(target_signature.cyclomatic),
              static_cast<double>(vulnerable_signature.cyclomatic),
              static_cast<double>(patched_signature.cyclomatic), 2.0,
              decision);
  // Guard deltas: a patch that adds a bounds check shows up as extra
  // conditional branches. Worth an evidence note — analysts reading the
  // decision chain look for exactly this marker.
  if (vulnerable_signature.conditional_branches !=
      patched_signature.conditional_branches) {
    const int ct = target_signature.conditional_branches;
    const int cv = vulnerable_signature.conditional_branches;
    const int cp = patched_signature.conditional_branches;
    if (std::abs(ct - cv) != std::abs(ct - cp)) {
      std::ostringstream note;
      note << "guard count " << ct << " (vulnerable=" << cv
           << ", patched=" << cp << ") -> "
           << (std::abs(ct - cv) < std::abs(ct - cp) ? "vulnerable"
                                                     : "patched");
      decision.evidence.push_back(note.str());
    }
  }
  vote_closer(target_signature.conditional_branches,
              vulnerable_signature.conditional_branches,
              patched_signature.conditional_branches, 1.5, decision);

  // 3. Dynamic semantic similarity (Stage-2 distances).
  if (std::isfinite(dyn_dist_vulnerable) && std::isfinite(dyn_dist_patched) &&
      dyn_dist_vulnerable != dyn_dist_patched) {
    const bool towards_vulnerable = dyn_dist_vulnerable < dyn_dist_patched;
    if (towards_vulnerable)
      decision.votes_vulnerable += 4.0;
    else
      decision.votes_patched += 4.0;
    std::ostringstream note;
    note << "dynamic distance " << dyn_dist_vulnerable << " vs "
         << dyn_dist_patched << " -> "
         << (towards_vulnerable ? "vulnerable" : "patched");
    decision.evidence.push_back(note.str());
  }

  // Verdict. A tie means the patch left no measurable trace (the
  // single-constant CVE-2018-9470 shape); like the paper's engine we then
  // conclude "patched" — and misclassify exactly that case.
  if (decision.votes_vulnerable > decision.votes_patched) {
    decision.verdict = PatchVerdict::vulnerable;
  } else {
    decision.verdict = PatchVerdict::patched;
    if (decision.votes_vulnerable == decision.votes_patched)
      decision.evidence.push_back(
          "no distinguishing marker between vulnerable and patched "
          "references; defaulting to patched");
  }
  return decision;
}

}  // namespace patchecko
