// Deterministic structural fingerprints of MiniC ASTs.
//
// The prebuilt-corpus store (src/corpus) keys artifacts by the *source* that
// produced them, not by the generator parameters alone: a generator change
// that alters even one emitted statement must miss the cache, while a pure
// refactor that reproduces identical ASTs keeps every entry warm. The
// fingerprint is a 64-bit structural hash over every node kind, operator,
// constant, type and string of a library — order-sensitive and
// collision-resistant enough for cache addressing (the store additionally
// folds the fingerprint into a 128-bit key digest).
//
// pk_source sits below the engine layer, so this deliberately does not use
// engine/cache.h's Digest; callers absorb the returned word into whatever
// wider digest they maintain.
#pragma once

#include <cstdint>

#include "source/ast.h"

namespace patchecko {

std::uint64_t fingerprint_expr(const Expr& expr);
std::uint64_t fingerprint_stmt(const Stmt& stmt);
std::uint64_t fingerprint_function(const SourceFunction& function);
std::uint64_t fingerprint_library(const SourceLibrary& library);

}  // namespace patchecko
