// Seeded MiniC corpus generation.
//
// The paper's Dataset I is "100 Android libraries compiled from source".
// Our stand-in generates libraries of MiniC functions drawn from a small set
// of *archetypes* (buffer transforms, checksums, scanners, copy/shift
// kernels, dispatchers, scalar and floating-point math, string handling,
// validators). Functions sharing an archetype are structurally similar, which
// reproduces the paper's central difficulty: a vulnerable function has many
// plausible lookalikes inside a big library, so the static stage alone
// produces copious false positives (Section II-A).
#pragma once

#include <cstdint>
#include <string>

#include "source/ast.h"
#include "util/rng.h"

namespace patchecko {

/// Structural archetypes; generate_function picks one (weighted) unless the
/// caller pins a specific one (the CVE builders do, to control patch shape).
enum class Archetype : std::uint8_t {
  byte_transform = 0,  ///< per-byte arithmetic over a buffer
  checksum,            ///< read/accumulate/return
  scanner,             ///< search loop with early return
  copy_shift,          ///< two-offset compaction; memmove flavour available
  dispatcher,          ///< switch over a mode flag, calls helpers
  scalar_math,         ///< branchy integer arithmetic
  fp_kernel,           ///< floating-point reduction loop
  string_op,           ///< strlen/strcmp over buffer + string pool
  validator,           ///< nested bounds checks returning 0/1
  mixed,               ///< nested loop + guard + library call
  count,
};

constexpr std::size_t archetype_count = static_cast<std::size_t>(
    Archetype::count);

std::string_view archetype_name(Archetype a);

struct GeneratorConfig {
  /// Upper bound for generated loop trip counts (keeps dynamic traces short).
  std::int64_t loop_cap = 48;
  /// Number of string-pool entries the library carries.
  int string_count = 12;
  /// Probability that byte_transform/checksum style loops gain a nested
  /// data-dependent guard. High by default: value-dependent branches are
  /// what make two structurally identical siblings produce different traces
  /// (low values leave exact trace collisions between same-archetype
  /// functions, which real code rarely exhibits).
  double embellish_prob = 0.8;
};

/// A function earlier in the library that dispatchers may call. Only
/// all-i64 signatures are callable, so every generated call site is type-
/// and arity-correct (the compiled calling convention and the reference
/// interpreter then agree by construction).
struct CallableFn {
  int index = 0;
  int param_count = 0;
};

/// Generates one function. `function_index` is the function's position in
/// the library (fn_call may only target indices < function_index, keeping
/// the call graph acyclic); `archetype` pins the structure; `callables`
/// lists earlier functions a dispatcher may call.
SourceFunction generate_function(Rng& rng, Archetype archetype,
                                 int function_index,
                                 const GeneratorConfig& config = {},
                                 const std::vector<CallableFn>& callables = {});

/// Generates a library of `function_count` functions with a fresh string
/// pool. Deterministic in (name, seed, count, config).
SourceLibrary generate_library(const std::string& name,
                               std::uint64_t seed,
                               std::size_t function_count,
                               const GeneratorConfig& config = {});

/// Weighted archetype choice used by generate_library.
Archetype pick_archetype(Rng& rng);

/// Pinned-shape generator for the CVE builders: a compaction kernel in the
/// vulnerable (memmove-based, Figure 6 left) or patched (two-offset,
/// Figure 6 right) form.
SourceFunction generate_copy_shift(Rng& rng, int function_index,
                                   bool with_memmove,
                                   const GeneratorConfig& config = {});

}  // namespace patchecko
