// MiniC: the source language of the synthetic corpus.
//
// The paper compiles 100 real Android libraries from C/C++ sources into 24
// binary variants each (4 architectures x 6 optimization levels). We replace
// the C/C++ sources with MiniC, a small procedural language that is rich
// enough to exercise every feature both extractors measure: integer and
// floating-point arithmetic, byte/word memory traffic over caller-provided
// buffers, loops, branches, switches (indirect jumps), constants, strings,
// intra-library calls, library calls and system calls.
//
// Semantics shared by the reference interpreter (interp.h) and compiled code
// (vm/machine.h):
//   * integers are 64-bit two's complement with wrap-around
//   * division/modulo by zero traps
//   * byte loads zero-extend; word accesses are 8-byte little-endian
//   * out-of-bounds buffer access traps
//   * logical and/or are non-short-circuit over normalized 0/1 operands
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace patchecko {

enum class ValueType : std::uint8_t { i64, f64, ptr };

enum class BinOp : std::uint8_t {
  add, sub, mul, divi, modi,
  band, bor, bxor, shl, shr,
  lt, le, gt, ge, eq, ne,
  land, lor,
  // floating-point arithmetic / comparison (operands f64)
  fadd, fsub, fmul, fdiv, flt, fgt,
};

enum class UnOp : std::uint8_t { neg, lnot, fneg, to_f64, to_i64 };

bool binop_is_fp(BinOp op);
/// True when the operator yields i64 even for f64 operands (fp comparisons).
bool binop_is_comparison(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    int_const,   ///< int_value
    fp_const,    ///< fp_value
    param_ref,   ///< index = int_value
    local_ref,   ///< index = int_value
    binop,       ///< args[0] op args[1]
    unop,        ///< op args[0]
    index_load,  ///< args[0][args[1]]; byte_access selects width
    libcall,     ///< lib_fn(args...)
    strref,      ///< address of string-pool entry int_value
    fn_call,     ///< library-internal callee(args...)
    ptr_offset,  ///< args[0] (ptr) displaced by args[1] bytes
    indirect_call,  ///< (args[0] odd ? int_value : callee)(args[1..]);
                    ///< a two-way function-pointer dispatch (callr)
  };

  Kind kind = Kind::int_const;
  ValueType type = ValueType::i64;
  std::int64_t int_value = 0;
  double fp_value = 0.0;
  BinOp bin_op = BinOp::add;
  UnOp un_op = UnOp::neg;
  LibFn lib_fn = LibFn::memcpy;
  int callee = -1;
  bool byte_access = true;
  std::vector<ExprPtr> args;

  ExprPtr clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    assign,       ///< locals[local_index] = expr
    index_store,  ///< base[index] = value; byte_access selects width
    if_else,      ///< if (expr) then_body else else_body
    for_loop,     ///< for (local = init; local < bound; local += step_value)
    ret,          ///< return expr
    expr_stmt,    ///< evaluate expr for side effects (libcall / fn_call)
    syscall_stmt, ///< syscall sys(expr)
    switch_stmt,  ///< switch (expr) dispatching into cases by value 0..n-1
  };

  Kind kind = Stmt::Kind::ret;
  int local_index = -1;
  ExprPtr expr;                 // value / condition / selector
  ExprPtr base, index, value;   // index_store operands
  ExprPtr init, bound;          // for_loop bounds
  std::int64_t step_value = 1;  // for_loop increment (> 0)
  bool byte_access = true;
  Sys sys = Sys::sys_log;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
  std::vector<std::vector<StmtPtr>> cases;

  StmtPtr clone() const;
};

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body);

/// One MiniC function: typed parameters, typed locals, a statement body.
/// Pointer parameters reference caller-provided byte buffers; by convention
/// the generator pairs each ptr parameter with an i64 length parameter.
struct SourceFunction {
  std::string name;
  std::vector<ValueType> param_types;
  std::vector<ValueType> local_types;
  std::vector<StmtPtr> body;

  SourceFunction() = default;
  SourceFunction(const SourceFunction& other);
  SourceFunction& operator=(const SourceFunction& other);
  SourceFunction(SourceFunction&&) = default;
  SourceFunction& operator=(SourceFunction&&) = default;

  /// Total number of AST nodes; used to keep generated sizes realistic.
  std::size_t node_count() const;
};

/// A library of MiniC functions plus its string pool. fn_call callees index
/// into `functions` and, to keep call graphs acyclic, always call downward
/// (callee index < caller index).
struct SourceLibrary {
  std::string name;
  std::vector<SourceFunction> functions;
  std::vector<std::string> strings;
};

// --- Convenience constructors used by the generator, mutators and tests ---
ExprPtr make_int(std::int64_t v);
ExprPtr make_fp(double v);
ExprPtr make_param(int index, ValueType type);
ExprPtr make_local(int index, ValueType type);
ExprPtr make_bin(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr make_un(UnOp op, ExprPtr operand);
ExprPtr make_load(ExprPtr base, ExprPtr index, bool byte_access);
ExprPtr make_libcall(LibFn fn, std::vector<ExprPtr> args, ValueType type);
ExprPtr make_strref(int string_id);
ExprPtr make_call(int callee, std::vector<ExprPtr> args);
ExprPtr make_ptr_offset(ExprPtr base, ExprPtr offset);
/// Two-way indirect call: selector's low bit picks `odd_callee` (odd) or
/// `even_callee` (even); both callees must share the argument arity.
ExprPtr make_indirect_call(ExprPtr selector, int even_callee, int odd_callee,
                           std::vector<ExprPtr> args);

StmtPtr make_assign(int local_index, ExprPtr value);
StmtPtr make_store(ExprPtr base, ExprPtr index, ExprPtr value,
                   bool byte_access);
StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body = {});
StmtPtr make_for(int local_index, ExprPtr init, ExprPtr bound,
                 std::vector<StmtPtr> body, std::int64_t step = 1);
StmtPtr make_ret(ExprPtr value);
StmtPtr make_expr_stmt(ExprPtr expr);
StmtPtr make_syscall(Sys sys, ExprPtr arg);
StmtPtr make_switch(ExprPtr selector, std::vector<std::vector<StmtPtr>> cases);

}  // namespace patchecko
