#include "source/fingerprint.h"

#include <cstring>

namespace patchecko {

namespace {

// FNV-1a over explicit field tags. Every absorbed word is preceded by the
// running hash, so field order matters and (a, b) never collides with
// (b, a) for swapped siblings.
constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kPrime = 0x00000100000001b3ULL;

std::uint64_t mix(std::uint64_t hash, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    hash = (hash ^ (word & 0xff)) * kPrime;
    word >>= 8;
  }
  return hash;
}

std::uint64_t mix_double(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return mix(hash, bits);
}

std::uint64_t mix_string(std::uint64_t hash, const std::string& text) {
  hash = mix(hash, text.size());
  for (const char c : text)
    hash = (hash ^ static_cast<std::uint8_t>(c)) * kPrime;
  return hash;
}

std::uint64_t absorb_expr(std::uint64_t hash, const Expr& expr) {
  hash = mix(hash, static_cast<std::uint64_t>(expr.kind));
  hash = mix(hash, static_cast<std::uint64_t>(expr.type));
  hash = mix(hash, static_cast<std::uint64_t>(expr.int_value));
  hash = mix_double(hash, expr.fp_value);
  hash = mix(hash, static_cast<std::uint64_t>(expr.bin_op));
  hash = mix(hash, static_cast<std::uint64_t>(expr.un_op));
  hash = mix(hash, static_cast<std::uint64_t>(expr.lib_fn));
  hash = mix(hash, static_cast<std::uint64_t>(expr.callee));
  hash = mix(hash, expr.byte_access ? 1 : 0);
  hash = mix(hash, expr.args.size());
  for (const ExprPtr& arg : expr.args) hash = absorb_expr(hash, *arg);
  return hash;
}

std::uint64_t absorb_opt_expr(std::uint64_t hash, const ExprPtr& expr) {
  hash = mix(hash, expr ? 1 : 0);
  return expr ? absorb_expr(hash, *expr) : hash;
}

std::uint64_t absorb_stmt(std::uint64_t hash, const Stmt& stmt);

std::uint64_t absorb_body(std::uint64_t hash,
                          const std::vector<StmtPtr>& body) {
  hash = mix(hash, body.size());
  for (const StmtPtr& stmt : body) hash = absorb_stmt(hash, *stmt);
  return hash;
}

std::uint64_t absorb_stmt(std::uint64_t hash, const Stmt& stmt) {
  hash = mix(hash, static_cast<std::uint64_t>(stmt.kind));
  hash = mix(hash, static_cast<std::uint64_t>(stmt.local_index));
  hash = absorb_opt_expr(hash, stmt.expr);
  hash = absorb_opt_expr(hash, stmt.base);
  hash = absorb_opt_expr(hash, stmt.index);
  hash = absorb_opt_expr(hash, stmt.value);
  hash = absorb_opt_expr(hash, stmt.init);
  hash = absorb_opt_expr(hash, stmt.bound);
  hash = mix(hash, static_cast<std::uint64_t>(stmt.step_value));
  hash = mix(hash, stmt.byte_access ? 1 : 0);
  hash = mix(hash, static_cast<std::uint64_t>(stmt.sys));
  hash = absorb_body(hash, stmt.then_body);
  hash = absorb_body(hash, stmt.else_body);
  hash = mix(hash, stmt.cases.size());
  for (const auto& body : stmt.cases) hash = absorb_body(hash, body);
  return hash;
}

std::uint64_t absorb_function(std::uint64_t hash,
                              const SourceFunction& function) {
  hash = mix_string(hash, function.name);
  hash = mix(hash, function.param_types.size());
  for (const ValueType type : function.param_types)
    hash = mix(hash, static_cast<std::uint64_t>(type));
  hash = mix(hash, function.local_types.size());
  for (const ValueType type : function.local_types)
    hash = mix(hash, static_cast<std::uint64_t>(type));
  return absorb_body(hash, function.body);
}

}  // namespace

std::uint64_t fingerprint_expr(const Expr& expr) {
  return absorb_expr(kOffset, expr);
}

std::uint64_t fingerprint_stmt(const Stmt& stmt) {
  return absorb_stmt(kOffset, stmt);
}

std::uint64_t fingerprint_function(const SourceFunction& function) {
  return absorb_function(kOffset, function);
}

std::uint64_t fingerprint_library(const SourceLibrary& library) {
  std::uint64_t hash = kOffset;
  hash = mix_string(hash, library.name);
  hash = mix(hash, library.functions.size());
  for (const SourceFunction& function : library.functions)
    hash = absorb_function(hash, function);
  hash = mix(hash, library.strings.size());
  for (const std::string& text : library.strings)
    hash = mix_string(hash, text);
  return hash;
}

}  // namespace patchecko
