// Patch mutators: derive a "patched" MiniC function from a "vulnerable" one.
//
// The paper's vulnerability database pairs each CVE's vulnerable function
// with its patched version. Real security patches are small, targeted edits
// (Section III-D: "a patch typically introduces few changes"), so we model
// the recurring shapes observed in Android Security Bulletin patches:
//
//   * add_bounds_guard    — prepend an early-return input-validation check
//   * remove_memmove_loop — rewrite a shifted-memmove compaction loop into
//                           the two-offset form (the CVE-2018-9412 patch,
//                           Figure 6)
//   * off_by_one          — tighten a loop bound by one
//   * constant_tweak      — change a single integer constant (the
//                           CVE-2018-9470 shape whose binary diff is one
//                           immediate; the paper's differential engine
//                           misclassifies exactly this case)
//   * add_skip_condition  — add a `continue`-style skip guard inside a loop
#pragma once

#include <optional>
#include <string>

#include "source/ast.h"
#include "source/generator.h"
#include "util/rng.h"

namespace patchecko {

enum class PatchKind : std::uint8_t {
  add_bounds_guard = 0,
  remove_memmove_loop,
  off_by_one,
  constant_tweak,
  add_skip_condition,
  count,
};

std::string_view patch_kind_name(PatchKind kind);

struct VulnPatchPair {
  SourceFunction vulnerable;
  SourceFunction patched;
  PatchKind kind;
  std::string description;
};

/// Applies `kind` to a copy of `vulnerable`; returns nullopt when the
/// function has no applicable site (e.g. no loop for off_by_one).
std::optional<SourceFunction> apply_patch(const SourceFunction& vulnerable,
                                          PatchKind kind, Rng& rng);

/// Generates a (vulnerable, patched) pair for `kind`: synthesizes a function
/// of a shape guaranteed to accept the patch, then applies it.
/// `function_index` is the slot the pair will occupy inside its library.
VulnPatchPair generate_vuln_patch_pair(PatchKind kind, Rng& rng,
                                       int function_index,
                                       const GeneratorConfig& config = {});

}  // namespace patchecko
