#include "source/interp.h"

#include <cstring>
#include <stdexcept>

#include "isa/runtime_scalar.h"

namespace patchecko {

namespace {

// Thrown internally to unwind on traps; converted to ExecResult at the top.
struct Trap {
  ExecStatus status;
};

// Thrown to implement `return` from nested statement bodies.
struct ReturnSignal {
  Value value;
};

class Interpreter {
 public:
  Interpreter(const SourceLibrary& library, CallEnv& env,
              std::uint64_t step_limit)
      : library_(library), env_(env), step_limit_(step_limit) {}

  ExecResult run(std::size_t function_index) {
    ExecResult result;
    try {
      const Value ret = call_function(function_index, env_.args);
      result.ret = ret;
      result.status = ExecStatus::ok;
    } catch (const Trap& trap) {
      result.status = trap.status;
    }
    result.steps = steps_;
    return result;
  }

 private:
  struct Frame {
    const SourceFunction* function = nullptr;
    std::vector<Value> params;
    std::vector<Value> locals;
  };

  void tick() {
    if (++steps_ > step_limit_) throw Trap{ExecStatus::trap_step_limit};
  }

  Value call_function(std::size_t index, const std::vector<Value>& args) {
    if (index >= library_.functions.size())
      throw Trap{ExecStatus::trap_type};
    if (call_depth_ > 64) throw Trap{ExecStatus::trap_step_limit};
    ++call_depth_;
    const SourceFunction& fn = library_.functions[index];
    Frame frame;
    frame.function = &fn;
    frame.params = args;
    frame.params.resize(fn.param_types.size());  // missing args default to 0
    frame.locals.assign(fn.local_types.size(), Value{});
    for (std::size_t i = 0; i < fn.local_types.size(); ++i)
      frame.locals[i].type = fn.local_types[i];

    Value ret = Value::from_int(0);
    try {
      exec_body(fn.body, frame);
    } catch (ReturnSignal& signal) {
      ret = signal.value;
    }
    --call_depth_;
    return ret;
  }

  void exec_body(const std::vector<StmtPtr>& body, Frame& frame) {
    for (const auto& stmt : body) exec_stmt(*stmt, frame);
  }

  void exec_stmt(const Stmt& stmt, Frame& frame) {
    tick();
    switch (stmt.kind) {
      case Stmt::Kind::assign: {
        Value v = eval(*stmt.expr, frame);
        if (stmt.local_index < 0 ||
            static_cast<std::size_t>(stmt.local_index) >=
                frame.locals.size())
          throw Trap{ExecStatus::trap_type};
        frame.locals[static_cast<std::size_t>(stmt.local_index)] = v;
        break;
      }
      case Stmt::Kind::index_store: {
        const Value base = eval(*stmt.base, frame);
        const Value index = eval(*stmt.index, frame);
        const Value value = eval(*stmt.value, frame);
        store_indexed(base, as_int(index), as_int(value), stmt.byte_access);
        break;
      }
      case Stmt::Kind::if_else: {
        const Value cond = eval(*stmt.expr, frame);
        if (as_int(cond) != 0)
          exec_body(stmt.then_body, frame);
        else
          exec_body(stmt.else_body, frame);
        break;
      }
      case Stmt::Kind::for_loop: {
        const std::int64_t init = as_int(eval(*stmt.init, frame));
        const std::int64_t bound = as_int(eval(*stmt.bound, frame));
        const std::size_t slot = static_cast<std::size_t>(stmt.local_index);
        if (slot >= frame.locals.size()) throw Trap{ExecStatus::trap_type};
        // Mirrors the compiled loop exactly: the counter local is set to
        // init before the first test, tracks the body's view each iteration,
        // and holds the first value >= bound after exit.
        std::int64_t i = init;
        frame.locals[slot] = Value::from_int(i);
        while (i < bound) {
          tick();
          exec_body(stmt.then_body, frame);
          i = as_int(frame.locals[slot]);  // body may rewrite the counter
          i = rt::wrap_add(i, stmt.step_value);
          frame.locals[slot] = Value::from_int(i);
        }
        break;
      }
      case Stmt::Kind::ret: {
        ReturnSignal signal;
        signal.value =
            stmt.expr ? eval(*stmt.expr, frame) : Value::from_int(0);
        throw signal;
      }
      case Stmt::Kind::expr_stmt:
        (void)eval(*stmt.expr, frame);
        break;
      case Stmt::Kind::syscall_stmt:
        (void)eval(*stmt.expr, frame);  // argument evaluated; call is a no-op
        break;
      case Stmt::Kind::switch_stmt: {
        const std::int64_t selector = as_int(eval(*stmt.expr, frame));
        if (!stmt.cases.empty()) {
          std::int64_t idx = selector % static_cast<std::int64_t>(
                                            stmt.cases.size());
          if (idx < 0) idx += static_cast<std::int64_t>(stmt.cases.size());
          exec_body(stmt.cases[static_cast<std::size_t>(idx)], frame);
        }
        break;
      }
    }
  }

  Value eval(const Expr& expr, Frame& frame) {
    tick();
    switch (expr.kind) {
      case Expr::Kind::int_const:
        return Value::from_int(expr.int_value);
      case Expr::Kind::fp_const:
        return Value::from_fp(expr.fp_value);
      case Expr::Kind::param_ref: {
        const auto idx = static_cast<std::size_t>(expr.int_value);
        if (idx >= frame.params.size()) throw Trap{ExecStatus::trap_type};
        return frame.params[idx];
      }
      case Expr::Kind::local_ref: {
        const auto idx = static_cast<std::size_t>(expr.int_value);
        if (idx >= frame.locals.size()) throw Trap{ExecStatus::trap_type};
        return frame.locals[idx];
      }
      case Expr::Kind::binop:
        return eval_binop(expr, frame);
      case Expr::Kind::unop:
        return eval_unop(expr, frame);
      case Expr::Kind::index_load: {
        const Value base = eval(*expr.args[0], frame);
        const Value index = eval(*expr.args[1], frame);
        return Value::from_int(
            load_indexed(base, as_int(index), expr.byte_access));
      }
      case Expr::Kind::libcall:
        return eval_libcall(expr, frame);
      case Expr::Kind::strref:
        return Value::from_ptr(-2 - static_cast<int>(expr.int_value), 0);
      case Expr::Kind::ptr_offset: {
        Value base = eval(*expr.args[0], frame);
        const Value disp = eval(*expr.args[1], frame);
        if (base.type != ValueType::ptr) throw Trap{ExecStatus::trap_type};
        base.offset += as_int(disp);
        return base;
      }
      case Expr::Kind::fn_call: {
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const auto& arg : expr.args) args.push_back(eval(*arg, frame));
        return call_function(static_cast<std::size_t>(expr.callee), args);
      }
      case Expr::Kind::indirect_call: {
        const std::int64_t selector = as_int(eval(*expr.args[0], frame));
        const std::int64_t target =
            (selector & 1) != 0 ? expr.int_value : expr.callee;
        std::vector<Value> args;
        args.reserve(expr.args.size() - 1);
        for (std::size_t a = 1; a < expr.args.size(); ++a)
          args.push_back(eval(*expr.args[a], frame));
        return call_function(static_cast<std::size_t>(target), args);
      }
    }
    throw Trap{ExecStatus::trap_type};
  }

  Value eval_binop(const Expr& expr, Frame& frame) {
    // Short-circuit logical operators, matching the branch-based lowering
    // the compiler emits.
    if (expr.bin_op == BinOp::land) {
      if (as_int(eval(*expr.args[0], frame)) == 0) return Value::from_int(0);
      return Value::from_int(as_int(eval(*expr.args[1], frame)) != 0 ? 1 : 0);
    }
    if (expr.bin_op == BinOp::lor) {
      if (as_int(eval(*expr.args[0], frame)) != 0) return Value::from_int(1);
      return Value::from_int(as_int(eval(*expr.args[1], frame)) != 0 ? 1 : 0);
    }
    const Value lhs = eval(*expr.args[0], frame);
    const Value rhs = eval(*expr.args[1], frame);
    if (binop_is_fp(expr.bin_op)) {
      const double a = as_fp(lhs);
      const double b = as_fp(rhs);
      switch (expr.bin_op) {
        case BinOp::fadd: return Value::from_fp(a + b);
        case BinOp::fsub: return Value::from_fp(a - b);
        case BinOp::fmul: return Value::from_fp(a * b);
        case BinOp::fdiv:
          return Value::from_fp(b == 0.0 ? 0.0 : a / b);
        case BinOp::flt: return Value::from_int(a < b ? 1 : 0);
        case BinOp::fgt: return Value::from_int(a > b ? 1 : 0);
        default: break;
      }
      throw Trap{ExecStatus::trap_type};
    }
    const std::int64_t a = as_int(lhs);
    const std::int64_t b = as_int(rhs);
    switch (expr.bin_op) {
      case BinOp::add: return Value::from_int(rt::wrap_add(a, b));
      case BinOp::sub: return Value::from_int(rt::wrap_sub(a, b));
      case BinOp::mul: return Value::from_int(rt::wrap_mul(a, b));
      case BinOp::divi:
        if (b == 0) throw Trap{ExecStatus::trap_div_zero};
        if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
          return Value::from_int(a);
        return Value::from_int(a / b);
      case BinOp::modi:
        if (b == 0) throw Trap{ExecStatus::trap_div_zero};
        if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
          return Value::from_int(0);
        return Value::from_int(a % b);
      case BinOp::band: return Value::from_int(a & b);
      case BinOp::bor: return Value::from_int(a | b);
      case BinOp::bxor: return Value::from_int(a ^ b);
      case BinOp::shl: return Value::from_int(rt::wrap_shl(a, b));
      case BinOp::shr: return Value::from_int(rt::wrap_shr(a, b));
      case BinOp::lt: return Value::from_int(a < b ? 1 : 0);
      case BinOp::le: return Value::from_int(a <= b ? 1 : 0);
      case BinOp::gt: return Value::from_int(a > b ? 1 : 0);
      case BinOp::ge: return Value::from_int(a >= b ? 1 : 0);
      case BinOp::eq: return Value::from_int(a == b ? 1 : 0);
      case BinOp::ne: return Value::from_int(a != b ? 1 : 0);
      default: break;
    }
    throw Trap{ExecStatus::trap_type};
  }

  Value eval_unop(const Expr& expr, Frame& frame) {
    const Value operand = eval(*expr.args[0], frame);
    switch (expr.un_op) {
      case UnOp::neg:
        return Value::from_int(rt::wrap_sub(0, as_int(operand)));
      case UnOp::lnot:
        return Value::from_int(as_int(operand) == 0 ? 1 : 0);
      case UnOp::fneg:
        return Value::from_fp(-as_fp(operand));
      case UnOp::to_f64:
        return Value::from_fp(static_cast<double>(as_int(operand)));
      case UnOp::to_i64: {
        const double v = as_fp(operand);
        if (!(v >= -9.0e18 && v <= 9.0e18)) return Value::from_int(0);
        return Value::from_int(static_cast<std::int64_t>(v));
      }
    }
    throw Trap{ExecStatus::trap_type};
  }

  Value eval_libcall(const Expr& expr, Frame& frame) {
    std::vector<Value> args;
    args.reserve(expr.args.size());
    for (const auto& arg : expr.args) args.push_back(eval(*arg, frame));
    auto arg_int = [&](std::size_t i) {
      return i < args.size() ? as_int(args[i]) : 0;
    };
    auto arg_fp = [&](std::size_t i) {
      return i < args.size() ? as_fp(args[i]) : 0.0;
    };
    switch (expr.lib_fn) {
      case LibFn::memmove:
      case LibFn::memcpy: {
        // Identical overlap-safe semantics (the VM mirrors this).
        mem_copy(args.at(0), args.at(1), arg_int(2));
        return args.at(0);
      }
      case LibFn::memset: {
        auto [buf, off] = writable(args.at(0));
        const std::int64_t n = arg_int(2);
        check_range(*buf, off, n);
        std::memset(buf->data() + off, static_cast<int>(arg_int(1) & 0xff),
                    static_cast<std::size_t>(n));
        return args.at(0);
      }
      case LibFn::strlen: {
        return Value::from_int(str_length(args.at(0)));
      }
      case LibFn::strcmp: {
        return Value::from_int(str_compare(args.at(0), args.at(1)));
      }
      case LibFn::strcpy: {
        const std::int64_t n = str_length(args.at(1));
        mem_copy(args.at(0), args.at(1), n + 1);
        return args.at(0);
      }
      case LibFn::malloc: {
        const std::int64_t n = rt::clamp64(arg_int(0), 0, 1 << 16);
        env_.buffers.emplace_back(static_cast<std::size_t>(n), 0);
        return Value::from_ptr(static_cast<int>(env_.buffers.size()) - 1, 0);
      }
      case LibFn::free:
        return Value::from_int(0);
      case LibFn::abs64:
        return Value::from_int(rt::abs64(arg_int(0)));
      case LibFn::imin:
        return Value::from_int(rt::imin(arg_int(0), arg_int(1)));
      case LibFn::imax:
        return Value::from_int(rt::imax(arg_int(0), arg_int(1)));
      case LibFn::clamp:
        return Value::from_int(
            rt::clamp64(arg_int(0), arg_int(1), arg_int(2)));
      case LibFn::fsqrt:
        return Value::from_fp(rt::fsqrt(arg_fp(0)));
      case LibFn::fpow:
        return Value::from_fp(rt::fpow(arg_fp(0), arg_fp(1)));
      case LibFn::ffloor:
        return Value::from_fp(rt::ffloor(arg_fp(0)));
      case LibFn::crc32: {
        std::uint32_t crc = 0xffffffffu;
        const std::int64_t n = arg_int(1);
        const Value& ptr = args.at(0);
        for (std::int64_t i = 0; i < n; ++i)
          crc = rt::crc32_step(crc, read_byte(ptr, i));
        return Value::from_int(static_cast<std::int64_t>(crc ^ 0xffffffffu));
      }
      case LibFn::byte_swap:
        return Value::from_int(static_cast<std::int64_t>(
            rt::byte_swap(static_cast<std::uint64_t>(arg_int(0)))));
      case LibFn::checked_add:
        return Value::from_int(rt::checked_add(arg_int(0), arg_int(1)));
      case LibFn::count:
        break;
    }
    throw Trap{ExecStatus::trap_type};
  }

  // ---- memory helpers -----------------------------------------------------

  static std::int64_t as_int(const Value& v) {
    if (v.type == ValueType::f64) return static_cast<std::int64_t>(v.f);
    if (v.type == ValueType::ptr) return v.offset;  // arithmetic on pointers
    return v.i;
  }

  static double as_fp(const Value& v) {
    if (v.type == ValueType::f64) return v.f;
    return static_cast<double>(v.i);
  }

  /// Resolves a pointer value to a writable buffer; string pool and invalid
  /// ids trap.
  std::pair<std::vector<std::uint8_t>*, std::int64_t> writable(
      const Value& ptr) {
    if (ptr.type != ValueType::ptr) throw Trap{ExecStatus::trap_type};
    if (ptr.buffer < 0 ||
        static_cast<std::size_t>(ptr.buffer) >= env_.buffers.size())
      throw Trap{ExecStatus::trap_oob};
    return {&env_.buffers[static_cast<std::size_t>(ptr.buffer)], ptr.offset};
  }

  void check_range(const std::vector<std::uint8_t>& buf, std::int64_t off,
                   std::int64_t len) {
    if (off < 0 || len < 0 ||
        off + len > static_cast<std::int64_t>(buf.size()))
      throw Trap{ExecStatus::trap_oob};
  }

  std::uint8_t read_byte(const Value& ptr, std::int64_t index) {
    if (ptr.type != ValueType::ptr) throw Trap{ExecStatus::trap_type};
    const std::int64_t off = ptr.offset + index;
    if (ptr.buffer <= -2) {
      const int sid = -2 - ptr.buffer;
      if (sid < 0 || static_cast<std::size_t>(sid) >= library_.strings.size())
        throw Trap{ExecStatus::trap_oob};
      const std::string& s = library_.strings[static_cast<std::size_t>(sid)];
      // NUL terminator is addressable, matching C string literals.
      if (off < 0 || off > static_cast<std::int64_t>(s.size()))
        throw Trap{ExecStatus::trap_oob};
      return off == static_cast<std::int64_t>(s.size())
                 ? 0
                 : static_cast<std::uint8_t>(s[static_cast<std::size_t>(off)]);
    }
    if (ptr.buffer < 0 ||
        static_cast<std::size_t>(ptr.buffer) >= env_.buffers.size())
      throw Trap{ExecStatus::trap_oob};
    const auto& buf = env_.buffers[static_cast<std::size_t>(ptr.buffer)];
    if (off < 0 || off >= static_cast<std::int64_t>(buf.size()))
      throw Trap{ExecStatus::trap_oob};
    return buf[static_cast<std::size_t>(off)];
  }

  void write_byte(const Value& ptr, std::int64_t index, std::uint8_t byte) {
    auto [buf, base] = writable(ptr);
    const std::int64_t off = base + index;
    if (off < 0 || off >= static_cast<std::int64_t>(buf->size()))
      throw Trap{ExecStatus::trap_oob};
    (*buf)[static_cast<std::size_t>(off)] = byte;
  }

  std::int64_t load_indexed(const Value& base, std::int64_t index,
                            bool byte_access) {
    if (byte_access) return read_byte(base, index);
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b)
      word |= static_cast<std::uint64_t>(read_byte(base, index * 8 + b))
              << (8 * b);
    return static_cast<std::int64_t>(word);
  }

  void store_indexed(const Value& base, std::int64_t index,
                     std::int64_t value, bool byte_access) {
    if (byte_access) {
      write_byte(base, index, static_cast<std::uint8_t>(value & 0xff));
      return;
    }
    for (int b = 0; b < 8; ++b)
      write_byte(base, index * 8 + b,
                 static_cast<std::uint8_t>(
                     (static_cast<std::uint64_t>(value) >> (8 * b)) & 0xff));
  }

  void mem_copy(const Value& dst, const Value& src, std::int64_t n) {
    if (n < 0) throw Trap{ExecStatus::trap_oob};
    // Read everything first, then write: overlap-safe like memmove.
    std::vector<std::uint8_t> staged(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) staged[static_cast<std::size_t>(i)] =
        read_byte(src, i);
    for (std::int64_t i = 0; i < n; ++i)
      write_byte(dst, i, staged[static_cast<std::size_t>(i)]);
  }

  std::int64_t str_length(const Value& ptr) {
    for (std::int64_t i = 0;; ++i) {
      tick();
      std::uint8_t byte = 0;
      try {
        byte = read_byte(ptr, i);
      } catch (const Trap&) {
        return i;  // unterminated buffer: length = remaining bytes
      }
      if (byte == 0) return i;
    }
  }

  std::int64_t str_compare(const Value& a, const Value& b) {
    const std::int64_t la = str_length(a);
    const std::int64_t lb = str_length(b);
    const std::int64_t n = rt::imin(la, lb);
    for (std::int64_t i = 0; i < n; ++i) {
      const int ca = read_byte(a, i);
      const int cb = read_byte(b, i);
      if (ca != cb) return ca < cb ? -1 : 1;
    }
    if (la == lb) return 0;
    return la < lb ? -1 : 1;
  }

  const SourceLibrary& library_;
  CallEnv& env_;
  std::uint64_t step_limit_;
  std::uint64_t steps_ = 0;
  int call_depth_ = 0;
};

}  // namespace

ExecResult interpret(const SourceLibrary& library, std::size_t function_index,
                     CallEnv& env, std::uint64_t step_limit) {
  Interpreter interp(library, env, step_limit);
  return interp.run(function_index);
}

}  // namespace patchecko
