#include "source/mutate.h"

#include <functional>
#include <stdexcept>

namespace patchecko {

std::string_view patch_kind_name(PatchKind kind) {
  switch (kind) {
    case PatchKind::add_bounds_guard: return "add_bounds_guard";
    case PatchKind::remove_memmove_loop: return "remove_memmove_loop";
    case PatchKind::off_by_one: return "off_by_one";
    case PatchKind::constant_tweak: return "constant_tweak";
    case PatchKind::add_skip_condition: return "add_skip_condition";
    case PatchKind::count: break;
  }
  return "unknown";
}

namespace {

// Depth-first search for the first for_loop statement in a body.
Stmt* find_first_loop(std::vector<StmtPtr>& body) {
  for (auto& stmt : body) {
    if (stmt->kind == Stmt::Kind::for_loop) return stmt.get();
    for (auto* nested : {&stmt->then_body, &stmt->else_body}) {
      if (Stmt* found = find_first_loop(*nested)) return found;
    }
    for (auto& c : stmt->cases)
      if (Stmt* found = find_first_loop(c)) return found;
  }
  return nullptr;
}

void collect_int_consts(Expr& expr, std::vector<Expr*>& out) {
  // Comparison operands steer control flow; a constant embedded there is a
  // *guard threshold*, not a pure data constant. constant_tweak deliberately
  // avoids those: the CVE-2018-9470 shape is a one-integer data change that
  // leaves every trace and CFG metric untouched.
  if (expr.kind == Expr::Kind::int_const) out.push_back(&expr);
  if (expr.kind == Expr::Kind::binop &&
      (binop_is_comparison(expr.bin_op) || expr.bin_op == BinOp::land ||
       expr.bin_op == BinOp::lor))
    return;
  // Divisors stay untouched: a tweak could introduce a divide-by-zero.
  if (expr.kind == Expr::Kind::binop &&
      (expr.bin_op == BinOp::divi || expr.bin_op == BinOp::modi)) {
    collect_int_consts(*expr.args[0], out);
    return;
  }
  for (auto& arg : expr.args) collect_int_consts(*arg, out);
}

void collect_int_consts(std::vector<StmtPtr>& body, std::vector<Expr*>& out) {
  for (auto& stmt : body) {
    // Value contexts only: conditions and loop bounds are skipped because a
    // changed threshold alters the execution trace (detectable), while the
    // paper's CVE-2018-9470 patch is trace-invisible.
    switch (stmt->kind) {
      case Stmt::Kind::assign:
      case Stmt::Kind::ret:
        if (stmt->expr) collect_int_consts(*stmt->expr, out);
        break;
      case Stmt::Kind::index_store:
        if (stmt->value) collect_int_consts(*stmt->value, out);
        break;
      default:
        break;
    }
    collect_int_consts(stmt->then_body, out);
    collect_int_consts(stmt->else_body, out);
    for (auto& c : stmt->cases) collect_int_consts(c, out);
  }
}

bool contains_libcall(const std::vector<StmtPtr>& body, LibFn fn);

bool contains_libcall(const Expr& expr, LibFn fn) {
  if (expr.kind == Expr::Kind::libcall && expr.lib_fn == fn) return true;
  for (const auto& arg : expr.args)
    if (contains_libcall(*arg, fn)) return true;
  return false;
}

bool contains_libcall(const std::vector<StmtPtr>& body, LibFn fn) {
  for (const auto& stmt : body) {
    for (const Expr* e :
         {stmt->expr.get(), stmt->base.get(), stmt->index.get(),
          stmt->value.get(), stmt->init.get(), stmt->bound.get()})
      if (e != nullptr && contains_libcall(*e, fn)) return true;
    if (contains_libcall(stmt->then_body, fn)) return true;
    if (contains_libcall(stmt->else_body, fn)) return true;
    for (const auto& c : stmt->cases)
      if (contains_libcall(c, fn)) return true;
  }
  return false;
}

// Recognizes the canonical vulnerable compaction shape produced by
// generate_copy_shift(with_memmove=true) and extracts its parameters.
struct CompactionShape {
  int n_local = -1;
  std::int64_t marker1 = 0;
  std::int64_t marker2 = 0;
  ExprPtr bound;  // the original `size & mask` expression
};

std::optional<CompactionShape> match_compaction(
    const SourceFunction& fn) {
  if (fn.body.size() != 3) return std::nullopt;
  const Stmt& assign = *fn.body[0];
  const Stmt& loop = *fn.body[1];
  if (assign.kind != Stmt::Kind::assign ||
      loop.kind != Stmt::Kind::for_loop)
    return std::nullopt;
  if (loop.then_body.size() != 1) return std::nullopt;
  const Stmt& guard = *loop.then_body[0];
  if (guard.kind != Stmt::Kind::if_else || guard.expr == nullptr)
    return std::nullopt;
  if (!contains_libcall(guard.then_body, LibFn::memmove))
    return std::nullopt;
  const Expr& cond = *guard.expr;
  if (cond.kind != Expr::Kind::binop || cond.bin_op != BinOp::land)
    return std::nullopt;
  auto marker_of = [](const Expr& eq) -> std::optional<std::int64_t> {
    if (eq.kind != Expr::Kind::binop || eq.bin_op != BinOp::eq)
      return std::nullopt;
    if (eq.args[1]->kind != Expr::Kind::int_const) return std::nullopt;
    return eq.args[1]->int_value;
  };
  const auto m1 = marker_of(*cond.args[0]);
  const auto m2 = marker_of(*cond.args[1]);
  if (!m1 || !m2) return std::nullopt;
  CompactionShape shape;
  shape.n_local = assign.local_index;
  shape.marker1 = *m1;
  shape.marker2 = *m2;
  shape.bound = assign.expr->clone();
  return shape;
}

// Builds the patched compaction body (Figure 6 right) in place of the
// vulnerable one, given the extracted shape. Appends two fresh locals.
SourceFunction rewrite_compaction(const SourceFunction& vulnerable,
                                  const CompactionShape& shape) {
  SourceFunction patched = vulnerable;
  patched.body.clear();
  const int n = shape.n_local;
  patched.local_types.push_back(ValueType::i64);
  const int w = static_cast<int>(patched.local_types.size()) - 1;
  patched.local_types.push_back(ValueType::i64);
  const int r = static_cast<int>(patched.local_types.size()) - 1;

  auto data = [] { return make_param(0, ValueType::ptr); };
  auto load_at = [&](ExprPtr idx) {
    return make_load(data(), std::move(idx), true);
  };

  patched.body.push_back(make_assign(n, shape.bound->clone()));
  patched.body.push_back(make_assign(w, make_int(1)));

  ExprPtr match = make_bin(
      BinOp::land,
      make_bin(BinOp::eq,
               load_at(make_bin(BinOp::sub, make_local(r, ValueType::i64),
                                make_int(1))),
               make_int(shape.marker1)),
      make_bin(BinOp::eq, load_at(make_local(r, ValueType::i64)),
               make_int(shape.marker2)));

  std::vector<StmtPtr> copy_body;
  copy_body.push_back(make_store(data(), make_local(w, ValueType::i64),
                                 load_at(make_local(r, ValueType::i64)),
                                 true));
  copy_body.push_back(make_assign(
      w, make_bin(BinOp::add, make_local(w, ValueType::i64), make_int(1))));
  std::vector<StmtPtr> loop_body;
  loop_body.push_back(
      make_if(make_un(UnOp::lnot, std::move(match)), std::move(copy_body)));
  patched.body.push_back(make_for(r, make_int(1),
                                  make_local(n, ValueType::i64),
                                  std::move(loop_body)));

  std::vector<StmtPtr> shrink;
  shrink.push_back(make_assign(n, make_local(w, ValueType::i64)));
  patched.body.push_back(make_if(
      make_bin(BinOp::lt, make_local(w, ValueType::i64),
               make_local(n, ValueType::i64)),
      std::move(shrink)));
  patched.body.push_back(make_ret(make_local(n, ValueType::i64)));
  return patched;
}

// First i64 parameter index, or -1.
int first_int_param(const SourceFunction& fn) {
  for (std::size_t i = 0; i < fn.param_types.size(); ++i)
    if (fn.param_types[i] == ValueType::i64) return static_cast<int>(i);
  return -1;
}

}  // namespace

std::optional<SourceFunction> apply_patch(const SourceFunction& vulnerable,
                                          PatchKind kind, Rng& rng) {
  switch (kind) {
    case PatchKind::add_bounds_guard: {
      const int param = first_int_param(vulnerable);
      if (param < 0) return std::nullopt;
      SourceFunction patched = vulnerable;
      std::vector<StmtPtr> reject;
      reject.push_back(make_ret(make_int(-1)));
      auto guard = make_if(
          make_bin(BinOp::gt, make_param(param, ValueType::i64),
                   make_int(rng.uniform(512, 4096))),
          std::move(reject));
      patched.body.insert(patched.body.begin(), std::move(guard));
      return patched;
    }
    case PatchKind::remove_memmove_loop: {
      const auto shape = match_compaction(vulnerable);
      if (!shape) return std::nullopt;
      return rewrite_compaction(vulnerable, *shape);
    }
    case PatchKind::off_by_one: {
      SourceFunction patched = vulnerable;
      Stmt* loop = find_first_loop(patched.body);
      if (loop == nullptr || loop->bound == nullptr) return std::nullopt;
      loop->bound =
          make_bin(BinOp::sub, std::move(loop->bound), make_int(1));
      return patched;
    }
    case PatchKind::constant_tweak: {
      SourceFunction patched = vulnerable;
      std::vector<Expr*> consts;
      collect_int_consts(patched.body, consts);
      if (consts.empty()) return std::nullopt;
      Expr* victim = consts[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(consts.size()) - 1))];
      std::int64_t delta = rng.uniform(1, 3);
      if (rng.chance(0.5)) delta = -delta;
      if (victim->int_value + delta == 0) delta = -delta;  // keep nonzero
      victim->int_value += delta;
      return patched;
    }
    case PatchKind::add_skip_condition: {
      // Real skip-guards fire on rare inputs; on benign data the patched
      // trace differs by a single extra compare per call. The mutator wraps
      // the first loop in a guard that is (almost) always satisfied.
      SourceFunction patched = vulnerable;
      // Locate the statement holding the first loop at its body level.
      std::vector<StmtPtr>* body = nullptr;
      std::size_t loop_pos = 0;
      std::function<bool(std::vector<StmtPtr>&)> locate =
          [&](std::vector<StmtPtr>& stmts) {
            for (std::size_t s = 0; s < stmts.size(); ++s) {
              if (stmts[s]->kind == Stmt::Kind::for_loop) {
                body = &stmts;
                loop_pos = s;
                return true;
              }
              for (auto* nested :
                   {&stmts[s]->then_body, &stmts[s]->else_body})
                if (locate(*nested)) return true;
              for (auto& c : stmts[s]->cases)
                if (locate(c)) return true;
            }
            return false;
          };
      if (!locate(patched.body)) return std::nullopt;

      const int param = first_int_param(patched);
      ExprPtr guard =
          param >= 0
              ? make_bin(BinOp::ne, make_param(param, ValueType::i64),
                         make_int(rng.uniform(500, 4000)))
              : make_bin(BinOp::ge, make_int(1), make_int(0));
      std::vector<StmtPtr> guarded;
      guarded.push_back(std::move((*body)[loop_pos]));
      (*body)[loop_pos] = make_if(std::move(guard), std::move(guarded));
      return patched;
    }
    case PatchKind::count:
      break;
  }
  return std::nullopt;
}

VulnPatchPair generate_vuln_patch_pair(PatchKind kind, Rng& rng,
                                       int function_index,
                                       const GeneratorConfig& config) {
  VulnPatchPair pair;
  pair.kind = kind;
  pair.description = std::string(patch_kind_name(kind));

  // A loop with a data-dependent guard inside: such functions have few
  // exact trace clones in a big library, which keeps the dynamic ranking
  // sharp even when the query and the target differ by the patch itself.
  auto has_guarded_loop = [](const SourceFunction& fn) {
    std::function<bool(const std::vector<StmtPtr>&, bool)> walk =
        [&](const std::vector<StmtPtr>& body, bool inside_loop) {
          for (const auto& stmt : body) {
            if (stmt->kind == Stmt::Kind::if_else && inside_loop) return true;
            const bool nested_loop =
                inside_loop || stmt->kind == Stmt::Kind::for_loop;
            if (walk(stmt->then_body, nested_loop)) return true;
            if (walk(stmt->else_body, nested_loop)) return true;
            for (const auto& c : stmt->cases)
              if (walk(c, nested_loop)) return true;
          }
          return false;
        };
    return walk(fn.body, false);
  };

  auto base_for = [&](std::initializer_list<Archetype> choices,
                      bool require_guarded_loop = false) {
    const std::vector<Archetype> pool(choices);
    // Retry with fresh draws until the mutator applies (bounded attempts).
    for (int attempt = 0; attempt < 48; ++attempt) {
      Rng fn_rng = rng.fork(static_cast<std::uint64_t>(attempt) + 11);
      SourceFunction candidate = generate_function(
          fn_rng, pool[static_cast<std::size_t>(rng.uniform(
                      0, static_cast<std::int64_t>(pool.size()) - 1))],
          function_index, config);
      if (require_guarded_loop && attempt < 40 &&
          !has_guarded_loop(candidate))
        continue;
      auto patched = apply_patch(candidate, kind, rng);
      if (patched) {
        pair.vulnerable = std::move(candidate);
        pair.patched = std::move(*patched);
        return true;
      }
    }
    return false;
  };

  bool ok = false;
  switch (kind) {
    case PatchKind::add_bounds_guard:
      ok = base_for({Archetype::byte_transform, Archetype::checksum,
                     Archetype::mixed});
      break;
    case PatchKind::remove_memmove_loop: {
      Rng fn_rng = rng.fork(17);
      pair.vulnerable = generate_copy_shift(fn_rng, function_index,
                                            /*with_memmove=*/true, config);
      auto patched = apply_patch(pair.vulnerable, kind, rng);
      if (!patched)
        throw std::logic_error(
            "generated compaction kernel did not match its own shape");
      pair.patched = std::move(*patched);
      ok = true;
      break;
    }
    case PatchKind::off_by_one:
      ok = base_for({Archetype::byte_transform, Archetype::checksum,
                     Archetype::scanner, Archetype::mixed},
                    /*require_guarded_loop=*/true);
      break;
    case PatchKind::constant_tweak:
      // scalar_math only: loop-free, so the tweaked constant changes
      // computed values but not the execution trace.
      ok = base_for({Archetype::scalar_math});
      break;
    case PatchKind::add_skip_condition:
      ok = base_for({Archetype::byte_transform, Archetype::mixed});
      break;
    case PatchKind::count:
      break;
  }
  if (!ok)
    throw std::logic_error("could not generate a vuln/patch pair for kind " +
                           std::string(patch_kind_name(kind)));
  pair.vulnerable.name += "_vuln";
  pair.patched.name += "_patched";
  return pair;
}

}  // namespace patchecko
