#include "source/ast.h"

namespace patchecko {

bool binop_is_fp(BinOp op) {
  switch (op) {
    case BinOp::fadd: case BinOp::fsub: case BinOp::fmul:
    case BinOp::fdiv: case BinOp::flt: case BinOp::fgt:
      return true;
    default:
      return false;
  }
}

bool binop_is_comparison(BinOp op) {
  switch (op) {
    case BinOp::lt: case BinOp::le: case BinOp::gt: case BinOp::ge:
    case BinOp::eq: case BinOp::ne: case BinOp::flt: case BinOp::fgt:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->type = type;
  copy->int_value = int_value;
  copy->fp_value = fp_value;
  copy->bin_op = bin_op;
  copy->un_op = un_op;
  copy->lib_fn = lib_fn;
  copy->callee = callee;
  copy->byte_access = byte_access;
  copy->args.reserve(args.size());
  for (const auto& arg : args) copy->args.push_back(arg->clone());
  return copy;
}

StmtPtr Stmt::clone() const {
  auto copy = std::make_unique<Stmt>();
  copy->kind = kind;
  copy->local_index = local_index;
  if (expr) copy->expr = expr->clone();
  if (base) copy->base = base->clone();
  if (index) copy->index = index->clone();
  if (value) copy->value = value->clone();
  if (init) copy->init = init->clone();
  if (bound) copy->bound = bound->clone();
  copy->step_value = step_value;
  copy->byte_access = byte_access;
  copy->sys = sys;
  copy->then_body = clone_body(then_body);
  copy->else_body = clone_body(else_body);
  copy->cases.reserve(cases.size());
  for (const auto& c : cases) copy->cases.push_back(clone_body(c));
  return copy;
}

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body) {
  std::vector<StmtPtr> out;
  out.reserve(body.size());
  for (const auto& stmt : body) out.push_back(stmt->clone());
  return out;
}

SourceFunction::SourceFunction(const SourceFunction& other)
    : name(other.name),
      param_types(other.param_types),
      local_types(other.local_types),
      body(clone_body(other.body)) {}

SourceFunction& SourceFunction::operator=(const SourceFunction& other) {
  if (this == &other) return *this;
  name = other.name;
  param_types = other.param_types;
  local_types = other.local_types;
  body = clone_body(other.body);
  return *this;
}

namespace {

std::size_t count_expr(const Expr& expr) {
  std::size_t total = 1;
  for (const auto& arg : expr.args) total += count_expr(*arg);
  return total;
}

std::size_t count_body(const std::vector<StmtPtr>& body);

std::size_t count_stmt(const Stmt& stmt) {
  std::size_t total = 1;
  for (const Expr* e : {stmt.expr.get(), stmt.base.get(), stmt.index.get(),
                        stmt.value.get(), stmt.init.get(), stmt.bound.get()})
    if (e != nullptr) total += count_expr(*e);
  total += count_body(stmt.then_body);
  total += count_body(stmt.else_body);
  for (const auto& c : stmt.cases) total += count_body(c);
  return total;
}

std::size_t count_body(const std::vector<StmtPtr>& body) {
  std::size_t total = 0;
  for (const auto& stmt : body) total += count_stmt(*stmt);
  return total;
}

}  // namespace

std::size_t SourceFunction::node_count() const { return count_body(body); }

ExprPtr make_int(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::int_const;
  e->type = ValueType::i64;
  e->int_value = v;
  return e;
}

ExprPtr make_fp(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::fp_const;
  e->type = ValueType::f64;
  e->fp_value = v;
  return e;
}

ExprPtr make_param(int index, ValueType type) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::param_ref;
  e->type = type;
  e->int_value = index;
  return e;
}

ExprPtr make_local(int index, ValueType type) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::local_ref;
  e->type = type;
  e->int_value = index;
  return e;
}

ExprPtr make_bin(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::binop;
  e->bin_op = op;
  e->type = (binop_is_fp(op) && !binop_is_comparison(op)) ? ValueType::f64
                                                          : ValueType::i64;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr make_un(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::unop;
  e->un_op = op;
  switch (op) {
    case UnOp::fneg:
    case UnOp::to_f64:
      e->type = ValueType::f64;
      break;
    default:
      e->type = ValueType::i64;
      break;
  }
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr make_load(ExprPtr base, ExprPtr index, bool byte_access) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::index_load;
  e->type = ValueType::i64;
  e->byte_access = byte_access;
  e->args.push_back(std::move(base));
  e->args.push_back(std::move(index));
  return e;
}

ExprPtr make_libcall(LibFn fn, std::vector<ExprPtr> args, ValueType type) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::libcall;
  e->lib_fn = fn;
  e->type = type;
  e->args = std::move(args);
  return e;
}

ExprPtr make_strref(int string_id) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::strref;
  e->type = ValueType::ptr;
  e->int_value = string_id;
  return e;
}

ExprPtr make_call(int callee, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::fn_call;
  e->type = ValueType::i64;
  e->callee = callee;
  e->args = std::move(args);
  return e;
}

ExprPtr make_indirect_call(ExprPtr selector, int even_callee, int odd_callee,
                           std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::indirect_call;
  e->type = ValueType::i64;
  e->callee = even_callee;
  e->int_value = odd_callee;
  e->args.push_back(std::move(selector));
  for (auto& arg : args) e->args.push_back(std::move(arg));
  return e;
}

ExprPtr make_ptr_offset(ExprPtr base, ExprPtr offset) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::ptr_offset;
  e->type = ValueType::ptr;
  e->args.push_back(std::move(base));
  e->args.push_back(std::move(offset));
  return e;
}

StmtPtr make_assign(int local_index, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::assign;
  s->local_index = local_index;
  s->expr = std::move(value);
  return s;
}

StmtPtr make_store(ExprPtr base, ExprPtr index, ExprPtr value,
                   bool byte_access) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::index_store;
  s->base = std::move(base);
  s->index = std::move(index);
  s->value = std::move(value);
  s->byte_access = byte_access;
  return s;
}

StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::if_else;
  s->expr = std::move(cond);
  s->then_body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr make_for(int local_index, ExprPtr init, ExprPtr bound,
                 std::vector<StmtPtr> body, std::int64_t step) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::for_loop;
  s->local_index = local_index;
  s->init = std::move(init);
  s->bound = std::move(bound);
  s->then_body = std::move(body);
  s->step_value = step;
  return s;
}

StmtPtr make_ret(ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::ret;
  s->expr = std::move(value);
  return s;
}

StmtPtr make_expr_stmt(ExprPtr expr) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::expr_stmt;
  s->expr = std::move(expr);
  return s;
}

StmtPtr make_syscall(Sys sys, ExprPtr arg) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::syscall_stmt;
  s->sys = sys;
  s->expr = std::move(arg);
  return s;
}

StmtPtr make_switch(ExprPtr selector,
                    std::vector<std::vector<StmtPtr>> cases) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::switch_stmt;
  s->expr = std::move(selector);
  s->cases = std::move(cases);
  return s;
}

}  // namespace patchecko
