#include "source/generator.h"

#include <algorithm>
#include <sstream>

namespace patchecko {

std::string_view archetype_name(Archetype a) {
  switch (a) {
    case Archetype::byte_transform: return "byte_transform";
    case Archetype::checksum: return "checksum";
    case Archetype::scanner: return "scanner";
    case Archetype::copy_shift: return "copy_shift";
    case Archetype::dispatcher: return "dispatcher";
    case Archetype::scalar_math: return "scalar_math";
    case Archetype::fp_kernel: return "fp_kernel";
    case Archetype::string_op: return "string_op";
    case Archetype::validator: return "validator";
    case Archetype::mixed: return "mixed";
    case Archetype::count: break;
  }
  return "unknown";
}

Archetype pick_archetype(Rng& rng) {
  // Buffer-processing shapes dominate, as in media/parser libraries.
  static const std::vector<double> weights{
      2.0,  // byte_transform
      1.6,  // checksum
      1.4,  // scanner
      1.2,  // copy_shift
      1.0,  // dispatcher
      1.6,  // scalar_math
      0.9,  // fp_kernel
      1.0,  // string_op
      1.2,  // validator
      1.1,  // mixed
  };
  return static_cast<Archetype>(rng.weighted_pick(weights));
}

namespace {

// Shared state while generating one function.
struct Ctx {
  Rng& rng;
  const GeneratorConfig& cfg;
  SourceFunction& fn;
  int function_index = 0;
  std::vector<CallableFn> callables;  // earlier all-i64 functions
  int data_param = -1;                // ptr parameter, if any
  std::vector<int> int_params;        // i64 parameters
  int fp_param = -1;                  // f64 parameter, if any
};

std::int64_t pick_mask(Rng& rng) {
  static const std::vector<std::int64_t> masks{15, 31, 63};
  return rng.pick(masks);
}

int add_local(Ctx& c, ValueType type) {
  c.fn.local_types.push_back(type);
  return static_cast<int>(c.fn.local_types.size()) - 1;
}

// Leaf of an integer expression: constant, parameter, or a visible local.
ExprPtr int_leaf(Ctx& c, const std::vector<int>& live_locals) {
  const double roll = c.rng.uniform01();
  if (roll < 0.40 || (c.int_params.empty() && live_locals.empty()))
    return make_int(c.rng.uniform(1, 64));
  if (roll < 0.75 && !c.int_params.empty())
    return make_param(c.rng.pick(c.int_params), ValueType::i64);
  if (!live_locals.empty())
    return make_local(c.rng.pick(live_locals), ValueType::i64);
  return make_int(c.rng.uniform(1, 255));
}

// Random integer arithmetic tree over the given leaves.
ExprPtr arith_expr(Ctx& c, const std::vector<int>& live_locals, int depth) {
  if (depth <= 0 || c.rng.chance(0.35)) return int_leaf(c, live_locals);
  static const std::vector<BinOp> ops{
      BinOp::add, BinOp::add, BinOp::sub, BinOp::mul,
      BinOp::band, BinOp::bor, BinOp::bxor, BinOp::shl, BinOp::shr};
  BinOp op = c.rng.pick(ops);
  ExprPtr lhs = arith_expr(c, live_locals, depth - 1);
  ExprPtr rhs;
  if (op == BinOp::shl || op == BinOp::shr) {
    rhs = make_int(c.rng.uniform(1, 7));  // keep shifts meaningful
  } else {
    rhs = arith_expr(c, live_locals, depth - 1);
  }
  // Occasionally divide by a nonzero constant (exercises div traps never).
  if (c.rng.chance(0.08))
    return make_bin(c.rng.chance(0.5) ? BinOp::divi : BinOp::modi,
                    std::move(lhs), make_int(c.rng.uniform(2, 9)));
  return make_bin(op, std::move(lhs), std::move(rhs));
}

// Comparison usable as an if/loop condition.
ExprPtr cond_expr(Ctx& c, const std::vector<int>& live_locals) {
  static const std::vector<BinOp> cmps{BinOp::lt, BinOp::le, BinOp::gt,
                                       BinOp::ge, BinOp::eq, BinOp::ne};
  ExprPtr lhs = arith_expr(c, live_locals, 1);
  ExprPtr rhs = c.rng.chance(0.6) ? make_int(c.rng.uniform(0, 200))
                                  : arith_expr(c, live_locals, 1);
  ExprPtr cmp = make_bin(c.rng.pick(cmps), std::move(lhs), std::move(rhs));
  if (c.rng.chance(0.18))
    return make_bin(c.rng.chance(0.5) ? BinOp::land : BinOp::lor,
                    std::move(cmp), cond_expr(c, live_locals));
  return cmp;
}

// `size & mask` loop bound expression (terminating by construction).
ExprPtr bounded_size(Ctx& c, std::int64_t mask) {
  if (c.int_params.empty()) return make_int(c.rng.uniform(4, mask));
  return make_bin(BinOp::band, make_param(c.int_params[0], ValueType::i64),
                  make_int(mask));
}

ExprPtr data_load(Ctx& c, ExprPtr index) {
  return make_load(make_param(c.data_param, ValueType::ptr), std::move(index),
                   /*byte_access=*/true);
}

StmtPtr data_store(Ctx& c, ExprPtr index, ExprPtr value) {
  return make_store(make_param(c.data_param, ValueType::ptr),
                    std::move(index), std::move(value), /*byte_access=*/true);
}

// Optional trailing log syscall; adds string refs + syscall features.
void maybe_syscall(Ctx& c, std::vector<StmtPtr>& body) {
  if (!c.rng.chance(0.22)) return;
  const int string_id = static_cast<int>(
      c.rng.uniform(0, c.cfg.string_count - 1));
  if (c.rng.chance(0.5)) {
    body.push_back(make_syscall(
        Sys::sys_log,
        make_libcall(LibFn::strlen, [&] {
          std::vector<ExprPtr> args;
          args.push_back(make_strref(string_id));
          return args;
        }(), ValueType::i64)));
  } else {
    body.push_back(make_syscall(Sys::sys_write, make_int(string_id)));
  }
}

// ---- archetype builders ---------------------------------------------------

void build_byte_transform(Ctx& c) {
  c.fn.param_types = {ValueType::ptr, ValueType::i64, ValueType::i64};
  c.data_param = 0;
  c.int_params = {1, 2};
  const int i = add_local(c, ValueType::i64);
  const int t = add_local(c, ValueType::i64);

  std::vector<StmtPtr> loop_body;
  loop_body.push_back(make_assign(t, data_load(c, make_local(i, ValueType::i64))));
  // Variable-size per-iteration work, mostly behind data-dependent guards.
  const int transform_steps = static_cast<int>(c.rng.uniform(1, 3));
  for (int step = 0; step < transform_steps; ++step) {
    if (c.rng.chance(c.cfg.embellish_prob)) {
      std::vector<StmtPtr> then_body;
      then_body.push_back(make_assign(t, arith_expr(c, {i, t}, 2)));
      std::vector<StmtPtr> else_body;
      if (c.rng.chance(0.5))
        else_body.push_back(make_assign(t, arith_expr(c, {i, t}, 1)));
      loop_body.push_back(make_if(cond_expr(c, {i, t}), std::move(then_body),
                                  std::move(else_body)));
    } else {
      loop_body.push_back(make_assign(t, arith_expr(c, {i, t}, 2)));
    }
  }
  loop_body.push_back(data_store(
      c, make_local(i, ValueType::i64),
      make_bin(BinOp::band, make_local(t, ValueType::i64), make_int(0xff))));

  std::vector<StmtPtr>& body = c.fn.body;
  body.push_back(make_for(i, make_int(0), bounded_size(c, pick_mask(c.rng)),
                          std::move(loop_body)));
  maybe_syscall(c, body);
  body.push_back(make_ret(arith_expr(c, {t}, 1)));
}

void build_checksum(Ctx& c) {
  c.fn.param_types = {ValueType::ptr, ValueType::i64};
  c.data_param = 0;
  c.int_params = {1};
  const int i = add_local(c, ValueType::i64);
  const int acc = add_local(c, ValueType::i64);

  std::vector<StmtPtr>& body = c.fn.body;
  body.push_back(make_assign(acc, make_int(c.rng.uniform(0, 0xffff))));
  std::vector<StmtPtr> loop_body;
  static const std::vector<BinOp> folds{BinOp::add, BinOp::bxor, BinOp::add,
                                        BinOp::sub};
  // One to three fold steps per iteration: structural diversity between
  // same-archetype siblings must exceed a one-line patch's trace delta.
  const int fold_steps = static_cast<int>(c.rng.uniform(1, 3));
  for (int step = 0; step < fold_steps; ++step) {
    ExprPtr folded = make_bin(
        c.rng.pick(folds),
        make_bin(c.rng.chance(0.5) ? BinOp::shl : BinOp::mul,
                 make_local(acc, ValueType::i64),
                 make_int(c.rng.uniform(1, 5))),
        step == 0 ? data_load(c, make_local(i, ValueType::i64))
                  : arith_expr(c, {acc, i}, 1));
    loop_body.push_back(make_assign(acc, std::move(folded)));
  }
  if (c.rng.chance(c.cfg.embellish_prob)) {
    // Data-dependent extra fold: distinguishes same-shape checksums by the
    // values they process, not just by instruction counts.
    std::vector<StmtPtr> extra;
    extra.push_back(make_assign(acc, arith_expr(c, {acc, i}, 1)));
    loop_body.push_back(make_if(
        make_bin(BinOp::eq,
                 make_bin(BinOp::band, data_load(c, make_local(i, ValueType::i64)),
                          make_int(c.rng.uniform(1, 7))),
                 make_int(0)),
        std::move(extra)));
  }
  body.push_back(make_for(i, make_int(0), bounded_size(c, pick_mask(c.rng)),
                          std::move(loop_body)));
  if (c.rng.chance(0.35)) {
    std::vector<ExprPtr> args;
    args.push_back(make_local(acc, ValueType::i64));
    body.push_back(make_assign(
        acc, make_libcall(c.rng.chance(0.5) ? LibFn::byte_swap : LibFn::abs64,
                          std::move(args), ValueType::i64)));
  }
  maybe_syscall(c, body);
  body.push_back(make_ret(make_local(acc, ValueType::i64)));
}

void build_scanner(Ctx& c) {
  c.fn.param_types = {ValueType::ptr, ValueType::i64, ValueType::i64};
  c.data_param = 0;
  c.int_params = {1, 2};
  const int i = add_local(c, ValueType::i64);

  ExprPtr needle = make_bin(BinOp::band, make_param(2, ValueType::i64),
                            make_int(0xff));
  std::vector<StmtPtr> found;
  found.push_back(make_ret(c.rng.chance(0.5)
                               ? make_local(i, ValueType::i64)
                               : arith_expr(c, {i}, 1)));
  std::vector<StmtPtr> loop_body;
  loop_body.push_back(make_if(
      make_bin(c.rng.chance(0.75) ? BinOp::eq : BinOp::gt,
               data_load(c, make_local(i, ValueType::i64)),
               std::move(needle)),
      std::move(found)));
  std::vector<StmtPtr>& body = c.fn.body;
  body.push_back(make_for(i, make_int(0), bounded_size(c, pick_mask(c.rng)),
                          std::move(loop_body)));
  body.push_back(make_ret(make_int(-1)));
}

// The removeUnsynchronization-style kernel (Figure 6): a compaction loop.
// With `with_memmove`, the body contains the vulnerable shifted memmove;
// otherwise it is already in the (patched) two-offset form.
void build_copy_shift(Ctx& c, bool with_memmove) {
  c.fn.param_types = {ValueType::ptr, ValueType::i64};
  c.data_param = 0;
  c.int_params = {1};
  const std::int64_t mask = pick_mask(c.rng);
  const std::int64_t marker1 = c.rng.uniform(1, 255);
  const std::int64_t marker2 = c.rng.uniform(0, 255);
  const int n = add_local(c, ValueType::i64);
  std::vector<StmtPtr>& body = c.fn.body;
  body.push_back(make_assign(n, bounded_size(c, mask)));

  auto match_cond = [&](ExprPtr idx_a, ExprPtr idx_b) {
    return make_bin(
        BinOp::land,
        make_bin(BinOp::eq, data_load(c, std::move(idx_a)),
                 make_int(marker1)),
        make_bin(BinOp::eq, data_load(c, std::move(idx_b)),
                 make_int(marker2)));
  };

  if (with_memmove) {
    // for (i = 0; i + 1 < n; ++i)
    //   if (data[i]==m1 && data[i+1]==m2) { memmove(&data[i+1], &data[i+2],
    //                                              n - i - 2); n = n - 1; }
    const int i = add_local(c, ValueType::i64);
    std::vector<StmtPtr> then_body;
    std::vector<ExprPtr> mm_args;
    mm_args.push_back(make_ptr_offset(
        make_param(0, ValueType::ptr),
        make_bin(BinOp::add, make_local(i, ValueType::i64), make_int(1))));
    mm_args.push_back(make_ptr_offset(
        make_param(0, ValueType::ptr),
        make_bin(BinOp::add, make_local(i, ValueType::i64), make_int(2))));
    mm_args.push_back(make_bin(
        BinOp::sub,
        make_bin(BinOp::sub, make_local(n, ValueType::i64),
                 make_local(i, ValueType::i64)),
        make_int(2)));
    then_body.push_back(make_expr_stmt(
        make_libcall(LibFn::memmove, std::move(mm_args), ValueType::ptr)));
    then_body.push_back(make_assign(
        n, make_bin(BinOp::sub, make_local(n, ValueType::i64), make_int(1))));

    std::vector<StmtPtr> loop_body;
    loop_body.push_back(make_if(
        match_cond(make_local(i, ValueType::i64),
                   make_bin(BinOp::add, make_local(i, ValueType::i64),
                            make_int(1))),
        std::move(then_body)));
    // Bound n-1 is re-derived up front; traces shrink when n shrinks, which
    // is exactly the behavioural tell the dynamic engine keys on.
    body.push_back(make_for(
        i, make_int(0),
        make_bin(BinOp::sub, make_local(n, ValueType::i64), make_int(1)),
        std::move(loop_body)));
    body.push_back(make_ret(make_local(n, ValueType::i64)));
  } else {
    // w = 1; for (r = 1; r < n; ++r) { if !(data[r-1]==m1 && data[r]==m2)
    //   { data[w] = data[r]; w = w + 1; } }  return w;
    const int w = add_local(c, ValueType::i64);
    const int r = add_local(c, ValueType::i64);
    body.push_back(make_assign(w, make_int(1)));
    std::vector<StmtPtr> copy_body;
    copy_body.push_back(data_store(c, make_local(w, ValueType::i64),
                                   data_load(c, make_local(r, ValueType::i64))));
    copy_body.push_back(make_assign(
        w, make_bin(BinOp::add, make_local(w, ValueType::i64), make_int(1))));
    std::vector<StmtPtr> loop_body;
    loop_body.push_back(make_if(
        make_un(UnOp::lnot,
                match_cond(make_bin(BinOp::sub, make_local(r, ValueType::i64),
                                    make_int(1)),
                           make_local(r, ValueType::i64))),
        std::move(copy_body)));
    body.push_back(make_for(r, make_int(1), make_local(n, ValueType::i64),
                            std::move(loop_body)));
    std::vector<StmtPtr> shrink;
    shrink.push_back(make_assign(n, make_local(w, ValueType::i64)));
    body.push_back(make_if(
        make_bin(BinOp::lt, make_local(w, ValueType::i64),
                 make_local(n, ValueType::i64)),
        std::move(shrink)));
    body.push_back(make_ret(make_local(n, ValueType::i64)));
  }
}

void build_dispatcher(Ctx& c) {
  c.fn.param_types = {ValueType::i64, ValueType::i64, ValueType::i64};
  c.int_params = {0, 1, 2};
  const int case_count = static_cast<int>(c.rng.uniform(3, 5));
  std::vector<std::vector<StmtPtr>> cases;
  for (int k = 0; k < case_count; ++k) {
    std::vector<StmtPtr> body;
    const double roll = c.rng.uniform01();
    if (roll < 0.35) {
      body.push_back(make_ret(arith_expr(c, {}, 2)));
    } else if (roll < 0.6) {
      static const std::vector<LibFn> fns{LibFn::imin, LibFn::imax,
                                          LibFn::abs64, LibFn::checked_add};
      std::vector<ExprPtr> args;
      args.push_back(make_param(1, ValueType::i64));
      args.push_back(make_param(2, ValueType::i64));
      body.push_back(make_ret(
          make_libcall(c.rng.pick(fns), std::move(args), ValueType::i64)));
    } else if (roll < 0.8 && !c.callables.empty()) {
      // Type- and arity-correct intra-library call: the callee's declared
      // parameter count is matched exactly.
      const CallableFn callee = c.rng.pick(c.callables);
      auto args_for = [&](int count) {
        std::vector<ExprPtr> args;
        for (int a = 0; a < count; ++a) {
          if (a < 2 && c.rng.chance(0.8))
            args.push_back(make_param(a + 1, ValueType::i64));
          else
            args.push_back(make_int(c.rng.uniform(0, 64)));
        }
        return args;
      };
      // Function-pointer (indirect) dispatch when a second callable of the
      // same arity exists: `(sel odd ? g : f)(args)` compiles to callr.
      const CallableFn* partner = nullptr;
      if (c.rng.chance(0.5)) {
        for (const CallableFn& other : c.callables)
          if (other.param_count == callee.param_count &&
              other.index != callee.index) {
            partner = &other;
            break;
          }
      }
      if (partner != nullptr) {
        body.push_back(make_ret(make_indirect_call(
            make_param(2, ValueType::i64), callee.index, partner->index,
            args_for(callee.param_count))));
      } else {
        body.push_back(make_ret(
            make_call(callee.index, args_for(callee.param_count))));
      }
    } else {
      maybe_syscall(c, body);
      body.push_back(make_ret(make_int(c.rng.uniform(-4, 16))));
    }
    cases.push_back(std::move(body));
  }
  c.fn.body.push_back(
      make_switch(make_param(0, ValueType::i64), std::move(cases)));
  c.fn.body.push_back(make_ret(make_int(0)));
}

void build_scalar_math(Ctx& c) {
  c.fn.param_types = {ValueType::i64, ValueType::i64, ValueType::i64};
  c.int_params = {0, 1, 2};
  const int t0 = add_local(c, ValueType::i64);
  const int t1 = add_local(c, ValueType::i64);
  std::vector<StmtPtr>& body = c.fn.body;
  body.push_back(make_assign(t0, arith_expr(c, {}, 3)));
  std::vector<StmtPtr> then_body;
  then_body.push_back(make_assign(t1, arith_expr(c, {t0}, 2)));
  std::vector<StmtPtr> else_body;
  {
    static const std::vector<LibFn> fns{LibFn::abs64, LibFn::clamp,
                                        LibFn::checked_add, LibFn::imax};
    const LibFn fn = c.rng.pick(fns);
    std::vector<ExprPtr> args;
    args.push_back(make_local(t0, ValueType::i64));
    args.push_back(make_param(1, ValueType::i64));
    if (fn == LibFn::clamp) args.push_back(make_int(c.rng.uniform(64, 512)));
    else_body.push_back(
        make_assign(t1, make_libcall(fn, std::move(args), ValueType::i64)));
  }
  body.push_back(
      make_if(cond_expr(c, {t0}), std::move(then_body), std::move(else_body)));
  if (c.rng.chance(c.cfg.embellish_prob)) {
    std::vector<StmtPtr> extra;
    extra.push_back(make_assign(t0, arith_expr(c, {t0, t1}, 2)));
    body.push_back(make_if(cond_expr(c, {t0, t1}), std::move(extra)));
  }
  body.push_back(make_ret(make_bin(BinOp::add, make_local(t0, ValueType::i64),
                                   make_local(t1, ValueType::i64))));
}

void build_fp_kernel(Ctx& c) {
  c.fn.param_types = {ValueType::ptr, ValueType::i64, ValueType::f64};
  c.data_param = 0;
  c.int_params = {1};
  c.fp_param = 2;
  const int i = add_local(c, ValueType::i64);
  const int acc = add_local(c, ValueType::f64);
  std::vector<StmtPtr>& body = c.fn.body;
  body.push_back(make_assign(acc, make_fp(c.rng.uniform_real(0.0, 4.0))));
  std::vector<StmtPtr> loop_body;
  ExprPtr sample = make_un(UnOp::to_f64,
                           data_load(c, make_local(i, ValueType::i64)));
  ExprPtr term = make_bin(c.rng.chance(0.7) ? BinOp::fmul : BinOp::fadd,
                          std::move(sample),
                          make_param(2, ValueType::f64));
  loop_body.push_back(make_assign(
      acc, make_bin(BinOp::fadd, make_local(acc, ValueType::f64),
                    std::move(term))));
  body.push_back(make_for(i, make_int(0), bounded_size(c, pick_mask(c.rng)),
                          std::move(loop_body)));
  if (c.rng.chance(0.5)) {
    std::vector<ExprPtr> args;
    args.push_back(make_local(acc, ValueType::f64));
    body.push_back(make_assign(
        acc, make_libcall(c.rng.chance(0.6) ? LibFn::fsqrt : LibFn::ffloor,
                          std::move(args), ValueType::f64)));
  }
  body.push_back(make_ret(make_un(UnOp::to_i64,
                                  make_bin(BinOp::fmul,
                                           make_local(acc, ValueType::f64),
                                           make_fp(16.0)))));
}

void build_string_op(Ctx& c) {
  c.fn.param_types = {ValueType::ptr, ValueType::i64};
  c.data_param = 0;
  c.int_params = {1};
  const int len = add_local(c, ValueType::i64);
  std::vector<StmtPtr>& body = c.fn.body;
  {
    std::vector<ExprPtr> args;
    args.push_back(make_param(0, ValueType::ptr));
    body.push_back(make_assign(
        len, make_libcall(LibFn::strlen, std::move(args), ValueType::i64)));
  }
  const int string_id = static_cast<int>(
      c.rng.uniform(0, c.cfg.string_count - 1));
  std::vector<StmtPtr> match;
  match.push_back(make_ret(make_int(c.rng.uniform(1, 8))));
  {
    std::vector<ExprPtr> args;
    args.push_back(make_param(0, ValueType::ptr));
    args.push_back(make_strref(string_id));
    body.push_back(make_if(
        make_bin(BinOp::eq,
                 make_libcall(LibFn::strcmp, std::move(args), ValueType::i64),
                 make_int(0)),
        std::move(match)));
  }
  if (c.rng.chance(c.cfg.embellish_prob)) {
    std::vector<StmtPtr> clip;
    clip.push_back(make_assign(
        len, make_bin(BinOp::band, make_local(len, ValueType::i64),
                      make_int(pick_mask(c.rng)))));
    body.push_back(make_if(
        make_bin(BinOp::gt, make_local(len, ValueType::i64),
                 make_int(c.rng.uniform(8, 48))),
        std::move(clip)));
  }
  body.push_back(make_ret(arith_expr(c, {len}, 1)));
}

void build_validator(Ctx& c) {
  c.fn.param_types = {ValueType::ptr, ValueType::i64, ValueType::i64};
  c.data_param = 0;
  c.int_params = {1, 2};
  std::vector<StmtPtr>& body = c.fn.body;
  auto reject = [&] {
    std::vector<StmtPtr> r;
    r.push_back(make_ret(make_int(0)));
    return r;
  };
  body.push_back(make_if(
      make_bin(BinOp::lt, make_param(1, ValueType::i64),
               make_int(c.rng.uniform(1, 4))),
      reject()));
  body.push_back(make_if(
      make_bin(BinOp::gt, make_param(1, ValueType::i64),
               c.rng.chance(0.5)
                   ? make_param(2, ValueType::i64)
                   : make_int(c.rng.uniform(64, 4096))),
      reject()));
  const std::int64_t magic = c.rng.uniform(0, 255);
  body.push_back(make_if(
      make_bin(BinOp::ne, data_load(c, make_int(0)), make_int(magic)),
      reject()));
  if (c.rng.chance(c.cfg.embellish_prob)) {
    body.push_back(make_if(
        make_bin(BinOp::ne,
                 make_bin(BinOp::band, data_load(c, make_int(1)),
                          make_int(c.rng.uniform(1, 15))),
                 make_int(0)),
        reject()));
  }
  maybe_syscall(c, body);
  body.push_back(make_ret(make_int(1)));
}

void build_mixed(Ctx& c) {
  c.fn.param_types = {ValueType::ptr, ValueType::i64, ValueType::i64};
  c.data_param = 0;
  c.int_params = {1, 2};
  const int i = add_local(c, ValueType::i64);
  const int j = add_local(c, ValueType::i64);
  const int acc = add_local(c, ValueType::i64);
  std::vector<StmtPtr>& body = c.fn.body;
  body.push_back(make_assign(acc, make_int(0)));

  std::vector<StmtPtr> inner_body;
  inner_body.push_back(make_assign(
      acc, make_bin(BinOp::add, make_local(acc, ValueType::i64),
                    arith_expr(c, {i, j}, 1))));
  std::vector<StmtPtr> guarded;
  guarded.push_back(make_for(j, make_int(0),
                             make_int(c.rng.uniform(2, 6)),
                             std::move(inner_body)));
  if (c.rng.chance(0.4)) {
    std::vector<ExprPtr> args;
    args.push_back(make_local(acc, ValueType::i64));
    args.push_back(make_int(0));
    args.push_back(make_int(c.rng.uniform(256, 1 << 16)));
    guarded.push_back(make_assign(
        acc, make_libcall(LibFn::clamp, std::move(args), ValueType::i64)));
  }
  std::vector<StmtPtr> loop_body;
  loop_body.push_back(make_if(
      make_bin(BinOp::eq,
               make_bin(BinOp::band,
                        data_load(c, make_local(i, ValueType::i64)),
                        make_int(c.rng.uniform(1, 7))),
               make_int(0)),
      std::move(guarded)));
  body.push_back(make_for(i, make_int(0), bounded_size(c, pick_mask(c.rng)),
                          std::move(loop_body)));
  body.push_back(make_ret(make_local(acc, ValueType::i64)));
}

}  // namespace

SourceFunction generate_function(Rng& rng, Archetype archetype,
                                 int function_index,
                                 const GeneratorConfig& config,
                                 const std::vector<CallableFn>& callables) {
  SourceFunction fn;
  Ctx c{rng, config, fn, function_index, callables, -1, {}, -1};
  switch (archetype) {
    case Archetype::byte_transform: build_byte_transform(c); break;
    case Archetype::checksum: build_checksum(c); break;
    case Archetype::scanner: build_scanner(c); break;
    case Archetype::copy_shift:
      build_copy_shift(c, /*with_memmove=*/rng.chance(0.5));
      break;
    case Archetype::dispatcher: build_dispatcher(c); break;
    case Archetype::scalar_math: build_scalar_math(c); break;
    case Archetype::fp_kernel: build_fp_kernel(c); break;
    case Archetype::string_op: build_string_op(c); break;
    case Archetype::validator: build_validator(c); break;
    case Archetype::mixed: build_mixed(c); break;
    case Archetype::count: build_scalar_math(c); break;
  }
  std::ostringstream name;
  name << "fn_" << function_index << "_" << archetype_name(archetype);
  fn.name = name.str();
  return fn;
}

SourceFunction generate_copy_shift(Rng& rng, int function_index,
                                   bool with_memmove,
                                   const GeneratorConfig& config) {
  SourceFunction fn;
  Ctx c{rng, config, fn, function_index, {}, -1, {}, -1};
  build_copy_shift(c, with_memmove);
  std::ostringstream name;
  name << "fn_" << function_index << "_copy_shift";
  fn.name = name.str();
  return fn;
}

SourceLibrary generate_library(const std::string& name, std::uint64_t seed,
                               std::size_t function_count,
                               const GeneratorConfig& config) {
  SourceLibrary library;
  library.name = name;
  Rng root(seed);
  for (int s = 0; s < config.string_count; ++s) {
    std::string text = "str_" + name + "_";
    const int len = static_cast<int>(root.uniform(3, 10));
    for (int i = 0; i < len; ++i)
      text.push_back(static_cast<char>('a' + root.uniform(0, 25)));
    library.strings.push_back(std::move(text));
  }
  library.functions.reserve(function_count);
  std::vector<CallableFn> callables;
  for (std::size_t i = 0; i < function_count; ++i) {
    Rng fn_rng = root.fork(i + 1);
    const Archetype archetype = pick_archetype(fn_rng);
    library.functions.push_back(generate_function(
        fn_rng, archetype, static_cast<int>(i), config, callables));
    // All-i64 signatures become callable by later dispatchers.
    const SourceFunction& fn = library.functions.back();
    const bool all_i64 =
        !fn.param_types.empty() &&
        std::all_of(fn.param_types.begin(), fn.param_types.end(),
                    [](ValueType t) { return t == ValueType::i64; });
    if (all_i64 && fn.param_types.size() <= 3)
      callables.push_back(
          {static_cast<int>(i), static_cast<int>(fn.param_types.size())});
  }
  return library;
}

}  // namespace patchecko
