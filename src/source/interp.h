// Reference interpreter for MiniC.
//
// This is the semantic ground truth of the reproduction: the property tests
// assert that for every architecture and optimization level, compiling a
// function and executing it on the VM produces exactly the results of this
// interpreter. The interpreter also powers corpus validation (rejecting
// generated functions that trap on all inputs).
#pragma once

#include <cstdint>
#include <vector>

#include "source/ast.h"

namespace patchecko {

/// A runtime value. Pointers are (buffer id, byte offset) pairs; buffer ids
/// index CallEnv::buffers, and negative ids <= -2 denote read-only
/// string-pool entries (id -2-s is string s).
struct Value {
  ValueType type = ValueType::i64;
  std::int64_t i = 0;
  double f = 0.0;
  int buffer = -1;
  std::int64_t offset = 0;

  static Value from_int(std::int64_t v) {
    Value out;
    out.type = ValueType::i64;
    out.i = v;
    return out;
  }
  static Value from_fp(double v) {
    Value out;
    out.type = ValueType::f64;
    out.f = v;
    return out;
  }
  static Value from_ptr(int buffer, std::int64_t offset = 0) {
    Value out;
    out.type = ValueType::ptr;
    out.buffer = buffer;
    out.offset = offset;
    return out;
  }
};

/// Concrete inputs for one function execution: one value per parameter plus
/// the byte buffers that ptr parameters reference. Mutated in place by the
/// execution (buffer writes persist), mirroring the paper's fixed execution
/// environments.
struct CallEnv {
  std::vector<Value> args;
  std::vector<std::vector<std::uint8_t>> buffers;
};

enum class ExecStatus : std::uint8_t {
  ok = 0,
  trap_oob,        ///< out-of-bounds buffer access
  trap_div_zero,   ///< integer division or modulo by zero
  trap_step_limit, ///< exceeded the step budget ("infinite loop")
  trap_type,       ///< ill-typed operation (e.g. indexing a non-pointer)
};

struct ExecResult {
  ExecStatus status = ExecStatus::ok;
  Value ret;        ///< defined when status == ok
  std::uint64_t steps = 0;
};

/// Interprets `library.functions[function_index]` under `env`.
/// `step_limit` bounds AST evaluation steps.
ExecResult interpret(const SourceLibrary& library, std::size_t function_index,
                     CallEnv& env, std::uint64_t step_limit = 1u << 20);

}  // namespace patchecko
