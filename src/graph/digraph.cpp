#include "graph/digraph.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace patchecko {

std::size_t Digraph::add_node() {
  successors_.emplace_back();
  return successors_.size() - 1;
}

void Digraph::add_edge(std::size_t from, std::size_t to) {
  if (from >= node_count() || to >= node_count())
    throw std::out_of_range("Digraph::add_edge: node out of range");
  auto& succ = successors_[from];
  if (std::find(succ.begin(), succ.end(), to) != succ.end()) return;
  succ.push_back(to);
  ++edge_count_;
}

bool Digraph::has_edge(std::size_t from, std::size_t to) const {
  if (from >= node_count()) return false;
  const auto& succ = successors_[from];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

std::vector<std::size_t> Digraph::in_degrees() const {
  std::vector<std::size_t> degrees(node_count(), 0);
  for (const auto& succ : successors_)
    for (std::size_t to : succ) ++degrees[to];
  return degrees;
}

std::vector<bool> Digraph::reachable_from(std::size_t start) const {
  std::vector<bool> seen(node_count(), false);
  if (start >= node_count()) return seen;
  std::deque<std::size_t> frontier{start};
  seen[start] = true;
  while (!frontier.empty()) {
    const std::size_t node = frontier.front();
    frontier.pop_front();
    for (std::size_t next : successors_[node]) {
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return seen;
}

long Digraph::cyclomatic_complexity() const {
  if (node_count() == 0) return 0;
  return static_cast<long>(edge_count_) - static_cast<long>(node_count()) + 2;
}

std::vector<double> betweenness_centrality(const Digraph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<double> centrality(n, 0.0);

  std::vector<std::vector<std::size_t>> predecessors(n);
  std::vector<double> sigma(n);
  std::vector<long> dist(n);
  std::vector<double> delta(n);

  for (std::size_t source = 0; source < n; ++source) {
    for (auto& p : predecessors) p.clear();
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(dist.begin(), dist.end(), -1L);
    std::fill(delta.begin(), delta.end(), 0.0);

    sigma[source] = 1.0;
    dist[source] = 0;

    std::vector<std::size_t> order;
    order.reserve(n);
    std::deque<std::size_t> queue{source};
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      for (std::size_t w : graph.successors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          predecessors[w].push_back(v);
        }
      }
    }

    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t w = *it;
      for (std::size_t v : predecessors[w])
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      if (w != source) centrality[w] += delta[w];
    }
  }
  return centrality;
}

}  // namespace patchecko
