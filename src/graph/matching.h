// Minimum-cost bipartite assignment (Hungarian algorithm).
//
// Used by the BinDiff-style baseline (related work, Section VI): basic blocks
// of two functions are matched pairwise and the resulting cost is the
// function-level dissimilarity.
#pragma once

#include <cstddef>
#include <vector>

namespace patchecko {

struct AssignmentResult {
  /// assignment[row] = matched column, or npos when rows > cols left some
  /// rows unmatched.
  std::vector<std::size_t> assignment;
  double total_cost = 0.0;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Solves min-cost perfect matching on a rows x cols cost matrix
/// (cost[r][c]); rectangular inputs are padded internally with zero-cost
/// dummy entries. All costs must be finite.
AssignmentResult solve_assignment(
    const std::vector<std::vector<double>>& cost);

}  // namespace patchecko
