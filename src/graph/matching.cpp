#include "graph/matching.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace patchecko {

// Classic O(n^3) Hungarian algorithm with potentials (Jonker-style row
// augmentation). Internally works on a square padded matrix.
AssignmentResult solve_assignment(
    const std::vector<std::vector<double>>& cost) {
  const std::size_t rows = cost.size();
  std::size_t cols = 0;
  for (const auto& row : cost) cols = std::max(cols, row.size());
  const std::size_t n = std::max(rows, cols);

  AssignmentResult result;
  result.assignment.assign(rows, AssignmentResult::npos);
  if (n == 0) return result;

  auto at = [&](std::size_t r, std::size_t c) -> double {
    if (r < rows && c < cost[r].size()) return cost[r][c];
    return 0.0;  // dummy padding
  };

  const double inf = std::numeric_limits<double>::infinity();
  // 1-indexed potentials per the standard formulation.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> match(n + 1, 0);  // match[col] = row
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, inf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match[j0];
      double delta = inf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t r = match[j] - 1;
    const std::size_t c = j - 1;
    if (r < rows && c < cols) {
      result.assignment[r] = c < cost[r].size() ? c : AssignmentResult::npos;
      if (result.assignment[r] != AssignmentResult::npos)
        result.total_cost += cost[r][c];
    }
  }
  return result;
}

}  // namespace patchecko
