// Directed graph used for control-flow graphs and their analyses.
//
// Nodes are dense indices 0..node_count()-1; parallel edges are collapsed.
// The feature extractor (Table I) consumes edge counts, cyclomatic
// complexity, and betweenness centrality computed over this structure.
#pragma once

#include <cstddef>
#include <vector>

namespace patchecko {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count) : successors_(node_count) {}

  std::size_t add_node();

  /// Adds edge from -> to; duplicate edges are ignored. Both endpoints must
  /// already exist.
  void add_edge(std::size_t from, std::size_t to);

  std::size_t node_count() const { return successors_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  const std::vector<std::size_t>& successors(std::size_t node) const {
    return successors_[node];
  }

  bool has_edge(std::size_t from, std::size_t to) const;

  /// In-degrees of every node in one pass.
  std::vector<std::size_t> in_degrees() const;

  /// Nodes reachable from `start` (including `start`).
  std::vector<bool> reachable_from(std::size_t start) const;

  /// Cyclomatic complexity E - N + 2 (paper's Table I definition). Zero-node
  /// graphs yield 0.
  long cyclomatic_complexity() const;

 private:
  std::vector<std::vector<std::size_t>> successors_;
  std::size_t edge_count_ = 0;
};

/// Brandes' algorithm for betweenness centrality on an unweighted digraph.
/// Returns one score per node.
std::vector<double> betweenness_centrality(const Digraph& graph);

}  // namespace patchecko
