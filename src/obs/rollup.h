// Observability: sliding-window per-endpoint service aggregation.
//
// The metrics registry accumulates process-lifetime totals and the access
// log records every request individually; neither answers "how is the
// daemon doing *right now*". Rollup fills the gap: a ring of fixed-width
// time slots (window_seconds / slots each) holding per-endpoint request
// counts, error counts, and latency histograms. record() lands in the slot
// the configured clock says is current, lazily reclaiming slots that aged
// out of the window — no ticker thread, no timer wheel. snapshot()
// aggregates the slots that are still inside the window, so the window
// "slides" with slot granularity.
//
// Alongside the windowed view the rollup keeps lifetime totals per
// endpoint plus queue depth / queue-wait high-water marks, which is what
// lets the `stats` endpoint reconcile exactly against the access log even
// after windowed entries expire.
//
// No-op contract: a disabled rollup's record()/observe_queue_depth() return
// after one relaxed atomic load — same bar as the metrics primitives,
// verified by bench_obs (`rollup.record` row). Time is read through the
// obs::Clock indirection so window expiry is testable with a ManualClock.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"

namespace patchecko::obs {

/// Service endpoints the rollup buckets by. `other` absorbs unknown and
/// malformed requests so every completed request lands somewhere.
enum class Endpoint : std::uint8_t {
  scan,
  status,
  health,
  reload,
  drain,
  ping,
  stats,
  profile,
  other,
};
constexpr std::size_t kEndpointCount = 9;

std::string_view endpoint_name(Endpoint endpoint);
/// Inverse of endpoint_name(); unrecognized names map to Endpoint::other.
Endpoint endpoint_from_name(std::string_view name);

struct RollupConfig {
  /// Width of the sliding window. Together with `slots` this fixes the
  /// slot granularity (window_seconds / slots).
  double window_seconds = 60.0;
  std::size_t slots = 12;
  const Clock* clock = nullptr;  ///< null = Clock::real()
  /// Latency bucket upper bounds; empty = default_latency_bounds().
  std::vector<double> latency_bounds;
  bool enabled = true;
};

/// Windowed per-endpoint aggregate (one endpoint, slots still in window).
struct EndpointWindow {
  std::uint64_t count = 0;
  std::uint64_t errors = 0;
  /// latency_bounds.size() + 1 entries; the last is the overflow bucket
  /// ("le" semantics, like obs::Histogram).
  std::vector<std::uint64_t> latency_buckets;
  double max_seconds = 0.0;
  double queue_wait_max_seconds = 0.0;
};

/// Lifetime per-endpoint totals (never expire).
struct EndpointTotals {
  std::uint64_t count = 0;
  std::uint64_t errors = 0;
};

struct RollupSnapshot {
  double window_seconds = 0.0;
  double uptime_seconds = 0.0;  ///< since Rollup construction
  std::uint64_t corpus_version = 0;
  std::int64_t queue_depth_high_water = 0;       ///< lifetime
  double queue_wait_high_water_seconds = 0.0;    ///< lifetime
  std::int64_t rss_kb = -1;  ///< sampled at snapshot time; -1 = unsupported
  std::vector<double> latency_bounds;
  /// Indexed by Endpoint, kEndpointCount entries each.
  std::vector<EndpointWindow> window;
  std::vector<EndpointTotals> totals;
};

/// One JSON object (no trailing newline) with a fixed key order —
/// deterministic given the snapshot, so tests and `patchecko top` can rely
/// on the shape. Embedded by the service's `stats` response.
std::string rollup_snapshot_json(const RollupSnapshot& snapshot);

class Rollup {
 public:
  explicit Rollup(RollupConfig config = {});

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Records one completed request. `queue_wait_seconds` is the admission
  /// queue residency (0 for requests that never queue); `error` marks any
  /// non-2xx outcome. No-op (one relaxed load) when disabled.
  void record(Endpoint endpoint, double service_seconds,
              double queue_wait_seconds, bool error);

  /// Tracks the lifetime queue-depth high-water mark (sampled at admit
  /// time by the service). No-op when disabled.
  void observe_queue_depth(std::int64_t depth);

  /// The corpus generation reported in snapshots (set at startup and on
  /// every reload).
  void set_corpus_version(std::uint64_t version);

  RollupSnapshot snapshot() const;

 private:
  struct Slot {
    std::int64_t index = -1;  ///< absolute slot number; -1 = never used
    std::vector<EndpointWindow> per_endpoint;
  };

  std::int64_t slot_index_now() const;
  /// Returns the (reset-if-stale) slot for `index`; requires mutex_.
  Slot& live_slot(std::int64_t index);

  RollupConfig config_;
  const Clock* clock_;
  std::vector<double> bounds_;
  double slot_seconds_ = 0.0;
  double epoch_ = 0.0;
  std::atomic<bool> enabled_{true};

  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  std::vector<EndpointTotals> totals_;
  std::int64_t queue_depth_high_water_ = 0;
  double queue_wait_high_water_ = 0.0;
  std::uint64_t corpus_version_ = 0;
};

}  // namespace patchecko::obs
