#include "obs/benchdiff.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace patchecko::obs {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

std::string format_value(double value) {
  char buf[64];
  // %g keeps nanosecond latencies and 0..1 ratios readable in one column.
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string format_delta_percent(double old_value, double new_value) {
  if (old_value == 0.0) return new_value == 0.0 ? "+0.0%" : "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%",
                (new_value - old_value) / old_value * 100.0);
  return buf;
}

}  // namespace

const double* BenchRowData::find(const std::string& metric) const {
  for (const auto& [name, value] : metrics)
    if (name == metric) return &value;
  return nullptr;
}

const BenchRowData* BenchFile::find(const std::string& row) const {
  for (const BenchRowData& candidate : rows)
    if (candidate.name == row) return &candidate;
  return nullptr;
}

std::optional<BenchFile> parse_bench_json(std::string_view text,
                                          std::string* error) {
  const std::optional<json::Value> document = json::parse(text);
  if (!document.has_value() ||
      document->kind() != json::Value::Kind::object) {
    set_error(error, "not a JSON object");
    return std::nullopt;
  }
  BenchFile out;
  out.bench = document->get("bench").as_string();
  if (out.bench.empty()) {
    set_error(error, "missing \"bench\" name");
    return std::nullopt;
  }
  for (const json::Value& entry :
       document->get("higher_is_better").as_array())
    out.higher_is_better.insert(entry.as_string());
  const json::Value& rows = document->get("rows");
  if (rows.kind() != json::Value::Kind::array) {
    set_error(error, "missing \"rows\" array");
    return std::nullopt;
  }
  for (const json::Value& row : rows.as_array()) {
    BenchRowData data;
    data.name = row.get("name").as_string();
    if (data.name.empty()) {
      set_error(error, "row without a \"name\"");
      return std::nullopt;
    }
    const json::Value& metrics = row.get("metrics");
    if (metrics.kind() == json::Value::Kind::object) {
      for (const auto& [key, value] : metrics.as_object())
        if (value.kind() == json::Value::Kind::number)
          data.metrics.emplace_back(key, value.as_number());
    } else {
      // v1 schema: every numeric member of the row object is a metric.
      for (const auto& [key, value] : row.as_object())
        if (value.kind() == json::Value::Kind::number)
          data.metrics.emplace_back(key, value.as_number());
    }
    out.rows.push_back(std::move(data));
  }
  return out;
}

std::optional<BenchFile> load_bench_file(const std::string& path,
                                         std::string* error) {
  std::ifstream file(path);
  if (!file.is_open()) {
    set_error(error, "cannot open " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << file.rdbuf();
  std::string parse_error;
  std::optional<BenchFile> parsed =
      parse_bench_json(text.str(), &parse_error);
  if (!parsed.has_value()) set_error(error, path + ": " + parse_error);
  return parsed;
}

std::string_view delta_status_name(DeltaStatus status) {
  switch (status) {
    case DeltaStatus::ok: return "ok";
    case DeltaStatus::improved: return "improved";
    case DeltaStatus::regressed: return "REGRESSED";
    case DeltaStatus::added: return "added";
    case DeltaStatus::removed: return "removed";
  }
  return "?";
}

BenchDiff diff_bench(const BenchFile& old_file, const BenchFile& new_file,
                     const Tolerance& tolerance) {
  BenchDiff diff;
  diff.bench = new_file.bench.empty() ? old_file.bench : new_file.bench;
  std::set<std::string> higher = old_file.higher_is_better;
  higher.insert(new_file.higher_is_better.begin(),
                new_file.higher_is_better.end());

  auto classify = [&](double old_value, double new_value,
                      bool higher_better) {
    const double rel = std::max(tolerance.rel, 0.0);
    const double abs = std::max(tolerance.abs, 0.0);
    if (higher_better) {
      if (new_value < old_value * (1.0 - rel) - abs)
        return DeltaStatus::regressed;
      if (new_value > old_value * (1.0 + rel) + abs)
        return DeltaStatus::improved;
    } else {
      if (new_value > old_value * (1.0 + rel) + abs)
        return DeltaStatus::regressed;
      if (new_value < old_value * (1.0 - rel) - abs)
        return DeltaStatus::improved;
    }
    return DeltaStatus::ok;
  };

  // Old-file order first (so the table tracks the baseline layout), then
  // anything only the new file has.
  for (const BenchRowData& old_row : old_file.rows) {
    const BenchRowData* new_row = new_file.find(old_row.name);
    for (const auto& [metric, old_value] : old_row.metrics) {
      MetricDelta delta;
      delta.row = old_row.name;
      delta.metric = metric;
      delta.old_value = old_value;
      delta.higher_is_better = higher.count(metric) != 0;
      const double* new_value =
          new_row != nullptr ? new_row->find(metric) : nullptr;
      if (new_value == nullptr) {
        delta.status = DeltaStatus::removed;
      } else {
        delta.new_value = *new_value;
        delta.status =
            classify(old_value, *new_value, delta.higher_is_better);
      }
      if (delta.status == DeltaStatus::regressed) ++diff.regressions;
      if (delta.status == DeltaStatus::improved) ++diff.improvements;
      diff.deltas.push_back(std::move(delta));
    }
  }
  for (const BenchRowData& new_row : new_file.rows) {
    const BenchRowData* old_row = old_file.find(new_row.name);
    for (const auto& [metric, new_value] : new_row.metrics) {
      if (old_row != nullptr && old_row->find(metric) != nullptr) continue;
      MetricDelta delta;
      delta.row = new_row.name;
      delta.metric = metric;
      delta.new_value = new_value;
      delta.higher_is_better = higher.count(metric) != 0;
      delta.status = DeltaStatus::added;
      diff.deltas.push_back(std::move(delta));
    }
  }
  return diff;
}

std::string render_diff_table(const BenchDiff& diff) {
  // Hand-rolled fixed-width rendering: pk_obs is a leaf library and cannot
  // reach the util text-table helper without creating a layer cycle.
  const char* headers[5] = {"row/metric", "old", "new", "delta", "status"};
  std::vector<std::array<std::string, 5>> lines;
  lines.reserve(diff.deltas.size());
  for (const MetricDelta& delta : diff.deltas) {
    std::array<std::string, 5> line;
    line[0] = delta.row + "." + delta.metric;
    line[1] = delta.status == DeltaStatus::added
                  ? "-"
                  : format_value(delta.old_value);
    line[2] = delta.status == DeltaStatus::removed
                  ? "-"
                  : format_value(delta.new_value);
    line[3] = delta.status == DeltaStatus::added ||
                      delta.status == DeltaStatus::removed
                  ? "-"
                  : format_delta_percent(delta.old_value, delta.new_value);
    line[4] = std::string(delta_status_name(delta.status));
    if (delta.higher_is_better) line[4] += " (higher better)";
    lines.push_back(std::move(line));
  }

  std::size_t widths[5];
  for (std::size_t c = 0; c < 5; ++c) {
    widths[c] = std::string(headers[c]).size();
    for (const auto& line : lines) widths[c] = std::max(widths[c],
                                                        line[c].size());
  }
  std::string out = "bench-diff: " + diff.bench + "\n";
  auto append_row = [&](const std::array<std::string, 5>& cells) {
    for (std::size_t c = 0; c < 5; ++c) {
      out += cells[c];
      if (c + 1 < 5) out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };
  append_row({headers[0], headers[1], headers[2], headers[3], headers[4]});
  for (const auto& line : lines) append_row(line);
  out += diff.regressions == 0
             ? "result: ok"
             : "result: " + std::to_string(diff.regressions) +
                   " regression(s)";
  if (diff.improvements != 0)
    out += ", " + std::to_string(diff.improvements) + " improvement(s)";
  out += '\n';
  return out;
}

}  // namespace patchecko::obs
