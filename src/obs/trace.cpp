#include "obs/trace.h"

#include <algorithm>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/request_context.h"

namespace patchecko::obs {

namespace {

/// Per-thread stack of open span ids: the top is the parent of the next
/// span opened on this thread.
thread_local std::vector<std::uint64_t> t_span_stack;

}  // namespace

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

double Tracer::since_epoch() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Tracer::record(Span span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= max_spans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = spans_;
  }
  // Spans finish (and are appended) in arbitrary order across threads;
  // id order == start order is the stable rendering.
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.id < b.id; });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  next_id_.store(1, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

ScopedSpan::ScopedSpan(std::string_view name, Tracer& tracer) {
  if (!enabled()) return;  // id_ stays 0: the destructor is a no-op
  tracer_ = &tracer;
  id_ = tracer.next_id();
  parent_ = t_span_stack.empty() ? 0 : t_span_stack.back();
  request_ = current_request_id();
  name_.assign(name.data(), name.size());
  start_seconds_ = tracer.since_epoch();
  t_span_stack.push_back(id_);
  if (profiling_enabled()) {
    detail::profile_scope_push(name);
    profiled_ = true;
  }
}

ScopedSpan::~ScopedSpan() {
  if (profiled_) detail::profile_scope_pop();
  if (id_ == 0) return;
  // Open spans nest strictly (RAII), so this span is the stack top.
  if (!t_span_stack.empty() && t_span_stack.back() == id_)
    t_span_stack.pop_back();
  tracer_->record(Span{id_, parent_, request_, std::move(name_),
                       thread_ordinal(), start_seconds_,
                       tracer_->since_epoch()});
}

}  // namespace patchecko::obs
