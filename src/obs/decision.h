// Observability: per-candidate decision provenance.
//
// A scan report states *what* was decided; these records state *why*. For
// every (CVE, target) pair the pipeline fills one DecisionRecord covering
// the full verdict chain of the paper: the Stage-1 DL score against the
// detection threshold, per-environment Minkowski distances and their
// aggregate (Eq. 1–2), the crash that pruned a candidate during execution
// validation, the final rank, the differential pool the patch stage chose
// from, and the verdict with the evidence markers that produced it.
//
// Everything here is plain data over primitive/std types — obs is a leaf
// library, so these structs can be embedded in core pipeline results and
// serialized into the engine's result cache without layering cycles. All
// fields are deterministic (no wall-clock, no thread ids): the same inputs
// produce byte-identical decision_jsonl_line() output whether the scan ran
// cold, from cache, or across any number of worker threads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace patchecko::obs {

/// One Stage-1 candidate of one detect() direction, followed through
/// Stage 2. Non-candidates (score below threshold) are not recorded — on a
/// real library that would be thousands of uninteresting rows per CVE.
struct CandidateRecord {
  std::uint64_t function_index = 0;
  double dl_score = 0.0;       ///< Stage-1 similarity vs the query
  bool validated = false;      ///< survived crash-based execution validation
  std::int64_t crash_env = -1; ///< first crashing environment; -1 = none
  /// The retrieval prefilter pruned this function before Stage 2: its DL
  /// score cleared the threshold but it missed the top-K shortlist. Only
  /// observable in verify mode (in `on` mode such functions are never
  /// scored, so there is no record to write).
  bool prefiltered = false;
  /// Per-environment Minkowski distance to the reference profile; NaN where
  /// either side failed to terminate in that environment. Empty when the
  /// candidate was pruned before profiling.
  std::vector<double> env_distances;
  /// Eq. (2) aggregate over common-success environments (+inf if none).
  double distance = 0.0;
  std::int64_t rank = -1;      ///< 1-based position in the ranking; -1 = pruned
};

/// Provenance of one detect() call (one query direction).
struct StageRecord {
  double threshold = 0.0;    ///< Stage-1 DL cut the candidates passed
  double minkowski_p = 0.0;  ///< Eq. (1) order used for the distances
  std::uint64_t total = 0;   ///< functions scanned by Stage 1
  std::uint64_t executed = 0;  ///< candidates surviving validation
  /// Retrieval prefilter applied to this direction: 0 = off (exact scan),
  /// 1 = on, 2 = verify (retrieval::PrefilterMode numeric values).
  std::uint8_t prefilter = 0;
  std::uint64_t prefilter_shortlist = 0;  ///< functions the shortlist kept
  std::uint64_t prefilter_exact = 0;      ///< verify: exact candidate count
  std::uint64_t prefilter_recalled = 0;   ///< verify: of those, shortlisted
  std::vector<CandidateRecord> candidates;
};

/// One member of the differential stage's candidate pool: the top-ranked
/// functions of both query directions, scored against both references.
struct PatchCandidateRecord {
  std::uint64_t function_index = 0;
  double distance_vulnerable = 0.0;  ///< dynamic distance to f_v's profile
  double distance_patched = 0.0;     ///< dynamic distance to f_p's profile
  std::uint64_t effect_matches_vulnerable = 0;
  std::uint64_t effect_matches_patched = 0;
  bool chosen = false;  ///< the function the verdict was rendered on
};

/// The complete decision chain for one (CVE, target library) scan.
struct DecisionRecord {
  std::string cve_id;
  std::string library;
  bool library_missing = false;
  /// The watchdog's hard deadline cancelled this scan mid-flight; the rest
  /// of the record covers only the work finished before cancellation.
  bool stalled = false;

  StageRecord from_vulnerable;  ///< detect() with the vulnerable query
  StageRecord from_patched;     ///< detect() with the patched query

  std::vector<PatchCandidateRecord> pool;
  std::optional<std::uint64_t> matched_function;

  /// Differential verdict; absent when nothing matched.
  bool has_verdict = false;
  bool verdict_patched = false;
  double votes_vulnerable = 0.0;
  double votes_patched = 0.0;
  double dynamic_distance_vulnerable = 0.0;
  double dynamic_distance_patched = 0.0;
  std::vector<std::string> evidence;
};

/// One JSONL line (no trailing newline): {"type":"decision","cve":...,...}.
/// Deterministic field order; non-finite doubles render as null.
std::string decision_jsonl_line(const DecisionRecord& record);

/// Inverse of decision_jsonl_line. Lines whose "type" is not "decision"
/// (meta or event lines of the same provenance file) and malformed input
/// return nullopt. nulls parse back as NaN inside env_distances and as
/// +inf for aggregate distances, so render(parse(render(r))) == render(r).
std::optional<DecisionRecord> parse_decision_line(std::string_view line);

/// Renders the human-readable decision chain the `explain` subcommand
/// prints: Stage 1 score vs threshold, per-environment distances and the
/// Minkowski aggregate, prune/keep reason per candidate, the differential
/// pool, and the verdict with its evidence.
std::string explain_text(const DecisionRecord& record);

}  // namespace patchecko::obs
