#include "obs/resource.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>

#include "obs/metrics.h"

// The allocation hook replaces the global operator new/delete. Sanitizers
// interpose the allocator themselves, so the hook is compiled out there and
// the counters simply stay at zero.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PK_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PK_ALLOC_HOOK 0
#else
#define PK_ALLOC_HOOK 1
#endif
#else
#define PK_ALLOC_HOOK 1
#endif

namespace patchecko::obs {

namespace {

// Plain (non-atomic) thread locals: each thread only mutates its own.
thread_local std::uint64_t t_alloc_count = 0;
thread_local std::uint64_t t_alloc_bytes = 0;

#if defined(__linux__)
std::int64_t proc_status_kb(const char* key) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return -1;
  char line[256];
  std::int64_t result = -1;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0) continue;
    result = std::strtoll(line + key_len, nullptr, 10);
    break;
  }
  std::fclose(file);
  return result;
}
#endif

}  // namespace

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
  return -1.0;
}

std::uint64_t thread_allocation_count() { return t_alloc_count; }
std::uint64_t thread_allocation_bytes() { return t_alloc_bytes; }

void thread_allocation_totals(std::uint64_t* count, std::uint64_t* bytes) {
  *count = t_alloc_count;
  *bytes = t_alloc_bytes;
}

bool allocation_counting_available() { return PK_ALLOC_HOOK != 0; }

std::int64_t process_rss_kb() {
#if defined(__linux__)
  return proc_status_kb("VmRSS:");
#else
  return -1;
#endif
}

std::int64_t process_peak_rss_kb() {
#if defined(__linux__)
  return proc_status_kb("VmHWM:");
#else
  return -1;
#endif
}

ResourceSample resource_sample() {
  ResourceSample sample;
  sample.cpu_seconds = thread_cpu_seconds();
  sample.allocations = t_alloc_count;
  sample.allocated_bytes = t_alloc_bytes;
  return sample;
}

ResourceSample resource_delta(const ResourceSample& start,
                              const ResourceSample& current) {
  ResourceSample delta;
  if (start.cpu_seconds >= 0.0 && current.cpu_seconds >= start.cpu_seconds)
    delta.cpu_seconds = current.cpu_seconds - start.cpu_seconds;
  if (current.allocations >= start.allocations)
    delta.allocations = current.allocations - start.allocations;
  if (current.allocated_bytes >= start.allocated_bytes)
    delta.allocated_bytes = current.allocated_bytes - start.allocated_bytes;
  return delta;
}

namespace detail {

// Shared by every operator-new overload below. The count advances only
// while obs is enabled, so disabled-mode cost is one relaxed load and an
// untaken branch per allocation — the same bar the metric primitives hold.
inline void count_allocation(std::size_t size) {
  if (!enabled()) return;
  ++t_alloc_count;
  t_alloc_bytes += size;
}

}  // namespace detail

}  // namespace patchecko::obs

#if PK_ALLOC_HOOK

namespace {

void* pk_alloc_or_throw(std::size_t size) {
  for (;;) {
    if (void* p = std::malloc(size != 0 ? size : 1)) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* pk_aligned_alloc_or_throw(std::size_t size, std::size_t alignment) {
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, alignment, size != 0 ? size : alignment) == 0)
      return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) {
  patchecko::obs::detail::count_allocation(size);
  return pk_alloc_or_throw(size);
}

void* operator new[](std::size_t size) {
  patchecko::obs::detail::count_allocation(size);
  return pk_alloc_or_throw(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  patchecko::obs::detail::count_allocation(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  patchecko::obs::detail::count_allocation(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  patchecko::obs::detail::count_allocation(size);
  return pk_aligned_alloc_or_throw(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  patchecko::obs::detail::count_allocation(size);
  return pk_aligned_alloc_or_throw(size, static_cast<std::size_t>(alignment));
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  patchecko::obs::detail::count_allocation(size);
  void* p = nullptr;
  return posix_memalign(&p, static_cast<std::size_t>(alignment),
                        size != 0 ? size : static_cast<std::size_t>(alignment))
                 == 0
             ? p
             : nullptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t& tag) noexcept {
  return operator new(size, alignment, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // PK_ALLOC_HOOK
