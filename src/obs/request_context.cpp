#include "obs/request_context.h"

namespace patchecko::obs {

namespace {

thread_local std::uint64_t t_request_id = 0;

}  // namespace

std::uint64_t current_request_id() { return t_request_id; }

RequestScope::RequestScope(std::uint64_t request_id)
    : previous_(t_request_id) {
  t_request_id = request_id;
}

RequestScope::~RequestScope() { t_request_id = previous_; }

}  // namespace patchecko::obs
