#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/resource.h"

namespace patchecko::obs {

namespace {

std::atomic<bool> g_profiling{false};

// ---------------------------------------------------------------------------
// Name interning. Scope names become small integer ids so trie nodes and
// path comparisons never touch strings on the push path. Ids are global and
// permanent (the set of distinct span names is a few dozen literals), so
// tries from different threads and captures always agree on them.

struct InternTable {
  std::mutex mutex;
  std::unordered_map<std::string, std::uint32_t> ids;
  std::vector<std::string> names{"(root)"};  // id 0 = the root sentinel
};

InternTable& intern_table() {
  static InternTable* table = new InternTable();
  return *table;
}

std::uint32_t intern_slow(std::string_view name) {
  InternTable& table = intern_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  std::string key(name);
  const auto it = table.ids.find(key);
  if (it != table.ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(table.names.size());
  table.names.push_back(key);
  table.ids.emplace(std::move(key), id);
  return id;
}

std::string intern_name(std::uint32_t id) {
  InternTable& table = intern_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  return id < table.names.size() ? table.names[id] : "(?)";
}

// Thread-local cache keyed by the string_view's data pointer: span names
// are string literals, so the same call site hits the same slot without
// hashing the characters or taking the global lock.
struct InternCacheEntry {
  const char* data = nullptr;
  std::size_t size = 0;
  std::uint32_t id = 0;
};

std::uint32_t intern(std::string_view name) {
  constexpr std::size_t kCacheSize = 64;  // power of two
  thread_local InternCacheEntry cache[kCacheSize];
  const auto hash = reinterpret_cast<std::uintptr_t>(name.data());
  InternCacheEntry& entry = cache[(hash >> 4) & (kCacheSize - 1)];
  if (entry.data == name.data() && entry.size == name.size()) return entry.id;
  const std::uint32_t id = intern_slow(name);
  entry = InternCacheEntry{name.data(), name.size(), id};
  return id;
}

// ---------------------------------------------------------------------------
// Per-thread trie. All fields are guarded by `lock` (a spinlock: critical
// sections are a handful of loads/stores, and the sampler must not block on
// a mutex the owner could hold across a malloc).

struct TrieNode {
  std::uint32_t name = 0;
  std::uint32_t parent = 0;
  std::uint32_t first_child = 0;   // node index; 0 = none
  std::uint32_t next_sibling = 0;  // node index; 0 = none
  std::uint64_t samples = 0;
  std::uint64_t entries = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
};

struct ThreadState {
  std::atomic_flag lock = ATOMIC_FLAG_INIT;
  std::vector<TrieNode> nodes{TrieNode{}};  // [0] = root
  std::uint32_t current = 0;
  std::uint32_t depth = 0;
  // Pushes refused past the caps; the matching pops decrement this instead
  // of ascending, so the trie stays balanced.
  std::uint32_t overflow = 0;
  std::uint64_t truncated = 0;
  // Allocation-counter values at the last boundary. Unsynced after a
  // capture reset: the first boundary re-reads the counters instead of
  // flushing a delta that spans the reset.
  bool alloc_synced = false;
  std::uint64_t last_alloc_count = 0;
  std::uint64_t last_alloc_bytes = 0;
  bool registered = false;
  // Bumped by every capture reset so a ProfileTaskRoot can tell that the
  // position it saved belongs to a discarded trie and must not be restored.
  std::uint64_t resets = 0;
};

struct SpinGuard {
  explicit SpinGuard(ThreadState& state) : state_(state) {
    while (state_.lock.test_and_set(std::memory_order_acquire))
      std::this_thread::yield();
  }
  ~SpinGuard() { state_.lock.clear(std::memory_order_release); }
  ThreadState& state_;
};

// Registry of live thread states plus the tries of already-exited threads
// (moved over on thread exit so their counts survive into the report).
// Leaked, like Tracer::global(): thread_local destructors may run during
// process teardown, after function-local statics would have been destroyed.
struct ProfRegistry {
  std::mutex mutex;
  std::vector<ThreadState*> threads;
  std::vector<std::vector<TrieNode>> retired;
  std::uint64_t retired_truncated = 0;
};

ProfRegistry& prof_registry() {
  static ProfRegistry* registry = new ProfRegistry();
  return *registry;
}

void reset_state_locked(ThreadState& state) {
  const SpinGuard guard(state);
  state.nodes.assign(1, TrieNode{});
  state.current = 0;
  state.depth = 0;
  state.overflow = 0;
  state.truncated = 0;
  state.alloc_synced = false;
  ++state.resets;
}

// Flush the allocation delta since the last boundary into the node that was
// active over that interval. Caller holds the spinlock.
void flush_alloc(ThreadState& state) {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  thread_allocation_totals(&count, &bytes);
  if (state.alloc_synced) {
    TrieNode& node = state.nodes[state.current];
    node.alloc_count += count - state.last_alloc_count;
    node.alloc_bytes += bytes - state.last_alloc_bytes;
  } else {
    state.alloc_synced = true;
  }
  state.last_alloc_count = count;
  state.last_alloc_bytes = bytes;
}

// Owner-thread slot: registers on first use, retires its trie on exit.
struct ThreadSlot {
  ThreadState state;
  ~ThreadSlot() {
    ProfRegistry& registry = prof_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.threads.erase(
        std::remove(registry.threads.begin(), registry.threads.end(), &state),
        registry.threads.end());
    const SpinGuard guard(state);
    flush_alloc(state);  // attribute the tail since the last boundary
    if (state.nodes.size() > 1 || state.nodes[0].alloc_count > 0)
      registry.retired.push_back(std::move(state.nodes));
    registry.retired_truncated += state.truncated;
  }
};

ThreadState& local_state() {
  thread_local ThreadSlot slot;
  if (!slot.state.registered) {
    ProfRegistry& registry = prof_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.threads.push_back(&slot.state);
    slot.state.registered = true;
  }
  return slot.state;
}

// ---------------------------------------------------------------------------
// Merge per-thread tries into one name-resolved, name-sorted tree.

struct MergeNode {
  std::uint32_t name = 0;
  std::uint64_t samples = 0;
  std::uint64_t entries = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::unordered_map<std::uint32_t, std::size_t> children;  // name -> index
};

void merge_trie(std::vector<MergeNode>& merged,
                const std::vector<TrieNode>& trie) {
  if (trie.empty()) return;
  // (thread node, merged node) pairs still to walk.
  std::vector<std::pair<std::uint32_t, std::size_t>> stack{{0u, 0u}};
  while (!stack.empty()) {
    const auto [t_index, m_index] = stack.back();
    stack.pop_back();
    const TrieNode& from = trie[t_index];
    merged[m_index].samples += from.samples;
    merged[m_index].entries += from.entries;
    merged[m_index].alloc_count += from.alloc_count;
    merged[m_index].alloc_bytes += from.alloc_bytes;
    for (std::uint32_t c = from.first_child; c != 0;
         c = trie[c].next_sibling) {
      auto [it, inserted] =
          merged[m_index].children.emplace(trie[c].name, merged.size());
      if (inserted) {
        // NOTE: `merged` may reallocate; merged[m_index] is re-fetched via
        // index on the next loop iteration, never held across this.
        merged.push_back(MergeNode{trie[c].name, 0, 0, 0, 0, {}});
      }
      stack.push_back({c, it->second});
    }
  }
}

ProfileNode to_profile_node(const std::vector<MergeNode>& merged,
                            std::size_t index) {
  const MergeNode& from = merged[index];
  ProfileNode node;
  node.name = intern_name(from.name);
  node.samples = from.samples;
  node.entries = from.entries;
  node.alloc_count = from.alloc_count;
  node.alloc_bytes = from.alloc_bytes;
  node.children.reserve(from.children.size());
  for (const auto& [name, child] : from.children)
    node.children.push_back(to_profile_node(merged, child));
  std::sort(node.children.begin(), node.children.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              return a.name < b.name;
            });
  return node;
}

std::uint64_t inclusive_samples(const ProfileNode& node) {
  std::uint64_t total = node.samples;
  for (const ProfileNode& child : node.children)
    total += inclusive_samples(child);
  return total;
}

struct TableRow {
  std::string path;
  std::uint64_t self = 0;
  std::uint64_t inclusive = 0;
  std::uint64_t entries = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
};

void collect_rows(const ProfileNode& node, const std::string& prefix,
                  std::vector<TableRow>& rows) {
  for (const ProfileNode& child : node.children) {
    const std::string path =
        prefix.empty() ? child.name : prefix + ";" + child.name;
    rows.push_back(TableRow{path, child.samples, inclusive_samples(child),
                            child.entries, child.alloc_count,
                            child.alloc_bytes});
    collect_rows(child, path, rows);
  }
}

bool hot_rank_before(const TableRow& a, const TableRow& b) {
  if (a.self != b.self) return a.self > b.self;
  if (a.alloc_bytes != b.alloc_bytes) return a.alloc_bytes > b.alloc_bytes;
  if (a.entries != b.entries) return a.entries > b.entries;
  return a.path < b.path;
}

}  // namespace

bool profiling_enabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

namespace detail {

void profile_scope_push(std::string_view name) {
  const std::uint32_t name_id = intern(name);
  ThreadState& state = local_state();
  const SpinGuard guard(state);
  flush_alloc(state);
  if (state.overflow > 0 || state.depth >= Profiler::max_depth) {
    ++state.overflow;
    ++state.truncated;
    return;
  }
  std::uint32_t child = 0;
  for (std::uint32_t c = state.nodes[state.current].first_child; c != 0;
       c = state.nodes[c].next_sibling)
    if (state.nodes[c].name == name_id) {
      child = c;
      break;
    }
  if (child == 0) {
    if (state.nodes.size() >= Profiler::max_nodes) {
      ++state.overflow;
      ++state.truncated;
      return;
    }
    child = static_cast<std::uint32_t>(state.nodes.size());
    TrieNode node;
    node.name = name_id;
    node.parent = state.current;
    node.next_sibling = state.nodes[state.current].first_child;
    state.nodes.push_back(node);
    state.nodes[state.current].first_child = child;
  }
  state.current = child;
  ++state.depth;
  ++state.nodes[child].entries;
}

void profile_scope_pop() {
  ThreadState& state = local_state();
  const SpinGuard guard(state);
  flush_alloc(state);
  if (state.overflow > 0) {
    --state.overflow;
    return;
  }
  // depth 0: the scope was opened before the capture started (its push was
  // absorbed by the reset) — ignore the pop to keep the trie balanced.
  if (state.depth == 0) return;
  state.current = state.nodes[state.current].parent;
  --state.depth;
}

}  // namespace detail

ProfileTaskRoot::ProfileTaskRoot() {
  if (!profiling_enabled()) return;  // mirror ScopedSpan: inactive when off
  ThreadState& state = local_state();
  const SpinGuard guard(state);
  flush_alloc(state);  // attribute the tail to the scope we are leaving
  current_ = state.current;
  depth_ = state.depth;
  overflow_ = state.overflow;
  resets_ = state.resets;
  state.current = 0;
  state.depth = 0;
  state.overflow = 0;
  active_ = true;
}

ProfileTaskRoot::~ProfileTaskRoot() {
  if (!active_) return;
  ThreadState& state = local_state();
  const SpinGuard guard(state);
  flush_alloc(state);
  // A capture reset while re-rooted discarded the trie the saved position
  // points into; stay at root, like the unbalanced-pop guard above.
  if (state.resets != resets_) return;
  state.current = current_;
  state.depth = depth_;
  state.overflow = overflow_;
}

// ---------------------------------------------------------------------------

struct ProfilerImpl {
  mutable std::mutex control;  // start/stop/report serialization
  bool running = false;
  Profiler::Config config;
  double start_seconds = 0.0;
  std::uint64_t sweeps = 0;
  std::uint64_t samples = 0;
  ProfileReport last_report;
  std::optional<CaptureSummary> last_summary;
  std::uint64_t finished_captures = 0;

  std::thread sampler;
  std::mutex sampler_mutex;
  std::condition_variable sampler_cv;
  bool sampler_stop = false;
};

namespace {

ProfilerImpl& impl() {
  static ProfilerImpl* instance = new ProfilerImpl();
  return *instance;
}

const Clock& profiler_clock(const Profiler::Config& config) {
  return config.clock != nullptr ? *config.clock : Clock::real();
}

// Sweep the registry; returns samples credited. Caller decides locking of
// the impl counters.
std::uint64_t sweep_threads() {
  ProfRegistry& registry = prof_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::uint64_t credited = 0;
  for (ThreadState* state : registry.threads) {
    const SpinGuard guard(*state);
    if (state->depth == 0) continue;  // idle w.r.t. profile scopes
    ++state->nodes[state->current].samples;
    ++credited;
  }
  return credited;
}

ProfileReport build_report(std::uint64_t sweeps, std::uint64_t samples,
                           double duration_seconds, double hz) {
  ProfileReport report;
  report.sweeps = sweeps;
  report.samples = samples;
  report.duration_seconds = duration_seconds;
  report.hz = hz;
  report.alloc_available = allocation_counting_available();

  std::vector<MergeNode> merged{MergeNode{}};
  ProfRegistry& registry = prof_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  report.truncated = registry.retired_truncated;
  for (const std::vector<TrieNode>& trie : registry.retired)
    merge_trie(merged, trie);
  for (ThreadState* state : registry.threads) {
    std::vector<TrieNode> copy;
    std::uint64_t truncated = 0;
    {
      const SpinGuard guard(*state);
      copy = state->nodes;
      truncated = state->truncated;
    }
    merge_trie(merged, copy);
    report.truncated += truncated;
  }
  report.root = to_profile_node(merged, 0);
  report.root.name = "(root)";
  return report;
}

void folded_walk(const ProfileNode& node, const std::string& prefix,
                 FoldMetric metric, std::string& out) {
  for (const ProfileNode& child : node.children) {
    const std::string path =
        prefix.empty() ? child.name : prefix + ";" + child.name;
    std::uint64_t value = 0;
    switch (metric) {
      case FoldMetric::samples: value = child.samples; break;
      case FoldMetric::entries: value = child.entries; break;
      case FoldMetric::alloc_bytes: value = child.alloc_bytes; break;
    }
    if (value > 0) {
      out += path;
      out += ' ';
      out += std::to_string(value);
      out += '\n';
    }
    folded_walk(child, path, metric, out);
  }
}

}  // namespace

Profiler& Profiler::global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

bool Profiler::start(const Config& config) {
  ProfilerImpl& profiler = impl();
  std::lock_guard<std::mutex> control(profiler.control);
  if (profiler.running) return false;

  {
    ProfRegistry& registry = prof_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.retired.clear();
    registry.retired_truncated = 0;
    for (ThreadState* state : registry.threads) reset_state_locked(*state);
  }

  profiler.config = config;
  profiler.sweeps = 0;
  profiler.samples = 0;
  profiler.start_seconds = profiler_clock(config).now();
  profiler.running = true;
  g_profiling.store(true, std::memory_order_relaxed);

  if (config.hz > 0) {
    profiler.sampler_stop = false;
    const double interval_seconds = 1.0 / config.hz;
    profiler.sampler = std::thread([&profiler, interval_seconds] {
      std::unique_lock<std::mutex> lock(profiler.sampler_mutex);
      while (!profiler.sampler_stop) {
        profiler.sampler_cv.wait_for(
            lock, std::chrono::duration<double>(interval_seconds),
            [&profiler] { return profiler.sampler_stop; });
        if (profiler.sampler_stop) break;
        lock.unlock();
        const std::uint64_t credited = sweep_threads();
        lock.lock();
        // control is not held here: sweeps/samples are only read under
        // control after the sampler has been joined, or not at all.
        ++profiler.sweeps;
        profiler.samples += credited;
      }
    });
  }
  return true;
}

void Profiler::sample_once() {
  ProfilerImpl& profiler = impl();
  std::lock_guard<std::mutex> control(profiler.control);
  if (!profiler.running) return;
  const std::uint64_t credited = sweep_threads();
  std::lock_guard<std::mutex> lock(profiler.sampler_mutex);
  ++profiler.sweeps;
  profiler.samples += credited;
}

ProfileReport Profiler::stop() {
  ProfilerImpl& profiler = impl();
  std::lock_guard<std::mutex> control(profiler.control);
  if (!profiler.running) return profiler.last_report;

  if (profiler.sampler.joinable()) {
    {
      std::lock_guard<std::mutex> lock(profiler.sampler_mutex);
      profiler.sampler_stop = true;
    }
    profiler.sampler_cv.notify_all();
    profiler.sampler.join();
  }
  g_profiling.store(false, std::memory_order_relaxed);
  profiler.running = false;

  const double duration =
      profiler_clock(profiler.config).now() - profiler.start_seconds;
  profiler.last_report = build_report(profiler.sweeps, profiler.samples,
                                      duration, profiler.config.hz);
  profiler.last_summary = summarize_profile(profiler.last_report);
  ++profiler.finished_captures;
  return profiler.last_report;
}

bool Profiler::running() const {
  ProfilerImpl& profiler = impl();
  std::lock_guard<std::mutex> control(profiler.control);
  return profiler.running;
}

ProfileReport Profiler::report() const {
  ProfilerImpl& profiler = impl();
  std::lock_guard<std::mutex> control(profiler.control);
  if (!profiler.running) return profiler.last_report;
  std::uint64_t sweeps = 0;
  std::uint64_t samples = 0;
  {
    // The sampler thread mutates the counters under sampler_mutex.
    std::lock_guard<std::mutex> lock(profiler.sampler_mutex);
    sweeps = profiler.sweeps;
    samples = profiler.samples;
  }
  const double duration =
      profiler_clock(profiler.config).now() - profiler.start_seconds;
  return build_report(sweeps, samples, duration, profiler.config.hz);
}

std::optional<CaptureSummary> Profiler::last_capture() const {
  ProfilerImpl& profiler = impl();
  std::lock_guard<std::mutex> control(profiler.control);
  return profiler.last_summary;
}

std::uint64_t Profiler::captures() const {
  ProfilerImpl& profiler = impl();
  std::lock_guard<std::mutex> control(profiler.control);
  return profiler.finished_captures;
}

// ---------------------------------------------------------------------------

std::string folded_stacks(const ProfileReport& report, FoldMetric metric) {
  std::string out;
  folded_walk(report.root, "", metric, out);
  return out;
}

std::string profile_top_table(const ProfileReport& report, std::size_t limit) {
  std::vector<TableRow> rows;
  collect_rows(report.root, "", rows);
  std::sort(rows.begin(), rows.end(), hot_rank_before);
  if (rows.size() > limit) rows.resize(limit);

  std::string out = "=== profile: top scopes (self) ===\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%8s %8s %10s %10s %14s  %s\n", "self",
                "incl", "entries", "allocs", "alloc_bytes", "scope");
  out += line;
  for (const TableRow& row : rows) {
    std::snprintf(line, sizeof(line),
                  "%8llu %8llu %10llu %10llu %14llu  ",
                  static_cast<unsigned long long>(row.self),
                  static_cast<unsigned long long>(row.inclusive),
                  static_cast<unsigned long long>(row.entries),
                  static_cast<unsigned long long>(row.alloc_count),
                  static_cast<unsigned long long>(row.alloc_bytes));
    out += line;
    out += row.path;
    out += '\n';
  }
  std::snprintf(line, sizeof(line),
                "(sweeps %llu, samples %llu, %.3fs @ %.0fHz",
                static_cast<unsigned long long>(report.sweeps),
                static_cast<unsigned long long>(report.samples),
                report.duration_seconds, report.hz);
  out += line;
  if (report.truncated > 0) {
    std::snprintf(line, sizeof(line), ", %llu truncated",
                  static_cast<unsigned long long>(report.truncated));
    out += line;
  }
  if (!report.alloc_available) out += "; alloc counters unavailable";
  out += ")\n";
  return out;
}

CaptureSummary summarize_profile(const ProfileReport& report) {
  CaptureSummary summary;
  summary.sweeps = report.sweeps;
  summary.samples = report.samples;
  summary.duration_seconds = report.duration_seconds;
  summary.hz = report.hz;
  std::vector<TableRow> rows;
  collect_rows(report.root, "", rows);
  const auto hottest =
      std::min_element(rows.begin(), rows.end(), hot_rank_before);
  if (hottest != rows.end()) {
    summary.hot_path = hottest->path;
    summary.hot_samples = hottest->self;
    summary.hot_alloc_bytes = hottest->alloc_bytes;
  }
  return summary;
}

}  // namespace patchecko::obs
