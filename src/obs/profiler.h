// Observability: in-process sampling span profiler.
//
// The tracer (obs/trace.h) records *every* span with timestamps — exact but
// heavyweight, and its JSON export is per-run forensic data. The profiler
// answers a different question: across a long scan or a live daemon, where
// does the time and memory actually go, by pipeline stage? It works by
// sampling: each thread that opens a ScopedSpan maintains a thread-local
// trie of the span paths it has entered (a "scope path" is the stack of
// span names, e.g. engine.detect;pipeline.detect.prefilter), and a sampler
// sweeps the registered threads at a fixed cadence, crediting one sample to
// the node each thread is currently inside. Sample counts are *self* time
// (the sample lands on the innermost scope); inclusive time is the subtree
// sum, derived at render time.
//
// Allocation attribution rides on PK_ALLOC_HOOK (obs/resource.h): at every
// scope boundary (push/pop) the delta of the thread's allocation counters
// since the previous boundary is flushed into the node that was active over
// that interval, so every node also carries exact allocation counts/bytes
// for the code that ran directly inside it. Granularity is scope
// boundaries: allocations after a thread's last boundary are unattributed
// until its next one, and threads that never enter a profile scope are
// invisible. Under sanitizers (PK_ALLOC_HOOK == 0) the counters stay zero
// and reports say so (alloc_available == false).
//
// Determinism contract (mirrors Heartbeat/StallWatchdog): with hz > 0 the
// profiler runs a real sampler thread; with hz == 0 no thread is spawned
// and tests drive sample_once() by hand, timing capture duration through
// the obs::Clock indirection (ManualClock in tests). Scope *entry* and
// allocation counts are scheduling-independent — the same workload yields
// a byte-identical entries-folded export at any --jobs value — while sample
// counts are deterministic exactly when sample_once() calls are (manual
// sweeps against parked threads in tests).
//
// No-op contract: when no capture is running, the only cost added to a
// ScopedSpan is one relaxed atomic load (profiling_enabled()) — the same
// sub-ns bar every other obs primitive holds. Starting a capture resets all
// per-thread tries; scopes already open when a capture starts are invisible
// to it (their pops are absorbed), which is what makes on-demand daemon
// captures safe mid-request.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/health.h"

namespace patchecko::obs {

/// True while a capture is running. One relaxed load; the gate every
/// ScopedSpan checks before touching profiler state.
bool profiling_enabled();

namespace detail {
/// Called by ScopedSpan when profiling_enabled() was true at construction.
/// push interns the name, registers the thread on first use, and descends
/// the thread-local trie; pop ascends. Both flush the allocation delta
/// since the previous boundary into the node that was active.
void profile_scope_push(std::string_view name);
void profile_scope_pop();
}  // namespace detail

/// Re-roots the calling thread's profiler scope stack for its lifetime:
/// scopes opened while it is alive attach to the trie root instead of
/// whatever scopes the thread already has open, and the previous position
/// is restored on destruction. The engine wraps each top-level job in one,
/// because a thread blocked in a TaskGroup wait "helps" by running queued
/// pool work — without re-rooting, a stolen job's spans would nest under
/// the waiter's open stack and the folded export would depend on which
/// thread happened to pick the job up.
class ProfileTaskRoot {
 public:
  ProfileTaskRoot();
  ~ProfileTaskRoot();

  ProfileTaskRoot(const ProfileTaskRoot&) = delete;
  ProfileTaskRoot& operator=(const ProfileTaskRoot&) = delete;

 private:
  std::uint32_t current_ = 0;
  std::uint32_t depth_ = 0;
  std::uint32_t overflow_ = 0;
  std::uint64_t resets_ = 0;  ///< capture-reset count at construction
  bool active_ = false;
};

/// One merged trie node. Children are sorted by name; `samples` is self
/// samples (the sweep landed inside this exact scope), inclusive counts are
/// the subtree sum.
struct ProfileNode {
  std::string name;
  std::uint64_t samples = 0;      ///< self samples
  std::uint64_t entries = 0;      ///< scope entries (deterministic)
  std::uint64_t alloc_count = 0;  ///< allocations attributed to this scope
  std::uint64_t alloc_bytes = 0;
  std::vector<ProfileNode> children;
};

/// A merged, render-ready snapshot of one capture.
struct ProfileReport {
  ProfileNode root;  ///< name "(root)"; holds unattributed allocations
  std::uint64_t sweeps = 0;   ///< sampler passes over the thread registry
  std::uint64_t samples = 0;  ///< samples credited (threads inside a scope)
  double duration_seconds = 0.0;  ///< from the configured Clock
  double hz = 0.0;                ///< 0 = manually driven
  std::uint64_t truncated = 0;  ///< pushes dropped past depth/node caps
  bool alloc_available = false;
};

/// Compact digest of the last finished capture, surfaced through the
/// daemon `stats` response and the `patchecko top` hot-leaf row.
struct CaptureSummary {
  std::uint64_t sweeps = 0;
  std::uint64_t samples = 0;
  double duration_seconds = 0.0;
  double hz = 0.0;
  std::string hot_path;  ///< hottest scope path "a;b;c" (see hot-rank order)
  std::uint64_t hot_samples = 0;
  std::uint64_t hot_alloc_bytes = 0;
};

/// Which per-node value a folded export emits.
enum class FoldMetric { samples, entries, alloc_bytes };

class Profiler {
 public:
  struct Config {
    double hz = 97.0;  ///< sweep cadence; 0 = no sampler thread (tests)
    const Clock* clock = nullptr;  ///< null = Clock::real()
  };

  /// Per-thread caps; pushes beyond them count into ProfileReport::truncated
  /// (the trie stays balanced — the matching pops are absorbed).
  static constexpr std::size_t max_depth = 64;
  static constexpr std::size_t max_nodes = 1u << 16;

  /// The process-wide profiler (intentionally leaked, like Registry).
  static Profiler& global();

  /// Begins a capture: resets every thread trie, flips profiling_enabled(),
  /// and (hz > 0) spawns the sampler thread. Returns false — without
  /// touching the running capture — if one is already active; the daemon
  /// maps that to a 409.
  bool start(const Config& config);

  /// Ends the capture (joins the sampler) and returns the merged report.
  /// Idempotent: returns the last report when no capture is running.
  ProfileReport stop();

  bool running() const;

  /// One sweep over the registered threads; a no-op unless running. Tests
  /// (and the hz == 0 mode) call this by hand.
  void sample_once();

  /// Merged view of the current (or, after stop, the last) capture.
  ProfileReport report() const;

  /// Digest of the last *finished* capture; nullopt before the first stop.
  std::optional<CaptureSummary> last_capture() const;
  /// Finished captures since process start.
  std::uint64_t captures() const;
};

/// flamegraph.pl / speedscope folded stacks: one "a;b;c N" line per node
/// with a non-zero metric, preorder over name-sorted children — a stable,
/// byte-comparable rendering.
std::string folded_stacks(const ProfileReport& report,
                          FoldMetric metric = FoldMetric::samples);

/// Fixed-width self-time/alloc table, deterministically ordered (self
/// samples desc, alloc bytes desc, entries desc, path asc). Contains no
/// wall-clock values beyond the capture duration.
std::string profile_top_table(const ProfileReport& report,
                              std::size_t limit = 12);

/// Hot-leaf digest of a report (the rank order profile_top_table uses).
CaptureSummary summarize_profile(const ProfileReport& report);

}  // namespace patchecko::obs
