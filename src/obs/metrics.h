// Observability: process-wide metrics registry.
//
// The batch engine's value proposition is per-stage throughput (DNN
// prefilter pruning, dynamic ranking cost, cache effectiveness), so the hot
// paths publish three metric kinds:
//   * Counter   — monotonic, relaxed-atomic event counts,
//   * Gauge     — instantaneous level with a high-water mark (queue depths),
//   * Histogram — fixed-bucket latency distribution (seconds, "le" buckets).
//
// Design rules:
//   * No-op by default. Every mutation is gated on a single relaxed load of
//     the global enabled flag; with metrics off, instrumented code performs
//     no clock reads, no allocation, and no stores on the hot path.
//   * Call sites bind handles once (`static obs::Counter& c = ...`) so the
//     registry mutex is touched once per site per process. Handles stay
//     valid forever: Registry::reset() zeroes values but never destroys
//     registered metrics, and the global registry is intentionally leaked so
//     worker threads draining at process exit cannot touch a dead object.
//   * Determinism: canonical_text() renders metrics sorted by name and
//     excludes every wall-clock-derived field (histogram sums and bucket
//     distributions); those appear only in the JSON export (obs/export.h),
//     which is never part of a canonical report comparison.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace patchecko::obs {

/// Global metrics switch; off by default (no-op mode).
bool enabled();
void set_enabled(bool on);

/// RAII flip of the global flag (tests; the CLI sets it once instead).
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : previous_(enabled()) { set_enabled(on); }
  ~EnabledScope() { set_enabled(previous_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool previous_;
};

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  /// Exact level tracking: add(+1)/add(-1) keeps value() race-free (the
  /// atomic add is the source of truth) and maintains the high-water mark.
  void add(std::int64_t delta) {
    if (!enabled()) return;
    raise_max(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  void set(std::int64_t level) {
    if (!enabled()) return;
    value_.store(level, std::memory_order_relaxed);
    raise_max(level);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t candidate) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Upper bounds (seconds) of the default latency buckets: powers of four
/// from 1µs to ~4.2s, plus an implicit overflow bucket.
const std::vector<double>& default_latency_bounds();

/// Fixed-bucket histogram over seconds. Bucket i counts values v with
/// bounds[i-1] < v <= bounds[i] ("le" semantics); values above the last
/// bound land in the overflow bucket. The sum is kept in fixed-point
/// nanoseconds so concurrent record() calls stay exact.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double seconds);
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, last = overflow
  std::uint64_t count = 0;
  double sum = 0.0;  ///< seconds; wall-clock — JSON only, never canonical
};

/// All three metric kinds captured under one registry lock, so a consumer
/// (heartbeat, export) sees one consistent registration set.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Thread-safe named-metric registry. Lookup registers on first use and
/// returns a stable reference; repeated lookups return the same object.
class Registry {
 public:
  /// The process-wide registry (intentionally leaked, see file comment).
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Empty `bounds` selects default_latency_bounds(). Bounds of an already
  /// registered histogram are not changed.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds = {});

  /// Zeroes every value; registered metrics (and handles) stay valid.
  void reset();

  std::vector<CounterSnapshot> counter_snapshots() const;
  std::vector<GaugeSnapshot> gauge_snapshots() const;
  std::vector<HistogramSnapshot> histogram_snapshots() const;

  /// Everything under a single lock acquisition. Gauge snapshots never
  /// tear value/max: Gauge::add() bumps the value before raising the
  /// high-water mark, so a concurrent reader can observe value > max;
  /// snapshots clamp max up to the value read.
  RegistrySnapshot snapshot() const;

  /// Deterministic rendering: sorted by kind then name, one metric per
  /// line, wall-clock fields (histogram sums / bucket spreads) excluded.
  std::string canonical_text() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace patchecko::obs
