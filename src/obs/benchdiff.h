// Observability: benchmark trajectory comparison.
//
// Every bench_* target writes BENCH_<name>.json; this module loads two of
// those files (an old baseline and a new run), lines their metrics up, and
// classifies each delta against a tolerance band. CI runs the comparison as
// a soft gate: the rendered table is uploaded as an artifact and a nonzero
// exit marks a regression without blocking the merge.
//
// Two schema generations are accepted:
//   v1 — {"bench":B,"rows":[{"name":N,"enabled_ns":X,"disabled_ns":Y}]}
//   v2 — {"bench":B,"rows":[{"name":N,"metrics":{K:V,...}}],
//         "higher_is_better":[K,...]}
// Metrics are lower-is-better unless listed in higher_is_better (e.g. an
// accuracy). Rows or metrics present on only one side are reported but are
// never regressions — benches gain and lose rows across PRs routinely.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace patchecko::obs {

struct BenchRowData {
  std::string name;
  /// Insertion order preserved so tables render in the bench's own order.
  std::vector<std::pair<std::string, double>> metrics;

  const double* find(const std::string& metric) const;
};

struct BenchFile {
  std::string bench;
  std::vector<BenchRowData> rows;
  std::set<std::string> higher_is_better;

  const BenchRowData* find(const std::string& row) const;
};

/// Parses one BENCH_*.json document (either schema). On failure returns
/// nullopt and, when `error` is non-null, stores a one-line reason.
std::optional<BenchFile> parse_bench_json(std::string_view text,
                                          std::string* error = nullptr);

/// Reads and parses a file; IO errors report through `error` too.
std::optional<BenchFile> load_bench_file(const std::string& path,
                                         std::string* error = nullptr);

struct Tolerance {
  /// Allowed fractional change in the bad direction (0.25 = +25% slower).
  double rel = 0.25;
  /// Allowed absolute change in the bad direction, in the metric's own
  /// unit; absorbs noise on near-zero baselines.
  double abs = 0.0;
};

enum class DeltaStatus : std::uint8_t {
  ok,        ///< within tolerance
  improved,  ///< moved in the good direction beyond tolerance
  regressed, ///< moved in the bad direction beyond tolerance
  added,     ///< metric/row only in the new file
  removed,   ///< metric/row only in the old file
};

std::string_view delta_status_name(DeltaStatus status);

struct MetricDelta {
  std::string row;
  std::string metric;
  double old_value = 0.0;
  double new_value = 0.0;
  bool higher_is_better = false;
  DeltaStatus status = DeltaStatus::ok;
};

struct BenchDiff {
  std::string bench;
  std::vector<MetricDelta> deltas;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
};

/// Compares new against old. A lower-is-better metric regresses when
/// new > old * (1 + rel) + abs; higher-is-better mirrors the band. The
/// higher_is_better set is the union of both files'.
BenchDiff diff_bench(const BenchFile& old_file, const BenchFile& new_file,
                     const Tolerance& tolerance);

/// Fixed-width text table of every delta plus a summary line; ends with a
/// newline. Stable output — CI archives it as the comparison artifact.
std::string render_diff_table(const BenchDiff& diff);

}  // namespace patchecko::obs
