// Observability: hierarchical stage tracing.
//
// A ScopedSpan marks one pipeline/engine stage execution: construction
// stamps the start, destruction stamps the end and records the finished
// span. Parent links come from a thread-local span stack, so nesting is
// tracked without any cross-thread coordination — a detect job's span is
// the parent of the DL-filter and dynamic-execution spans it runs on the
// same thread, while spans opened on other workers are roots of their own
// subtrees.
//
// Spans obey the same no-op contract as the metrics registry: with
// obs::enabled() false, constructing a ScopedSpan reads no clock, takes no
// lock, allocates nothing, and records nothing. Timestamps are wall-clock
// values relative to the tracer epoch and therefore appear only in the JSON
// export, never in canonical report comparisons; span ids are assigned in
// start order, so the id-sorted span list is a stable rendering.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace patchecko::obs {

struct Span {
  std::uint64_t id = 0;      ///< 1-based, assigned at span start
  std::uint64_t parent = 0;  ///< 0 = root (no enclosing span on this thread)
  std::uint64_t request = 0;  ///< obs::current_request_id() at start; 0 = none
  std::string name;
  std::uint32_t thread = 0;  ///< small per-thread ordinal, not an OS tid
  double start_seconds = 0.0;  ///< since the tracer epoch
  double end_seconds = 0.0;
};

/// Thread-safe collector of finished spans.
class Tracer {
 public:
  /// The process-wide tracer (intentionally leaked, like Registry).
  static Tracer& global();

  /// Finished spans sorted by id (start order).
  std::vector<Span> spans() const;
  /// Spans discarded after the in-memory cap was reached.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Drops every span, resets ids and the epoch.
  void clear();

  /// Soft cap on retained spans; recording beyond it increments dropped().
  static constexpr std::size_t max_spans = 1u << 20;

 private:
  friend class ScopedSpan;
  std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  double since_epoch() const;
  void record(Span span);

  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// RAII span. Pass string literals (or otherwise cheap views) for `name`;
/// the name is copied only when tracing is enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, Tracer& tracer = Tracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;  ///< 0 = tracing was disabled at construction
  std::uint64_t parent_ = 0;
  std::uint64_t request_ = 0;
  std::string name_;
  double start_seconds_ = 0.0;
  /// True iff this span pushed a profiler scope (profiling was active at
  /// construction); the destructor pops only what it pushed, so captures
  /// can start/stop while spans are open.
  bool profiled_ = false;
};

}  // namespace patchecko::obs
