// Minimal JSON reader for provenance files.
//
// The `explain` subcommand consumes JSONL the exporters in this library
// produced, so the reader only needs strict RFC-ish JSON: objects, arrays,
// strings with the escapes we emit, numbers, true/false/null. It lives in
// pk_obs (a leaf library) so the decision-record round-trip — render,
// parse, re-render — is self-contained and unit-testable without pulling
// in any higher layer. parse() returns nullopt on any malformed input; a
// corrupt provenance line degrades to "unreadable", never UB.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace patchecko::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind : std::uint8_t { null, boolean, number, string, array,
                                   object };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::boolean), bool_(b) {}
  explicit Value(double n) : kind_(Kind::number), number_(n) {}
  explicit Value(std::string s)
      : kind_(Kind::string), string_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::array), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::object), object_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }

  /// Typed accessors; wrong-kind access returns the fallback rather than
  /// throwing so readers can treat missing and mistyped keys alike.
  bool as_bool(bool fallback = false) const {
    return kind_ == Kind::boolean ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return kind_ == Kind::number ? number_ : fallback;
  }
  const std::string& as_string() const {
    static const std::string empty;
    return kind_ == Kind::string ? string_ : empty;
  }
  const Array& as_array() const {
    static const Array empty;
    return kind_ == Kind::array && array_ ? *array_ : empty;
  }
  const Object& as_object() const {
    static const Object empty;
    return kind_ == Kind::object && object_ ? *object_ : empty;
  }

  /// Object member lookup; null Value when absent or not an object.
  const Value& get(const std::string& key) const;

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Returns nullopt on any syntax error.
std::optional<Value> parse(std::string_view text);

/// Schema version of an exported JSON document. Prefers the explicit
/// "schema_version" key (metrics documents v2+, bench documents v2+);
/// falls back to the legacy "version" key, then to `fallback` for
/// documents that carry neither. Non-integer values yield `fallback`.
int schema_version(const Value& document, int fallback = 1);

/// Writers shared by every JSON exporter in this library. Doubles render
/// with %.17g (round-trips every finite value exactly); non-finite values
/// become null so emitted lines stay strict JSON. Strings escape the set
/// parse() understands, with control characters as \uXXXX.
void append_double(std::string& out, double value);
void append_string(std::string& out, std::string_view text);

}  // namespace patchecko::obs::json
