// Observability: request-scoped context.
//
// A long-lived service multiplexes many scan requests through one engine,
// one tracer, and one event log; without a per-request tag the combined
// telemetry cannot be attributed back to an individual caller. The context
// is a thread-local request id: the service opens a RequestScope around
// each job body it runs on behalf of a request, and every span and event
// recorded on that thread while the scope is open carries the id.
//
// The id is deliberately *thread*-scoped, not task-scoped: a job's own
// span/events are stamped, while spans opened by nested data-parallel
// workers (which have no scope) carry 0 — the same limitation the span
// parent stack already has, and the job-level granularity is what request
// filtering needs. Id 0 means "no request" (one-shot CLI runs).
//
// Reading the current id is a thread-local load; entering/leaving a scope
// is two thread-local stores. No locks, no allocation, nothing to gate on
// obs::enabled() — the consumers (trace, events) are already gated.
#pragma once

#include <cstdint>

namespace patchecko::obs {

/// The request id of the innermost open RequestScope on this thread;
/// 0 when none is open.
std::uint64_t current_request_id();

/// RAII request tag: stamps spans/events recorded on this thread for the
/// scope's lifetime. Nests (the previous id is restored on exit), so a
/// service job can temporarily run sub-work for another request.
class RequestScope {
 public:
  explicit RequestScope(std::uint64_t request_id);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::uint64_t previous_;
};

}  // namespace patchecko::obs
