// Observability: JSON export and the end-of-run summary line.
//
// The JSON document is the machine-readable artifact behind `--metrics`:
// every counter/gauge/histogram plus the finished span list. It contains
// wall-clock values (histogram sums, bucket spreads, span timestamps) and
// is therefore never compared byte-for-byte; the deterministic rendering is
// Registry::canonical_text(), which excludes those fields.
#pragma once

#include <cstdio>
#include <string>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchecko::obs {

/// Full JSON document: {"version", "counters", "gauges", "histograms",
/// "spans"[, "events"]}. Keys are sorted (registry maps) and spans are
/// id-ordered, so the *shape* is stable even though timing values are not.
/// When `events` is given, an "events" section reports the ring's emitted /
/// overflow / retained counts so truncation is visible, not silent.
std::string export_json(const Registry& registry, const Tracer& tracer,
                        const EventLog* events = nullptr);

/// One line for the end of a scan: stage timings, cache hit rate, candidate
/// pruning, work-steal counts — assembled from the well-known metric names
/// the pipeline/engine publish. Metrics that never registered render as 0.
/// When `tracer`/`events` are given and anything was dropped or overwritten,
/// a " | lost: ..." tail makes the loss explicit.
std::string summary_line(const Registry& registry,
                         const Tracer* tracer = nullptr,
                         const EventLog* events = nullptr);

/// Emits the end-of-run `--metrics` artifacts: the summary line (plus any
/// file notice or error) goes to `summary_stream`, the JSON document to
/// `file` when non-empty, otherwise to `json_stream`. The CLI passes
/// stderr as the summary stream so human-oriented text can never corrupt
/// piped report/JSONL output on stdout; the split streams make that
/// routing unit-testable with tmpfile(). Returns 0, or 1 when `file`
/// cannot be written.
int write_metrics_artifacts(const Registry& registry, const Tracer& tracer,
                            const EventLog* events, const std::string& file,
                            std::FILE* json_stream,
                            std::FILE* summary_stream);

/// Chrome trace_event JSON (loadable in Perfetto / chrome://tracing):
/// every finished span as a complete event (ph "X", microsecond ts/dur,
/// tid = thread ordinal) and, when `events` is given, every retained
/// structured event as a thread-scoped instant (ph "i") with its fields
/// under "args".
std::string chrome_trace_json(const Tracer& tracer,
                              const EventLog* events = nullptr);

}  // namespace patchecko::obs
