// Observability: JSON export and the end-of-run summary line.
//
// The JSON document is the machine-readable artifact behind `--metrics`:
// every counter/gauge/histogram plus the finished span list. It contains
// wall-clock values (histogram sums, bucket spreads, span timestamps) and
// is therefore never compared byte-for-byte; the deterministic rendering is
// Registry::canonical_text(), which excludes those fields.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchecko::obs {

/// Full JSON document: {"version", "counters", "gauges", "histograms",
/// "spans"}. Keys are sorted (registry maps) and spans are id-ordered, so
/// the *shape* is stable even though timing values are not.
std::string export_json(const Registry& registry, const Tracer& tracer);

/// One line for the end of a scan: stage timings, cache hit rate, candidate
/// pruning, work-steal counts — assembled from the well-known metric names
/// the pipeline/engine publish. Metrics that never registered render as 0.
std::string summary_line(const Registry& registry);

}  // namespace patchecko::obs
