// Observability: JSON export and the end-of-run summary line.
//
// The JSON document is the machine-readable artifact behind `--metrics`:
// every counter/gauge/histogram plus the finished span list. It contains
// wall-clock values (histogram sums, bucket spreads, span timestamps) and
// is therefore never compared byte-for-byte; the deterministic rendering is
// Registry::canonical_text(), which excludes those fields.
#pragma once

#include <string>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchecko::obs {

/// Full JSON document: {"version", "counters", "gauges", "histograms",
/// "spans"[, "events"]}. Keys are sorted (registry maps) and spans are
/// id-ordered, so the *shape* is stable even though timing values are not.
/// When `events` is given, an "events" section reports the ring's emitted /
/// overflow / retained counts so truncation is visible, not silent.
std::string export_json(const Registry& registry, const Tracer& tracer,
                        const EventLog* events = nullptr);

/// One line for the end of a scan: stage timings, cache hit rate, candidate
/// pruning, work-steal counts — assembled from the well-known metric names
/// the pipeline/engine publish. Metrics that never registered render as 0.
/// When `tracer`/`events` are given and anything was dropped or overwritten,
/// a " | lost: ..." tail makes the loss explicit.
std::string summary_line(const Registry& registry,
                         const Tracer* tracer = nullptr,
                         const EventLog* events = nullptr);

/// Chrome trace_event JSON (loadable in Perfetto / chrome://tracing):
/// every finished span as a complete event (ph "X", microsecond ts/dur,
/// tid = thread ordinal) and, when `events` is given, every retained
/// structured event as a thread-scoped instant (ph "i") with its fields
/// under "args".
std::string chrome_trace_json(const Tracer& tracer,
                              const EventLog* events = nullptr);

}  // namespace patchecko::obs
