// Observability: per-thread and per-process resource accounting.
//
// The engine attributes CPU time and allocation churn to individual jobs by
// sampling these thread-scoped counters before and after each job body.
// Everything here degrades gracefully off Linux / under sanitizers: an
// unavailable source reports a sentinel (-1) or stays at zero instead of
// failing, so call sites never need platform #ifdefs.
//
// Caveats (documented in DESIGN.md §12):
//   * Thread scope means exactly that: work a job fans out to other pool
//     workers via parallel_for is charged to those workers, not to the job's
//     thread. Job-level CPU numbers are therefore a lower bound for jobs
//     that nest data parallelism.
//   * Allocation counting hooks the global operator new/delete and is
//     compiled out under ASan/TSan/MSan (the sanitizer owns the allocator);
//     allocation_counting_available() reports which build this is.
//   * RSS is a process-wide number read from /proc/self/status; it cannot be
//     attributed to a job. The heartbeat samples it for trend visibility.
#pragma once

#include <cstdint>

namespace patchecko::obs {

/// CPU seconds consumed by the *calling thread* (CLOCK_THREAD_CPUTIME_ID).
/// Returns -1.0 where unsupported.
double thread_cpu_seconds();

/// Heap allocations performed by the calling thread since it started, via
/// the global operator-new hook. Counting obeys the metrics no-op contract:
/// with obs::enabled() false the hook is one relaxed load + untaken branch,
/// and the counters do not advance. Always 0 when the hook is compiled out.
std::uint64_t thread_allocation_count();
std::uint64_t thread_allocation_bytes();

/// Both counters in one call (one TLS round-trip). The profiler reads these
/// at every scope boundary to attribute the allocation delta to the scope
/// that was active over the interval.
void thread_allocation_totals(std::uint64_t* count, std::uint64_t* bytes);

/// False in sanitizer builds (hook compiled out); counts then read 0.
bool allocation_counting_available();

/// Current / peak resident set of the process in KiB (/proc/self/status
/// VmRSS / VmHWM). Returns -1 on platforms without procfs.
std::int64_t process_rss_kb();
std::int64_t process_peak_rss_kb();

/// Point-in-time sample of the calling thread's resource counters; subtract
/// two samples to attribute the interval to a job.
struct ResourceSample {
  double cpu_seconds = 0.0;        ///< -1.0 when unsupported
  std::uint64_t allocations = 0;
  std::uint64_t allocated_bytes = 0;
};

ResourceSample resource_sample();

/// current - start, clamped to zero; unsupported CPU clocks yield 0 so the
/// delta is always safe to record into a histogram.
ResourceSample resource_delta(const ResourceSample& start,
                              const ResourceSample& current);

}  // namespace patchecko::obs
