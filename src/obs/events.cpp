#include "obs/events.h"

#include "obs/json.h"
#include "obs/request_context.h"

namespace patchecko::obs {

namespace {

std::atomic<bool> g_events_enabled{false};

}  // namespace

bool events_enabled() {
  return g_events_enabled.load(std::memory_order_relaxed);
}

void set_events_enabled(bool on) {
  g_events_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::debug: return "debug";
    case Severity::info: return "info";
    case Severity::warn: return "warn";
    case Severity::error: return "error";
  }
  return "?";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

EventLog& EventLog::global() {
  // Leaked on purpose, like Registry/Tracer: worker threads may emit while
  // other statics destruct at process exit.
  static EventLog* log = new EventLog();
  return *log;
}

double EventLog::since_epoch() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void EventLog::emit(Severity severity, std::string_view name,
                    std::vector<Field> fields) {
  if (!events_enabled()) return;
  Event event;
  event.thread = thread_ordinal();
  event.request = current_request_id();
  event.t_seconds = since_epoch();
  event.severity = severity;
  event.name.assign(name.data(), name.size());
  event.fields = std::move(fields);

  std::lock_guard<std::mutex> lock(mutex_);
  event.seq = ++emitted_;
  event.thread_seq = ++thread_seq_[event.thread];
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    // Overwrite the oldest slot: the ring keeps the newest window and the
    // overflow count makes the truncation explicit.
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++overflowed_;
  }
}

std::vector<Event> EventLog::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::uint64_t EventLog::emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

std::uint64_t EventLog::overflowed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overflowed_;
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  emitted_ = 0;
  overflowed_ = 0;
  thread_seq_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::string event_jsonl_line(const Event& event) {
  using json::append_double;
  using json::append_string;
  std::string out = "{\"type\":\"event\",\"name\":";
  append_string(out, event.name);
  out += ",\"sev\":";
  append_string(out, severity_name(event.severity));
  out += ",\"req\":" + std::to_string(event.request);
  out += ",\"seq\":" + std::to_string(event.seq);
  out += ",\"thread\":" + std::to_string(event.thread);
  out += ",\"thread_seq\":" + std::to_string(event.thread_seq);
  out += ",\"t_s\":";
  append_double(out, event.t_seconds);
  out += ",\"fields\":{";
  for (std::size_t i = 0; i < event.fields.size(); ++i) {
    const Field& field = event.fields[i];
    if (i != 0) out += ',';
    append_string(out, field.key);
    out += ':';
    switch (field.kind) {
      case Field::Kind::u64: out += std::to_string(field.u); break;
      case Field::Kind::i64: out += std::to_string(field.i); break;
      case Field::Kind::f64: append_double(out, field.f); break;
      case Field::Kind::text: append_string(out, field.s); break;
    }
  }
  out += "}}";
  return out;
}

}  // namespace patchecko::obs
