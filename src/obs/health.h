// Observability: live run-health telemetry.
//
// A batch scan runs thousands of (CVE, library) jobs for minutes with no
// output until the final report; this header adds the two live signals a
// production service needs:
//
//   * Heartbeat — a publisher that appends deterministic-schema JSONL
//     snapshots (jobs done/total, per-stage counts, sliding-window rate and
//     ETA, cache hit ratio, queue depths, event-ring overflow, process RSS)
//     to a file or stderr on a fixed interval. Snapshots are *sampled* from
//     the existing metrics registry — no new instrumentation on any hot
//     path, so the no-op contract of obs is untouched. The schema contains
//     no thread ids or worker counts: with a fake clock the same scan
//     produces byte-identical snapshots at any --jobs value.
//
//   * StallWatchdog — a poller that tracks per-job start times registered
//     by the engine scheduler, emits exactly one `watchdog.stall` warning
//     per job that exceeds the soft deadline, and (optionally) flips the
//     job's cooperative cancel flag past the hard deadline so the pipeline
//     abandons the job and the scan records a `stalled` outcome instead of
//     hanging forever.
//
// Both run their own thread with a *real* interval, or no thread at all
// when the interval is 0 — tests then drive poll() by hand against a
// ManualClock, which keeps every timing assertion deterministic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace patchecko::obs {

/// Monotonic seconds source. The indirection exists so heartbeat/watchdog
/// behavior is testable without sleeping: production uses real(), tests a
/// ManualClock they advance explicitly.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() const = 0;

  /// std::chrono::steady_clock-backed singleton.
  static const Clock& real();
};

/// Hand-advanced clock for deterministic tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start_seconds = 0.0) : now_(start_seconds) {}
  double now() const override { return now_.load(std::memory_order_relaxed); }
  void set(double seconds) { now_.store(seconds, std::memory_order_relaxed); }
  void advance(double seconds) {
    now_.store(now_.load(std::memory_order_relaxed) + seconds,
               std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_;
};

/// One heartbeat sample. Only scheduling-independent values are included:
/// gauge *current* levels rather than high-water marks (those are racy
/// across job counts and stay in the --metrics export), counts rather than
/// wall-clock sums. Process RSS is machine-dependent and therefore behind
/// its own flag.
struct HealthSnapshot {
  std::uint64_t seq = 0;
  double t_seconds = 0.0;  ///< since begin(), from the configured clock
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_total = 0;
  std::uint64_t analyze_done = 0;  ///< per-stage completions (registry delta)
  std::uint64_t detect_done = 0;
  std::uint64_t patch_done = 0;
  double rate_per_second = 0.0;  ///< sliding-window completion rate
  double eta_seconds = 0.0;      ///< NaN (rendered null) when rate is 0
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_ratio = 0.0;  ///< 0 when no lookups yet
  std::int64_t ready_depth = 0;      ///< engine.ready_depth current level
  std::int64_t pool_queue_depth = 0; ///< pool.queue_depth current level
  std::uint64_t events_emitted = 0;
  std::uint64_t events_overflowed = 0;
  std::uint64_t stalled_jobs = 0;  ///< watchdog soft flags so far
  std::int64_t rss_kb = -1;        ///< only rendered with include_process
  std::int64_t peak_rss_kb = -1;
};

/// One JSONL line (no trailing newline), fixed key order, doubles via the
/// shared %.17g writer (non-finite -> null). `include_process` appends the
/// machine-dependent "process" object; the deterministic test schema omits
/// it.
std::string health_snapshot_jsonl(const HealthSnapshot& snapshot,
                                  bool include_process);

struct HeartbeatConfig {
  std::string file;  ///< empty = stderr
  /// Publisher tick. 0 disables the ticker thread entirely; begin() and
  /// finish() still emit their snapshots and tests call poll() by hand.
  double interval_seconds = 1.0;
  const Clock* clock = nullptr;       ///< null = Clock::real()
  const Registry* registry = nullptr; ///< null = Registry::global()
  bool include_process = true;        ///< RSS fields in the rendered lines
  /// When false, snapshots are sampled (and kept for last_snapshot()) but
  /// no JSONL line is written anywhere — the scan service uses this to feed
  /// its health endpoint without spamming the daemon's stderr.
  bool write_lines = true;
};

/// Appends HealthSnapshot JSONL lines over the life of one engine run.
/// begin() emits snapshot 0 and finish() always emits a final snapshot, so
/// every run produces at least two lines and the last one reports
/// jobs_done == jobs_total. Thread-safe: job_done() is called from worker
/// threads, poll() from the ticker thread or tests.
class Heartbeat {
 public:
  explicit Heartbeat(HeartbeatConfig config = {});
  ~Heartbeat();

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Captures the registry baseline (so a long-lived process can run many
  /// scans), emits snapshot 0, and starts the ticker thread (interval > 0).
  void begin(std::uint64_t jobs_total);

  /// One job completed; lock-free.
  void job_done();

  /// Emits one snapshot now.
  void poll();

  /// Stops the ticker and emits the final snapshot. Idempotent; also run by
  /// the destructor so an exception unwinding through the engine still
  /// closes the stream with a terminal snapshot.
  void finish();

  std::uint64_t snapshots_written() const {
    return snapshots_.load(std::memory_order_relaxed);
  }

  /// The most recently emitted snapshot (begin(), a tick, or finish());
  /// nullopt before the first begin(). The service health endpoint reads
  /// this instead of forcing an out-of-band sample (which would perturb the
  /// deterministic seq numbering of the JSONL stream).
  std::optional<HealthSnapshot> last_snapshot() const;

 private:
  struct Baseline {
    std::uint64_t analyze = 0, detect = 0, patch = 0;
    std::uint64_t cache_hits = 0, cache_misses = 0;
    std::uint64_t events_emitted = 0, events_overflowed = 0;
    std::uint64_t stall_flags = 0;
  };

  HealthSnapshot sample_locked();
  void emit_locked();
  Baseline read_counters() const;

  HeartbeatConfig config_;
  const Clock* clock_;
  const Registry* registry_;

  mutable std::mutex mutex_;
  std::optional<HealthSnapshot> last_;
  std::FILE* stream_ = nullptr;  ///< owned unless it is stderr
  bool owns_stream_ = false;
  bool active_ = false;
  double start_time_ = 0.0;
  Baseline baseline_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::pair<double, std::uint64_t>> window_;  ///< (t, done)
  std::atomic<std::uint64_t> jobs_done_{0};
  std::uint64_t jobs_total_ = 0;
  std::atomic<std::uint64_t> snapshots_{0};

  std::thread ticker_;
  std::mutex ticker_mutex_;
  std::condition_variable ticker_cv_;
  bool stop_ = false;
};

struct WatchdogConfig {
  /// A job running longer than this is flagged once (warning event +
  /// stderr line). 0 disables flagging.
  double soft_deadline_seconds = 0.0;
  /// A job running longer than this gets its cooperative cancel flag set;
  /// the pipeline abandons remaining work and the scan records a `stalled`
  /// outcome. 0 disables cancellation.
  double hard_deadline_seconds = 0.0;
  /// Deadline sweep cadence. 0 disables the poller thread (tests call
  /// poll() by hand).
  double poll_interval_seconds = 0.25;
  const Clock* clock = nullptr;  ///< null = Clock::real()
  bool warn_stderr = true;       ///< also print flagged jobs to stderr
};

/// Tracks in-flight jobs by start time and enforces the two deadlines.
/// Publishes watchdog.soft_flags / watchdog.cancelled counters and emits
/// `watchdog.stall` / `watchdog.cancel` warning events (when events are
/// enabled) carrying the job kind and label (CVE id or library name).
class StallWatchdog {
 public:
  /// Per-job registration token. `cancel` is shared with the engine, which
  /// threads it into the pipeline stages as the cooperative cancel flag.
  struct Job {
    std::uint64_t id = 0;
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  explicit StallWatchdog(WatchdogConfig config = {});
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Starts the poller thread (no-op when poll_interval_seconds == 0).
  void start();
  /// Stops the poller; run by the destructor.
  void stop();

  Job job_started(std::string_view kind, std::string_view label);
  void job_finished(const Job& job);

  /// One deadline sweep over the in-flight jobs.
  void poll();

  std::uint64_t soft_flagged() const {
    return soft_flagged_.load(std::memory_order_relaxed);
  }
  std::uint64_t cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  struct Active {
    std::string kind;
    std::string label;
    double started = 0.0;
    bool flagged = false;
    bool cancelled = false;
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  WatchdogConfig config_;
  const Clock* clock_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Active> active_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> soft_flagged_{0};
  std::atomic<std::uint64_t> cancelled_{0};

  std::thread poller_;
  std::mutex poller_mutex_;
  std::condition_variable poller_cv_;
  bool stop_ = false;
};

}  // namespace patchecko::obs
