#include "obs/health.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/resource.h"

namespace patchecko::obs {

namespace {

/// Completion-rate window: the estimator looks this many snapshots back, so
/// the ETA tracks the recent rate rather than the whole-run average (early
/// cache-hit bursts would otherwise make the tail look faster than it is).
constexpr std::size_t kRateWindow = 8;

std::uint64_t counter_value(const RegistrySnapshot& snapshot,
                            std::string_view name) {
  for (const CounterSnapshot& counter : snapshot.counters)
    if (counter.name == name) return counter.value;
  return 0;
}

std::int64_t gauge_value(const RegistrySnapshot& snapshot,
                         std::string_view name) {
  for (const GaugeSnapshot& gauge : snapshot.gauges)
    if (gauge.name == name) return gauge.value;
  return 0;
}

std::uint64_t histogram_count(const RegistrySnapshot& snapshot,
                              std::string_view name) {
  for (const HistogramSnapshot& histogram : snapshot.histograms)
    if (histogram.name == name) return histogram.count;
  return 0;
}

std::uint64_t delta(std::uint64_t now, std::uint64_t baseline) {
  return now >= baseline ? now - baseline : 0;
}

class RealClock : public Clock {
 public:
  double now() const override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

const Clock& Clock::real() {
  static const RealClock clock;
  return clock;
}

std::string health_snapshot_jsonl(const HealthSnapshot& snapshot,
                                  bool include_process) {
  std::string out = "{\"type\":\"heartbeat\",\"seq\":";
  out += std::to_string(snapshot.seq);
  out += ",\"t_s\":";
  json::append_double(out, snapshot.t_seconds);
  out += ",\"jobs\":{\"done\":";
  out += std::to_string(snapshot.jobs_done);
  out += ",\"total\":";
  out += std::to_string(snapshot.jobs_total);
  out += ",\"analyze\":";
  out += std::to_string(snapshot.analyze_done);
  out += ",\"detect\":";
  out += std::to_string(snapshot.detect_done);
  out += ",\"patch\":";
  out += std::to_string(snapshot.patch_done);
  out += "},\"rate_per_s\":";
  json::append_double(out, snapshot.rate_per_second);
  out += ",\"eta_s\":";
  json::append_double(out, snapshot.eta_seconds);
  out += ",\"cache\":{\"hits\":";
  out += std::to_string(snapshot.cache_hits);
  out += ",\"misses\":";
  out += std::to_string(snapshot.cache_misses);
  out += ",\"hit_ratio\":";
  json::append_double(out, snapshot.cache_hit_ratio);
  out += "},\"queues\":{\"ready\":";
  out += std::to_string(snapshot.ready_depth);
  out += ",\"pool\":";
  out += std::to_string(snapshot.pool_queue_depth);
  out += "},\"events\":{\"emitted\":";
  out += std::to_string(snapshot.events_emitted);
  out += ",\"overflow\":";
  out += std::to_string(snapshot.events_overflowed);
  out += "},\"stalled_jobs\":";
  out += std::to_string(snapshot.stalled_jobs);
  if (include_process) {
    out += ",\"process\":{\"rss_kb\":";
    out += std::to_string(snapshot.rss_kb);
    out += ",\"peak_rss_kb\":";
    out += std::to_string(snapshot.peak_rss_kb);
    out += '}';
  }
  out += '}';
  return out;
}

Heartbeat::Heartbeat(HeartbeatConfig config)
    : config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock : &Clock::real()),
      registry_(config_.registry != nullptr ? config_.registry
                                            : &Registry::global()) {}

Heartbeat::~Heartbeat() { finish(); }

Heartbeat::Baseline Heartbeat::read_counters() const {
  const RegistrySnapshot snapshot = registry_->snapshot();
  Baseline base;
  base.analyze = histogram_count(snapshot, "engine.job_seconds.analyze");
  base.detect = histogram_count(snapshot, "engine.job_seconds.detect");
  base.patch = histogram_count(snapshot, "engine.job_seconds.patch");
  base.cache_hits = counter_value(snapshot, "cache.feature_hits") +
                    counter_value(snapshot, "cache.outcome_hits");
  base.cache_misses = counter_value(snapshot, "cache.feature_misses") +
                      counter_value(snapshot, "cache.outcome_misses");
  base.events_emitted = EventLog::global().emitted();
  base.events_overflowed = EventLog::global().overflowed();
  base.stall_flags = counter_value(snapshot, "watchdog.soft_flags");
  return base;
}

void Heartbeat::begin(std::uint64_t jobs_total) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_) return;
    active_ = true;
    jobs_total_ = jobs_total;
    jobs_done_.store(0, std::memory_order_relaxed);
    next_seq_ = 0;
    window_.clear();
    start_time_ = clock_->now();
    baseline_ = read_counters();
    if (!config_.write_lines) {
      stream_ = nullptr;
      owns_stream_ = false;
    } else if (config_.file.empty()) {
      stream_ = stderr;
      owns_stream_ = false;
    } else {
      stream_ = std::fopen(config_.file.c_str(), "w");
      owns_stream_ = stream_ != nullptr;
      if (stream_ == nullptr) {
        std::fprintf(stderr,
                     "[heartbeat] warning: cannot write %s; snapshots go to "
                     "stderr\n",
                     config_.file.c_str());
        stream_ = stderr;
      }
    }
    emit_locked();
  }
  if (config_.interval_seconds > 0.0) {
    stop_ = false;
    ticker_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(ticker_mutex_);
      const auto interval = std::chrono::duration<double>(
          config_.interval_seconds);
      while (!stop_) {
        if (ticker_cv_.wait_for(lock, interval, [this] { return stop_; }))
          break;
        lock.unlock();
        poll();
        lock.lock();
      }
    });
  }
}

void Heartbeat::job_done() {
  jobs_done_.fetch_add(1, std::memory_order_relaxed);
}

HealthSnapshot Heartbeat::sample_locked() {
  const Baseline now_counters = read_counters();
  HealthSnapshot snapshot;
  snapshot.seq = next_seq_++;
  snapshot.t_seconds = clock_->now() - start_time_;
  snapshot.jobs_done = jobs_done_.load(std::memory_order_relaxed);
  snapshot.jobs_total = jobs_total_;
  snapshot.analyze_done = delta(now_counters.analyze, baseline_.analyze);
  snapshot.detect_done = delta(now_counters.detect, baseline_.detect);
  snapshot.patch_done = delta(now_counters.patch, baseline_.patch);
  snapshot.cache_hits = delta(now_counters.cache_hits, baseline_.cache_hits);
  snapshot.cache_misses =
      delta(now_counters.cache_misses, baseline_.cache_misses);
  const std::uint64_t lookups = snapshot.cache_hits + snapshot.cache_misses;
  snapshot.cache_hit_ratio =
      lookups == 0 ? 0.0
                   : static_cast<double>(snapshot.cache_hits) /
                         static_cast<double>(lookups);
  const RegistrySnapshot registry_snapshot = registry_->snapshot();
  snapshot.ready_depth = gauge_value(registry_snapshot, "engine.ready_depth");
  snapshot.pool_queue_depth =
      gauge_value(registry_snapshot, "pool.queue_depth");
  snapshot.events_emitted =
      delta(now_counters.events_emitted, baseline_.events_emitted);
  snapshot.events_overflowed =
      delta(now_counters.events_overflowed, baseline_.events_overflowed);
  snapshot.stalled_jobs =
      delta(now_counters.stall_flags, baseline_.stall_flags);
  if (config_.include_process) {
    snapshot.rss_kb = process_rss_kb();
    snapshot.peak_rss_kb = process_peak_rss_kb();
  }

  // Sliding-window rate + ETA. The window holds the last kRateWindow
  // snapshots; the rate is jobs completed over that span.
  window_.emplace_back(snapshot.t_seconds, snapshot.jobs_done);
  if (window_.size() > kRateWindow)
    window_.erase(window_.begin(),
                  window_.end() - static_cast<std::ptrdiff_t>(kRateWindow));
  const auto& [t0, done0] = window_.front();
  const double dt = snapshot.t_seconds - t0;
  if (dt > 0.0 && snapshot.jobs_done > done0)
    snapshot.rate_per_second =
        static_cast<double>(snapshot.jobs_done - done0) / dt;
  const std::uint64_t remaining =
      snapshot.jobs_total > snapshot.jobs_done
          ? snapshot.jobs_total - snapshot.jobs_done
          : 0;
  if (remaining == 0)
    snapshot.eta_seconds = 0.0;
  else if (snapshot.rate_per_second > 0.0)
    snapshot.eta_seconds =
        static_cast<double>(remaining) / snapshot.rate_per_second;
  else
    snapshot.eta_seconds = std::numeric_limits<double>::quiet_NaN();
  return snapshot;
}

void Heartbeat::emit_locked() {
  const HealthSnapshot snapshot = sample_locked();
  last_ = snapshot;
  if (stream_ != nullptr) {
    const std::string line =
        health_snapshot_jsonl(snapshot, config_.include_process);
    std::fprintf(stream_, "%s\n", line.c_str());
    std::fflush(stream_);
  }
  snapshots_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<HealthSnapshot> Heartbeat::last_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_;
}

void Heartbeat::poll() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) return;
  emit_locked();
}

void Heartbeat::finish() {
  if (ticker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(ticker_mutex_);
      stop_ = true;
    }
    ticker_cv_.notify_all();
    ticker_.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) return;
  emit_locked();
  if (owns_stream_) std::fclose(stream_);
  stream_ = nullptr;
  owns_stream_ = false;
  active_ = false;
}

StallWatchdog::StallWatchdog(WatchdogConfig config)
    : config_(config),
      clock_(config_.clock != nullptr ? config_.clock : &Clock::real()) {}

StallWatchdog::~StallWatchdog() { stop(); }

void StallWatchdog::start() {
  if (config_.poll_interval_seconds <= 0.0 || poller_.joinable()) return;
  stop_ = false;
  poller_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(poller_mutex_);
    const auto interval =
        std::chrono::duration<double>(config_.poll_interval_seconds);
    while (!stop_) {
      if (poller_cv_.wait_for(lock, interval, [this] { return stop_; }))
        break;
      lock.unlock();
      poll();
      lock.lock();
    }
  });
}

void StallWatchdog::stop() {
  if (!poller_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(poller_mutex_);
    stop_ = true;
  }
  poller_cv_.notify_all();
  poller_.join();
}

StallWatchdog::Job StallWatchdog::job_started(std::string_view kind,
                                              std::string_view label) {
  Job job;
  job.cancel = std::make_shared<std::atomic<bool>>(false);
  std::lock_guard<std::mutex> lock(mutex_);
  job.id = next_id_++;
  Active active;
  active.kind = std::string(kind);
  active.label = std::string(label);
  active.started = clock_->now();
  active.cancel = job.cancel;
  active_.emplace(job.id, std::move(active));
  return job;
}

void StallWatchdog::job_finished(const Job& job) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(job.id);
}

void StallWatchdog::poll() {
  static Counter& soft_counter =
      Registry::global().counter("watchdog.soft_flags");
  static Counter& cancel_counter =
      Registry::global().counter("watchdog.cancelled");
  const double now = clock_->now();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, job] : active_) {
    const double age = now - job.started;
    if (config_.soft_deadline_seconds > 0.0 && !job.flagged &&
        age > config_.soft_deadline_seconds) {
      job.flagged = true;
      soft_flagged_.fetch_add(1, std::memory_order_relaxed);
      soft_counter.add();
      if (events_enabled())
        EventLog::global().emit(
            Severity::warn, "watchdog.stall",
            {Field::text("kind", job.kind), Field::text("label", job.label),
             Field::f64("age_s", age),
             Field::f64("deadline_s", config_.soft_deadline_seconds)});
      if (config_.warn_stderr)
        std::fprintf(stderr,
                     "[watchdog] %s %s running %.1fs (soft deadline %.1fs)\n",
                     job.kind.c_str(), job.label.c_str(), age,
                     config_.soft_deadline_seconds);
    }
    if (config_.hard_deadline_seconds > 0.0 && !job.cancelled &&
        age > config_.hard_deadline_seconds) {
      job.cancelled = true;
      job.cancel->store(true, std::memory_order_relaxed);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      cancel_counter.add();
      if (events_enabled())
        EventLog::global().emit(
            Severity::warn, "watchdog.cancel",
            {Field::text("kind", job.kind), Field::text("label", job.label),
             Field::f64("age_s", age),
             Field::f64("deadline_s", config_.hard_deadline_seconds)});
      if (config_.warn_stderr)
        std::fprintf(
            stderr,
            "[watchdog] cancelling %s %s after %.1fs (hard deadline %.1fs)\n",
            job.kind.c_str(), job.label.c_str(), age,
            config_.hard_deadline_seconds);
    }
  }
}

}  // namespace patchecko::obs
