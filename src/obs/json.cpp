#include "obs/json.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace patchecko::obs::json {

void append_double(std::string& out, double value) {
  if (value != value || value == std::numeric_limits<double>::infinity() ||
      value == -std::numeric_limits<double>::infinity()) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

const Value& Value::get(const std::string& key) const {
  static const Value null_value;
  if (kind_ != Kind::object || !object_) return null_value;
  const auto it = object_->find(key);
  return it == object_->end() ? null_value : it->second;
}

namespace {

/// Recursive-descent parser over a string_view cursor. Depth is bounded so
/// adversarial nesting cannot blow the stack.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  bool ok = true;
  int depth = 0;
  static constexpr int max_depth = 64;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  Value parse_value() {
    if (++depth > max_depth) {
      ok = false;
      --depth;
      return {};
    }
    skip_ws();
    Value out;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      out = parse_object();
    } else if (text[pos] == '[') {
      out = parse_array();
    } else if (text[pos] == '"') {
      std::string s;
      if (parse_string(s))
        out = Value(std::move(s));
      else
        ok = false;
    } else if (literal("true")) {
      out = Value(true);
    } else if (literal("false")) {
      out = Value(false);
    } else if (literal("null")) {
      out = Value();
    } else {
      out = parse_number();
    }
    --depth;
    return out;
  }

  Value parse_object() {
    Object object;
    ++pos;  // '{'
    skip_ws();
    if (consume('}')) return Value(std::move(object));
    while (ok) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) {
        ok = false;
        break;
      }
      skip_ws();
      if (!consume(':')) {
        ok = false;
        break;
      }
      object[std::move(key)] = parse_value();
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      ok = false;
    }
    return Value(std::move(object));
  }

  Value parse_array() {
    Array array;
    ++pos;  // '['
    skip_ws();
    if (consume(']')) return Value(std::move(array));
    while (ok) {
      array.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      ok = false;
    }
    return Value(std::move(array));
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return false;
      const char escape = text[pos++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // Our exporters only \u-escape control characters; decode the
          // BMP code point as UTF-8 and accept anything else verbatim.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  Value parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-'))
      ++pos;
    if (pos == start) {
      ok = false;
      return {};
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      ok = false;
      return {};
    }
    return Value(value);
  }
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  Parser parser{text};
  Value value = parser.parse_value();
  parser.skip_ws();
  if (!parser.ok || parser.pos != text.size()) return std::nullopt;
  return value;
}

int schema_version(const Value& document, int fallback) {
  const auto read = [&](const char* key) -> std::optional<int> {
    const Value& value = document.get(key);
    if (value.kind() != Value::Kind::number) return std::nullopt;
    const double number = value.as_number();
    const int integer = static_cast<int>(number);
    if (number != static_cast<double>(integer)) return std::nullopt;
    return integer;
  };
  if (const auto explicit_version = read("schema_version"))
    return *explicit_version;
  if (const auto legacy_version = read("version")) return *legacy_version;
  return fallback;
}

}  // namespace patchecko::obs::json
