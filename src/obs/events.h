// Observability: structured event log.
//
// Spans (trace.h) answer "how long did each stage take"; events answer
// "what did the system decide and why" — a candidate pruned after a crash,
// a detect job served from cache, a patch verdict reached. Each event is a
// named record with a severity, typed key/value fields, a wall-clock stamp,
// and two sequence numbers: a global one (emission order across the
// process) and a per-thread one (gap-free per emitting thread, so lost
// events are provable, not suspected).
//
// Storage is a fixed-capacity ring: below the cap nothing is ever lost;
// beyond it the *oldest* events are overwritten and overflowed() counts
// exactly how many. The log obeys the same no-op contract as the metrics
// registry and tracer, but behind its own flag (events_enabled()): with
// events off, emit() returns after one relaxed load — no clock read, no
// lock, no allocation. Call sites that build field vectors must gate on
// events_enabled() themselves so the vector is never constructed in no-op
// mode:
//
//   if (obs::events_enabled())
//     obs::EventLog::global().emit(obs::Severity::info, "engine.job",
//                                  {obs::Field::text("label", label),
//                                   obs::Field::f64("seconds", seconds)});
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace patchecko::obs {

/// Global event-log switch, independent of the metrics flag (a scan may
/// want decisions without latency histograms, or vice versa).
bool events_enabled();
void set_events_enabled(bool on);

/// RAII flip of the event flag (tests; the CLI sets it once instead).
class EventsEnabledScope {
 public:
  explicit EventsEnabledScope(bool on) : previous_(events_enabled()) {
    set_events_enabled(on);
  }
  ~EventsEnabledScope() { set_events_enabled(previous_); }
  EventsEnabledScope(const EventsEnabledScope&) = delete;
  EventsEnabledScope& operator=(const EventsEnabledScope&) = delete;

 private:
  bool previous_;
};

/// Small dense per-thread ordinal (not an OS tid), shared with the tracer
/// so span.thread and event.thread index the same threads.
std::uint32_t thread_ordinal();

enum class Severity : std::uint8_t { debug = 0, info, warn, error };
std::string_view severity_name(Severity severity);

/// One typed key/value pair. Factories keep call sites terse and make the
/// kind explicit; the value lives in whichever member matches `kind`.
struct Field {
  enum class Kind : std::uint8_t { u64, i64, f64, text };

  std::string key;
  Kind kind = Kind::u64;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double f = 0.0;
  std::string s;

  static Field u64(std::string key, std::uint64_t value) {
    Field field;
    field.key = std::move(key);
    field.kind = Kind::u64;
    field.u = value;
    return field;
  }
  static Field i64(std::string key, std::int64_t value) {
    Field field;
    field.key = std::move(key);
    field.kind = Kind::i64;
    field.i = value;
    return field;
  }
  static Field f64(std::string key, double value) {
    Field field;
    field.key = std::move(key);
    field.kind = Kind::f64;
    field.f = value;
    return field;
  }
  static Field text(std::string key, std::string value) {
    Field field;
    field.key = std::move(key);
    field.kind = Kind::text;
    field.s = std::move(value);
    return field;
  }
};

struct Event {
  std::uint64_t seq = 0;         ///< 1-based global emission order
  std::uint32_t thread = 0;      ///< thread_ordinal() of the emitter
  std::uint64_t thread_seq = 0;  ///< 1-based, gap-free per thread
  std::uint64_t request = 0;     ///< current_request_id() at emit; 0 = none
  double t_seconds = 0.0;        ///< since the log epoch
  Severity severity = Severity::info;
  std::string name;
  std::vector<Field> fields;
};

/// Thread-safe fixed-capacity ring of structured events.
class EventLog {
 public:
  static constexpr std::size_t default_capacity = 1u << 16;

  explicit EventLog(std::size_t capacity = default_capacity);

  /// The process-wide log (intentionally leaked, like Registry/Tracer).
  static EventLog& global();

  /// Records one event; no-op (single relaxed load) when events are off.
  void emit(Severity severity, std::string_view name,
            std::vector<Field> fields = {});

  /// Retained events, oldest first (seq order). At most capacity() entries;
  /// once the ring wraps these are the *newest* emitted events.
  std::vector<Event> events() const;

  std::size_t capacity() const { return capacity_; }
  /// Total emit() calls that recorded (emitted while enabled).
  std::uint64_t emitted() const;
  /// Events overwritten after the ring filled: emitted() - retained.
  std::uint64_t overflowed() const;

  /// Drops every event, resets sequences and the epoch.
  void clear();

 private:
  double since_epoch() const;

  mutable std::mutex mutex_;
  std::vector<Event> ring_;  ///< size <= capacity_
  std::size_t head_ = 0;     ///< oldest slot once the ring is full
  std::size_t capacity_;
  std::uint64_t emitted_ = 0;
  std::uint64_t overflowed_ = 0;
  std::unordered_map<std::uint32_t, std::uint64_t> thread_seq_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// One JSONL line (no trailing newline): {"type":"event","name":...,
/// "sev":...,"req":N,"seq":N,"thread":T,"thread_seq":N,"t_s":...,
/// "fields":{...}}. `req` is the request-scope id (0 outside a service
/// request). Non-finite doubles render as null.
std::string event_jsonl_line(const Event& event);

}  // namespace patchecko::obs
