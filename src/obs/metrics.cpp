#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace patchecko::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

const std::vector<double>& default_latency_bounds() {
  // Powers of four from 1µs: latencies here span ~1µs (a cached lookup) to
  // seconds (a cold detect job), and x4 steps keep the bucket list short.
  static const std::vector<double> bounds = [] {
    std::vector<double> out;
    double bound = 1e-6;
    for (int i = 0; i < 12; ++i, bound *= 4.0) out.push_back(bound);
    return out;
  }();
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double seconds) {
  if (!enabled()) return;
  const std::size_t index = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), seconds) -
      bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (seconds > 0.0)
    sum_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  // Leaked on purpose: pool worker threads may publish metrics while other
  // static objects destruct at exit; a destroyed registry would be UB.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot)
    slot = std::make_unique<Histogram>(bounds.empty()
                                           ? default_latency_bounds()
                                           : bounds);
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::vector<CounterSnapshot> Registry::counter_snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    out.push_back({name, counter->value()});
  return out;
}

namespace {

// Gauge::add() bumps the value before raising the high-water mark, so a
// reader racing with a writer can see value > max for a moment. The pair is
// repaired at read time instead of serializing writers: read max *after*
// value and clamp it up.
GaugeSnapshot read_gauge(const std::string& name, const Gauge& gauge) {
  const std::int64_t value = gauge.value();
  const std::int64_t max = std::max(gauge.max(), value);
  return {name, value, max};
}

}  // namespace

std::vector<GaugeSnapshot> Registry::gauge_snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeSnapshot> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    out.push_back(read_gauge(name, *gauge));
  return out;
}

std::vector<HistogramSnapshot> Registry::histogram_snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    out.push_back({name, histogram->bounds(), histogram->bucket_counts(),
                   histogram->count(), histogram->sum()});
  return out;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    out.counters.push_back({name, counter->value()});
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    out.gauges.push_back(read_gauge(name, *gauge));
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    out.histograms.push_back({name, histogram->bounds(),
                              histogram->bucket_counts(), histogram->count(),
                              histogram->sum()});
  return out;
}

std::string Registry::canonical_text() const {
  // std::map iteration is already name-sorted; kinds are grouped so the
  // rendering is stable under any registration order.
  std::ostringstream out;
  for (const CounterSnapshot& snapshot : counter_snapshots())
    out << "counter " << snapshot.name << ' ' << snapshot.value << '\n';
  for (const GaugeSnapshot& snapshot : gauge_snapshots())
    out << "gauge " << snapshot.name << ' ' << snapshot.value << " max "
        << snapshot.max << '\n';
  for (const HistogramSnapshot& snapshot : histogram_snapshots())
    out << "histogram " << snapshot.name << " count " << snapshot.count
        << '\n';
  return out.str();
}

}  // namespace patchecko::obs
