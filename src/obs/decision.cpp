#include "obs/decision.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/json.h"

namespace patchecko::obs {

namespace {

using json::append_double;
using json::append_string;

void append_stage(std::string& out, const StageRecord& stage) {
  out += "{\"threshold\":";
  append_double(out, stage.threshold);
  out += ",\"minkowski_p\":";
  append_double(out, stage.minkowski_p);
  out += ",\"total\":" + std::to_string(stage.total);
  out += ",\"executed\":" + std::to_string(stage.executed);
  out += ",\"prefilter\":" + std::to_string(stage.prefilter);
  out += ",\"prefilter_shortlist\":" + std::to_string(stage.prefilter_shortlist);
  out += ",\"prefilter_exact\":" + std::to_string(stage.prefilter_exact);
  out += ",\"prefilter_recalled\":" + std::to_string(stage.prefilter_recalled);
  out += ",\"candidates\":[";
  for (std::size_t i = 0; i < stage.candidates.size(); ++i) {
    const CandidateRecord& candidate = stage.candidates[i];
    if (i != 0) out += ',';
    out += "{\"function\":" + std::to_string(candidate.function_index);
    out += ",\"dl_score\":";
    append_double(out, candidate.dl_score);
    out += ",\"validated\":";
    out += candidate.validated ? "true" : "false";
    out += ",\"crash_env\":" + std::to_string(candidate.crash_env);
    out += ",\"prefiltered\":";
    out += candidate.prefiltered ? "true" : "false";
    out += ",\"env_distances\":[";
    for (std::size_t e = 0; e < candidate.env_distances.size(); ++e) {
      if (e != 0) out += ',';
      append_double(out, candidate.env_distances[e]);
    }
    out += "],\"distance\":";
    append_double(out, candidate.distance);
    out += ",\"rank\":" + std::to_string(candidate.rank);
    out += '}';
  }
  out += "]}";
}

double number_or(const json::Value& value, double non_finite) {
  return value.is_null() ? non_finite : value.as_number();
}

CandidateRecord parse_candidate(const json::Value& value) {
  CandidateRecord candidate;
  candidate.function_index =
      static_cast<std::uint64_t>(value.get("function").as_number());
  candidate.dl_score = value.get("dl_score").as_number();
  candidate.validated = value.get("validated").as_bool();
  candidate.crash_env =
      static_cast<std::int64_t>(value.get("crash_env").as_number(-1.0));
  candidate.prefiltered = value.get("prefiltered").as_bool();
  for (const json::Value& d : value.get("env_distances").as_array())
    candidate.env_distances.push_back(
        number_or(d, std::numeric_limits<double>::quiet_NaN()));
  candidate.distance = number_or(value.get("distance"),
                                 std::numeric_limits<double>::infinity());
  candidate.rank = static_cast<std::int64_t>(value.get("rank").as_number(-1.0));
  return candidate;
}

StageRecord parse_stage(const json::Value& value) {
  StageRecord stage;
  stage.threshold = value.get("threshold").as_number();
  stage.minkowski_p = value.get("minkowski_p").as_number();
  stage.total = static_cast<std::uint64_t>(value.get("total").as_number());
  stage.executed =
      static_cast<std::uint64_t>(value.get("executed").as_number());
  stage.prefilter =
      static_cast<std::uint8_t>(value.get("prefilter").as_number(0.0));
  stage.prefilter_shortlist = static_cast<std::uint64_t>(
      value.get("prefilter_shortlist").as_number(0.0));
  stage.prefilter_exact =
      static_cast<std::uint64_t>(value.get("prefilter_exact").as_number(0.0));
  stage.prefilter_recalled = static_cast<std::uint64_t>(
      value.get("prefilter_recalled").as_number(0.0));
  for (const json::Value& candidate : value.get("candidates").as_array())
    stage.candidates.push_back(parse_candidate(candidate));
  return stage;
}

/// Short human-friendly number for explain output (provenance JSON keeps
/// the exact %.17g form).
std::string fmt_short(double value) {
  if (std::isnan(value)) return "n/a";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void explain_stage(std::string& out, const char* query,
                   const StageRecord& stage) {
  out += "  query ";
  out += query;
  out += " (DL threshold " + fmt_short(stage.threshold) + ", Minkowski p=" +
         fmt_short(stage.minkowski_p) + "):\n";
  out += "    stage 1 scanned " + std::to_string(stage.total) + " functions, " +
         std::to_string(stage.candidates.size()) + " candidates; stage 2 executed " +
         std::to_string(stage.executed) + "\n";
  if (stage.prefilter != 0) {
    out += "    prefilter ";
    out += stage.prefilter == 2 ? "verify" : "on";
    out += ": shortlist kept " + std::to_string(stage.prefilter_shortlist) +
           " of " + std::to_string(stage.total) + " functions";
    if (stage.prefilter == 2) {
      out += "; recall " + std::to_string(stage.prefilter_recalled) + "/" +
             std::to_string(stage.prefilter_exact) + " exact candidates";
    }
    out += '\n';
  }
  for (const CandidateRecord& candidate : stage.candidates) {
    out += "    function " + std::to_string(candidate.function_index) +
           ": dl_score=" + fmt_short(candidate.dl_score);
    if (candidate.prefiltered) {
      out += "  pruned: prefilter shortlist (never reached the NN)\n";
      continue;
    }
    if (!candidate.validated) {
      out += candidate.crash_env >= 0
                 ? "  pruned: crashed in environment " +
                       std::to_string(candidate.crash_env)
                 : "  pruned: failed execution validation";
      out += '\n';
      continue;
    }
    out += "  env_distances=[";
    for (std::size_t e = 0; e < candidate.env_distances.size(); ++e) {
      if (e != 0) out += ", ";
      out += fmt_short(candidate.env_distances[e]);
    }
    out += "]  aggregate=" + fmt_short(candidate.distance);
    out += candidate.rank > 0 ? "  rank=" + std::to_string(candidate.rank)
                              : "  unranked";
    out += '\n';
  }
}

}  // namespace

std::string decision_jsonl_line(const DecisionRecord& record) {
  std::string out = "{\"type\":\"decision\",\"cve\":";
  append_string(out, record.cve_id);
  out += ",\"library\":";
  append_string(out, record.library);
  out += ",\"library_missing\":";
  out += record.library_missing ? "true" : "false";
  out += ",\"stalled\":";
  out += record.stalled ? "true" : "false";
  out += ",\"from_vulnerable\":";
  append_stage(out, record.from_vulnerable);
  out += ",\"from_patched\":";
  append_stage(out, record.from_patched);
  out += ",\"pool\":[";
  for (std::size_t i = 0; i < record.pool.size(); ++i) {
    const PatchCandidateRecord& member = record.pool[i];
    if (i != 0) out += ',';
    out += "{\"function\":" + std::to_string(member.function_index);
    out += ",\"dist_vulnerable\":";
    append_double(out, member.distance_vulnerable);
    out += ",\"dist_patched\":";
    append_double(out, member.distance_patched);
    out += ",\"effects_vulnerable\":" +
           std::to_string(member.effect_matches_vulnerable);
    out += ",\"effects_patched\":" +
           std::to_string(member.effect_matches_patched);
    out += ",\"chosen\":";
    out += member.chosen ? "true" : "false";
    out += '}';
  }
  out += "],\"matched_function\":";
  out += record.matched_function ? std::to_string(*record.matched_function)
                                 : "null";
  out += ",\"verdict\":";
  if (!record.has_verdict) {
    out += "null}";
    return out;
  }
  out += "{\"patched\":";
  out += record.verdict_patched ? "true" : "false";
  out += ",\"votes_vulnerable\":";
  append_double(out, record.votes_vulnerable);
  out += ",\"votes_patched\":";
  append_double(out, record.votes_patched);
  out += ",\"dyn_dist_vulnerable\":";
  append_double(out, record.dynamic_distance_vulnerable);
  out += ",\"dyn_dist_patched\":";
  append_double(out, record.dynamic_distance_patched);
  out += ",\"evidence\":[";
  for (std::size_t i = 0; i < record.evidence.size(); ++i) {
    if (i != 0) out += ',';
    append_string(out, record.evidence[i]);
  }
  out += "]}}";
  return out;
}

std::optional<DecisionRecord> parse_decision_line(std::string_view line) {
  const std::optional<json::Value> parsed = json::parse(line);
  if (!parsed || parsed->get("type").as_string() != "decision")
    return std::nullopt;
  DecisionRecord record;
  record.cve_id = parsed->get("cve").as_string();
  record.library = parsed->get("library").as_string();
  record.library_missing = parsed->get("library_missing").as_bool();
  record.stalled = parsed->get("stalled").as_bool();
  record.from_vulnerable = parse_stage(parsed->get("from_vulnerable"));
  record.from_patched = parse_stage(parsed->get("from_patched"));
  for (const json::Value& member : parsed->get("pool").as_array()) {
    PatchCandidateRecord pool_member;
    pool_member.function_index =
        static_cast<std::uint64_t>(member.get("function").as_number());
    pool_member.distance_vulnerable =
        number_or(member.get("dist_vulnerable"),
                  std::numeric_limits<double>::infinity());
    pool_member.distance_patched =
        number_or(member.get("dist_patched"),
                  std::numeric_limits<double>::infinity());
    pool_member.effect_matches_vulnerable = static_cast<std::uint64_t>(
        member.get("effects_vulnerable").as_number());
    pool_member.effect_matches_patched =
        static_cast<std::uint64_t>(member.get("effects_patched").as_number());
    pool_member.chosen = member.get("chosen").as_bool();
    record.pool.push_back(pool_member);
  }
  const json::Value& matched = parsed->get("matched_function");
  if (!matched.is_null())
    record.matched_function = static_cast<std::uint64_t>(matched.as_number());
  const json::Value& verdict = parsed->get("verdict");
  if (!verdict.is_null()) {
    record.has_verdict = true;
    record.verdict_patched = verdict.get("patched").as_bool();
    record.votes_vulnerable = verdict.get("votes_vulnerable").as_number();
    record.votes_patched = verdict.get("votes_patched").as_number();
    record.dynamic_distance_vulnerable =
        number_or(verdict.get("dyn_dist_vulnerable"),
                  std::numeric_limits<double>::infinity());
    record.dynamic_distance_patched =
        number_or(verdict.get("dyn_dist_patched"),
                  std::numeric_limits<double>::infinity());
    for (const json::Value& note : verdict.get("evidence").as_array())
      record.evidence.push_back(note.as_string());
  }
  return record;
}

std::string explain_text(const DecisionRecord& record) {
  std::string out = record.cve_id + " in " + record.library + "\n";
  if (record.library_missing) {
    out += "  library not present in the firmware image\n";
    return out;
  }
  if (record.stalled)
    out += "  STALLED: cancelled by the watchdog hard deadline; partial "
           "record\n";
  explain_stage(out, "vulnerable", record.from_vulnerable);
  explain_stage(out, "patched", record.from_patched);
  out += "  differential pool (top candidates of both rankings):\n";
  if (record.pool.empty()) out += "    empty — no candidate survived\n";
  for (const PatchCandidateRecord& member : record.pool) {
    out += "    function " + std::to_string(member.function_index) +
           ": dist(vulnerable)=" + fmt_short(member.distance_vulnerable) +
           " dist(patched)=" + fmt_short(member.distance_patched) +
           " effect_matches=" +
           std::to_string(member.effect_matches_vulnerable) + ":" +
           std::to_string(member.effect_matches_patched);
    if (member.chosen) out += "  <= chosen";
    out += '\n';
  }
  if (!record.has_verdict) {
    out += "  verdict: none — no matched function\n";
    return out;
  }
  out += "  verdict: ";
  out += record.verdict_patched ? "PATCHED" : "VULNERABLE";
  if (record.matched_function)
    out += " (function " + std::to_string(*record.matched_function) + ")";
  out += "\n    votes: vulnerable=" + fmt_short(record.votes_vulnerable) +
         " patched=" + fmt_short(record.votes_patched) + "\n";
  out += "    dynamic distance: to vulnerable reference=" +
         fmt_short(record.dynamic_distance_vulnerable) +
         ", to patched reference=" +
         fmt_short(record.dynamic_distance_patched) + "\n";
  if (record.evidence.empty()) {
    out += "    evidence: none (indistinguishable sources default to patched)\n";
  } else {
    out += "    evidence:\n";
    for (const std::string& note : record.evidence)
      out += "      - " + note + "\n";
  }
  return out;
}

}  // namespace patchecko::obs
