#include "obs/export.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.h"

namespace patchecko::obs {

namespace {

/// Shortest round-trip double rendering; %.17g keeps every finite double
/// exact and never produces inf/nan for the values exported here.
std::string fmt_double(double value) {
  char out[40];
  std::snprintf(out, sizeof(out), "%.17g", value);
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

template <typename Fn>
void join(std::ostringstream& out, std::size_t n, const Fn& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out << ',';
    fn(i);
  }
}

}  // namespace

std::string export_json(const Registry& registry, const Tracer& tracer,
                        const EventLog* events) {
  std::ostringstream out;
  // schema_version is the explicit metrics-document version (v2 added the
  // field itself plus per-span request ids); "version" stays for readers
  // that predate it — json::schema_version() prefers the new key.
  out << "{\"schema_version\":2,\"version\":1,\"counters\":{";
  const auto counters = registry.counter_snapshots();
  join(out, counters.size(), [&](std::size_t i) {
    out << '"' << json_escape(counters[i].name) << "\":" << counters[i].value;
  });
  out << "},\"gauges\":{";
  const auto gauges = registry.gauge_snapshots();
  join(out, gauges.size(), [&](std::size_t i) {
    out << '"' << json_escape(gauges[i].name) << "\":{\"value\":"
        << gauges[i].value << ",\"max\":" << gauges[i].max << '}';
  });
  out << "},\"histograms\":{";
  const auto histograms = registry.histogram_snapshots();
  join(out, histograms.size(), [&](std::size_t i) {
    const HistogramSnapshot& h = histograms[i];
    out << '"' << json_escape(h.name) << "\":{\"count\":" << h.count
        << ",\"sum_seconds\":" << fmt_double(h.sum) << ",\"le\":[";
    join(out, h.bounds.size(),
         [&](std::size_t b) { out << fmt_double(h.bounds[b]); });
    // buckets has one trailing overflow entry beyond the "le" bounds.
    out << "],\"buckets\":[";
    join(out, h.buckets.size(), [&](std::size_t b) { out << h.buckets[b]; });
    out << "]}";
  });
  out << "},\"spans\":{\"dropped\":" << tracer.dropped() << ",\"events\":[";
  const auto spans = tracer.spans();
  join(out, spans.size(), [&](std::size_t i) {
    const Span& span = spans[i];
    out << "{\"id\":" << span.id << ",\"parent\":" << span.parent
        << ",\"req\":" << span.request << ",\"name\":\""
        << json_escape(span.name) << "\",\"thread\":" << span.thread
        << ",\"start_s\":" << fmt_double(span.start_seconds)
        << ",\"end_s\":" << fmt_double(span.end_seconds) << '}';
  });
  out << "]}";
  if (events != nullptr) {
    const std::uint64_t emitted = events->emitted();
    const std::uint64_t overflow = events->overflowed();
    out << ",\"events\":{\"emitted\":" << emitted << ",\"overflow\":"
        << overflow << ",\"retained\":" << emitted - overflow << '}';
  }
  out << '}';
  return out.str();
}

std::string summary_line(const Registry& registry, const Tracer* tracer,
                         const EventLog* events) {
  std::map<std::string, std::uint64_t> counters;
  for (const CounterSnapshot& snapshot : registry.counter_snapshots())
    counters[snapshot.name] = snapshot.value;
  std::map<std::string, double> sums;
  for (const HistogramSnapshot& snapshot : registry.histogram_snapshots())
    sums[snapshot.name] = snapshot.sum;

  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  const auto sum = [&](const char* name) -> double {
    const auto it = sums.find(name);
    return it == sums.end() ? 0.0 : it->second;
  };

  const std::uint64_t hits =
      counter("cache.feature_hits") + counter("cache.outcome_hits");
  const std::uint64_t lookups = hits + counter("cache.feature_misses") +
                                counter("cache.outcome_misses");
  const std::uint64_t stage1 = counter("pipeline.candidates_stage1");
  const std::uint64_t pruned = counter("pipeline.candidates_pruned");

  char line[512];
  std::snprintf(
      line, sizeof(line),
      "metrics: analyze %.2fs, dl %.2fs, exec %.2fs, patch %.2fs | cache "
      "%llu/%llu hits (%.1f%%) | candidates %llu -> %llu (%llu pruned) | "
      "steals %llu/%llu tasks | vm %llu runs, %llu traps",
      sum("pipeline.analyze_seconds"), sum("pipeline.dl_seconds"),
      sum("pipeline.da_seconds"), sum("pipeline.patch_seconds"),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(lookups),
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(hits) /
                         static_cast<double>(lookups),
      static_cast<unsigned long long>(stage1),
      static_cast<unsigned long long>(stage1 - pruned),
      static_cast<unsigned long long>(pruned),
      static_cast<unsigned long long>(counter("pool.steals")),
      static_cast<unsigned long long>(counter("pool.completed")),
      static_cast<unsigned long long>(counter("vm.runs")),
      static_cast<unsigned long long>(counter("vm.traps")));
  std::string out = line;
  const std::uint64_t spans_dropped = tracer != nullptr ? tracer->dropped() : 0;
  const std::uint64_t events_lost = events != nullptr ? events->overflowed() : 0;
  if (spans_dropped != 0 || events_lost != 0) {
    std::snprintf(line, sizeof(line),
                  " | lost: %llu spans dropped, %llu events overwritten",
                  static_cast<unsigned long long>(spans_dropped),
                  static_cast<unsigned long long>(events_lost));
    out += line;
  }
  return out;
}

int write_metrics_artifacts(const Registry& registry, const Tracer& tracer,
                            const EventLog* events, const std::string& file,
                            std::FILE* json_stream,
                            std::FILE* summary_stream) {
  std::fprintf(summary_stream, "%s\n",
               summary_line(registry, &tracer, events).c_str());
  const std::string json = export_json(registry, tracer, events);
  if (file.empty()) {
    std::fprintf(json_stream, "%s\n", json.c_str());
    return 0;
  }
  std::FILE* out = std::fopen(file.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(summary_stream, "error: cannot write metrics to %s\n",
                 file.c_str());
    return 1;
  }
  const bool ok = std::fputs(json.c_str(), out) >= 0 &&
                  std::fputc('\n', out) != EOF;
  const bool closed = std::fclose(out) == 0;
  if (!ok || !closed) {
    std::fprintf(summary_stream, "error: cannot write metrics to %s\n",
                 file.c_str());
    return 1;
  }
  std::fprintf(summary_stream, "metrics written to %s\n", file.c_str());
  return 0;
}

std::string chrome_trace_json(const Tracer& tracer, const EventLog* events) {
  // Spans and structured events live on separate steady-clock epochs (each
  // resets at its own clear()); for the global instances both start at first
  // use, so the shared timeline lines up to well under a millisecond —
  // plenty for visual triage in Perfetto.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : tracer.spans()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json::append_string(out, span.name);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(span.thread);
    out += ",\"ts\":";
    json::append_double(out, span.start_seconds * 1e6);
    out += ",\"dur\":";
    json::append_double(out, (span.end_seconds - span.start_seconds) * 1e6);
    out += ",\"args\":{\"id\":" + std::to_string(span.id) +
           ",\"parent\":" + std::to_string(span.parent) +
           ",\"req\":" + std::to_string(span.request) + "}}";
  }
  if (events != nullptr) {
    for (const Event& event : events->events()) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":";
      json::append_string(out, event.name);
      out += ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" +
             std::to_string(event.thread);
      out += ",\"ts\":";
      json::append_double(out, event.t_seconds * 1e6);
      out += ",\"args\":{\"req\":" + std::to_string(event.request);
      for (std::size_t i = 0; i < event.fields.size(); ++i) {
        const Field& field = event.fields[i];
        out += ',';
        json::append_string(out, field.key);
        out += ':';
        switch (field.kind) {
          case Field::Kind::u64: out += std::to_string(field.u); break;
          case Field::Kind::i64: out += std::to_string(field.i); break;
          case Field::Kind::f64: json::append_double(out, field.f); break;
          case Field::Kind::text: json::append_string(out, field.s); break;
        }
      }
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace patchecko::obs
