#include "obs/export.h"

#include <cstdio>
#include <map>
#include <sstream>

namespace patchecko::obs {

namespace {

/// Shortest round-trip double rendering; %.17g keeps every finite double
/// exact and never produces inf/nan for the values exported here.
std::string fmt_double(double value) {
  char out[40];
  std::snprintf(out, sizeof(out), "%.17g", value);
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

template <typename Fn>
void join(std::ostringstream& out, std::size_t n, const Fn& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out << ',';
    fn(i);
  }
}

}  // namespace

std::string export_json(const Registry& registry, const Tracer& tracer) {
  std::ostringstream out;
  out << "{\"version\":1,\"counters\":{";
  const auto counters = registry.counter_snapshots();
  join(out, counters.size(), [&](std::size_t i) {
    out << '"' << json_escape(counters[i].name) << "\":" << counters[i].value;
  });
  out << "},\"gauges\":{";
  const auto gauges = registry.gauge_snapshots();
  join(out, gauges.size(), [&](std::size_t i) {
    out << '"' << json_escape(gauges[i].name) << "\":{\"value\":"
        << gauges[i].value << ",\"max\":" << gauges[i].max << '}';
  });
  out << "},\"histograms\":{";
  const auto histograms = registry.histogram_snapshots();
  join(out, histograms.size(), [&](std::size_t i) {
    const HistogramSnapshot& h = histograms[i];
    out << '"' << json_escape(h.name) << "\":{\"count\":" << h.count
        << ",\"sum_seconds\":" << fmt_double(h.sum) << ",\"le\":[";
    join(out, h.bounds.size(),
         [&](std::size_t b) { out << fmt_double(h.bounds[b]); });
    // buckets has one trailing overflow entry beyond the "le" bounds.
    out << "],\"buckets\":[";
    join(out, h.buckets.size(), [&](std::size_t b) { out << h.buckets[b]; });
    out << "]}";
  });
  out << "},\"spans\":{\"dropped\":" << tracer.dropped() << ",\"events\":[";
  const auto spans = tracer.spans();
  join(out, spans.size(), [&](std::size_t i) {
    const Span& span = spans[i];
    out << "{\"id\":" << span.id << ",\"parent\":" << span.parent
        << ",\"name\":\"" << json_escape(span.name) << "\",\"thread\":"
        << span.thread << ",\"start_s\":" << fmt_double(span.start_seconds)
        << ",\"end_s\":" << fmt_double(span.end_seconds) << '}';
  });
  out << "]}}";
  return out.str();
}

std::string summary_line(const Registry& registry) {
  std::map<std::string, std::uint64_t> counters;
  for (const CounterSnapshot& snapshot : registry.counter_snapshots())
    counters[snapshot.name] = snapshot.value;
  std::map<std::string, double> sums;
  for (const HistogramSnapshot& snapshot : registry.histogram_snapshots())
    sums[snapshot.name] = snapshot.sum;

  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  const auto sum = [&](const char* name) -> double {
    const auto it = sums.find(name);
    return it == sums.end() ? 0.0 : it->second;
  };

  const std::uint64_t hits =
      counter("cache.feature_hits") + counter("cache.outcome_hits");
  const std::uint64_t lookups = hits + counter("cache.feature_misses") +
                                counter("cache.outcome_misses");
  const std::uint64_t stage1 = counter("pipeline.candidates_stage1");
  const std::uint64_t pruned = counter("pipeline.candidates_pruned");

  char line[512];
  std::snprintf(
      line, sizeof(line),
      "metrics: analyze %.2fs, dl %.2fs, exec %.2fs, patch %.2fs | cache "
      "%llu/%llu hits (%.1f%%) | candidates %llu -> %llu (%llu pruned) | "
      "steals %llu/%llu tasks | vm %llu runs, %llu traps",
      sum("pipeline.analyze_seconds"), sum("pipeline.dl_seconds"),
      sum("pipeline.da_seconds"), sum("pipeline.patch_seconds"),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(lookups),
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(hits) /
                         static_cast<double>(lookups),
      static_cast<unsigned long long>(stage1),
      static_cast<unsigned long long>(stage1 - pruned),
      static_cast<unsigned long long>(pruned),
      static_cast<unsigned long long>(counter("pool.steals")),
      static_cast<unsigned long long>(counter("pool.completed")),
      static_cast<unsigned long long>(counter("vm.runs")),
      static_cast<unsigned long long>(counter("vm.traps")));
  return line;
}

}  // namespace patchecko::obs
