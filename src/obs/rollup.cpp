#include "obs/rollup.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/resource.h"

namespace patchecko::obs {

std::string_view endpoint_name(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::scan: return "scan";
    case Endpoint::status: return "status";
    case Endpoint::health: return "health";
    case Endpoint::reload: return "reload";
    case Endpoint::drain: return "drain";
    case Endpoint::ping: return "ping";
    case Endpoint::stats: return "stats";
    case Endpoint::profile: return "profile";
    case Endpoint::other: return "other";
  }
  return "other";
}

Endpoint endpoint_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    const auto endpoint = static_cast<Endpoint>(i);
    if (endpoint_name(endpoint) == name) return endpoint;
  }
  return Endpoint::other;
}

Rollup::Rollup(RollupConfig config)
    : config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock : &Clock::real()),
      bounds_(config_.latency_bounds.empty() ? default_latency_bounds()
                                             : config_.latency_bounds),
      enabled_(config_.enabled) {
  if (config_.slots == 0) config_.slots = 1;
  if (config_.window_seconds <= 0.0) config_.window_seconds = 60.0;
  slot_seconds_ = config_.window_seconds / static_cast<double>(config_.slots);
  epoch_ = clock_->now();
  slots_.resize(config_.slots);
  totals_.resize(kEndpointCount);
}

std::int64_t Rollup::slot_index_now() const {
  const double t = clock_->now() - epoch_;
  return t <= 0.0 ? 0 : static_cast<std::int64_t>(t / slot_seconds_);
}

Rollup::Slot& Rollup::live_slot(std::int64_t index) {
  Slot& slot = slots_[static_cast<std::size_t>(index) % slots_.size()];
  if (slot.index != index) {
    // Lazy expiry: this physical slot last held a window that has since
    // aged out; reclaim it for the current one.
    slot.index = index;
    slot.per_endpoint.assign(kEndpointCount, EndpointWindow{});
    for (EndpointWindow& window : slot.per_endpoint)
      window.latency_buckets.assign(bounds_.size() + 1, 0);
  }
  return slot;
}

void Rollup::record(Endpoint endpoint, double service_seconds,
                    double queue_wait_seconds, bool error) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::int64_t index = slot_index_now();
  const auto bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), service_seconds) -
      bounds_.begin());

  std::lock_guard<std::mutex> lock(mutex_);
  EndpointWindow& window =
      live_slot(index).per_endpoint[static_cast<std::size_t>(endpoint)];
  window.count += 1;
  if (error) window.errors += 1;
  window.latency_buckets[bucket] += 1;
  window.max_seconds = std::max(window.max_seconds, service_seconds);
  window.queue_wait_max_seconds =
      std::max(window.queue_wait_max_seconds, queue_wait_seconds);
  EndpointTotals& totals = totals_[static_cast<std::size_t>(endpoint)];
  totals.count += 1;
  if (error) totals.errors += 1;
  queue_wait_high_water_ =
      std::max(queue_wait_high_water_, queue_wait_seconds);
}

void Rollup::observe_queue_depth(std::int64_t depth) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  queue_depth_high_water_ = std::max(queue_depth_high_water_, depth);
}

void Rollup::set_corpus_version(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  corpus_version_ = version;
}

RollupSnapshot Rollup::snapshot() const {
  RollupSnapshot snapshot;
  snapshot.window_seconds = config_.window_seconds;
  snapshot.uptime_seconds = clock_->now() - epoch_;
  snapshot.rss_kb = process_rss_kb();
  snapshot.latency_bounds = bounds_;
  snapshot.window.assign(kEndpointCount, EndpointWindow{});
  for (EndpointWindow& window : snapshot.window)
    window.latency_buckets.assign(bounds_.size() + 1, 0);

  const std::int64_t now_index = slot_index_now();
  const std::int64_t oldest_live =
      now_index - static_cast<std::int64_t>(slots_.size()) + 1;

  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.corpus_version = corpus_version_;
  snapshot.queue_depth_high_water = queue_depth_high_water_;
  snapshot.queue_wait_high_water_seconds = queue_wait_high_water_;
  snapshot.totals = totals_;
  for (const Slot& slot : slots_) {
    // index -1 = never used (and per_endpoint still empty); early in the
    // rollup's life oldest_live is negative, so the window check alone
    // would admit it.
    if (slot.index < 0 || slot.index < oldest_live || slot.index > now_index)
      continue;
    for (std::size_t e = 0; e < kEndpointCount; ++e) {
      const EndpointWindow& from = slot.per_endpoint[e];
      EndpointWindow& into = snapshot.window[e];
      into.count += from.count;
      into.errors += from.errors;
      for (std::size_t b = 0; b < from.latency_buckets.size(); ++b)
        into.latency_buckets[b] += from.latency_buckets[b];
      into.max_seconds = std::max(into.max_seconds, from.max_seconds);
      into.queue_wait_max_seconds = std::max(into.queue_wait_max_seconds,
                                             from.queue_wait_max_seconds);
    }
  }
  return snapshot;
}

std::string rollup_snapshot_json(const RollupSnapshot& snapshot) {
  using json::append_double;
  std::string out = "{\"window_s\":";
  append_double(out, snapshot.window_seconds);
  out += ",\"uptime_s\":";
  append_double(out, snapshot.uptime_seconds);
  out += ",\"corpus_version\":" + std::to_string(snapshot.corpus_version);
  out += ",\"queue\":{\"depth_hwm\":" +
         std::to_string(snapshot.queue_depth_high_water) + ",\"wait_hwm_s\":";
  append_double(out, snapshot.queue_wait_high_water_seconds);
  out += "},\"rss_kb\":" + std::to_string(snapshot.rss_kb);
  out += ",\"le\":[";
  for (std::size_t i = 0; i < snapshot.latency_bounds.size(); ++i) {
    if (i != 0) out += ',';
    append_double(out, snapshot.latency_bounds[i]);
  }
  out += "],\"endpoints\":{";
  for (std::size_t e = 0; e < kEndpointCount; ++e) {
    if (e != 0) out += ',';
    out += '"';
    out += endpoint_name(static_cast<Endpoint>(e));
    out += "\":{\"count\":";
    const EndpointWindow window =
        e < snapshot.window.size() ? snapshot.window[e] : EndpointWindow{};
    const EndpointTotals totals =
        e < snapshot.totals.size() ? snapshot.totals[e] : EndpointTotals{};
    out += std::to_string(window.count);
    out += ",\"errors\":" + std::to_string(window.errors);
    out += ",\"max_s\":";
    append_double(out, window.max_seconds);
    out += ",\"wait_max_s\":";
    append_double(out, window.queue_wait_max_seconds);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < window.latency_buckets.size(); ++b) {
      if (b != 0) out += ',';
      out += std::to_string(window.latency_buckets[b]);
    }
    out += "],\"total\":{\"count\":" + std::to_string(totals.count) +
           ",\"errors\":" + std::to_string(totals.errors) + "}}";
  }
  out += "}}";
  return out;
}

}  // namespace patchecko::obs
