#include "retrieval/query_catalog.h"

#include <algorithm>

namespace patchecko::retrieval {

const QueryCatalog::Entry* QueryCatalog::find(std::string_view cve_id) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), cve_id,
      [](const Entry& entry, std::string_view id) { return entry.cve_id < id; });
  if (it == entries.end() || it->cve_id != cve_id) return nullptr;
  return &*it;
}

std::size_t QueryCatalog::memory_bytes() const {
  std::size_t bytes = entries.size() * sizeof(Entry);
  for (const Entry& entry : entries) bytes += entry.cve_id.size();
  return bytes;
}

}  // namespace patchecko::retrieval
