// Stage-1 retrieval: scalar quantization of the 48 static features.
//
// The prefilter (index.h) shortlists candidate functions by distance in
// feature space before the expensive DL similarity model runs. Raw Table-I
// features are heavy-tailed counts spanning many orders of magnitude, so
// Euclidean distance on them is dominated by the largest dimension; the
// quantizer therefore works in *compressed* space:
//
//     c(x) = sign(x) * log1p(|x|)        (the same compression the model's
//                                         FeatureNormalizer applies)
//
// and maps c(x), clamped to the fixed grid [kGridLo, kGridHi], onto an
// 8-bit code. The grid is corpus-independent by design: codes computed for
// a query and for a library indexed in a different process are directly
// comparable, index construction needs no fitting pass, and the round-trip
// error bound below holds unconditionally.
//
// Guarantee: for any value x whose compressed form lies inside the grid,
//     |c(dequantize(quantize(x))[d]) - c(x)| <= kGridStep / 2
// per dimension (values outside the grid clamp to its edge). 48 codes pack
// one function into 48 bytes — 8x smaller than the double vector — and
// distances are exact small-integer arithmetic, so they are bitwise
// deterministic across platforms, thread counts, and build flags.
#pragma once

#include <array>
#include <cstdint>

#include "features/static_features.h"

namespace patchecko::retrieval {

/// Compressed-space grid. log1p of the largest plausible feature count
/// (~1e6 instructions) is ~13.8; +-16 leaves headroom for ratio features
/// and derived negatives while keeping the step fine enough (~0.063
/// half-step => ~6.5% worst-case relative error on raw counts).
constexpr double kGridLo = -16.0;
constexpr double kGridHi = 16.0;
constexpr int kCodeLevels = 256;
constexpr double kGridStep = (kGridHi - kGridLo) / (kCodeLevels - 1);

/// One function's 48 features as 8-bit codes on the fixed grid.
struct QuantizedVector {
  std::array<std::uint8_t, static_feature_count> codes{};

  friend bool operator==(const QuantizedVector& a, const QuantizedVector& b) {
    return a.codes == b.codes;
  }
  friend bool operator!=(const QuantizedVector& a, const QuantizedVector& b) {
    return !(a == b);
  }
};

/// Signed log1p compression (finite for every finite input; +-inf clamp to
/// the grid edges downstream).
double compress_feature(double value);
/// Inverse of compress_feature on its range.
double decompress_feature(double compressed);

/// Quantizes one value / one full vector onto the grid.
std::uint8_t quantize_feature(double value);
QuantizedVector quantize(const StaticFeatureVector& features);

/// Grid midpoint a code represents, in raw feature space.
double dequantize_feature(std::uint8_t code);
StaticFeatureVector dequantize(const QuantizedVector& quantized);

/// Squared Euclidean distance between code vectors. Max value is
/// 48 * 255^2 < 2^22, so the exact sum always fits 32 bits.
std::uint32_t quantized_distance_sq(const QuantizedVector& a,
                                    const QuantizedVector& b);

}  // namespace patchecko::retrieval
