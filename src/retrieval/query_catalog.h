// Stage-1 retrieval: precomputed query codes for a CVE corpus.
//
// Every detect() call against a prefiltered target starts by quantizing the
// query's feature vector. A long-lived service answers thousands of scans
// against the same corpus snapshot, so the snapshot precomputes both
// directions' codes once per entry (build_query_catalog in core) and hands
// them to the engine with each request; the catalog is immutable and swaps
// atomically with its snapshot on hot reload.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "retrieval/quantizer.h"

namespace patchecko::retrieval {

struct QueryCatalog {
  struct Entry {
    std::string cve_id;
    QuantizedVector vulnerable;  ///< code of the vulnerable query features
    QuantizedVector patched;     ///< code of the patched query features
  };

  std::vector<Entry> entries;  ///< sorted by cve_id (binary-searchable)
  double build_seconds = 0.0;

  /// nullptr when the id is absent (detect() then quantizes on the fly).
  const Entry* find(std::string_view cve_id) const;
  std::size_t memory_bytes() const;
};

}  // namespace patchecko::retrieval
