// Stage-1 retrieval: a clustered inverted index over quantized function
// features.
//
// PATCHECKO's stage 1 scores every (CVE query, target function) pair with
// the 6-layer similarity network — O(CVEs x functions), the dominant cost
// of fleet-scale scans. Functions the network accepts have features close
// to the query's in compressed feature space (that proximity is what the
// network learned), so a cheap approximate-nearest-neighbour pass can
// shortlist top-K candidates per query and the network runs only on the
// shortlist. This is the VulMatch/AI-BFSD prefilter shape adapted to the
// 48-dim static feature vectors:
//
//   build:  quantize every function (quantizer.h), pick C ~ sqrt(N)
//           centroids by deterministic farthest-point seeding, refine with
//           a few Lloyd rounds, store one ascending inverted list per
//           centroid. No RNG anywhere: the same features produce the
//           bit-identical index at any --jobs value.
//   query:  rank centroids by distance to the quantized query, scan the
//           nearest lists until the probe budget is met, and return the K
//           closest scanned functions — ties broken toward the lower
//           function index, result sorted ascending so the detect loop
//           visits candidates in the same order the exact scan would.
//
// The index is approximate by construction (a true neighbour can hide in
// an unprobed list); the pipeline's verify mode and bench_retrieval
// measure recall against the exact all-pairs scan, and the defaults below
// are sized to hold >= 99% on the synthetic corpora.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "retrieval/quantizer.h"

namespace patchecko::retrieval {

/// Stage-1 prefilter switch, threaded from the CLI down to detect():
///   off    — exact all-pairs scoring (the paper's behaviour),
///   on     — score only the index's top-K shortlist,
///   verify — score everything (exact results view) but *classify* through
///            the shortlist exactly like `on`, recording shortlist-vs-exact
///            recall so CI can gate on it. Produces the same report as `on`.
enum class PrefilterMode : std::uint8_t { off = 0, on = 1, verify = 2 };

std::string_view prefilter_mode_name(PrefilterMode mode);
std::optional<PrefilterMode> parse_prefilter_mode(std::string_view text);

struct IndexConfig {
  /// Inverted-list count; 0 = auto (ceil(sqrt(N)), clamped to [1, N]).
  std::size_t clusters = 0;
  /// Lloyd refinement rounds after farthest-point seeding.
  std::size_t lloyd_iterations = 4;
  /// Probing scans nearest lists until at least `probe_budget_factor * K`
  /// candidates were examined (and at least `min_probe_clusters` lists).
  /// Larger = better recall, more distance computations.
  std::size_t probe_budget_factor = 8;
  std::size_t min_probe_clusters = 4;
};

struct IndexStats {
  std::size_t vectors = 0;
  std::size_t clusters = 0;
  std::size_t memory_bytes = 0;
  double build_seconds = 0.0;
};

class FunctionIndex {
 public:
  /// Builds the index over one library's feature vectors. Deterministic:
  /// identical features (in order) produce an identical index.
  static FunctionIndex build(const std::vector<StaticFeatureVector>& features,
                             const IndexConfig& config = {});
  static std::shared_ptr<const FunctionIndex> build_shared(
      const std::vector<StaticFeatureVector>& features,
      const IndexConfig& config = {});

  /// The K indexed functions nearest to `query` (all of them when K >= N),
  /// sorted ascending by function index. Every returned index is < size().
  std::vector<std::uint32_t> top_k(const QuantizedVector& query,
                                   std::size_t k) const;
  std::vector<std::uint32_t> top_k(const StaticFeatureVector& query,
                                   std::size_t k) const {
    return top_k(quantize(query), k);
  }

  std::size_t size() const { return codes_.size(); }
  std::size_t cluster_count() const { return centroids_.size(); }
  const IndexStats& stats() const { return stats_; }
  /// Stored code of function `i` (tests and round-trip checks).
  const QuantizedVector& code(std::size_t i) const { return codes_[i]; }

 private:
  IndexConfig config_;
  std::vector<QuantizedVector> codes_;      ///< one per indexed function
  std::vector<QuantizedVector> centroids_;  ///< one per inverted list
  std::vector<std::vector<std::uint32_t>> lists_;  ///< ascending members
  IndexStats stats_;
};

}  // namespace patchecko::retrieval
