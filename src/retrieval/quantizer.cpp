#include "retrieval/quantizer.h"

#include <cmath>

namespace patchecko::retrieval {

double compress_feature(double value) {
  if (std::isnan(value)) return 0.0;  // degenerate features sort as zero
  const double magnitude = std::log1p(std::fabs(value));
  return value < 0.0 ? -magnitude : magnitude;
}

double decompress_feature(double compressed) {
  const double magnitude = std::expm1(std::fabs(compressed));
  return compressed < 0.0 ? -magnitude : magnitude;
}

std::uint8_t quantize_feature(double value) {
  const double compressed = compress_feature(value);
  if (compressed <= kGridLo) return 0;
  if (compressed >= kGridHi) return kCodeLevels - 1;
  const double level = (compressed - kGridLo) / kGridStep;
  // llround: ties away from zero, identical on every libm we target, so
  // codes are bit-stable across platforms.
  const long long code = std::llround(level);
  return static_cast<std::uint8_t>(
      code < 0 ? 0 : (code > kCodeLevels - 1 ? kCodeLevels - 1 : code));
}

QuantizedVector quantize(const StaticFeatureVector& features) {
  QuantizedVector out;
  for (std::size_t d = 0; d < static_feature_count; ++d)
    out.codes[d] = quantize_feature(features[d]);
  return out;
}

double dequantize_feature(std::uint8_t code) {
  return decompress_feature(kGridLo + static_cast<double>(code) * kGridStep);
}

StaticFeatureVector dequantize(const QuantizedVector& quantized) {
  StaticFeatureVector out{};
  for (std::size_t d = 0; d < static_feature_count; ++d)
    out[d] = dequantize_feature(quantized.codes[d]);
  return out;
}

std::uint32_t quantized_distance_sq(const QuantizedVector& a,
                                    const QuantizedVector& b) {
  std::uint32_t sum = 0;
  for (std::size_t d = 0; d < static_feature_count; ++d) {
    const std::int32_t delta = static_cast<std::int32_t>(a.codes[d]) -
                               static_cast<std::int32_t>(b.codes[d]);
    sum += static_cast<std::uint32_t>(delta * delta);
  }
  return sum;
}

}  // namespace patchecko::retrieval
