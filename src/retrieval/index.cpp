#include "retrieval/index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/timer.h"

namespace patchecko::retrieval {
namespace {

// Accumulates member codes per dimension and emits the rounded mean code —
// the quantized-space analogue of a k-means centroid update. Ties round
// half-up via the +denominator/2 trick on non-negative sums, so the result
// is pure integer arithmetic and identical everywhere.
QuantizedVector mean_code(const std::vector<QuantizedVector>& codes,
                          const std::vector<std::uint32_t>& members) {
  QuantizedVector out;
  if (members.empty()) return out;
  const std::uint64_t n = members.size();
  for (std::size_t d = 0; d < static_feature_count; ++d) {
    std::uint64_t sum = 0;
    for (const std::uint32_t m : members) sum += codes[m].codes[d];
    out.codes[d] = static_cast<std::uint8_t>((sum + n / 2) / n);
  }
  return out;
}

std::uint32_t nearest_centroid(const QuantizedVector& code,
                               const std::vector<QuantizedVector>& centroids) {
  std::uint32_t best = 0;
  std::uint32_t best_dist = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t c = 0; c < centroids.size(); ++c) {
    const std::uint32_t dist = quantized_distance_sq(code, centroids[c]);
    if (dist < best_dist) {  // strict: ties keep the lowest cluster id
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

}  // namespace

std::string_view prefilter_mode_name(PrefilterMode mode) {
  switch (mode) {
    case PrefilterMode::on:
      return "on";
    case PrefilterMode::verify:
      return "verify";
    case PrefilterMode::off:
      break;
  }
  return "off";
}

std::optional<PrefilterMode> parse_prefilter_mode(std::string_view text) {
  if (text == "off") return PrefilterMode::off;
  if (text == "on") return PrefilterMode::on;
  if (text == "verify") return PrefilterMode::verify;
  return std::nullopt;
}

FunctionIndex FunctionIndex::build(
    const std::vector<StaticFeatureVector>& features,
    const IndexConfig& config) {
  Stopwatch timer;
  FunctionIndex index;
  index.config_ = config;

  const std::size_t n = features.size();
  index.codes_.reserve(n);
  for (const StaticFeatureVector& vec : features)
    index.codes_.push_back(quantize(vec));

  if (n > 0) {
    std::size_t clusters = config.clusters;
    if (clusters == 0)
      clusters = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(n))));
    clusters = std::clamp<std::size_t>(clusters, 1, n);

    // Farthest-point seeding from function 0: maximally spread, no RNG.
    // Ties (equal max-min distance) go to the lowest function index.
    std::vector<QuantizedVector>& centroids = index.centroids_;
    centroids.push_back(index.codes_[0]);
    std::vector<std::uint32_t> min_dist(n);
    for (std::size_t i = 0; i < n; ++i)
      min_dist[i] = quantized_distance_sq(index.codes_[i], centroids[0]);
    while (centroids.size() < clusters) {
      std::size_t far = 0;
      for (std::size_t i = 1; i < n; ++i)
        if (min_dist[i] > min_dist[far]) far = i;
      centroids.push_back(index.codes_[far]);
      for (std::size_t i = 0; i < n; ++i)
        min_dist[i] = std::min(
            min_dist[i], quantized_distance_sq(index.codes_[i], centroids.back()));
    }

    // A few Lloyd rounds sharpen the seeds; assignment and the rounded-mean
    // update are both deterministic, and empty clusters keep their previous
    // centroid so the cluster count never shrinks.
    std::vector<std::vector<std::uint32_t>>& lists = index.lists_;
    lists.assign(centroids.size(), {});
    for (std::size_t round = 0; round <= config.lloyd_iterations; ++round) {
      for (auto& list : lists) list.clear();
      for (std::uint32_t i = 0; i < n; ++i)
        lists[nearest_centroid(index.codes_[i], centroids)].push_back(i);
      if (round == config.lloyd_iterations) break;  // final assignment stands
      for (std::size_t c = 0; c < centroids.size(); ++c)
        if (!lists[c].empty()) centroids[c] = mean_code(index.codes_, lists[c]);
    }
  }

  index.stats_.vectors = n;
  index.stats_.clusters = index.centroids_.size();
  std::size_t bytes = (index.codes_.size() + index.centroids_.size()) *
                      sizeof(QuantizedVector);
  for (const auto& list : index.lists_)
    bytes += list.size() * sizeof(std::uint32_t);
  index.stats_.memory_bytes = bytes;
  index.stats_.build_seconds = timer.elapsed_seconds();
  return index;
}

std::shared_ptr<const FunctionIndex> FunctionIndex::build_shared(
    const std::vector<StaticFeatureVector>& features,
    const IndexConfig& config) {
  return std::make_shared<const FunctionIndex>(build(features, config));
}

std::vector<std::uint32_t> FunctionIndex::top_k(const QuantizedVector& query,
                                                std::size_t k) const {
  const std::size_t n = codes_.size();
  if (k == 0 || n == 0) return {};

  // Rank clusters by centroid distance; ties by cluster id so probe order
  // is total and deterministic.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  order.reserve(centroids_.size());
  for (std::uint32_t c = 0; c < centroids_.size(); ++c)
    order.emplace_back(quantized_distance_sq(query, centroids_[c]), c);
  std::sort(order.begin(), order.end());

  const std::size_t budget =
      std::max(k * std::max<std::size_t>(config_.probe_budget_factor, 1), k);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scanned;  // (dist, idx)
  scanned.reserve(std::min(n, budget + budget / 2));
  std::size_t probed = 0;
  for (const auto& [unused_dist, c] : order) {
    if (probed >= config_.min_probe_clusters && scanned.size() >= budget) break;
    for (const std::uint32_t i : lists_[c])
      scanned.emplace_back(quantized_distance_sq(query, codes_[i]), i);
    ++probed;
  }

  if (scanned.size() > k) {
    // Total order (dist, idx): the selected set is unique, so nth_element
    // is deterministic even though it leaves the tail unordered.
    std::nth_element(scanned.begin(), scanned.begin() + k, scanned.end());
    scanned.resize(k);
  }
  std::vector<std::uint32_t> out;
  out.reserve(scanned.size());
  for (const auto& [unused_dist, i] : scanned) out.push_back(i);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace patchecko::retrieval
