#include "vm/machine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "isa/runtime_scalar.h"
#include "obs/metrics.h"

namespace patchecko {

std::array<double, DynamicFeatures::count> DynamicFeatures::to_array() const {
  return {
      static_cast<double>(binary_fun_calls),
      min_stack_depth,
      max_stack_depth,
      avg_stack_depth,
      std_stack_depth,
      static_cast<double>(instructions),
      static_cast<double>(unique_instructions),
      static_cast<double>(call_instructions),
      static_cast<double>(arith_instructions),
      static_cast<double>(branch_instructions),
      static_cast<double>(load_instructions),
      static_cast<double>(store_instructions),
      static_cast<double>(max_branch_frequency),
      static_cast<double>(max_arith_frequency),
      static_cast<double>(mem_heap),
      static_cast<double>(mem_stack),
      static_cast<double>(mem_lib),
      static_cast<double>(mem_anon),
      static_cast<double>(mem_others),
      static_cast<double>(library_calls),
      static_cast<double>(syscalls),
  };
}

std::vector<double> DynamicFeatures::to_vector() const {
  const auto arr = to_array();
  return {arr.begin(), arr.end()};
}

std::string_view DynamicFeatures::name(std::size_t index) {
  static constexpr std::array<std::string_view, DynamicFeatures::count> names{
      "binary_defined_fun_call_num", "min_stack_depth", "max_stack_depth",
      "avg_stack_depth", "std_stack_depth", "instruction_num",
      "unique_instruction_num", "call_instruction_num",
      "arithmetic_instruction_num", "branch_instruction_num",
      "load_instruction_num", "store_instruction_num",
      "max_branch_frequency", "max_arith_frequency", "mem_heap_access",
      "mem_stack_access", "mem_lib_access", "mem_anon_access",
      "mem_others_access", "library_call_num", "syscall_num"};
  return index < names.size() ? names[index] : "unknown";
}

namespace {

struct Trap {
  ExecStatus status;
};

enum class RegionKind : std::uint8_t { lib, anon, heap, stack };

struct MemObject {
  std::int64_t base = 0;
  std::int64_t size = 0;
  bool writable = true;
  RegionKind kind = RegionKind::anon;
  std::vector<std::uint8_t> bytes;
};

constexpr std::int64_t lib_base = 0x10000000;
constexpr std::int64_t heap_base = 0x50000000;
constexpr std::int64_t anon_base = 0x60000000;
constexpr std::int64_t stack_base = 0x70000000;

class Execution {
 public:
  Execution(const LibraryBinary& library, const MachineConfig& config,
            const CallEnv& env)
      : library_(library), config_(config) {
    build_memory(env);
  }

  RunResult run(std::size_t function_index, const CallEnv& env) {
    RunResult result;
    try {
      setup_entry(function_index, env);
      result.ret = execute();
      result.status = ExecStatus::ok;
    } catch (const Trap& trap) {
      result.status = trap.status;
    }
    result.steps = steps_;
    finalize_features();
    result.features = features_;
    // Return mutated environment buffers (index-aligned with env.buffers).
    for (std::size_t i = 0; i < env_buffer_objects_.size(); ++i)
      result.buffers_after.push_back(
          objects_[env_buffer_objects_[i]].bytes);
    return result;
  }

 private:
  // --- memory ---------------------------------------------------------------

  void add_object(MemObject object) {
    objects_.push_back(std::move(object));
  }

  void build_memory(const CallEnv& env) {
    // String pool: one read-only object per string, NUL included.
    std::int64_t cursor = lib_base;
    string_bases_.reserve(library_.strings.size());
    for (const std::string& s : library_.strings) {
      MemObject object;
      object.base = cursor;
      object.size = static_cast<std::int64_t>(s.size()) + 1;
      object.writable = false;
      object.kind = RegionKind::lib;
      object.bytes.assign(s.begin(), s.end());
      object.bytes.push_back(0);
      string_bases_.push_back(cursor);
      cursor += object.size + 63;
      cursor &= ~std::int64_t{63};
      add_object(std::move(object));
    }
    // Environment buffers: anonymous mappings with guard gaps.
    cursor = anon_base;
    for (const auto& buffer : env.buffers) {
      MemObject object;
      object.base = cursor;
      object.size = static_cast<std::int64_t>(buffer.size());
      object.kind = RegionKind::anon;
      object.bytes = buffer;
      env_buffer_objects_.push_back(objects_.size());
      buffer_bases_.push_back(cursor);
      cursor += object.size + 4095;
      cursor &= ~std::int64_t{4095};
      if (object.size == 0) cursor += 4096;
      add_object(std::move(object));
    }
    // Stack.
    MemObject stack;
    stack.base = stack_base;
    stack.size = config_.stack_size;
    stack.kind = RegionKind::stack;
    stack.bytes.assign(static_cast<std::size_t>(config_.stack_size), 0);
    add_object(std::move(stack));

    heap_cursor_ = heap_base;
  }

  MemObject& object_at(std::int64_t addr) {
    for (MemObject& object : objects_) {
      if (addr >= object.base && addr < object.base + object.size)
        return object;
    }
    throw Trap{ExecStatus::trap_oob};
  }

  void count_access(RegionKind kind, std::uint64_t n = 1) {
    if (!config_.collect_features) return;
    switch (kind) {
      case RegionKind::heap: features_.mem_heap += n; break;
      case RegionKind::stack: features_.mem_stack += n; break;
      case RegionKind::lib: features_.mem_lib += n; break;
      case RegionKind::anon: features_.mem_anon += n; break;
    }
  }

  std::uint8_t read_byte(std::int64_t addr, bool count = true) {
    MemObject& object = object_at(addr);
    if (count) count_access(object.kind);
    return object.bytes[static_cast<std::size_t>(addr - object.base)];
  }

  void write_byte(std::int64_t addr, std::uint8_t byte, bool count = true) {
    MemObject& object = object_at(addr);
    if (!object.writable) throw Trap{ExecStatus::trap_oob};
    if (count) count_access(object.kind);
    object.bytes[static_cast<std::size_t>(addr - object.base)] = byte;
  }

  std::int64_t read_word(std::int64_t addr) {
    MemObject& object = object_at(addr);
    if (addr + 8 > object.base + object.size)
      throw Trap{ExecStatus::trap_oob};
    count_access(object.kind);
    std::uint64_t word = 0;
    const auto off = static_cast<std::size_t>(addr - object.base);
    for (int b = 0; b < 8; ++b)
      word |= static_cast<std::uint64_t>(object.bytes[off + b]) << (8 * b);
    return static_cast<std::int64_t>(word);
  }

  void write_word(std::int64_t addr, std::int64_t value) {
    MemObject& object = object_at(addr);
    if (!object.writable) throw Trap{ExecStatus::trap_oob};
    if (addr + 8 > object.base + object.size)
      throw Trap{ExecStatus::trap_oob};
    count_access(object.kind);
    const auto off = static_cast<std::size_t>(addr - object.base);
    for (int b = 0; b < 8; ++b)
      object.bytes[off + b] = static_cast<std::uint8_t>(
          (static_cast<std::uint64_t>(value) >> (8 * b)) & 0xff);
  }

  // --- execution state --------------------------------------------------------

  struct Frame {
    std::vector<std::int64_t> regs;
    std::size_t fn = 0;
    std::int64_t pc = 0;
    std::int64_t saved_sp = 0;
    std::int64_t saved_fp = 0;
    std::int64_t ret_pc = 0;
  };

  void setup_entry(std::size_t function_index, const CallEnv& env) {
    if (function_index >= library_.functions.size())
      throw Trap{ExecStatus::trap_type};
    sp_ = stack_base + config_.stack_size;
    fp_ = sp_;
    Frame frame;
    frame.fn = function_index;
    frame.pc = 0;
    frame.regs.assign(
        static_cast<std::size_t>(register_count(library_.arch)), 0);
    for (std::size_t i = 0; i < env.args.size() && i < 4; ++i)
      frame.regs[i] = arg_value(env.args[i]);
    frames_.push_back(std::move(frame));
  }

  std::int64_t arg_value(const Value& value) {
    switch (value.type) {
      case ValueType::i64:
        return value.i;
      case ValueType::f64:
        return std::bit_cast<std::int64_t>(value.f);
      case ValueType::ptr: {
        if (value.buffer <= -2) {
          const int sid = -2 - value.buffer;
          if (sid < 0 ||
              static_cast<std::size_t>(sid) >= string_bases_.size())
            throw Trap{ExecStatus::trap_type};
          return string_bases_[static_cast<std::size_t>(sid)] + value.offset;
        }
        if (value.buffer < 0 ||
            static_cast<std::size_t>(value.buffer) >= buffer_bases_.size())
          throw Trap{ExecStatus::trap_type};
        return buffer_bases_[static_cast<std::size_t>(value.buffer)] +
               value.offset;
      }
    }
    throw Trap{ExecStatus::trap_type};
  }

  std::int64_t read_reg(const Frame& frame, std::uint8_t index) {
    if (index == reg::sp) return sp_;
    if (index == reg::fp) return fp_;
    if (index >= frame.regs.size()) throw Trap{ExecStatus::trap_type};
    return frame.regs[index];
  }

  void write_reg(Frame& frame, std::uint8_t index, std::int64_t value) {
    if (index >= frame.regs.size()) throw Trap{ExecStatus::trap_type};
    frame.regs[index] = value;
  }

  // --- feature bookkeeping ----------------------------------------------------

  void observe(const Frame& frame, const Instruction& inst) {
    ++steps_;
    if (steps_ > config_.step_limit) throw Trap{ExecStatus::trap_step_limit};
    if (!config_.collect_features) return;

    DynamicFeatures& f = features_;
    ++f.instructions;

    // Unique sites.
    auto& visited = visited_[frame.fn];
    if (visited.empty())
      visited.assign(library_.functions[frame.fn].code.size(), 0);
    const auto pc = static_cast<std::size_t>(frame.pc);
    if (visited[pc] == 0) {
      visited[pc] = 1;
      ++f.unique_instructions;
    }

    // Stack depth sample: the paper's traces bottom out at 2 (debugger +
    // target frame), which our single entry frame reproduces as frames+1.
    const double depth = static_cast<double>(frames_.size()) + 1.0;
    depth_min_ = depth_count_ == 0 ? depth : std::min(depth_min_, depth);
    depth_max_ = std::max(depth_max_, depth);
    depth_sum_ += depth;
    depth_sq_sum_ += depth * depth;
    ++depth_count_;

    const Opcode op = inst.op;
    if (is_arith(op)) {
      ++f.arith_instructions;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(frame.fn) << 32) |
          static_cast<std::uint64_t>(frame.pc);
      const std::uint64_t hits = ++arith_counts_[key];
      f.max_arith_frequency = std::max(f.max_arith_frequency, hits);
    }
    if (is_branch(op)) {
      ++f.branch_instructions;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(frame.fn) << 32) |
          static_cast<std::uint64_t>(frame.pc);
      const std::uint64_t hits = ++branch_counts_[key];
      f.max_branch_frequency = std::max(f.max_branch_frequency, hits);
    }
    if (is_load(op)) ++f.load_instructions;
    if (is_store(op)) ++f.store_instructions;
    if (is_call(op) || op == Opcode::libcall || op == Opcode::syscall)
      ++f.call_instructions;
    if (is_call(op)) ++f.binary_fun_calls;
    if (op == Opcode::libcall) ++f.library_calls;
    if (op == Opcode::syscall) ++f.syscalls;
  }

  void finalize_features() {
    if (depth_count_ == 0) return;
    features_.min_stack_depth = depth_min_;
    features_.max_stack_depth = depth_max_;
    const double mean = depth_sum_ / static_cast<double>(depth_count_);
    features_.avg_stack_depth = mean;
    const double var =
        depth_sq_sum_ / static_cast<double>(depth_count_) - mean * mean;
    features_.std_stack_depth = var > 0.0 ? std::sqrt(var) : 0.0;
  }

  // --- runtime library ----------------------------------------------------------

  std::int64_t strlen_at(std::int64_t addr) {
    MemObject& object = object_at(addr);
    std::int64_t n = 0;
    auto off = static_cast<std::size_t>(addr - object.base);
    while (off < object.bytes.size() && object.bytes[off] != 0) {
      ++n;
      ++off;
    }
    count_access(object.kind, static_cast<std::uint64_t>(n) + 1);
    return n;
  }

  void mem_copy(std::int64_t dst, std::int64_t src, std::int64_t n) {
    if (n < 0) throw Trap{ExecStatus::trap_oob};
    std::vector<std::uint8_t> staged(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
      staged[static_cast<std::size_t>(i)] = read_byte(src + i);
    for (std::int64_t i = 0; i < n; ++i)
      write_byte(dst + i, staged[static_cast<std::size_t>(i)]);
  }

  std::int64_t run_libcall(Frame& frame, LibFn fn) {
    auto arg = [&](std::size_t i) {
      return frame.regs.size() > i ? frame.regs[i] : 0;
    };
    auto farg = [&](std::size_t i) { return std::bit_cast<double>(arg(i)); };
    auto fret = [](double v) { return std::bit_cast<std::int64_t>(v); };
    switch (fn) {
      case LibFn::memmove:
      case LibFn::memcpy:
        mem_copy(arg(0), arg(1), arg(2));
        return arg(0);
      case LibFn::memset: {
        const std::int64_t n = arg(2);
        if (n < 0) throw Trap{ExecStatus::trap_oob};
        MemObject& object = object_at(arg(0));
        if (!object.writable) throw Trap{ExecStatus::trap_oob};
        if (arg(0) + n > object.base + object.size)
          throw Trap{ExecStatus::trap_oob};
        count_access(object.kind, static_cast<std::uint64_t>(n));
        std::fill_n(
            object.bytes.begin() +
                static_cast<std::ptrdiff_t>(arg(0) - object.base),
            n, static_cast<std::uint8_t>(arg(1) & 0xff));
        return arg(0);
      }
      case LibFn::strlen:
        return strlen_at(arg(0));
      case LibFn::strcmp: {
        const std::int64_t la = strlen_at(arg(0));
        const std::int64_t lb = strlen_at(arg(1));
        const std::int64_t n = rt::imin(la, lb);
        for (std::int64_t i = 0; i < n; ++i) {
          const int ca = read_byte(arg(0) + i);
          const int cb = read_byte(arg(1) + i);
          if (ca != cb) return ca < cb ? -1 : 1;
        }
        if (la == lb) return 0;
        return la < lb ? -1 : 1;
      }
      case LibFn::strcpy: {
        const std::int64_t n = strlen_at(arg(1));
        mem_copy(arg(0), arg(1), n + 1);
        return arg(0);
      }
      case LibFn::malloc: {
        const std::int64_t n = rt::clamp64(arg(0), 0, 1 << 16);
        MemObject object;
        object.base = heap_cursor_;
        object.size = n;
        object.kind = RegionKind::heap;
        object.bytes.assign(static_cast<std::size_t>(n), 0);
        heap_cursor_ += n + 63;
        heap_cursor_ &= ~std::int64_t{63};
        if (n == 0) heap_cursor_ += 64;
        const std::int64_t base = object.base;
        add_object(std::move(object));
        return base;
      }
      case LibFn::free:
        return 0;
      case LibFn::abs64: return rt::abs64(arg(0));
      case LibFn::imin: return rt::imin(arg(0), arg(1));
      case LibFn::imax: return rt::imax(arg(0), arg(1));
      case LibFn::clamp: return rt::clamp64(arg(0), arg(1), arg(2));
      case LibFn::fsqrt: return fret(rt::fsqrt(farg(0)));
      case LibFn::fpow: return fret(rt::fpow(farg(0), farg(1)));
      case LibFn::ffloor: return fret(rt::ffloor(farg(0)));
      case LibFn::crc32: {
        std::uint32_t crc = 0xffffffffu;
        const std::int64_t n = arg(1);
        for (std::int64_t i = 0; i < n; ++i)
          crc = rt::crc32_step(crc, read_byte(arg(0) + i));
        return static_cast<std::int64_t>(crc ^ 0xffffffffu);
      }
      case LibFn::byte_swap:
        return static_cast<std::int64_t>(
            rt::byte_swap(static_cast<std::uint64_t>(arg(0))));
      case LibFn::checked_add:
        return rt::checked_add(arg(0), arg(1));
      case LibFn::count:
        break;
    }
    throw Trap{ExecStatus::trap_type};
  }

  std::int64_t run_syscall(Sys sys) {
    switch (sys) {
      case Sys::sys_write: return 0;
      case Sys::sys_read: return 0;
      case Sys::sys_getpid: return 4242;
      case Sys::sys_time: return 0;  // fixed clock: determinism first
      case Sys::sys_mmap: return 0;
      case Sys::sys_log: return 0;
      case Sys::count: break;
    }
    throw Trap{ExecStatus::trap_type};
  }

  // --- main loop --------------------------------------------------------------

  std::int64_t execute() {
    while (true) {
      Frame& frame = frames_.back();
      const auto& code = library_.functions[frame.fn].code;
      if (frame.pc < 0 ||
          frame.pc >= static_cast<std::int64_t>(code.size()))
        throw Trap{ExecStatus::trap_type};  // fell past the function end
      const Instruction inst = code[static_cast<std::size_t>(frame.pc)];
      observe(frame, inst);

      std::int64_t next_pc = frame.pc + 1;
      switch (inst.op) {
        case Opcode::nop:
          break;
        case Opcode::mov:
          write_reg(frame, inst.dst, read_reg(frame, inst.src1));
          break;
        case Opcode::ldi:
          write_reg(frame, inst.dst, inst.imm);
          break;
        case Opcode::ldstr: {
          const auto sid = static_cast<std::size_t>(inst.imm);
          if (sid >= string_bases_.size()) throw Trap{ExecStatus::trap_type};
          write_reg(frame, inst.dst, string_bases_[sid]);
          break;
        }
        case Opcode::load:
          write_reg(frame, inst.dst,
                    read_word(read_reg(frame, inst.src1) + inst.imm));
          break;
        case Opcode::loadb:
          write_reg(frame, inst.dst,
                    read_byte(read_reg(frame, inst.src1) + inst.imm));
          break;
        case Opcode::store:
          write_word(read_reg(frame, inst.src1) + inst.imm,
                     read_reg(frame, inst.src2));
          break;
        case Opcode::storeb:
          write_byte(read_reg(frame, inst.src1) + inst.imm,
                     static_cast<std::uint8_t>(
                         read_reg(frame, inst.src2) & 0xff));
          break;
        case Opcode::push:
          sp_ -= 8;
          write_word(sp_, read_reg(frame, inst.src1));
          break;
        case Opcode::pop:
          write_reg(frame, inst.dst, read_word(sp_));
          sp_ += 8;
          break;
        case Opcode::add:
          write_reg(frame, inst.dst,
                    rt::wrap_add(read_reg(frame, inst.src1),
                                 read_reg(frame, inst.src2)));
          break;
        case Opcode::sub:
          write_reg(frame, inst.dst,
                    rt::wrap_sub(read_reg(frame, inst.src1),
                                 read_reg(frame, inst.src2)));
          break;
        case Opcode::mul:
          write_reg(frame, inst.dst,
                    rt::wrap_mul(read_reg(frame, inst.src1),
                                 read_reg(frame, inst.src2)));
          break;
        case Opcode::divi: {
          const std::int64_t a = read_reg(frame, inst.src1);
          const std::int64_t b = read_reg(frame, inst.src2);
          if (b == 0) throw Trap{ExecStatus::trap_div_zero};
          if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
            write_reg(frame, inst.dst, a);
          else
            write_reg(frame, inst.dst, a / b);
          break;
        }
        case Opcode::modi: {
          const std::int64_t a = read_reg(frame, inst.src1);
          const std::int64_t b = read_reg(frame, inst.src2);
          if (b == 0) throw Trap{ExecStatus::trap_div_zero};
          if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
            write_reg(frame, inst.dst, 0);
          else
            write_reg(frame, inst.dst, a % b);
          break;
        }
        case Opcode::neg:
          write_reg(frame, inst.dst,
                    rt::wrap_sub(0, read_reg(frame, inst.src1)));
          break;
        case Opcode::andi:
          write_reg(frame, inst.dst, read_reg(frame, inst.src1) &
                                         read_reg(frame, inst.src2));
          break;
        case Opcode::ori:
          write_reg(frame, inst.dst, read_reg(frame, inst.src1) |
                                         read_reg(frame, inst.src2));
          break;
        case Opcode::xori:
          write_reg(frame, inst.dst, read_reg(frame, inst.src1) ^
                                         read_reg(frame, inst.src2));
          break;
        case Opcode::shl:
          write_reg(frame, inst.dst,
                    rt::wrap_shl(read_reg(frame, inst.src1),
                                 read_reg(frame, inst.src2)));
          break;
        case Opcode::shr:
          write_reg(frame, inst.dst,
                    rt::wrap_shr(read_reg(frame, inst.src1),
                                 read_reg(frame, inst.src2)));
          break;
        case Opcode::cmp: {
          const std::int64_t a = read_reg(frame, inst.src1);
          const std::int64_t b = read_reg(frame, inst.src2);
          std::int64_t c;
          if (inst.imm != 0) {  // fp-compare flag (see lower.cpp)
            const double fa = std::bit_cast<double>(a);
            const double fb = std::bit_cast<double>(b);
            c = fa < fb ? -1 : (fa > fb ? 1 : 0);
          } else {
            c = a < b ? -1 : (a > b ? 1 : 0);
          }
          write_reg(frame, inst.dst, c);
          break;
        }
        case Opcode::fadd:
        case Opcode::fsub:
        case Opcode::fmul:
        case Opcode::fdiv: {
          const double a =
              std::bit_cast<double>(read_reg(frame, inst.src1));
          const double b =
              std::bit_cast<double>(read_reg(frame, inst.src2));
          double r = 0.0;
          switch (inst.op) {
            case Opcode::fadd: r = a + b; break;
            case Opcode::fsub: r = a - b; break;
            case Opcode::fmul: r = a * b; break;
            case Opcode::fdiv: r = b == 0.0 ? 0.0 : a / b; break;
            default: break;
          }
          write_reg(frame, inst.dst, std::bit_cast<std::int64_t>(r));
          break;
        }
        case Opcode::fneg:
          write_reg(frame, inst.dst,
                    std::bit_cast<std::int64_t>(-std::bit_cast<double>(
                        read_reg(frame, inst.src1))));
          break;
        case Opcode::cvtif:
          write_reg(frame, inst.dst,
                    std::bit_cast<std::int64_t>(static_cast<double>(
                        read_reg(frame, inst.src1))));
          break;
        case Opcode::cvtfi: {
          const double v =
              std::bit_cast<double>(read_reg(frame, inst.src1));
          std::int64_t r = 0;
          if (v >= -9.0e18 && v <= 9.0e18) r = static_cast<std::int64_t>(v);
          write_reg(frame, inst.dst, r);
          break;
        }
        case Opcode::jmp:
          next_pc = inst.target;
          break;
        case Opcode::beq: case Opcode::bne: case Opcode::blt:
        case Opcode::bge: case Opcode::bgt: case Opcode::ble: {
          const std::int64_t c = read_reg(frame, inst.src1);
          bool taken = false;
          switch (inst.op) {
            case Opcode::beq: taken = c == 0; break;
            case Opcode::bne: taken = c != 0; break;
            case Opcode::blt: taken = c < 0; break;
            case Opcode::bge: taken = c >= 0; break;
            case Opcode::bgt: taken = c > 0; break;
            case Opcode::ble: taken = c <= 0; break;
            default: break;
          }
          if (taken) next_pc = inst.target;
          break;
        }
        case Opcode::jmpi: {
          const auto& fn = library_.functions[frame.fn];
          const auto table_id = static_cast<std::size_t>(inst.imm);
          if (table_id >= fn.jump_tables.size())
            throw Trap{ExecStatus::trap_type};
          const auto& table = fn.jump_tables[table_id];
          const std::int64_t idx = read_reg(frame, inst.src1);
          if (idx < 0 || idx >= static_cast<std::int64_t>(table.size()))
            throw Trap{ExecStatus::trap_type};
          next_pc = table[static_cast<std::size_t>(idx)];
          break;
        }
        case Opcode::frame:
          sp_ -= inst.imm;
          fp_ = sp_;
          break;
        case Opcode::call:
        case Opcode::callr: {
          const std::int64_t callee =
              inst.op == Opcode::call ? inst.imm
                                      : read_reg(frame, inst.src1);
          if (callee < 0 ||
              callee >= static_cast<std::int64_t>(
                            library_.functions.size()))
            throw Trap{ExecStatus::trap_type};
          if (static_cast<int>(frames_.size()) > config_.max_call_depth)
            throw Trap{ExecStatus::trap_step_limit};
          Frame callee_frame;
          callee_frame.fn = static_cast<std::size_t>(callee);
          callee_frame.pc = 0;
          callee_frame.saved_sp = sp_;
          callee_frame.saved_fp = fp_;
          callee_frame.ret_pc = frame.pc + 1;
          callee_frame.regs.assign(
              static_cast<std::size_t>(register_count(library_.arch)), 0);
          for (std::size_t i = 0; i < 4 && i < frame.regs.size(); ++i)
            callee_frame.regs[i] = frame.regs[i];
          frames_.push_back(std::move(callee_frame));
          continue;  // frame reference invalidated; restart the loop
        }
        case Opcode::libcall:
          write_reg(frame, 0,
                    run_libcall(frame, static_cast<LibFn>(inst.imm)));
          break;
        case Opcode::syscall:
          write_reg(frame, 0, run_syscall(static_cast<Sys>(inst.imm)));
          break;
        case Opcode::ret: {
          const std::int64_t value = frame.regs.empty() ? 0 : frame.regs[0];
          if (frames_.size() == 1) return value;
          sp_ = frame.saved_sp;
          fp_ = frame.saved_fp;
          const std::int64_t resume = frame.ret_pc;
          frames_.pop_back();
          Frame& caller = frames_.back();
          caller.regs[0] = value;
          caller.pc = resume;
          continue;
        }
      }
      frame.pc = next_pc;
    }
  }

  const LibraryBinary& library_;
  const MachineConfig& config_;

  std::vector<MemObject> objects_;
  std::vector<std::size_t> env_buffer_objects_;
  std::vector<std::int64_t> string_bases_;
  std::vector<std::int64_t> buffer_bases_;
  std::int64_t heap_cursor_ = heap_base;

  std::vector<Frame> frames_;
  std::int64_t sp_ = 0;
  std::int64_t fp_ = 0;

  std::uint64_t steps_ = 0;
  DynamicFeatures features_;
  std::unordered_map<std::size_t, std::vector<std::uint8_t>> visited_;
  std::unordered_map<std::uint64_t, std::uint64_t> branch_counts_;
  std::unordered_map<std::uint64_t, std::uint64_t> arith_counts_;
  double depth_min_ = 0.0, depth_max_ = 0.0, depth_sum_ = 0.0,
         depth_sq_sum_ = 0.0;
  std::uint64_t depth_count_ = 0;
};

}  // namespace

Machine::Machine(const LibraryBinary& library, MachineConfig config)
    : library_(&library), config_(config) {}

RunResult Machine::run(std::size_t function_index, const CallEnv& env) const {
  Execution execution(*library_, config_, env);
  RunResult result = execution.run(function_index, env);
  // Published per run, not per instruction: one relaxed add amortized over
  // thousands of interpreted steps keeps the interpreter loop untouched.
  static obs::Counter& runs = obs::Registry::global().counter("vm.runs");
  static obs::Counter& instructions =
      obs::Registry::global().counter("vm.instructions");
  static obs::Counter& traps = obs::Registry::global().counter("vm.traps");
  runs.add();
  instructions.add(result.steps);
  if (result.status != ExecStatus::ok) traps.add();
  return result;
}

}  // namespace patchecko
