// The dynamic-analysis execution engine.
//
// The paper instruments candidate functions on-device through GDB/gdbserver
// (Android) or debugserver (iOS) after exporting them as function-level
// executables via DLL injection + LIEF. Our Machine provides the same
// capability for the synthetic ISA: execute *one* function of a library,
// without loading anything else, on a caller-chosen execution environment,
// while tracing every instruction to produce the Table II dynamic features.
//
// Memory is a table of bounds-checked objects:
//   * lib   — the library string pool (read-only)
//   * anon  — the environment's byte buffers (the paper counts fuzzer-
//             provided inputs as anonymous mappings)
//   * heap  — malloc'd chunks
//   * stack — one contiguous region holding frames, spills and push/pop
// Any access outside an object traps, which matches the reference
// interpreter's per-buffer bounds exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "binary/binary.h"
#include "source/interp.h"  // CallEnv, ExecStatus
#include "vm/dynamic_features.h"

namespace patchecko {

struct MachineConfig {
  std::uint64_t step_limit = 1u << 20;
  std::int64_t stack_size = 1 << 16;
  int max_call_depth = 64;
  /// When false, skips the per-instruction feature bookkeeping (used by the
  /// throughput benchmarks to isolate interpreter cost).
  bool collect_features = true;
};

struct RunResult {
  ExecStatus status = ExecStatus::ok;
  std::int64_t ret = 0;          ///< r0 on return (valid when status == ok)
  std::uint64_t steps = 0;
  DynamicFeatures features;
  /// Environment buffers after execution (writes persist), index-aligned
  /// with CallEnv::buffers. Used by the semantic-equivalence tests.
  std::vector<std::vector<std::uint8_t>> buffers_after;
};

/// Executes functions of one library. Construction precomputes the string
/// pool layout; each run() builds a fresh memory image from the environment.
class Machine {
 public:
  explicit Machine(const LibraryBinary& library, MachineConfig config = {});

  /// Runs library.functions[function_index] on `env`. `env` is not modified;
  /// buffer mutations are returned in RunResult::buffers_after.
  RunResult run(std::size_t function_index, const CallEnv& env) const;

  const LibraryBinary& library() const { return *library_; }

 private:
  const LibraryBinary* library_;
  MachineConfig config_;
};

}  // namespace patchecko
