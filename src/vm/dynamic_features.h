// The 21 dynamic features of Table II, collected per function execution.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace patchecko {

struct DynamicFeatures {
  // F1  number of binary-defined function calls during execution
  std::uint64_t binary_fun_calls = 0;
  // F2..F5 stack depth statistics, sampled at every executed instruction
  double min_stack_depth = 0.0;
  double max_stack_depth = 0.0;
  double avg_stack_depth = 0.0;
  double std_stack_depth = 0.0;
  // F6/F7 executed instructions: total / unique sites
  std::uint64_t instructions = 0;
  std::uint64_t unique_instructions = 0;
  // F8..F12 executed instruction classes
  std::uint64_t call_instructions = 0;
  std::uint64_t arith_instructions = 0;
  std::uint64_t branch_instructions = 0;
  std::uint64_t load_instructions = 0;
  std::uint64_t store_instructions = 0;
  // F13/F14 hottest single branch / arithmetic site
  std::uint64_t max_branch_frequency = 0;
  std::uint64_t max_arith_frequency = 0;
  // F15..F19 memory accesses by region
  std::uint64_t mem_heap = 0;
  std::uint64_t mem_stack = 0;
  std::uint64_t mem_lib = 0;
  std::uint64_t mem_anon = 0;
  std::uint64_t mem_others = 0;
  // F20/F21 runtime interface
  std::uint64_t library_calls = 0;
  std::uint64_t syscalls = 0;

  static constexpr std::size_t count = 21;

  /// Features in Table II order, as doubles (the similarity engine's input).
  std::array<double, count> to_array() const;
  std::vector<double> to_vector() const;

  /// Short feature names ("F1".."F21" descriptions) in the same order.
  static std::string_view name(std::size_t index);
};

}  // namespace patchecko
