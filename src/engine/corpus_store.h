// Hot-reloadable corpus state for long-lived scan processes.
//
// A one-shot `batch-scan` rebuilds the CVE database on every invocation;
// the scan service keeps it resident instead. The database (plus the
// corpus it was derived from) is held as one immutable CorpusSnapshot
// behind a shared_ptr: every admitted scan request captures the snapshot
// it will run against, so a reload — SIGHUP or a `reload` request — can
// build a replacement off to the side and swap the store's current pointer
// without invalidating anything an in-flight job is reading. Old snapshots
// die with their last in-flight reference; zero jobs are dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "core/cve_database.h"
#include "firmware/firmware.h"

namespace patchecko {

/// One immutable generation of the resident corpus: the deterministic
/// evaluation corpus plus the CVE database built from it. Construction is
/// the expensive amortizable step the service exists to avoid repeating.
struct CorpusSnapshot {
  std::uint64_t version = 0;  ///< store generation, 1-based
  EvalConfig eval;
  DatabaseConfig database_config;
  EvalCorpus corpus;
  CveDatabase database;
  /// Quantized query codes for the retrieval prefilter, one pair per
  /// database entry. Immutable like the rest of the snapshot: a reload
  /// builds the replacement catalog before the swap, so in-flight scans
  /// keep reading the generation they captured.
  retrieval::QueryCatalog queries;

  CorpusSnapshot(std::uint64_t snapshot_version, const EvalConfig& eval_config,
                 const DatabaseConfig& db_config)
      : version(snapshot_version),
        eval(eval_config),
        database_config(db_config),
        corpus(eval_config),
        database(corpus, db_config),
        queries(build_query_catalog(database)) {}

  /// Adopts a corpus and database assembled elsewhere (the prebuilt-corpus
  /// store's warm path, src/corpus): same invariants as the compiling
  /// constructor, but the expensive CveDatabase build already happened.
  CorpusSnapshot(std::uint64_t snapshot_version, const EvalConfig& eval_config,
                 const DatabaseConfig& db_config, EvalCorpus&& prebuilt_corpus,
                 CveDatabase&& prebuilt_database)
      : version(snapshot_version),
        eval(eval_config),
        database_config(db_config),
        corpus(std::move(prebuilt_corpus)),
        database(std::move(prebuilt_database)),
        queries(build_query_catalog(database)) {}
};

/// Thread-safe holder of the current CorpusSnapshot. current() is cheap
/// (one mutex-guarded shared_ptr copy); reload() builds the new snapshot
/// outside the lock — readers keep serving the old generation while the
/// replacement compiles — and swaps it in atomically. Concurrent reloads
/// are serialized so generations observe strictly increasing versions.
class CorpusStore {
 public:
  /// Pluggable snapshot assembly. The default (an empty function) compiles
  /// the corpus and database from scratch; the prebuilt-corpus store
  /// (src/corpus) supplies a builder that loads serialized entries instead.
  /// pk_engine sees only this signature, so the store library can layer on
  /// top of the engine without a dependency cycle.
  using SnapshotBuilder = std::function<std::shared_ptr<const CorpusSnapshot>(
      std::uint64_t version, const EvalConfig& eval,
      const DatabaseConfig& database_config)>;

  explicit CorpusStore(const EvalConfig& eval,
                       const DatabaseConfig& database_config = {},
                       SnapshotBuilder builder = {});

  /// The latest generation; never null.
  std::shared_ptr<const CorpusSnapshot> current() const;

  /// Builds a new generation from `eval` (same DatabaseConfig as
  /// construction) and makes it current. Returns the new snapshot.
  std::shared_ptr<const CorpusSnapshot> reload(const EvalConfig& eval);

  std::uint64_t version() const { return current()->version; }

 private:
  std::shared_ptr<const CorpusSnapshot> build(std::uint64_t version,
                                              const EvalConfig& eval) const;

  DatabaseConfig database_config_;
  SnapshotBuilder builder_;           ///< empty = compile from scratch
  mutable std::mutex mutex_;          ///< guards current_
  std::mutex reload_mutex_;           ///< serializes concurrent reloads
  std::shared_ptr<const CorpusSnapshot> current_;
  std::uint64_t next_version_ = 1;
};

}  // namespace patchecko
