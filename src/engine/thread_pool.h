// Work-stealing thread pool shared by every parallel stage.
//
// The seed implementation spawned fresh std::threads for every parallel_for
// call; under the batch engine that means thousands of short-lived threads
// per scan. This pool is created once (ThreadPool::shared()), owns one
// worker and one deque per hardware thread, and serves both the engine's
// job scheduler and the data-parallel loops nested inside jobs. Owners pop
// their own deque LIFO (cache-warm), idle workers steal FIFO from the
// others, and blocked waiters help drain the pool instead of sleeping, so
// nested parallelism (a pool job running its own parallel_for) cannot
// deadlock even when every worker is busy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace patchecko {

class ThreadPool {
 public:
  /// `thread_count` 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task (round-robin across worker deques). Tasks must not
  /// throw; wrap them (TaskGroup does) if they can.
  void submit(std::function<void()> task);

  /// Steals and runs one pending task on the calling thread. Returns false
  /// when every deque is empty. This is what lets waiters "help": a thread
  /// blocked on a TaskGroup keeps executing pool work instead of holding a
  /// worker hostage.
  bool try_run_one();

  /// The process-wide pool, sized to the hardware. Constructed on first use.
  static ThreadPool& shared();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool pop_task(std::size_t preferred, std::function<void()>& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

/// A joinable batch of tasks on a pool. run() may be called from any thread
/// — including from inside a task of the same group, as long as that task
/// has not finished (the engine's scheduler submits dependents this way);
/// wait() blocks until every task finished, helping the pool while it
/// waits, and rethrows the exception of the *lowest submission index* that
/// failed — a deterministic choice regardless of which worker happened to
/// fault first on the clock.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::shared()) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> task);
  void wait();

 private:
  void finish_one();

  ThreadPool& pool_;
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::size_t> submitted_{0};
  std::mutex mutex_;
  std::condition_variable done_;
  std::exception_ptr error_;
  std::size_t error_index_ = static_cast<std::size_t>(-1);
};

}  // namespace patchecko
