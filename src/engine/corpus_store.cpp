#include "engine/corpus_store.h"

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace patchecko {

CorpusStore::CorpusStore(const EvalConfig& eval,
                         const DatabaseConfig& database_config,
                         SnapshotBuilder builder)
    : database_config_(database_config), builder_(std::move(builder)) {
  current_ = build(next_version_++, eval);
}

std::shared_ptr<const CorpusSnapshot> CorpusStore::build(
    std::uint64_t version, const EvalConfig& eval) const {
  if (builder_) return builder_(version, eval, database_config_);
  return std::make_shared<const CorpusSnapshot>(version, eval,
                                                database_config_);
}

std::shared_ptr<const CorpusSnapshot> CorpusStore::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::shared_ptr<const CorpusSnapshot> CorpusStore::reload(
    const EvalConfig& eval) {
  // One reload at a time; the build runs outside mutex_ so current() stays
  // responsive (and in-flight scans keep their captured generation).
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  std::uint64_t version;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    version = next_version_++;
  }
  const Stopwatch watch;
  auto snapshot = build(version, eval);
  obs::Registry::global().counter("corpus.reloads").add();
  if (obs::events_enabled())
    obs::EventLog::global().emit(
        obs::Severity::info, "corpus.reload",
        {obs::Field::u64("version", version),
         obs::Field::f64("build_s", watch.elapsed_seconds()),
         obs::Field::u64("cves", snapshot->database.entries().size())});
  std::lock_guard<std::mutex> lock(mutex_);
  current_ = snapshot;
  return snapshot;
}

}  // namespace patchecko
