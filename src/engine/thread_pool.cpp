#include "engine/thread_pool.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace patchecko {

namespace {

// Bound once; the registry guarantees handle stability (see obs/metrics.h).
// All four counters plus the depth gauge let tests check internal
// consistency: submitted == local_pops + steals == completed after a drain,
// and the queue-depth gauge returns to zero.
struct PoolMetrics {
  obs::Counter& submitted = obs::Registry::global().counter("pool.submitted");
  obs::Counter& local_pops =
      obs::Registry::global().counter("pool.local_pops");
  obs::Counter& steals = obs::Registry::global().counter("pool.steals");
  obs::Counter& completed = obs::Registry::global().counter("pool.completed");
  obs::Gauge& queue_depth = obs::Registry::global().gauge("pool.queue_depth");

  static PoolMetrics& get() {
    static PoolMetrics metrics;
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(unsigned thread_count) {
  if (thread_count == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    thread_count = hw == 0 ? 1 : hw;
  }
  queues_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  {
    // Lock/unlock pairs with the wait predicate so no worker can miss the
    // stop flag between checking it and going to sleep.
    std::lock_guard<std::mutex> barrier(sleep_mutex_);
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  PoolMetrics::get().submitted.add();
  PoolMetrics::get().queue_depth.add(1);
  {
    std::lock_guard<std::mutex> barrier(sleep_mutex_);
  }
  wake_.notify_one();
}

bool ThreadPool::pop_task(std::size_t preferred, std::function<void()>& out) {
  const std::size_t n = queues_.size();
  for (std::size_t offset = 0; offset < n; ++offset) {
    WorkerQueue& queue = *queues_[(preferred + offset) % n];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    if (offset == 0) {  // own queue: LIFO keeps the working set hot
      out = std::move(queue.tasks.back());
      queue.tasks.pop_back();
      PoolMetrics::get().local_pops.add();
    } else {  // steal the oldest task: FIFO spreads whole subtrees
      out = std::move(queue.tasks.front());
      queue.tasks.pop_front();
      PoolMetrics::get().steals.add();
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    PoolMetrics::get().queue_depth.add(-1);
    return true;
  }
  return false;
}

bool ThreadPool::try_run_one() {
  // External threads have no own deque; start the scan at a rotating slot so
  // concurrent helpers don't all hammer queue 0.
  std::function<void()> task;
  const std::size_t start =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  if (!pop_task(start, task)) return false;
  task();
  PoolMetrics::get().completed.add();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  while (true) {
    std::function<void()> task;
    if (pop_task(index, task)) {
      task();
      PoolMetrics::get().completed.add();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_.wait(lock, [this] {
      return stop_.load() || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load() && queued_.load(std::memory_order_acquire) == 0) return;
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destruction must not throw; an unconsumed task exception is dropped.
  }
}

void TaskGroup::run(std::function<void()> task) {
  const std::size_t index =
      submitted_.fetch_add(1, std::memory_order_relaxed);
  remaining_.fetch_add(1, std::memory_order_relaxed);
  pool_.submit([this, index, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (index < error_index_) {
        error_index_ = index;
        error_ = std::current_exception();
      }
    }
    finish_one();
  });
}

void TaskGroup::finish_one() {
  // The decrement must happen under mutex_: wait() ends by acquiring
  // mutex_, so it cannot return (and let the owner destroy this group)
  // until the completing task has fully left this critical section.
  // Decrementing outside the lock leaves a window where the group is
  // destroyed between this thread's decrement and its notify, and the
  // notify then touches a dead mutex.
  std::lock_guard<std::mutex> lock(mutex_);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1)
    done_.notify_all();
}

void TaskGroup::wait() {
  while (remaining_.load(std::memory_order_acquire) > 0) {
    if (pool_.try_run_one()) continue;
    // Nothing queued: our tasks are in flight on workers. Sleep briefly; the
    // timeout covers the race where the last task finishes between the
    // remaining_ check above and this wait.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    error_index_ = static_cast<std::size_t>(-1);
    std::rethrow_exception(error);
  }
}

}  // namespace patchecko
