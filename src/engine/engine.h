// Batch scan engine: one request, many (CVE x library) analyses.
//
// The paper evaluates one (CVE, firmware) pair at a time and leaves
// large-scale parallel deployment as future work (Section V-E). This façade
// turns a scan request — M CVEs against the N libraries of a firmware
// image — into a dependency-aware job graph
//
//     analyze(library)  -->  detect(cve)  -->  patch(cve)
//
// executed on the shared work-stealing pool (thread_pool.h), with every
// analyze/detect result served from the content-addressed cache (cache.h)
// when the inputs are unchanged. Scan results are deterministic: the same
// request produces the same ScanReport::canonical_text() at any job count
// and any cache temperature.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cve_database.h"
#include "core/pipeline.h"
#include "engine/cache.h"
#include "obs/health.h"

namespace patchecko {

struct EngineConfig {
  /// Maximum concurrently executing jobs; also the worker count of the
  /// data-parallel loops inside each job. 1 = fully sequential.
  unsigned jobs = 1;
  bool use_cache = true;
  /// Directory for persisted cache entries; empty = in-memory only.
  std::string cache_dir;
  PipelineConfig pipeline;

  /// Stall watchdog deadlines; both 0 (the default) = no watchdog at all.
  /// Past the soft deadline a job is flagged once (warning event + stderr);
  /// past the hard deadline its cooperative cancel flag is set and the scan
  /// records a `stalled` outcome for that CVE.
  obs::WatchdogConfig watchdog;

  /// Optional heartbeat publisher, owned by the caller. The engine drives
  /// it: begin(total) once the job graph is built, job_done() per finished
  /// job, finish() when run() returns (also on exception unwind).
  obs::Heartbeat* heartbeat = nullptr;

  /// Test hook (--stall-inject): sleep this long at the start of the detect
  /// job with this CVE label, so watchdog deadlines fire deterministically
  /// in CI without a genuinely pathological input.
  std::string stall_inject_label;
  double stall_inject_seconds = 0.0;

  /// Cooperative run-wide interrupt (SIGINT/SIGTERM handler or service
  /// shutdown), owned by the caller. Once it reads true the scheduler stops
  /// launching queued jobs and — when no watchdog owns the per-job cancel
  /// token — the flag itself is threaded into the pipeline stages as that
  /// token, so in-flight jobs abandon remaining work at their next
  /// cooperative check. The run then returns a partial report with
  /// `interrupted` set instead of dropping output on the floor.
  const std::atomic<bool>* interrupt = nullptr;
};

enum class JobKind : std::uint8_t { analyze, detect, patch };
std::string_view job_kind_name(JobKind kind);

/// Completion notification, delivered from worker threads (the callback
/// must be thread-safe; invocations are serialized by the engine).
struct JobEvent {
  JobKind kind = JobKind::analyze;
  std::string label;       ///< library name (analyze) or CVE id
  double seconds = 0.0;
  bool cache_hit = false;  ///< job fully served from cache
  std::size_t sequence = 0;     ///< completion order, 0-based
  std::size_t total_jobs = 0;   ///< graph size, for progress display
  double cpu_seconds = 0.0;     ///< thread CPU of the job body; 0 if unsupported
  std::uint64_t allocations = 0;  ///< heap allocations in the job body
  bool stalled = false;         ///< cancelled by the watchdog hard deadline
};

using ProgressFn = std::function<void(const JobEvent&)>;

struct ScanRequest {
  const SimilarityModel* model = nullptr;
  const FirmwareImage* firmware = nullptr;
  const CveDatabase* database = nullptr;
  /// CVE ids to scan; empty = every database entry.
  std::vector<std::string> cve_ids;
  /// Per-run heartbeat override. A long-lived service runs many requests
  /// through one engine concurrently, so the publisher must travel with the
  /// request, not the engine config; when set it takes precedence over
  /// EngineConfig::heartbeat.
  obs::Heartbeat* heartbeat = nullptr;
  /// Precomputed quantized query codes for the retrieval prefilter,
  /// typically the corpus snapshot's catalog. Optional: detect() quantizes
  /// per call when absent (or when an entry is missing from the catalog).
  const retrieval::QueryCatalog* query_codes = nullptr;
  /// Service request id (0 = one-shot run). Each job body runs inside an
  /// obs::RequestScope with this id, so spans, events, and the provenance
  /// meta line of a multiplexed daemon are attributable to the request.
  std::uint64_t request_id = 0;
};

struct CveScanResult {
  std::string cve_id;
  std::string library;
  bool library_missing = false;
  /// The watchdog hard deadline cancelled the detect or patch job; the
  /// outcomes below cover only the work finished before cancellation.
  bool stalled = false;
  /// A run-wide interrupt cancelled or skipped this entry's jobs; like
  /// `stalled`, the outcomes cover only the work finished before that.
  bool cancelled = false;
  DetectionOutcome from_vulnerable;
  DetectionOutcome from_patched;
  PatchReport report;
};

struct JobTiming {
  JobKind kind = JobKind::analyze;
  std::string label;
  double seconds = 0.0;
  bool cache_hit = false;
  double cpu_seconds = 0.0;       ///< thread CPU of the job body
  std::uint64_t allocations = 0;  ///< heap allocations in the job body
  bool stalled = false;
};

struct ScanReport {
  std::vector<CveScanResult> results;  ///< database order, not finish order
  std::vector<JobTiming> timings;      ///< completion order
  CacheStats cache;                    ///< this run only (delta, not lifetime)
  std::size_t analyzed_libraries = 0;
  double total_seconds = 0.0;
  /// The configured interrupt flag fired mid-run: queued jobs were dropped
  /// (`jobs_cancelled` of them) and the results above are partial.
  bool interrupted = false;
  std::size_t jobs_cancelled = 0;
  /// Copied from ScanRequest::request_id; rendered into the provenance
  /// meta line when nonzero (never into canonical_text(), which must stay
  /// byte-identical to one-shot runs).
  std::uint64_t request_id = 0;

  /// Deterministic rendering of every analysis result: excludes wall-clock
  /// times and cache statistics, so byte-equality across runs == result
  /// equality. This is the artifact the determinism and warm-cache
  /// acceptance checks compare.
  std::string canonical_text() const;

  /// Human-readable summary: verdict table plus timing and cache counters.
  std::string summary_text() const;

  /// Decision-provenance JSONL: one meta line, then one "decision" line per
  /// result in `results` order. Like canonical_text(), every line is
  /// deterministic (no wall-clock, no thread ids) — byte-identical across
  /// job counts and cache temperatures. The `--events` sink appends the
  /// wall-clock "event" lines after these.
  std::string provenance_jsonl() const;
};

/// Assembles the full decision chain of one scan result from the provenance
/// the pipeline recorded (detect-stage StageRecords survive the result
/// cache; the patch pool is recomputed each run).
obs::DecisionRecord decision_record(const CveScanResult& result);

class ScanEngine {
 public:
  explicit ScanEngine(EngineConfig config = {});

  /// Executes the request's job graph. Throws std::invalid_argument when a
  /// required request pointer is missing.
  ScanReport run(const ScanRequest& request, const ProgressFn& progress = {});

  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  const EngineConfig& config() const { return config_; }

 private:
  EngineConfig config_;
  ResultCache cache_;
};

}  // namespace patchecko
