#include "engine/cache.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/metrics.h"

namespace patchecko {

namespace {

/// Process-wide mirrors of the per-cache CacheStats: CacheStats stays the
/// per-run accounting the engine reports, while these feed the `--metrics`
/// export (and aggregate across every ResultCache instance in the process).
struct CacheMetrics {
  obs::Counter& feature_hits =
      obs::Registry::global().counter("cache.feature_hits");
  obs::Counter& feature_misses =
      obs::Registry::global().counter("cache.feature_misses");
  obs::Counter& outcome_hits =
      obs::Registry::global().counter("cache.outcome_hits");
  obs::Counter& outcome_misses =
      obs::Registry::global().counter("cache.outcome_misses");
  obs::Counter& disk_loads = obs::Registry::global().counter("cache.disk_loads");
  obs::Counter& stores = obs::Registry::global().counter("cache.stores");
  obs::Counter& evictions = obs::Registry::global().counter("cache.evictions");

  static CacheMetrics& get() {
    static CacheMetrics metrics;
    return metrics;
  }
};

std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64 finalizer: avalanches a lane before printing so that short
/// inputs still flip high bits.
std::uint64_t finalize(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- little-endian byte-stream helpers -------------------------------------
// Serialized artifacts are raw native-endian scalars; every platform this
// repo targets (x86, amd64, arm64 hosts) is little-endian, and cache files
// are host-local artifacts, not interchange formats.

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  append_bytes(out, &value, sizeof(value));
}

void append_i64(std::vector<std::uint8_t>& out, std::int64_t value) {
  append_bytes(out, &value, sizeof(value));
}

void append_double(std::vector<std::uint8_t>& out, double value) {
  append_bytes(out, &value, sizeof(value));
}

void append_string(std::vector<std::uint8_t>& out, const std::string& text) {
  append_u64(out, text.size());
  append_bytes(out, text.data(), text.size());
}

/// Cursor over a byte buffer; every read checks bounds and latches failure.
struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t pos = 0;
  bool ok = true;

  bool read(void* out, std::size_t size) {
    if (!ok || pos + size > bytes.size()) {
      ok = false;
      return false;
    }
    std::memcpy(out, bytes.data() + pos, size);
    pos += size;
    return true;
  }
  std::uint64_t read_u64() {
    std::uint64_t value = 0;
    read(&value, sizeof(value));
    return value;
  }
  std::int64_t read_i64() {
    std::int64_t value = 0;
    read(&value, sizeof(value));
    return value;
  }
  double read_double() {
    double value = 0.0;
    read(&value, sizeof(value));
    return value;
  }
  std::string read_string() {
    const std::uint64_t size = read_u64();
    if (!ok || pos + size > bytes.size()) {
      ok = false;
      return {};
    }
    std::string text(reinterpret_cast<const char*>(bytes.data() + pos),
                     static_cast<std::size_t>(size));
    pos += static_cast<std::size_t>(size);
    return text;
  }
};

constexpr std::uint8_t kFeatureMagic[4] = {'P', 'K', 'F', 'E'};
constexpr std::uint8_t kOutcomeMagic[4] = {'P', 'K', 'D', 'O'};
// v2: outcome entries carry the decision-provenance StageRecord. v3 adds
// the retrieval-prefilter fields (outcome + per-candidate + stage record).
// Old entries fail the version check and are simply recomputed.
constexpr std::uint64_t kFormatVersion = 3;

bool check_magic(Reader& reader, const std::uint8_t (&magic)[4]) {
  std::uint8_t found[4] = {};
  if (!reader.read(found, sizeof(found))) return false;
  return std::memcmp(found, magic, sizeof(found)) == 0 &&
         reader.read_u64() == kFormatVersion && reader.ok;
}

void absorb_profile(Digest& digest, const DynamicProfile& profile) {
  digest.absorb_u64(profile.per_env.size());
  for (const auto& features : profile.per_env) {
    digest.absorb_u64(features.has_value() ? 1 : 0);
    if (!features) continue;
    for (double value : features->to_array()) digest.absorb_double(value);
  }
  digest.absorb_u64(profile.effect_hash.size());
  for (const auto& hash : profile.effect_hash) {
    digest.absorb_u64(hash.has_value() ? 1 : 0);
    if (hash) digest.absorb_u64(*hash);
  }
}

void absorb_features(Digest& digest, const StaticFeatureVector& features) {
  for (double value : features) digest.absorb_double(value);
}

}  // namespace

// --- Digest ----------------------------------------------------------------

void Digest::absorb(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = hi, l = lo;
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ bytes[i]) * 0x00000100000001b3ULL;            // FNV-1a lane
    l = rotl64(l ^ (bytes[i] * 0x9e3779b97f4a7c15ULL), 27) // mixed lane
        * 0xc2b2ae3d27d4eb4fULL;
  }
  hi = h;
  lo = l;
}

void Digest::absorb_u64(std::uint64_t value) { absorb(&value, sizeof(value)); }

void Digest::absorb_double(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  absorb_u64(bits);
}

void Digest::absorb_string(const std::string& text) {
  absorb_u64(text.size());
  absorb(text.data(), text.size());
}

std::string Digest::hex() const {
  char out[33] = {};
  std::snprintf(out, sizeof(out), "%016llx%016llx",
                static_cast<unsigned long long>(finalize(hi)),
                static_cast<unsigned long long>(finalize(lo)));
  return out;
}

// --- input digests ---------------------------------------------------------

Digest digest_library(const LibraryBinary& library) {
  Digest digest;
  const std::vector<std::uint8_t> bytes = serialize_library(library);
  digest.absorb_u64(bytes.size());
  digest.absorb(bytes.data(), bytes.size());
  return digest;
}

Digest digest_model(const SimilarityModel& model) {
  Digest digest;
  const Network& network = model.network();
  digest.absorb_u64(network.layers().size());
  for (const DenseLayer& layer : network.layers()) {
    digest.absorb_u64(layer.in_dim());
    digest.absorb_u64(layer.out_dim());
    digest.absorb(layer.weights().data(),
                  layer.weights().size() * sizeof(float));
    digest.absorb(layer.biases().data(),
                  layer.biases().size() * sizeof(float));
  }
  const FeatureNormalizer& normalizer = model.normalizer();
  digest.absorb_u64(normalizer.fitted() ? 1 : 0);
  absorb_features(digest, normalizer.means());
  absorb_features(digest, normalizer.stddevs());
  return digest;
}

Digest digest_pipeline_config(const PipelineConfig& config) {
  Digest digest;
  digest.absorb_double(config.detection_threshold);
  digest.absorb_double(config.minkowski_p);
  digest.absorb_u64(config.patch_candidates);
  digest.absorb_u64(config.machine.step_limit);
  digest.absorb_i64(config.machine.stack_size);
  digest.absorb_i64(config.machine.max_call_depth);
  digest.absorb_u64(config.machine.collect_features ? 1 : 0);
  // The prefilter changes which functions ever reach the model, so toggling
  // it must never serve an entry computed under the other configuration.
  digest.absorb_u64(static_cast<std::uint64_t>(config.prefilter_mode));
  digest.absorb_u64(config.prefilter_top_k);
  digest.absorb_u64(config.prefilter_min_total);
  // config.worker_threads intentionally omitted: thread count never changes
  // results, so sequential and parallel runs share cache entries.
  return digest;
}

Digest digest_entry(const CveEntry& entry) {
  Digest digest;
  digest.absorb_string(entry.spec.cve_id);
  digest.absorb_string(entry.spec.library);
  digest.absorb_u64(static_cast<std::uint64_t>(entry.spec.kind));
  digest.absorb_u64(entry.library_index);
  digest.absorb_u64(entry.slot);
  digest.absorb_u64(entry.target_uid);
  absorb_features(digest, entry.vulnerable_features);
  absorb_features(digest, entry.patched_features);
  digest.absorb_u64(entry.environments.size());
  for (const CallEnv& env : entry.environments) {
    digest.absorb_u64(env.args.size());
    for (const Value& arg : env.args) {
      digest.absorb_u64(static_cast<std::uint64_t>(arg.type));
      digest.absorb_i64(arg.i);
      digest.absorb_double(arg.f);
      digest.absorb_i64(arg.buffer);
      digest.absorb_i64(arg.offset);
    }
    digest.absorb_u64(env.buffers.size());
    for (const std::vector<std::uint8_t>& buffer : env.buffers) {
      digest.absorb_u64(buffer.size());
      digest.absorb(buffer.data(), buffer.size());
    }
  }
  absorb_profile(digest, entry.vulnerable_profile);
  absorb_profile(digest, entry.patched_profile);
  digest.absorb_u64(entry.arch_refs.size());
  for (const auto& [arch, refs] : entry.arch_refs) {
    digest.absorb_u64(static_cast<std::uint64_t>(arch));
    absorb_features(digest, refs.vulnerable_features);
    absorb_features(digest, refs.patched_features);
    absorb_profile(digest, refs.vulnerable_profile);
    absorb_profile(digest, refs.patched_profile);
  }
  return digest;
}

std::string features_cache_key(const Digest& library) {
  return "feat-" + library.hex();
}

std::string outcome_cache_key(const Digest& library, const Digest& model,
                              const Digest& config, const Digest& entry,
                              bool query_is_patched) {
  Digest key;
  key.absorb_u64(library.hi);
  key.absorb_u64(library.lo);
  key.absorb_u64(model.hi);
  key.absorb_u64(model.lo);
  key.absorb_u64(config.hi);
  key.absorb_u64(config.lo);
  key.absorb_u64(entry.hi);
  key.absorb_u64(entry.lo);
  key.absorb_u64(query_is_patched ? 1 : 0);
  return "det-" + key.hex();
}

// --- serialization ---------------------------------------------------------

std::vector<std::uint8_t> serialize_features(
    const std::vector<StaticFeatureVector>& features) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + features.size() * static_feature_count * sizeof(double));
  append_bytes(out, kFeatureMagic, sizeof(kFeatureMagic));
  append_u64(out, kFormatVersion);
  append_u64(out, features.size());
  for (const StaticFeatureVector& vector : features)
    append_bytes(out, vector.data(), vector.size() * sizeof(double));
  return out;
}

std::optional<std::vector<StaticFeatureVector>> deserialize_features(
    const std::vector<std::uint8_t>& bytes) {
  Reader reader{bytes};
  if (!check_magic(reader, kFeatureMagic)) return std::nullopt;
  const std::uint64_t count = reader.read_u64();
  if (!reader.ok ||
      reader.pos + count * static_feature_count * sizeof(double) !=
          bytes.size())
    return std::nullopt;
  std::vector<StaticFeatureVector> features(
      static_cast<std::size_t>(count));
  for (StaticFeatureVector& vector : features)
    reader.read(vector.data(), vector.size() * sizeof(double));
  if (!reader.ok) return std::nullopt;
  return features;
}

std::vector<std::uint8_t> serialize_outcome(const DetectionOutcome& outcome) {
  std::vector<std::uint8_t> out;
  append_bytes(out, kOutcomeMagic, sizeof(kOutcomeMagic));
  append_u64(out, kFormatVersion);
  append_string(out, outcome.cve_id);
  append_u64(out, outcome.query_is_patched ? 1 : 0);
  append_u64(out, outcome.total);
  append_i64(out, outcome.true_positives);
  append_i64(out, outcome.true_negatives);
  append_i64(out, outcome.false_positives);
  append_i64(out, outcome.false_negatives);
  append_u64(out, outcome.candidates.size());
  for (std::size_t index : outcome.candidates) append_u64(out, index);
  append_double(out, outcome.dl_seconds);
  append_u64(out, outcome.executed);
  append_u64(out, outcome.ranking.size());
  for (const RankedCandidate& ranked : outcome.ranking) {
    append_u64(out, ranked.function_index);
    append_double(out, ranked.distance);
    append_double(out, ranked.secondary);
  }
  append_i64(out, outcome.rank_of_target);
  append_double(out, outcome.da_seconds);
  append_u64(out, static_cast<std::uint64_t>(outcome.prefilter_mode));
  append_u64(out, outcome.prefilter_exact_fallback ? 1 : 0);
  append_u64(out, outcome.prefilter_shortlist);
  append_u64(out, outcome.prefilter_exact_candidates);
  append_u64(out, outcome.prefilter_recalled);
  // Provenance doubles serialize as raw bits (append_double memcpys), so
  // NaN/inf sentinels and every finite value round-trip bitwise — a warm
  // scan reproduces byte-identical provenance.
  const obs::StageRecord& provenance = outcome.provenance;
  append_double(out, provenance.threshold);
  append_double(out, provenance.minkowski_p);
  append_u64(out, provenance.total);
  append_u64(out, provenance.executed);
  append_u64(out, provenance.prefilter);
  append_u64(out, provenance.prefilter_shortlist);
  append_u64(out, provenance.prefilter_exact);
  append_u64(out, provenance.prefilter_recalled);
  append_u64(out, provenance.candidates.size());
  for (const obs::CandidateRecord& candidate : provenance.candidates) {
    append_u64(out, candidate.function_index);
    append_double(out, candidate.dl_score);
    append_u64(out, candidate.validated ? 1 : 0);
    append_i64(out, candidate.crash_env);
    append_u64(out, candidate.prefiltered ? 1 : 0);
    append_u64(out, candidate.env_distances.size());
    for (double distance : candidate.env_distances)
      append_double(out, distance);
    append_double(out, candidate.distance);
    append_i64(out, candidate.rank);
  }
  return out;
}

std::optional<DetectionOutcome> deserialize_outcome(
    const std::vector<std::uint8_t>& bytes) {
  Reader reader{bytes};
  if (!check_magic(reader, kOutcomeMagic)) return std::nullopt;
  DetectionOutcome outcome;
  outcome.cve_id = reader.read_string();
  outcome.query_is_patched = reader.read_u64() != 0;
  outcome.total = static_cast<std::size_t>(reader.read_u64());
  outcome.true_positives = static_cast<int>(reader.read_i64());
  outcome.true_negatives = static_cast<int>(reader.read_i64());
  outcome.false_positives = static_cast<int>(reader.read_i64());
  outcome.false_negatives = static_cast<int>(reader.read_i64());
  const std::uint64_t candidate_count = reader.read_u64();
  if (!reader.ok ||
      candidate_count > (bytes.size() - reader.pos) / sizeof(std::uint64_t))
    return std::nullopt;
  outcome.candidates.resize(static_cast<std::size_t>(candidate_count));
  for (std::size_t& index : outcome.candidates)
    index = static_cast<std::size_t>(reader.read_u64());
  outcome.dl_seconds = reader.read_double();
  outcome.executed = static_cast<std::size_t>(reader.read_u64());
  const std::uint64_t ranked_count = reader.read_u64();
  if (!reader.ok || ranked_count > (bytes.size() - reader.pos) / 24)
    return std::nullopt;
  outcome.ranking.resize(static_cast<std::size_t>(ranked_count));
  for (RankedCandidate& ranked : outcome.ranking) {
    ranked.function_index = static_cast<std::size_t>(reader.read_u64());
    ranked.distance = reader.read_double();
    ranked.secondary = reader.read_double();
  }
  outcome.rank_of_target = static_cast<int>(reader.read_i64());
  outcome.da_seconds = reader.read_double();
  outcome.prefilter_mode =
      static_cast<retrieval::PrefilterMode>(reader.read_u64());
  outcome.prefilter_exact_fallback = reader.read_u64() != 0;
  outcome.prefilter_shortlist = static_cast<std::size_t>(reader.read_u64());
  outcome.prefilter_exact_candidates =
      static_cast<std::size_t>(reader.read_u64());
  outcome.prefilter_recalled = static_cast<std::size_t>(reader.read_u64());
  obs::StageRecord& provenance = outcome.provenance;
  provenance.threshold = reader.read_double();
  provenance.minkowski_p = reader.read_double();
  provenance.total = reader.read_u64();
  provenance.executed = reader.read_u64();
  provenance.prefilter = static_cast<std::uint8_t>(reader.read_u64());
  provenance.prefilter_shortlist = reader.read_u64();
  provenance.prefilter_exact = reader.read_u64();
  provenance.prefilter_recalled = reader.read_u64();
  const std::uint64_t record_count = reader.read_u64();
  if (!reader.ok || record_count > (bytes.size() - reader.pos) / 8)
    return std::nullopt;
  provenance.candidates.resize(static_cast<std::size_t>(record_count));
  for (obs::CandidateRecord& candidate : provenance.candidates) {
    candidate.function_index = reader.read_u64();
    candidate.dl_score = reader.read_double();
    candidate.validated = reader.read_u64() != 0;
    candidate.crash_env = reader.read_i64();
    candidate.prefiltered = reader.read_u64() != 0;
    const std::uint64_t env_count = reader.read_u64();
    if (!reader.ok || env_count > (bytes.size() - reader.pos) / sizeof(double))
      return std::nullopt;
    candidate.env_distances.resize(static_cast<std::size_t>(env_count));
    for (double& distance : candidate.env_distances)
      distance = reader.read_double();
    candidate.distance = reader.read_double();
    candidate.rank = reader.read_i64();
  }
  if (!reader.ok || reader.pos != bytes.size()) return std::nullopt;
  return outcome;
}

// --- ResultCache -----------------------------------------------------------

ResultCache::ResultCache(std::string disk_dir, bool enabled)
    : dir_(std::move(disk_dir)), enabled_(enabled) {
  if (enabled_ && !dir_.empty())
    std::filesystem::create_directories(dir_);
}

std::optional<std::vector<std::uint8_t>> ResultCache::read_file(
    const std::string& key) const {
  if (dir_.empty()) return std::nullopt;
  const std::filesystem::path path =
      std::filesystem::path(dir_) / (key + ".bin");
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  return bytes;
}

void ResultCache::write_file(const std::string& key,
                             const std::vector<std::uint8_t>& bytes) const {
  if (dir_.empty()) return;
  // Write-to-temp + rename so readers never observe a half-written entry;
  // the counter keeps concurrent writers of the same key apart.
  static std::atomic<std::uint64_t> temp_counter{0};
  const std::filesystem::path final_path =
      std::filesystem::path(dir_) / (key + ".bin");
  const std::filesystem::path temp_path =
      std::filesystem::path(dir_) /
      (key + ".tmp" + std::to_string(temp_counter.fetch_add(1)));
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) return;
  }
  std::error_code ec;
  std::filesystem::rename(temp_path, final_path, ec);
  if (ec) std::filesystem::remove(temp_path, ec);
}

std::optional<std::vector<StaticFeatureVector>> ResultCache::find_features(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) {
    ++stats_.feature_misses;
    CacheMetrics::get().feature_misses.add();
    return std::nullopt;
  }
  const auto it = features_.find(key);
  if (it != features_.end()) {
    ++stats_.feature_hits;
    CacheMetrics::get().feature_hits.add();
    return it->second;
  }
  if (const auto bytes = read_file(key)) {
    if (auto features = deserialize_features(*bytes)) {
      ++stats_.feature_hits;
      ++stats_.disk_loads;
      CacheMetrics::get().feature_hits.add();
      CacheMetrics::get().disk_loads.add();
      features_.emplace(key, *features);
      return features;
    }
  }
  ++stats_.feature_misses;
  CacheMetrics::get().feature_misses.add();
  return std::nullopt;
}

void ResultCache::store_features(
    const std::string& key, const std::vector<StaticFeatureVector>& features) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  features_[key] = features;
  ++stats_.stores;
  CacheMetrics::get().stores.add();
  write_file(key, serialize_features(features));
}

std::optional<DetectionOutcome> ResultCache::find_outcome(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) {
    ++stats_.outcome_misses;
    CacheMetrics::get().outcome_misses.add();
    return std::nullopt;
  }
  const auto it = outcomes_.find(key);
  if (it != outcomes_.end()) {
    ++stats_.outcome_hits;
    CacheMetrics::get().outcome_hits.add();
    return it->second;
  }
  if (const auto bytes = read_file(key)) {
    if (auto outcome = deserialize_outcome(*bytes)) {
      ++stats_.outcome_hits;
      ++stats_.disk_loads;
      CacheMetrics::get().outcome_hits.add();
      CacheMetrics::get().disk_loads.add();
      outcomes_.emplace(key, *outcome);
      return outcome;
    }
  }
  ++stats_.outcome_misses;
  CacheMetrics::get().outcome_misses.add();
  return std::nullopt;
}

void ResultCache::store_outcome(const std::string& key,
                                const DetectionOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  outcomes_[key] = outcome;
  ++stats_.stores;
  CacheMetrics::get().stores.add();
  write_file(key, serialize_outcome(outcome));
}

void ResultCache::clear_memory() {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheMetrics::get().evictions.add(features_.size() + outcomes_.size());
  features_.clear();
  outcomes_.clear();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace patchecko
