// Content-addressed result cache for the batch scan engine.
//
// The expensive per-scan work — Stage-1 feature extraction plus DL scoring
// and the Stage-2 dynamic validation — depends only on (library bytes,
// model weights, pipeline config, CVE reference data). Large-scale scans
// re-visit the same firmware and CVE sets constantly, so results are stored
// under a digest of exactly those inputs: an unchanged library hits the
// cache and skips Stage 1 entirely. Two result kinds are cached, in memory
// and optionally as files in a cache directory:
//   * the per-function StaticFeatureVector set of an analyzed library,
//     keyed by the library's serialized bytes, and
//   * a DetectionOutcome, keyed by (library, model, config, CVE entry,
//     query direction).
// The config digest deliberately excludes worker_threads: parallelism never
// changes results, so a cache populated at --jobs 8 serves --jobs 1 runs.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cve_database.h"
#include "core/pipeline.h"
#include "dl/similarity_model.h"

namespace patchecko {

/// 128-bit streaming content digest: two independent FNV-1a-style lanes
/// with a splitmix finalizer. Not cryptographic — collision resistance is
/// only needed against accidental key clashes in a cache namespace.
struct Digest {
  std::uint64_t hi = 0xcbf29ce484222325ULL;
  std::uint64_t lo = 0x9e3779b97f4a7c15ULL;

  void absorb(const void* data, std::size_t size);
  void absorb_u64(std::uint64_t value);
  void absorb_i64(std::int64_t value) {
    absorb_u64(static_cast<std::uint64_t>(value));
  }
  void absorb_double(double value);
  void absorb_string(const std::string& text);

  /// 32 hex characters, usable as a filename.
  std::string hex() const;

  friend bool operator==(const Digest& a, const Digest& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Digest& a, const Digest& b) {
    return !(a == b);
  }
};

/// Digest of a library's serialized bytes (identity of the scan target).
Digest digest_library(const LibraryBinary& library);
/// Digest of model weights, biases, and the fitted normalizer.
Digest digest_model(const SimilarityModel& model);
/// Digest of every config field that influences results. Excludes
/// worker_threads (see file comment).
Digest digest_pipeline_config(const PipelineConfig& config);
/// Digest of a CVE entry's reference data as the pipeline consumes it:
/// id, reference features, environments, and dynamic reference profiles.
Digest digest_entry(const CveEntry& entry);

std::string features_cache_key(const Digest& library);
std::string outcome_cache_key(const Digest& library, const Digest& model,
                              const Digest& config, const Digest& entry,
                              bool query_is_patched);

// Binary (de)serialization. Deserializers return nullopt on any malformed
// or truncated input (a corrupt cache file degrades to a miss, never UB).
std::vector<std::uint8_t> serialize_features(
    const std::vector<StaticFeatureVector>& features);
std::optional<std::vector<StaticFeatureVector>> deserialize_features(
    const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> serialize_outcome(const DetectionOutcome& outcome);
std::optional<DetectionOutcome> deserialize_outcome(
    const std::vector<std::uint8_t>& bytes);

struct CacheStats {
  std::uint64_t feature_hits = 0;
  std::uint64_t feature_misses = 0;
  std::uint64_t outcome_hits = 0;
  std::uint64_t outcome_misses = 0;
  std::uint64_t disk_loads = 0;  ///< hits served from disk, not memory
  std::uint64_t stores = 0;

  std::uint64_t hits() const { return feature_hits + outcome_hits; }
  std::uint64_t misses() const { return feature_misses + outcome_misses; }
};

/// Thread-safe two-level (memory, then disk) cache. With an empty directory
/// the cache is memory-only; disabled() makes every lookup a miss.
class ResultCache {
 public:
  ResultCache() = default;
  explicit ResultCache(std::string disk_dir, bool enabled = true);

  bool enabled() const { return enabled_; }
  const std::string& directory() const { return dir_; }

  std::optional<std::vector<StaticFeatureVector>> find_features(
      const std::string& key);
  void store_features(const std::string& key,
                      const std::vector<StaticFeatureVector>& features);

  std::optional<DetectionOutcome> find_outcome(const std::string& key);
  void store_outcome(const std::string& key, const DetectionOutcome& outcome);

  /// Drops the in-memory maps (disk files stay); used to measure the
  /// disk-hit path.
  void clear_memory();

  CacheStats stats() const;

 private:
  std::optional<std::vector<std::uint8_t>> read_file(
      const std::string& key) const;
  void write_file(const std::string& key,
                  const std::vector<std::uint8_t>& bytes) const;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<StaticFeatureVector>> features_;
  std::unordered_map<std::string, DetectionOutcome> outcomes_;
  std::string dir_;
  bool enabled_ = true;
  CacheStats stats_;
};

}  // namespace patchecko
